#!/usr/bin/env bash
# Full verification pass: configure, build, run every test, every benchmark,
# and every example. Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "== $bench"
  "$bench"
done

for example in build/examples/*; do
  [ -x "$example" ] && [ -f "$example" ] || continue
  echo "== $example"
  "$example" > /dev/null
done

echo "ALL OK"
