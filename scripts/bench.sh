#!/usr/bin/env bash
# Unified bench runner: builds the bench binaries and drives them through
# the one BenchReport envelope (docs/BENCHMARKING.md).
#
#   scripts/bench.sh --profile=ci            # fast profile, canonical files
#   scripts/bench.sh --profile=full          # full sweeps (minutes)
#   scripts/bench.sh --profile=ci --out-dir=/tmp/x   # write elsewhere
#
# The ci profile runs the six canonical trajectory benches and writes
# BENCH_table1.json, BENCH_fig2.json, BENCH_parallel.json,
# BENCH_scan_io.json, BENCH_incremental.json, and BENCH_dist.json into
# --out-dir (default: the repo root, where they are committed as the perf
# baselines scripts/perf_gate.py compares against).
# The full profile additionally runs every other bench binary.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

PROFILE=ci
BUILD_DIR=build-bench
OUT_DIR="$REPO_ROOT"
SKIP_BUILD=0

for arg in "$@"; do
  case "$arg" in
    --profile=*) PROFILE="${arg#*=}" ;;
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --out-dir=*) OUT_DIR="${arg#*=}" ;;
    --skip-build) SKIP_BUILD=1 ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: $0 [--profile=ci|full] [--build-dir=DIR] [--out-dir=DIR] [--skip-build]" >&2
      exit 2
      ;;
  esac
done
case "$PROFILE" in ci|full) ;; *)
  echo "--profile must be ci or full, got '$PROFILE'" >&2; exit 2 ;;
esac
mkdir -p "$OUT_DIR"

if [[ "$SKIP_BUILD" -eq 0 ]]; then
  # Always reconfigure so the embedded git sha matches the current tree.
  cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" --target \
    bench_table1_sweeps bench_fig2_max_pat_length bench_parallel_scaling \
    bench_scan_io bench_incremental bench_dist bench_hitset_bound bench_codec \
    bench_query bench_multi_period bench_noise bench_stream bench_maximal \
    bench_ablation_hit_store bench_ablation_derivation >/dev/null
fi

export PPM_BENCH_PROFILE="$PROFILE"
BENCH_BIN="$BUILD_DIR/bench"

run_bench() {  # run_bench <binary> <report-name>
  echo "--- $1 ($PROFILE profile)"
  "$BENCH_BIN/$1" "$OUT_DIR/BENCH_$2.json"
}

# Canonical trajectory benches: their ci-profile reports are committed at
# the repo root and gate regressions in CI.
run_bench bench_table1_sweeps table1
run_bench bench_fig2_max_pat_length fig2
run_bench bench_parallel_scaling parallel
run_bench bench_scan_io scan_io
run_bench bench_incremental incremental
run_bench bench_dist dist

if [[ "$PROFILE" == full ]]; then
  run_bench bench_hitset_bound hitset_bound
  run_bench bench_codec codec
  run_bench bench_query query
  run_bench bench_multi_period multi_period
  run_bench bench_noise noise
  run_bench bench_stream stream
  run_bench bench_maximal maximal
  run_bench bench_ablation_hit_store ablation_hit_store
  run_bench bench_ablation_derivation ablation_derivation
  # bench_micro (google-benchmark) keeps its native output format.
  "$BENCH_BIN/bench_micro" --benchmark_min_time=0.1s \
    --benchmark_out="$OUT_DIR/BENCH_micro.json" \
    --benchmark_out_format=json || true
fi

echo
echo "reports in $OUT_DIR:"
ls "$OUT_DIR"/BENCH_*.json
