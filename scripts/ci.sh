#!/usr/bin/env bash
# CI gate: tier-1 build + tests with warnings as errors, a CLI smoke test
# that validates the emitted stats/trace JSON actually parses, and a
# sanitizer matrix (TSan + ASan) over the concurrency-sensitive tests.
#
# -Wno-error=restrict: GCC 12's libstdc++ emits known-false -Wrestrict
# warnings from std::string concatenation in a few test files.
#
# PPM_CI_SANITIZERS=0 skips the sanitizer matrix (each entry is a separate
# build tree; useful for quick local runs).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
SANITIZERS=${PPM_CI_SANITIZERS:-1}

cmake -B "$BUILD_DIR" -G Ninja \
  -DCMAKE_CXX_FLAGS="-Werror -Wno-error=restrict"
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# CLI smoke: generate -> mine with reports -> validate the JSON.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
PPM="$BUILD_DIR/src/cli/ppm"

"$PPM" generate --output "$SMOKE_DIR/series.bin" \
  --length 20000 --period 50 --seed 7
"$PPM" mine --input "$SMOKE_DIR/series.bin" --period 50 --min-conf 0.8 \
  --stats-json "$SMOKE_DIR/stats.json" --trace-out "$SMOKE_DIR/trace.json" \
  --log-level info > "$SMOKE_DIR/mine.out"
grep -q "patterns=" "$SMOKE_DIR/mine.out"

python3 - "$SMOKE_DIR/stats.json" "$SMOKE_DIR/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["run"] == "mine", stats["run"]
assert stats["meta"]["algorithm"] == "hitset"
mining = stats["sections"]["mining_stats"]
assert mining["scans"] == 2, mining
assert mining["elapsed_seconds"] > 0, mining
counters = stats["metrics"]["counters"]
assert counters["ppm.source.scans"] == mining["scans"], counters
# Every whole segment is either inserted as a hit or skipped (< 2 letters).
inserted = counters["ppm.hitset.hits_inserted"]
skipped = counters["ppm.hitset.segments_skipped"]
assert inserted + skipped == mining["num_periods"], counters
assert inserted >= mining["hit_store_entries"], counters
span_names = {s["name"] for s in stats["spans"]}
assert {"mine.hitset", "f1_scan", "second_scan"} <= span_names, span_names

with open(sys.argv[2]) as f:
    trace = json.load(f)
assert isinstance(trace, list) and trace, "trace must be a non-empty array"
for event in trace:
    assert event["ph"] == "X", event
    assert {"name", "ts", "dur"} <= event.keys(), event
trace_names = {e["name"] for e in trace}
assert {"f1_scan", "second_scan"} <= trace_names, trace_names

print("smoke OK: stats and trace JSON validate")
EOF

# Sanitizer matrix: the parallel miners, thread pool, and streaming layer
# under TSan (data races) and ASan (memory errors). Only the tests that
# exercise threads or own tricky memory are run -- a full suite per
# sanitizer would triple CI time for no extra coverage.
SANITIZER_TESTS='util_thread_pool_test|parallel_mine_test|differential_test|determinism_test|boundary_test|stream_test'
if [[ "$SANITIZERS" == "1" ]]; then
  for sanitizer in thread address; do
    SAN_DIR="$BUILD_DIR-$sanitizer"
    echo "=== sanitizer matrix: $sanitizer ==="
    cmake -B "$SAN_DIR" -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPPM_SANITIZE="$sanitizer"
    cmake --build "$SAN_DIR"
    ctest --test-dir "$SAN_DIR" -R "$SANITIZER_TESTS" --output-on-failure
  done
fi

echo "CI OK"
