#!/usr/bin/env bash
# CI gate: tier-1 build + tests with warnings as errors, a CLI smoke test
# that validates the emitted stats/trace JSON actually parses, a
# fault-injection smoke job (corruption harness under a nonzero fault seed,
# deadline and budget exit codes), and a sanitizer matrix (TSan + ASan +
# UBSan) over the concurrency- and corruption-sensitive tests.
#
# -Wno-error=restrict: GCC 12's libstdc++ emits known-false -Wrestrict
# warnings from std::string concatenation in a few test files.
#
# PPM_CI_SANITIZERS=0 skips the sanitizer matrix (each entry is a separate
# build tree; useful for quick local runs). PPM_CI_BENCH=0 skips the bench
# smoke + perf-regression gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
SANITIZERS=${PPM_CI_SANITIZERS:-1}
BENCH_GATE=${PPM_CI_BENCH:-1}

cmake -B "$BUILD_DIR" -G Ninja \
  -DCMAKE_CXX_FLAGS="-Werror -Wno-error=restrict"
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# CLI smoke: generate -> mine with reports -> validate the JSON.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
PPM="$BUILD_DIR/src/cli/ppm"

"$PPM" generate --output "$SMOKE_DIR/series.bin" \
  --length 20000 --period 50 --seed 7
"$PPM" mine --input "$SMOKE_DIR/series.bin" --period 50 --min-conf 0.8 \
  --stats-json "$SMOKE_DIR/stats.json" --trace-out "$SMOKE_DIR/trace.json" \
  --log-level info > "$SMOKE_DIR/mine.out"
grep -q "patterns=" "$SMOKE_DIR/mine.out"

python3 - "$SMOKE_DIR/stats.json" "$SMOKE_DIR/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["run"] == "mine", stats["run"]
assert stats["meta"]["algorithm"] == "hitset"
mining = stats["sections"]["mining_stats"]
assert mining["scans"] == 2, mining
assert mining["elapsed_seconds"] > 0, mining
counters = stats["metrics"]["counters"]
assert counters["ppm.source.scans"] == mining["scans"], counters
# Scan accounting: hit-set mining is exactly two logical database passes,
# one F1 scan plus one second scan (docs/OBSERVABILITY.md).
assert counters["ppm.scan.db_passes"] == 2, counters
assert counters["ppm.scan.passes.f1_scan"] == 1, counters
assert counters["ppm.scan.passes.second_scan"] == 1, counters
# Build fingerprint and resource accounting ride along in every report.
meta = stats["meta"]
assert meta["build.git_sha"], meta
assert meta["build.compiler"], meta
assert int(meta["machine.cores"]) >= 1, meta  # meta values are strings
gauges = stats["metrics"]["gauges"]
assert gauges["ppm.resource.rss_hwm_bytes"] > 0, gauges
# Every whole segment is either inserted as a hit or skipped (< 2 letters).
inserted = counters["ppm.hitset.hits_inserted"]
skipped = counters["ppm.hitset.segments_skipped"]
assert inserted + skipped == mining["num_periods"], counters
assert inserted >= mining["hit_store_entries"], counters
span_names = {s["name"] for s in stats["spans"]}
assert {"mine.hitset", "f1_scan", "second_scan"} <= span_names, span_names

with open(sys.argv[2]) as f:
    trace = json.load(f)
assert isinstance(trace, list) and trace, "trace must be a non-empty array"
for event in trace:
    assert event["ph"] == "X", event
    assert {"name", "ts", "dur"} <= event.keys(), event
trace_names = {e["name"] for e in trace}
assert {"f1_scan", "second_scan"} <= trace_names, trace_names

print("smoke OK: stats and trace JSON validate")
EOF

# db_passes must be thread-invariant: the parallel hit-set miner shards the
# same two logical passes, it does not add any.
"$PPM" mine --input "$SMOKE_DIR/series.bin" --period 50 --min-conf 0.8 \
  --threads 4 --stats-json "$SMOKE_DIR/stats-t4.json" > /dev/null
python3 - "$SMOKE_DIR/stats-t4.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["metrics"]["counters"]
assert counters["ppm.scan.db_passes"] == 2, counters
assert counters["ppm.scan.passes.f1_scan"] == 1, counters
assert counters["ppm.scan.passes.second_scan"] == 1, counters
print("smoke OK: db_passes == 2 at --threads 4")
EOF

# Perf-regression gate (docs/BENCHMARKING.md): a fresh ci-profile bench run
# must match the committed BENCH_*.json baselines on every exact field
# (scan counts, db passes, candidates, patterns, bytes read), and the
# intentionally-injected extra database scan must make the gate fail --
# proving the gate can actually catch a scan-discipline regression.
if [[ "$BENCH_GATE" == "1" ]]; then
  BENCH_DIR="$SMOKE_DIR/bench"
  mkdir -p "$BENCH_DIR"
  scripts/bench.sh --profile=ci --build-dir="$BUILD_DIR-bench" \
    --out-dir="$BENCH_DIR" > "$SMOKE_DIR/bench.out"
  python3 scripts/perf_gate.py --baseline . --candidate "$BENCH_DIR"

  INJECT_DIR="$SMOKE_DIR/bench-inject"
  mkdir -p "$INJECT_DIR"
  cp "$BENCH_DIR"/BENCH_table1.json "$BENCH_DIR"/BENCH_fig2.json \
     "$BENCH_DIR"/BENCH_parallel.json "$BENCH_DIR"/BENCH_incremental.json \
     "$BENCH_DIR"/BENCH_dist.json "$INJECT_DIR/"
  PPM_BENCH_PROFILE=ci PPM_BENCH_INJECT_EXTRA_SCAN=1 \
    "$BUILD_DIR-bench/bench/bench_scan_io" \
    "$INJECT_DIR/BENCH_scan_io.json" > /dev/null
  set +e
  python3 scripts/perf_gate.py --baseline . --candidate "$INJECT_DIR" \
    > "$SMOKE_DIR/gate-inject.out"
  GATE_EXIT=$?
  set -e
  [[ "$GATE_EXIT" == 1 ]] || {
    echo "perf gate did not catch the injected extra scan (exit $GATE_EXIT)"
    cat "$SMOKE_DIR/gate-inject.out"
    exit 1
  }
  grep -q "ppm.scan.db_passes" "$SMOKE_DIR/gate-inject.out"
  echo "perf gate OK: clean run passes, injected extra scan fails"
fi

# Fault-injection smoke: the corruption harness under a nonzero fault seed
# (different flipped bits than the default run), plus the robustness exit
# codes from a real binary -- a 1 ms deadline on a large series must exit 5
# and a 1 MB budget with --budget-policy fail must exit 6
# (docs/ROBUSTNESS.md). --num-f1 30 makes the Property 3.2 bound the number
# of periods (10000), so the predicted tree bytes (~2 MB) exceed the 1 MB
# budget deterministically.
PPM_FAULT_SEED=20260806 ctest --test-dir "$BUILD_DIR" \
  -R 'tsdb_corruption_test' --output-on-failure
"$PPM" generate --output "$SMOKE_DIR/big.bin" \
  --length 500000 --period 50 --num-f1 30 --seed 11
set +e
"$PPM" mine --input "$SMOKE_DIR/big.bin" --period 50 --min-conf 0.8 \
  --deadline-ms 1 2> "$SMOKE_DIR/deadline.err"
DEADLINE_EXIT=$?
"$PPM" mine --input "$SMOKE_DIR/big.bin" --period 50 --min-conf 0.8 \
  --memory-budget-mb 1 --budget-policy fail 2> "$SMOKE_DIR/budget.err"
BUDGET_EXIT=$?
set -e
[[ "$DEADLINE_EXIT" == 5 ]] || { echo "deadline exit was $DEADLINE_EXIT, want 5"; exit 1; }
grep -q "DeadlineExceeded" "$SMOKE_DIR/deadline.err"
[[ "$BUDGET_EXIT" == 6 ]] || { echo "budget exit was $BUDGET_EXIT, want 6"; exit 1; }
grep -q "ResourceExhausted" "$SMOKE_DIR/budget.err"
echo "fault smoke OK: corruption harness, deadline exit 5, budget exit 6"

# Crash-recovery smoke: a `ppm stream` run killed mid-ingestion at a
# fault-injected WAL write site (torn half-frame + _Exit(137), like a
# SIGKILL mid-write) must, after `--resume`, report the same segment count
# and byte-identical pattern lines as an uninterrupted reference run
# (docs/ROBUSTNESS.md "Crash recovery"). --wal-fsync never is sufficient
# here: the kill is a process death, not a machine crash, so the page cache
# survives.
"$PPM" generate --output "$SMOKE_DIR/stream.bin" \
  --length 8000 --period 20 --seed 13
"$PPM" stream --input "$SMOKE_DIR/stream.bin" --period 20 --min-conf 0.8 \
  --checkpoint-dir "$SMOKE_DIR/ref-ckpt" --checkpoint-every 8 \
  --wal-fsync never > "$SMOKE_DIR/stream-ref.out"
set +e
"$PPM" stream --input "$SMOKE_DIR/stream.bin" --period 20 --min-conf 0.8 \
  --checkpoint-dir "$SMOKE_DIR/crash-ckpt" --checkpoint-every 8 \
  --wal-fsync never --crash-after-appends 3500 > /dev/null
CRASH_EXIT=$?
set -e
[[ "$CRASH_EXIT" == 137 ]] || { echo "crash exit was $CRASH_EXIT, want 137"; exit 1; }
"$PPM" stream --input "$SMOKE_DIR/stream.bin" --period 20 --min-conf 0.8 \
  --checkpoint-dir "$SMOKE_DIR/crash-ckpt" --checkpoint-every 8 \
  --wal-fsync never --resume > "$SMOKE_DIR/stream-resumed.out"
grep -q "(resumed)" "$SMOKE_DIR/stream-resumed.out"
grep '^  count=' "$SMOKE_DIR/stream-ref.out" > "$SMOKE_DIR/ref-patterns"
grep '^  count=' "$SMOKE_DIR/stream-resumed.out" > "$SMOKE_DIR/resumed-patterns"
diff "$SMOKE_DIR/ref-patterns" "$SMOKE_DIR/resumed-patterns"
grep '^period=' "$SMOKE_DIR/stream-ref.out" > "$SMOKE_DIR/ref-m"
grep '^period=' "$SMOKE_DIR/stream-resumed.out" > "$SMOKE_DIR/resumed-m"
diff "$SMOKE_DIR/ref-m" "$SMOKE_DIR/resumed-m"
echo "crash-recovery smoke OK: kill at append 3500, resume matches reference"

# Incremental-vs-batch smoke (docs/INCREMENTAL.md): mining a prefix, letting
# the series grow, and resuming must report byte-identical pattern lines to
# a one-shot stream over the final series -- and the catch-up must cost one
# O(WAL-tail) wal_replay pass, never a rescan of the already-mined history.
# The text codec interns features in first-appearance order, so a head-sliced
# prefix of a .txt series is an exact prefix with compatible feature ids.
"$PPM" generate --output "$SMOKE_DIR/grow.txt" \
  --length 12000 --period 20 --seed 17
head -n 8000 "$SMOKE_DIR/grow.txt" > "$SMOKE_DIR/grow-prefix.txt"
"$PPM" stream --input "$SMOKE_DIR/grow.txt" --period 20 --min-conf 0.8 \
  --window 100 --query-every 200 --checkpoint-dir "$SMOKE_DIR/oneshot-ckpt" \
  --wal-fsync never > "$SMOKE_DIR/oneshot.out"
grep -q '^query t=' "$SMOKE_DIR/oneshot.out"
grep -q 'effective_m=100' "$SMOKE_DIR/oneshot.out"
"$PPM" stream --input "$SMOKE_DIR/grow-prefix.txt" --period 20 \
  --min-conf 0.8 --window 100 --checkpoint-dir "$SMOKE_DIR/incr-ckpt" \
  --wal-fsync never > /dev/null
"$PPM" stream --input "$SMOKE_DIR/grow.txt" --period 20 --min-conf 0.8 \
  --window 100 --checkpoint-dir "$SMOKE_DIR/incr-ckpt" --wal-fsync never \
  --resume --stats-json "$SMOKE_DIR/incr-stats.json" > "$SMOKE_DIR/incr.out"
grep '^  count=' "$SMOKE_DIR/oneshot.out" > "$SMOKE_DIR/oneshot-patterns"
grep '^  count=' "$SMOKE_DIR/incr.out" > "$SMOKE_DIR/incr-patterns"
diff "$SMOKE_DIR/oneshot-patterns" "$SMOKE_DIR/incr-patterns"
grep '^period=' "$SMOKE_DIR/oneshot.out" > "$SMOKE_DIR/oneshot-m"
grep '^period=' "$SMOKE_DIR/incr.out" > "$SMOKE_DIR/incr-m"
diff "$SMOKE_DIR/oneshot-m" "$SMOKE_DIR/incr-m"
python3 - "$SMOKE_DIR/incr-stats.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    stats = json.load(f)
meta = stats["meta"]
assert meta["resumed"] == "true", meta
assert int(meta["window"]) == 100, meta
assert int(meta["effective_segments"]) == 100, meta
counters = stats["metrics"]["counters"]
# Catching up a resumed stream is exactly one database pass -- the WAL tail
# replay -- and it scans only the records past the checkpoint cursor, never
# the 8000-instant history (docs/INCREMENTAL.md "Query cost").
assert counters["ppm.scan.db_passes"] == 1, counters
assert counters["ppm.scan.passes.wal_replay"] == 1, counters
replayed = int(meta["recovery.wal_records_replayed"])
assert counters["ppm.scan.instants_scanned"] == replayed, counters
assert replayed < 8000, replayed
print("smoke OK: incremental resume matches one-shot stream, O(tail) catch-up")
EOF
echo "incremental smoke OK: resumed stream == one-shot stream"

# Serving smoke (docs/SERVING.md): a live ppmd daemon must answer
# put/append/mine/query over its unix socket, prove cache invalidation
# (miss -> hit -> append -> refresh) through the served outcome field and
# the ppm.server.cache.* counters, and drain cleanly (exit 0) on SIGTERM.
PPMD="$BUILD_DIR/src/cli/ppmd"
SERVE_SOCK="$SMOKE_DIR/ppmd.sock"
"$PPMD" --socket "$SERVE_SOCK" --db "$SMOKE_DIR/ppmd-db" \
  --wal-fsync never > "$SMOKE_DIR/ppmd.log" 2>&1 &
PPMD_PID=$!
for _ in $(seq 1 100); do [[ -S "$SERVE_SOCK" ]] && break; sleep 0.1; done
[[ -S "$SERVE_SOCK" ]] || { echo "ppmd did not come up"; cat "$SMOKE_DIR/ppmd.log"; exit 1; }
"$PPM" generate --output "$SMOKE_DIR/serve.bin" \
  --length 2000 --period 20 --seed 19
"$PPM" client put --socket "$SERVE_SOCK" --name served \
  --input "$SMOKE_DIR/serve.bin"
"$PPM" client mine --socket "$SERVE_SOCK" --name served \
  --period 20 --min-conf 0.8 > "$SMOKE_DIR/serve-mine.out"
grep -q "outcome=miss" "$SMOKE_DIR/serve-mine.out"
grep -q "patterns=" "$SMOKE_DIR/serve-mine.out"
"$PPM" client query --socket "$SERVE_SOCK" --name served \
  --period 20 --min-conf 0.8 > "$SMOKE_DIR/serve-hit.out"
grep -q "outcome=hit" "$SMOKE_DIR/serve-hit.out"
"$PPM" client append --socket "$SERVE_SOCK" --name served \
  --input "$SMOKE_DIR/serve.bin"
"$PPM" client query --socket "$SERVE_SOCK" --name served \
  --period 20 --min-conf 0.8 > "$SMOKE_DIR/serve-refresh.out"
grep -q "outcome=refresh" "$SMOKE_DIR/serve-refresh.out"
"$PPM" client stats --socket "$SERVE_SOCK" \
  --stats-json "$SMOKE_DIR/serve-stats.json" \
  --metrics-prom "$SMOKE_DIR/serve-metrics.prom" > /dev/null
grep -q 'ppm_server_cache_hits 1' "$SMOKE_DIR/serve-metrics.prom" || \
  grep -q '"ppm.server.cache.hits": 1' "$SMOKE_DIR/serve-stats.json" || {
    echo "cache hit not visible in served stats/metrics"
    cat "$SMOKE_DIR/serve-stats.json"; exit 1;
  }
kill -TERM "$PPMD_PID"
set +e
wait "$PPMD_PID"
PPMD_EXIT=$?
set -e
[[ "$PPMD_EXIT" == 0 ]] || { echo "ppmd SIGTERM drain exit was $PPMD_EXIT, want 0"; cat "$SMOKE_DIR/ppmd.log"; exit 1; }
[[ ! -S "$SERVE_SOCK" ]] || { echo "ppmd left its socket behind"; exit 1; }
echo "serving smoke OK: put/mine/query/append over ppmd, SIGTERM drain clean"

# Overload smoke (docs/SERVING.md "Overload protection"): a 2-worker ppmd
# with a per-tenant quota must shed a greedy tenant hammering at many times
# its rate (exit 6, ResourceExhausted) while a polite tenant's requests all
# succeed; --retry-budget-ms must wait out the shed and succeed; a
# slowloris connection holding half a frame header is reaped at the io
# deadline; health/ready probes answer inline; SIGTERM drains clean.
OVER_SOCK="$SMOKE_DIR/over.sock"
"$PPMD" --socket "$OVER_SOCK" --db "$SMOKE_DIR/over-db" --workers 2 \
  --queue-capacity 16 --io-timeout-ms 300 --tenant-quota 'greedy=1:1:0' \
  --wal-fsync never > "$SMOKE_DIR/over.log" 2>&1 &
OVER_PID=$!
for _ in $(seq 1 100); do [[ -S "$OVER_SOCK" ]] && break; sleep 0.1; done
[[ -S "$OVER_SOCK" ]] || { echo "overloaded ppmd did not come up"; cat "$SMOKE_DIR/over.log"; exit 1; }
"$PPM" client put --socket "$OVER_SOCK" --name over \
  --input "$SMOKE_DIR/serve.bin"
"$PPM" client health --socket "$OVER_SOCK" > "$SMOKE_DIR/over-health.out"
grep -q '"ready_state":"accepting"' "$SMOKE_DIR/over-health.out"
"$PPM" client ready --socket "$OVER_SOCK" | grep -q accepting

# Slowloris peer in the background: half a header, then a stall. It must
# observe EOF (the io deadline reaping it), never a hang.
python3 - "$OVER_SOCK" > "$SMOKE_DIR/slow.out" <<'EOF' &
import socket
import sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.settimeout(10)
assert s.recv(8) == b"PPMRPC1\n"
s.sendall(b"PPMRPC1\n")
s.sendall(b"\x40\x00\x00")  # 3 of 8 header bytes, then silence
assert s.recv(1) == b"", "server never closed the stalled connection"
print("REAPED")
EOF
SLOW_PID=$!

# Greedy tenant at many times its 1 rps quota: some admitted, some shed.
GREEDY_OK=0
GREEDY_SHED=0
for _ in $(seq 1 15); do
  set +e
  "$PPM" client query --socket "$OVER_SOCK" --name over --period 20 \
    --min-conf 0.8 --tenant greedy > /dev/null 2>&1
  GREEDY_EXIT=$?
  set -e
  if [[ "$GREEDY_EXIT" == 0 ]]; then GREEDY_OK=$((GREEDY_OK + 1)); fi
  if [[ "$GREEDY_EXIT" == 6 ]]; then GREEDY_SHED=$((GREEDY_SHED + 1)); fi
done
[[ "$GREEDY_OK" -ge 1 ]] || { echo "greedy tenant never admitted"; exit 1; }
[[ "$GREEDY_SHED" -ge 1 ]] || { echo "greedy tenant at 15x quota was never shed"; exit 1; }

# The polite tenant is untouched by the greedy tenant's rejections.
for _ in $(seq 1 5); do
  "$PPM" client query --socket "$OVER_SOCK" --name over --period 20 \
    --min-conf 0.8 --tenant polite > /dev/null
done

# A shed greedy request succeeds once --retry-budget-ms covers the refill.
"$PPM" client query --socket "$OVER_SOCK" --name over --period 20 \
  --min-conf 0.8 --tenant greedy --retry-budget-ms 5000 > /dev/null

wait "$SLOW_PID"
grep -q "REAPED" "$SMOKE_DIR/slow.out"

kill -TERM "$OVER_PID"
set +e
wait "$OVER_PID"
OVER_EXIT=$?
set -e
[[ "$OVER_EXIT" == 0 ]] || { echo "overloaded ppmd SIGTERM drain exit was $OVER_EXIT, want 0"; cat "$SMOKE_DIR/over.log"; exit 1; }
[[ ! -S "$OVER_SOCK" ]] || { echo "overloaded ppmd left its socket behind"; exit 1; }
echo "overload smoke OK: greedy shed ($GREEDY_SHED/15), polite clean, slowloris reaped, drain clean"

# Distributed chaos smoke (docs/DISTRIBUTED.md): plan a 6-shard mine, kill
# two workers mid-shard on the first run (no retries, --partial ok), then
# resume with a transient worker failure and an injected transient read
# fault -- the resumed run must adopt the four completed shards, re-execute
# only the two failed ones (proven via the ppm.dist.* counters in the stats
# report), and the merged pattern lines must diff clean against a one-shot
# `ppm mine`. `timeout` guards the whole block against a hung coordinator.
DIST_TIMEOUT="timeout 180"
"$PPM" generate --output "$SMOKE_DIR/dist.bin" \
  --length 24000 --period 20 --seed 23
"$PPM" dist plan --inputs "$SMOKE_DIR/dist.bin" \
  --plan "$SMOKE_DIR/dist.plan" --period 20 --min-conf 0.8 \
  --shards-per-input 6 > /dev/null
$DIST_TIMEOUT "$PPM" dist run --plan "$SMOKE_DIR/dist.plan" \
  --results "$SMOKE_DIR/dist-results" --workers 3 --max-retries 0 \
  --partial ok --chaos-shards 1,4 --chaos-kill-after-segments 7 \
  > "$SMOKE_DIR/dist-broken.out"
grep -q "failed=2" "$SMOKE_DIR/dist-broken.out"
grep -q "PARTIAL" "$SMOKE_DIR/dist-broken.out"
$DIST_TIMEOUT "$PPM" dist run --plan "$SMOKE_DIR/dist.plan" \
  --results "$SMOKE_DIR/dist-results" --workers 3 --max-retries 2 \
  --chaos-shards 1 --chaos-exit 7 --chaos-until-attempt 1 \
  --inject-transient-reads 1 --top 100000 \
  --stats-json "$SMOKE_DIR/dist-stats.json" > "$SMOKE_DIR/dist-resumed.out"
"$PPM" mine --input "$SMOKE_DIR/dist.bin" --period 20 --min-conf 0.8 \
  --top 100000 > "$SMOKE_DIR/dist-oneshot.out"
grep '^  count=' "$SMOKE_DIR/dist-resumed.out" > "$SMOKE_DIR/dist-patterns"
grep '^  count=' "$SMOKE_DIR/dist-oneshot.out" > "$SMOKE_DIR/oneshot-dist-patterns"
diff "$SMOKE_DIR/dist-patterns" "$SMOKE_DIR/oneshot-dist-patterns"
python3 - "$SMOKE_DIR/dist-stats.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["run"] == "dist", stats["run"]
meta = stats["meta"]
assert meta["shards_merged"] == "6", meta
assert meta["shards_missing"] == "0", meta
counters = stats["metrics"]["counters"]
# Resume re-executed only the two shards the chaos run lost: four adopted,
# shard 1 took two launches (transient exit then success), shard 4 one.
assert counters["ppm.dist.shards.adopted"] == 4, counters
assert counters["ppm.dist.shards.launched"] == 3, counters
assert counters["ppm.dist.shards.retried"] == 1, counters
assert counters["ppm.dist.shards.failed"] == 0, counters
assert counters["ppm.dist.failures.exit"] == 1, counters
print("smoke OK: dist resume adopted 4, relaunched 2, merge exact")
EOF
echo "dist chaos smoke OK: 2 workers killed mid-shard, resume + merge exact"

# Sanitizer matrix: the parallel miners, thread pool, streaming layer, and
# the corruption/fault-injection harnesses under TSan (data races), ASan
# (memory errors), and UBSan (undefined behaviour). Only the tests that
# exercise threads, tricky memory, or hostile bytes are run -- a full suite
# per sanitizer would triple CI time for no extra coverage.
SANITIZER_TESTS='util_thread_pool_test|parallel_mine_test|differential_test|determinism_test|boundary_test|stream_test|tsdb_corruption_test|tsdb_fault_injection_test|fault_tolerance_test|tsdb_wal_test|stream_checkpoint_test|incremental_equivalence_test|cli_stream_test|service_store_test|service_cache_test|service_wire_test|service_admission_test|ppmd_server_test|serving_differential_test|serving_soak_test|service_robustness_test|dist_plan_test|dist_merge_test|dist_corruption_test|dist_coordinator_test'
if [[ "$SANITIZERS" == "1" ]]; then
  for sanitizer in thread address undefined; do
    SAN_DIR="$BUILD_DIR-$sanitizer"
    echo "=== sanitizer matrix: $sanitizer ==="
    cmake -B "$SAN_DIR" -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPPM_SANITIZE="$sanitizer"
    cmake --build "$SAN_DIR"
    ctest --test-dir "$SAN_DIR" -R "$SANITIZER_TESTS" --output-on-failure
  done
fi

echo "CI OK"
