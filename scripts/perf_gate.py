#!/usr/bin/env python3
"""Perf regression gate over committed BenchReport baselines.

Compares candidate BENCH_*.json reports (a fresh scripts/bench.sh run)
against the committed baselines and classifies every field of every row:

  exact   -- scan counts, db passes, candidate/pattern/letter/entry counts,
             bytes read. Algorithm-determined and thread-invariant; ANY
             difference is a regression (or an intentional change that must
             be re-baselined). Zero tolerance.
  timing  -- *_ms / *_us / rates / speedups. Machine- and load-dependent;
             compared with a noise threshold and, by default, reported as
             warnings only (committed baselines come from a different
             machine). --strict-timings turns violations into failures.
  identity -- workload descriptors (param, threads, miner, length, ...).
             Must match exactly for rows to be comparable at all; a
             mismatch means the bench's sweep itself changed, which needs a
             re-baseline, not a diff.

Metrics captured in the report are gated too, but only the thread-invariant
scan/IO counters (ppm.scan.*, ppm.source.*, ppm.apriori.level_scans):
tree shapes and merge orders legitimately vary with thread count.

Exit codes: 0 pass, 1 regression, 2 usage/input error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

CANONICAL = ["table1", "fig2", "parallel", "scan_io", "incremental", "dist"]

# Row fields whose change is always a regression.
EXACT_RE = re.compile(
    r"(scans|db_passes|passes|candidates|patterns|letters|segments"
    r"|instants|entries|hits|bytes_read|bound|frequent|f1|oracle_calls"
    r"|all_mined|anchor_found|num_periods|n_d|file_size|distinct|spurious"
    r"|maximal|reps|version)",
    re.IGNORECASE,
)
# Timing / throughput fields: noisy, advisory by default.
TIMING_RE = re.compile(
    r"(_ms$|_us$|_s$|_seconds$|speedup|per_s$|rate)", re.IGNORECASE
)
# Workload identity fields: must match for rows to be comparable.
IDENTITY_FIELDS = {
    "param", "value", "workload", "threads", "miner", "storage", "length",
    "period", "period_low", "period_high", "mpl", "max_pat_length", "name",
    "label", "num_f1", "allowed", "noise_mean", "group_size", "version",
    "shards", "extra_attempts",
}

# Counter prefixes that are thread-invariant and therefore gated exactly.
EXACT_METRIC_PREFIXES = (
    "ppm.scan.",
    "ppm.source.",
    "ppm.apriori.level_scans",
    "ppm.apriori.candidates_evaluated",
    "ppm.derivation.candidates_total",
)


class Gate:
    def __init__(self, strict_timings, timing_threshold):
        self.strict_timings = strict_timings
        self.timing_threshold = timing_threshold
        self.failures = []
        self.warnings = []

    def fail(self, msg):
        self.failures.append(msg)

    def warn(self, msg):
        self.warnings.append(msg)


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    rows = report.get("sections", {}).get("rows", "[]")
    if isinstance(rows, str):
        rows = json.loads(rows)
    return report, rows


def classify(field):
    if field in IDENTITY_FIELDS:
        return "identity"
    if TIMING_RE.search(field):
        return "timing"
    if EXACT_RE.search(field):
        return "exact"
    return "other"


def compare_rows(name, base_rows, cand_rows, gate):
    if len(base_rows) != len(cand_rows):
        gate.fail(
            f"{name}: row count changed {len(base_rows)} -> {len(cand_rows)} "
            "(sweep changed; re-baseline if intentional)"
        )
        return
    for i, (base, cand) in enumerate(zip(base_rows, cand_rows)):
        ident = {k: base.get(k) for k in IDENTITY_FIELDS if k in base}
        for key, base_value in base.items():
            if key not in cand:
                gate.fail(f"{name} row {i}: field '{key}' disappeared")
                continue
            cand_value = cand[key]
            kind = classify(key)
            if kind == "identity":
                if base_value != cand_value:
                    gate.fail(
                        f"{name} row {i}: identity field '{key}' changed "
                        f"{base_value!r} -> {cand_value!r} (sweep changed; "
                        "re-baseline if intentional)"
                    )
            elif kind == "exact":
                if base_value != cand_value:
                    gate.fail(
                        f"{name} row {i} {ident}: exact field '{key}' "
                        f"changed {base_value} -> {cand_value}"
                    )
            elif kind == "timing":
                check_timing(name, i, key, base_value, cand_value, gate)
        for key in cand:
            if key not in base:
                gate.warn(f"{name} row {i}: new field '{key}' (not in baseline)")


def check_timing(name, i, key, base_value, cand_value, gate):
    try:
        base_value = float(base_value)
        cand_value = float(cand_value)
    except (TypeError, ValueError):
        return
    if base_value <= 0:
        return
    ratio = cand_value / base_value
    if ratio > 1.0 + gate.timing_threshold:
        msg = (
            f"{name} row {i}: timing field '{key}' regressed "
            f"{base_value:.2f} -> {cand_value:.2f} ({ratio:.2f}x, "
            f"threshold {1.0 + gate.timing_threshold:.2f}x)"
        )
        if gate.strict_timings:
            gate.fail(msg)
        else:
            gate.warn(msg)


def compare_metrics(name, base_report, cand_report, gate):
    base_counters = base_report.get("metrics", {}).get("counters", {})
    cand_counters = cand_report.get("metrics", {}).get("counters", {})
    for key, base_value in base_counters.items():
        if not key.startswith(EXACT_METRIC_PREFIXES):
            continue
        cand_value = cand_counters.get(key)
        if cand_value is None:
            gate.fail(f"{name}: counter '{key}' disappeared")
        elif cand_value != base_value:
            gate.fail(
                f"{name}: counter '{key}' changed {base_value} -> {cand_value}"
            )
    for key in cand_counters:
        if key.startswith(EXACT_METRIC_PREFIXES) and key not in base_counters:
            gate.fail(
                f"{name}: new counter '{key}' = {cand_counters[key]} "
                "(extra pass? re-baseline if intentional)"
            )


def compare_file(name, base_path, cand_path, gate):
    base_report, base_rows = load_report(base_path)
    cand_report, cand_rows = load_report(cand_path)
    base_profile = base_report.get("meta", {}).get("profile")
    cand_profile = cand_report.get("meta", {}).get("profile")
    if base_profile != cand_profile:
        gate.fail(
            f"{name}: profile mismatch baseline={base_profile} "
            f"candidate={cand_profile}; reports are not comparable"
        )
        return
    compare_rows(name, base_rows, cand_rows, gate)
    compare_metrics(name, base_report, cand_report, gate)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory with baseline BENCH_*.json files")
    parser.add_argument("--candidate", required=True,
                        help="directory with candidate BENCH_*.json files")
    parser.add_argument("--benches", default=",".join(CANONICAL),
                        help="comma-separated bench names (default: %(default)s)")
    parser.add_argument("--strict-timings", action="store_true",
                        help="treat timing regressions as failures")
    parser.add_argument("--timing-threshold", type=float, default=0.5,
                        help="allowed fractional timing slowdown "
                             "(default: %(default)s = 50%%)")
    args = parser.parse_args()

    gate = Gate(args.strict_timings, args.timing_threshold)
    baseline_dir = Path(args.baseline)
    candidate_dir = Path(args.candidate)
    compared = 0
    for bench in [b for b in args.benches.split(",") if b]:
        base_path = baseline_dir / f"BENCH_{bench}.json"
        cand_path = candidate_dir / f"BENCH_{bench}.json"
        if not base_path.exists():
            print(f"error: missing baseline {base_path}", file=sys.stderr)
            return 2
        if not cand_path.exists():
            print(f"error: missing candidate {cand_path}", file=sys.stderr)
            return 2
        compare_file(bench, base_path, cand_path, gate)
        compared += 1

    for warning in gate.warnings:
        print(f"WARN  {warning}")
    for failure in gate.failures:
        print(f"FAIL  {failure}")
    if gate.failures:
        print(f"\nperf gate: FAILED ({len(gate.failures)} regression(s) "
              f"across {compared} report(s))")
        return 1
    print(f"perf gate: OK ({compared} report(s), "
          f"{len(gate.warnings)} timing warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
