#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ppm {
namespace {

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitSkipEmptyTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitSkipEmpty("a  b", ' '), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitSkipEmpty("  ", ' '), std::vector<std::string>{});
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(ParseUint64Test, ParsesValidNumbers) {
  uint64_t value = 0;
  EXPECT_TRUE(ParseUint64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsInvalid) {
  uint64_t value = 0;
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));
  EXPECT_FALSE(ParseUint64("12x", &value));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &value));  // Overflow.
}

}  // namespace
}  // namespace ppm
