#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ppm {
namespace {

TEST(CancelTokenTest, StartsUncancelledAndIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken original;
  CancelToken copy = original;
  original.Cancel();
  EXPECT_TRUE(copy.cancelled());

  CancelToken fresh;  // A new token owns fresh state.
  EXPECT_FALSE(fresh.cancelled());
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsVisible) {
  CancelToken token;
  std::thread other([token] { token.Cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), UINT64_MAX);
  EXPECT_FALSE(Deadline::Infinite().expired());
}

TEST(DeadlineTest, ZeroIsAlreadyExpired) {
  const Deadline deadline = Deadline::After(0);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 0u);
}

TEST(DeadlineTest, FutureDeadlineReportsRemaining) {
  const Deadline deadline = Deadline::After(60000);
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_ms(), 0u);
  EXPECT_LE(deadline.remaining_ms(), 60000u);
}

TEST(InterruptTest, DefaultNeverFires) {
  Interrupt interrupt;
  EXPECT_FALSE(interrupt.ShouldStop());
  EXPECT_TRUE(interrupt.Check().ok());
}

TEST(InterruptTest, CancelledTokenFires) {
  CancelToken token;
  Interrupt interrupt(token, Deadline::Infinite());
  EXPECT_FALSE(interrupt.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(interrupt.ShouldStop());
  EXPECT_EQ(interrupt.Check().code(), StatusCode::kCancelled);
}

TEST(InterruptTest, ExpiredDeadlineFires) {
  Interrupt interrupt(CancelToken(), Deadline::After(0));
  EXPECT_TRUE(interrupt.ShouldStop());
  EXPECT_EQ(interrupt.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(InterruptTest, CancellationWinsOverDeadline) {
  CancelToken token;
  token.Cancel();
  Interrupt interrupt(token, Deadline::After(0));
  EXPECT_EQ(interrupt.Check().code(), StatusCode::kCancelled);
}

Status ReturnIfInterrupted(const Interrupt& interrupt) {
  PPM_RETURN_IF_INTERRUPTED(interrupt);
  return Status::InvalidArgument("fell through");
}

TEST(InterruptTest, ReturnIfInterruptedMacro) {
  EXPECT_EQ(ReturnIfInterrupted(Interrupt()).code(),
            StatusCode::kInvalidArgument);  // Not interrupted: falls through.
  CancelToken token;
  token.Cancel();
  EXPECT_EQ(
      ReturnIfInterrupted(Interrupt(token, Deadline::Infinite())).code(),
      StatusCode::kCancelled);
}

TEST(InterruptTest, ConcurrentChecksAreSafe) {
  CancelToken token;
  const Interrupt interrupt(token, Deadline::After(60000));
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&interrupt, &token, i] {
      for (int n = 0; n < 1000; ++n) {
        (void)interrupt.ShouldStop();
        if (i == 0 && n == 500) token.Cancel();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_TRUE(interrupt.ShouldStop());
}

}  // namespace
}  // namespace ppm
