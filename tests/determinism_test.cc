// Determinism of the sharded miners: for a fixed input, min_conf, and
// thread count, repeated runs must produce byte-identical serialized
// results (same patterns, same canonical order, bit-equal counts and
// confidences) regardless of worker scheduling. Chunking is deterministic
// and per-chunk results merge in chunk order, so this must hold exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hitset_miner.h"
#include "core/multi_period.h"
#include "diff_harness.h"
#include "tsdb/series_source.h"

namespace ppm {
namespace {

using diff::DiffConfig;
using diff::MakeRandomSeries;
using diff::Serialize;
using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

DiffConfig BigConfig() {
  DiffConfig config;
  config.seed = 20260806;
  config.period = 12;
  config.num_features = 18;
  config.num_segments = 80;
  config.feature_prob = 0.45;
  config.min_confidence = 0.4;
  return config;
}

TEST(DeterminismTest, TenRunsAtEightThreadsAreByteIdentical) {
  const TimeSeries series = MakeRandomSeries(BigConfig());
  MiningOptions options;
  options.period = BigConfig().period;
  options.min_confidence = BigConfig().min_confidence;
  options.num_threads = 8;

  std::string reference;
  for (int run = 0; run < 10; ++run) {
    InMemorySeriesSource source(&series);
    const auto mined = MineHitSet(source, options);
    ASSERT_TRUE(mined.ok()) << mined.status();
    const std::string serialized = Serialize(*mined, series.symbols());
    if (run == 0) {
      reference = serialized;
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(serialized, reference) << "run " << run << " diverged";
    }
  }
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  const TimeSeries series = MakeRandomSeries(BigConfig());
  MiningOptions options;
  options.period = BigConfig().period;
  options.min_confidence = BigConfig().min_confidence;

  std::string reference;
  for (const uint32_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    InMemorySeriesSource source(&series);
    const auto mined = MineHitSet(source, options);
    ASSERT_TRUE(mined.ok()) << mined.status();
    const std::string serialized = Serialize(*mined, series.symbols());
    if (threads == 1) {
      reference = serialized;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(serialized, reference) << "threads=" << threads;
    }
  }
}

TEST(DeterminismTest, MultiPeriodMinersAreDeterministicAtEightThreads) {
  const TimeSeries series = MakeRandomSeries(BigConfig());
  MiningOptions options;
  options.min_confidence = BigConfig().min_confidence;
  options.num_threads = 8;

  for (const bool shared : {false, true}) {
    std::string reference;
    for (int run = 0; run < 3; ++run) {
      InMemorySeriesSource source(&series);
      const auto mined =
          shared ? MineMultiPeriodShared(source, 6, 14, options)
                 : MineMultiPeriodLooped(source, 6, 14, options);
      ASSERT_TRUE(mined.ok()) << mined.status();
      std::string serialized;
      for (const auto& [period, result] : mined->per_period) {
        serialized += "period " + std::to_string(period) + "\n";
        serialized += Serialize(result, series.symbols());
      }
      if (run == 0) {
        reference = serialized;
        ASSERT_FALSE(reference.empty());
      } else {
        ASSERT_EQ(serialized, reference)
            << (shared ? "shared" : "looped") << " run " << run;
      }
    }
  }
}

}  // namespace
}  // namespace ppm
