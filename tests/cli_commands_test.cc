#include "cli/commands.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tsdb/series_codec.h"
#include "util/log.h"

namespace ppm::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir();
    series_txt_ = dir_ + "/cli_series.txt";
    // Period-3 series, 4 segments (the hand series from the miner tests).
    std::ofstream out(series_txt_);
    out << "a\nb\nc\n"
           "a\nb\n\n"
           "a\n\nc\n"
           "d\nb\nc\n";
  }
  void TearDown() override { std::remove(series_txt_.c_str()); }

  int Run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string dir_;
  std::string series_txt_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage: ppm"), std::string::npos);
  EXPECT_EQ(Run({}), 2);
  EXPECT_EQ(Run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MineHitSet) {
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5"}),
            0)
      << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("patterns=6"), std::string::npos) << text;
  EXPECT_NE(text.find("a b *"), std::string::npos) << text;
  EXPECT_NE(text.find("scans=2"), std::string::npos) << text;
}

TEST_F(CliTest, MineWritesStatsJsonAndTrace) {
  const std::string stats_path = dir_ + "/cli_stats.json";
  const std::string trace_path = dir_ + "/cli_trace.json";
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--stats-json", stats_path,
                 "--trace-out", trace_path}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("wrote stats to"), std::string::npos);
  EXPECT_NE(out_.str().find("wrote trace to"), std::string::npos);

  std::stringstream stats;
  stats << std::ifstream(stats_path).rdbuf();
  const std::string report = stats.str();
  EXPECT_NE(report.find("\"run\":\"mine\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"algorithm\":\"hitset\""), std::string::npos);
  // MiningStats section and the matching source counters from the registry.
  EXPECT_NE(report.find("\"mining_stats\":{\"scans\":2"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"ppm.source.scans\":2"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"ppm.hitset.hits_inserted\":4"), std::string::npos)
      << report;

  std::stringstream trace;
  trace << std::ifstream(trace_path).rdbuf();
  const std::string events = trace.str();
  EXPECT_EQ(events.front(), '[');
  EXPECT_NE(events.find("\"name\":\"f1_scan\""), std::string::npos) << events;
  EXPECT_NE(events.find("\"name\":\"second_scan\""), std::string::npos)
      << events;
  EXPECT_NE(events.find("\"ph\":\"X\""), std::string::npos) << events;

  std::remove(stats_path.c_str());
  std::remove(trace_path.c_str());
}

TEST_F(CliTest, LogLevelFlagIsAcceptedEverywhere) {
  ASSERT_EQ(Run({"stats", "--input", series_txt_, "--log-level", "info"}), 0)
      << err_.str();
  EXPECT_EQ(Run({"stats", "--input", series_txt_, "--log-level", "loudest"}),
            2);
  EXPECT_NE(err_.str().find("log level"), std::string::npos) << err_.str();
  SetLogLevel(LogLevel::kWarn);  // Restore the default for other tests.
}

TEST_F(CliTest, MineAprioriAndMaximalAgree) {
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--algorithm", "apriori"}),
            0);
  EXPECT_NE(out_.str().find("patterns=6"), std::string::npos);

  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--algorithm", "maximal"}),
            0);
  EXPECT_NE(out_.str().find("patterns=3"), std::string::npos);
}

TEST_F(CliTest, MineMaximalFilterFlag) {
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--maximal"}),
            0);
  EXPECT_NE(out_.str().find("maximal patterns: 3"), std::string::npos);
}

TEST_F(CliTest, MineWithRules) {
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--rules", "0.5"}),
            0);
  EXPECT_NE(out_.str().find("=>"), std::string::npos);
}

TEST_F(CliTest, MineTopLimitsOutput) {
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--top", "2"}),
            0);
  EXPECT_NE(out_.str().find("more; use --top 0"), std::string::npos);
}

TEST_F(CliTest, MineRejectsBadFlags) {
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--perod", "3"}), 2);
  EXPECT_NE(err_.str().find("--perod"), std::string::npos);
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "0"}), 2);
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--algorithm", "fft"}),
            2);
  EXPECT_EQ(Run({"mine", "--period", "3"}), 2);  // Missing input.
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--budget-policy", "panic"}),
            2);
}

TEST_F(CliTest, ErrorLineIsStructured) {
  EXPECT_EQ(Run({"mine", "--period", "3"}), 2);
  // One stderr line carrying the status text plus code/exit fields.
  const std::string text = err_.str();
  EXPECT_NE(text.find("error: InvalidArgument"), std::string::npos) << text;
  EXPECT_NE(text.find("exit=2]"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1) << text;
}

TEST_F(CliTest, MineDeadlineExitsFive) {
  // An already-expired deadline must surface as DeadlineExceeded (exit 5),
  // never a hang or crash, at any thread count.
  for (const char* threads : {"1", "8"}) {
    EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                   "--min-conf", "0.5", "--threads", threads,
                   "--deadline-ms", "0"}),
              5)
        << err_.str();
    EXPECT_NE(err_.str().find("DeadlineExceeded"), std::string::npos)
        << err_.str();
  }
}

TEST_F(CliTest, AbortedMineStillWritesStatsJson) {
  // Partial-progress record: an interrupted run with --stats-json still
  // emits the report, with the failure recorded in its meta.
  const std::string stats_path = dir_ + "/cli_aborted_stats.json";
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--deadline-ms", "0", "--stats-json",
                 stats_path}),
            5)
      << err_.str();
  std::stringstream stats;
  stats << std::ifstream(stats_path).rdbuf();
  const std::string report = stats.str();
  EXPECT_NE(report.find("\"run\":\"mine\""), std::string::npos) << report;
  EXPECT_NE(report.find("DeadlineExceeded"), std::string::npos) << report;
  std::remove(stats_path.c_str());
}

TEST_F(CliTest, MineBudgetPolicies) {
  // A generous budget changes nothing; the flag itself must be accepted by
  // mine and scan. (Exhaustion-path exit code 6 is exercised at the library
  // level in fault_tolerance_test, where sub-MB budgets are expressible.)
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--memory-budget-mb", "100",
                 "--budget-policy", "fail"}),
            0)
      << err_.str();
  EXPECT_EQ(Run({"scan", "--input", series_txt_, "--period-low", "2",
                 "--period-high", "4", "--min-conf", "0.5",
                 "--memory-budget-mb", "100"}),
            0)
      << err_.str();
}

TEST_F(CliTest, ScanShared) {
  ASSERT_EQ(Run({"scan", "--input", series_txt_, "--period-low", "2",
                 "--period-high", "4", "--min-conf", "0.5"}),
            0)
      << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("scanned periods 2..4 in 2 scans"), std::string::npos)
      << text;
  EXPECT_NE(text.find("period 3:"), std::string::npos);
}

TEST_F(CliTest, ScanLooped) {
  ASSERT_EQ(Run({"scan", "--input", series_txt_, "--period-low", "2",
                 "--period-high", "4", "--min-conf", "0.5", "--method",
                 "looped"}),
            0);
  EXPECT_NE(out_.str().find("in 6 scans"), std::string::npos);
}

TEST_F(CliTest, GenerateStatsConvertMineRoundTrip) {
  const std::string bin = dir_ + "/cli_gen.bin";
  const std::string txt = dir_ + "/cli_gen.txt";
  ASSERT_EQ(Run({"generate", "--output", bin, "--length", "5000", "--period",
                 "20", "--max-pat-length", "3", "--num-f1", "5",
                 "--num-features", "20", "--seed", "3"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("wrote 5000 instants"), std::string::npos);
  EXPECT_NE(out_.str().find("planted max-pattern"), std::string::npos);

  ASSERT_EQ(Run({"stats", "--input", bin}), 0);
  EXPECT_NE(out_.str().find("instants:        5000"), std::string::npos);

  ASSERT_EQ(Run({"convert", "--input", bin, "--output", txt}), 0);
  ASSERT_EQ(Run({"stats", "--input", txt}), 0);
  EXPECT_NE(out_.str().find("instants:        5000"), std::string::npos);

  // Mining the generated file recovers the planted pattern family.
  ASSERT_EQ(Run({"mine", "--input", bin, "--period", "20", "--min-conf",
                 "0.8", "--algorithm", "maximal"}),
            0);
  EXPECT_NE(out_.str().find("f0 f1 f2"), std::string::npos) << out_.str();

  std::remove(bin.c_str());
  std::remove(txt.c_str());
}

TEST_F(CliTest, GenerateRejectsInvalidParams) {
  EXPECT_EQ(Run({"generate", "--output", dir_ + "/x.bin", "--period", "0"}), 2);
  EXPECT_EQ(Run({"generate", "--length", "100"}), 2);  // Missing output.
}

TEST_F(CliTest, SuggestRanksPlantedPeriod) {
  // Feature every 3rd line for 60 lines.
  const std::string path = dir_ + "/cli_suggest.txt";
  {
    std::ofstream out(path);
    for (int t = 0; t < 60; ++t) out << (t % 3 == 1 ? "tick\n" : "\n");
  }
  ASSERT_EQ(Run({"suggest", "--input", path, "--period-low", "2",
                 "--period-high", "10"}),
            0)
      << err_.str();
  // First data row should be period 3.
  EXPECT_NE(out_.str().find("\n3 "), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("tick@+1"), std::string::npos);

  ASSERT_EQ(Run({"suggest", "--input", path, "--period-low", "2",
                 "--period-high", "10", "--per-feature", "--top", "1"}),
            0);
  EXPECT_NE(out_.str().find("tick@+1"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CliTest, BucketizeEventsToSeries) {
  const std::string events = dir_ + "/cli_events.log";
  const std::string series = dir_ + "/cli_bucketized.txt";
  {
    std::ofstream out(events);
    out << "# comment\n0 login\n5 click\n25 login\n";
  }
  ASSERT_EQ(Run({"bucketize", "--events", events, "--output", series,
                 "--width", "10"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("bucketized 3 events into 3 instants"),
            std::string::npos)
      << out_.str();
  ASSERT_EQ(Run({"stats", "--input", series}), 0);
  EXPECT_NE(out_.str().find("instants:        3"), std::string::npos);
  std::remove(events.c_str());
  std::remove(series.c_str());
}

TEST_F(CliTest, BucketizeWithCalendarAnnotation) {
  const std::string events = dir_ + "/cli_events_cal.log";
  const std::string series = dir_ + "/cli_bucketized_cal.txt";
  {
    std::ofstream out(events);
    // Monday 1970-01-05 00:00 = 345600.
    out << "345600 x\n432000 y\n";
  }
  ASSERT_EQ(Run({"bucketize", "--events", events, "--output", series,
                 "--width", "86400", "--calendar", "dow"}),
            0)
      << err_.str();
  std::ifstream check(series);
  std::string contents((std::istreambuf_iterator<char>(check)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("dow0"), std::string::npos);  // Monday.
  EXPECT_NE(contents.find("dow1"), std::string::npos);  // Tuesday.
  std::remove(events.c_str());
  std::remove(series.c_str());
}

TEST_F(CliTest, BucketizeErrors) {
  EXPECT_EQ(Run({"bucketize", "--output", "/tmp/x.txt"}), 2);  // No events.
  const std::string events = dir_ + "/cli_events_bad.log";
  std::ofstream(events) << "notanumber foo\n";
  EXPECT_EQ(Run({"bucketize", "--events", events, "--output", "/tmp/x.txt"}),
            4);
  EXPECT_NE(err_.str().find("Corruption"), std::string::npos);
  std::remove(events.c_str());
}

TEST_F(CliTest, DiscretizeBinsAndMine) {
  const std::string values = dir_ + "/cli_values.txt";
  const std::string series = dir_ + "/cli_discretized.txt";
  {
    std::ofstream out(values);
    out << "# daily curve\n";
    for (int day = 0; day < 50; ++day) {
      out << "1.0\n9.0\n5.0\n";  // Low, high, mid: period 3.
    }
  }
  ASSERT_EQ(Run({"discretize", "--values", values, "--output", series,
                 "--bins", "3", "--method", "freq"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("discretized 150 values"), std::string::npos);

  ASSERT_EQ(Run({"mine", "--input", series, "--period", "3", "--min-conf",
                 "0.9"}),
            0);
  EXPECT_NE(out_.str().find("lvl0 lvl2 lvl1"), std::string::npos)
      << out_.str();
  std::remove(values.c_str());
  std::remove(series.c_str());
}

TEST_F(CliTest, DiscretizeMovement) {
  const std::string values = dir_ + "/cli_movement.txt";
  const std::string series = dir_ + "/cli_movement_series.txt";
  std::ofstream(values) << "1\n2\n1\n2\n1\n2\n";
  ASSERT_EQ(Run({"discretize", "--values", values, "--output", series,
                 "--movement", "--epsilon", "0.5"}),
            0)
      << err_.str();
  std::ifstream check(series);
  std::string contents((std::istreambuf_iterator<char>(check)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("up"), std::string::npos);
  EXPECT_NE(contents.find("down"), std::string::npos);
  std::remove(values.c_str());
  std::remove(series.c_str());
}

TEST_F(CliTest, DiscretizeErrors) {
  EXPECT_EQ(Run({"discretize", "--output", "/tmp/x.txt"}), 2);
  const std::string values = dir_ + "/cli_badvalues.txt";
  std::ofstream(values) << "1.5\nnot_a_number\n";
  EXPECT_EQ(Run({"discretize", "--values", values, "--output", "/tmp/x.txt"}),
            4);
  EXPECT_NE(err_.str().find("Corruption"), std::string::npos);
  std::remove(values.c_str());
}

TEST_F(CliTest, MineSaveThenApply) {
  const std::string patterns = dir_ + "/cli_patterns.txt";
  ASSERT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-conf", "0.5", "--save", patterns}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("saved 6 patterns"), std::string::npos);

  // Apply back onto the same series: confidences unchanged.
  ASSERT_EQ(Run({"apply", "--patterns", patterns, "--input", series_txt_}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("applied 6 patterns"), std::string::npos);
  EXPECT_NE(out_.str().find("(+0.0000)"), std::string::npos);

  // min-drop filters unchanged patterns away.
  ASSERT_EQ(Run({"apply", "--patterns", patterns, "--input", series_txt_,
                 "--min-drop", "0.1"}),
            0);
  EXPECT_EQ(out_.str().find("old="), std::string::npos) << out_.str();
  std::remove(patterns.c_str());
}

TEST_F(CliTest, ApplyErrors) {
  EXPECT_EQ(Run({"apply", "--input", series_txt_}), 2);  // No patterns.
  EXPECT_EQ(Run({"apply", "--patterns", "/no/such.txt", "--input",
                 series_txt_}),
            1);  // IoError.
}

TEST_F(CliTest, EvolveReportsWindows) {
  // 2 windows of 6 instants each over the 12-instant hand series.
  ASSERT_EQ(Run({"evolve", "--input", series_txt_, "--period", "3",
                 "--window", "6", "--min-conf", "0.5"}),
            0)
      << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("2 windows of 6 instants"), std::string::npos) << text;
  EXPECT_NE(text.find("most stable patterns"), std::string::npos);
}

TEST_F(CliTest, DbLifecycle) {
  const std::string db_dir = dir_ + "/cli_db";
  std::filesystem::remove_all(db_dir);

  // Empty list.
  ASSERT_EQ(Run({"db", "list", "--dir", db_dir}), 0) << err_.str();
  EXPECT_NE(out_.str().find("0 series"), std::string::npos);

  // Put the hand series, list, export, drop.
  ASSERT_EQ(Run({"db", "put", "--dir", db_dir, "--name", "hand", "--input",
                 series_txt_}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("stored 12 instants"), std::string::npos);

  ASSERT_EQ(Run({"db", "list", "--dir", db_dir}), 0);
  EXPECT_NE(out_.str().find("hand  (12 instants"), std::string::npos)
      << out_.str();

  const std::string exported = dir_ + "/cli_db_export.txt";
  ASSERT_EQ(Run({"db", "get", "--dir", db_dir, "--name", "hand", "--output",
                 exported}),
            0);
  ASSERT_EQ(Run({"stats", "--input", exported}), 0);
  EXPECT_NE(out_.str().find("instants:        12"), std::string::npos);

  ASSERT_EQ(Run({"db", "drop", "--dir", db_dir, "--name", "hand"}), 0);
  ASSERT_EQ(Run({"db", "list", "--dir", db_dir}), 0);
  EXPECT_NE(out_.str().find("0 series"), std::string::npos);

  std::remove(exported.c_str());
  std::filesystem::remove_all(db_dir);
}

TEST_F(CliTest, DbErrors) {
  const std::string db_dir = dir_ + "/cli_db_err";
  EXPECT_EQ(Run({"db", "--dir", db_dir}), 2);  // No action.
  EXPECT_EQ(Run({"db", "frob", "--dir", db_dir}), 2);
  EXPECT_EQ(Run({"db", "list"}), 2);  // No dir.
  EXPECT_EQ(Run({"db", "get", "--dir", db_dir, "--name", "missing",
                 "--output", "/tmp/x.txt"}),
            3);
  EXPECT_NE(err_.str().find("NotFound"), std::string::npos);
  std::filesystem::remove_all(db_dir);
}

TEST_F(CliTest, StatsMissingFile) {
  EXPECT_EQ(Run({"stats", "--input", "/no/such/file.bin"}), 1);
  EXPECT_NE(err_.str().find("IoError"), std::string::npos);
}

TEST_F(CliTest, MisspelledMineFlagExitsTwoWithSuggestion) {
  // The ISSUE 8 satellite: a typo'd --min-cof must be rejected up front
  // (kInvalidArgument, exit 2) with a nearest-flag hint, never silently
  // ignored in favor of the default confidence.
  EXPECT_EQ(Run({"mine", "--input", series_txt_, "--period", "3",
                 "--min-cof", "0.5"}),
            2);
  EXPECT_NE(err_.str().find("unknown flag: --min-cof"), std::string::npos)
      << err_.str();
  EXPECT_NE(err_.str().find("did you mean --min-conf?"), std::string::npos)
      << err_.str();
}

TEST(ExitCodeTest, EveryStatusCodeMapsToItsDocumentedExit) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 1);  // Never called on OK.
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::AlreadyExists("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::OutOfRange("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::IoError("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::Corruption("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 6);
}

TEST(UsageTest, EveryDispatchedCommandIsDocumented) {
  const std::string usage = UsageText();
  for (const std::string& command : CommandNames()) {
    EXPECT_NE(usage.find("  " + command), std::string::npos)
        << "command '" << command << "' missing from UsageText()";
  }
}

TEST_F(CliTest, UnknownCommandSuggestsUsage) {
  // Every name in CommandNames() actually dispatches (no exit-2 "unknown
  // command"); bogus names keep failing.
  for (const std::string& command : CommandNames()) {
    Run({command});
    EXPECT_EQ(err_.str().find("unknown command"), std::string::npos)
        << command;
  }
  EXPECT_EQ(Run({"versionn"}), 2);
}

TEST_F(CliTest, VersionPrintsBuildFingerprint) {
  ASSERT_EQ(Run({"version"}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_EQ(text.rfind("ppm ", 0), 0u) << text;
  EXPECT_NE(text.find("compiler:"), std::string::npos) << text;
  EXPECT_NE(text.find("build:"), std::string::npos) << text;
  EXPECT_NE(text.find("sanitizer:"), std::string::npos) << text;
  EXPECT_NE(text.find("assertions:"), std::string::npos) << text;
  // `--version` is an alias.
  ASSERT_EQ(Run({"--version"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), text);
  // Extra flags are rejected like any other command's.
  EXPECT_EQ(Run({"version", "--frobnicate"}), 2);
}

}  // namespace
}  // namespace ppm::cli
