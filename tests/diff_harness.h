#ifndef PPM_TESTS_DIFF_HARNESS_H_
#define PPM_TESTS_DIFF_HARNESS_H_

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/hitset_miner.h"
#include "core/letter_space.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "tsdb/time_series.h"
#include "util/random.h"

namespace ppm::diff {

/// One randomized differential-testing workload, fully determined by `seed`
/// (log the seed and any failure is reproducible).
struct DiffConfig {
  uint64_t seed = 0;
  uint32_t period = 4;
  uint32_t num_features = 5;
  uint32_t num_segments = 12;
  double feature_prob = 0.5;
  double min_confidence = 0.5;
};

/// Derives a workload from a seed. Dimensions are chosen so the observed
/// letter count stays within `MineExhaustive`'s enumeration limit
/// (`period * num_features <= 21`).
inline DiffConfig RandomDiffConfig(uint64_t seed) {
  Rng rng(seed * 2654435761u + 1);
  DiffConfig config;
  config.seed = seed;
  config.period = 3 + static_cast<uint32_t>(rng.NextBelow(5));  // 3..7
  config.num_features = 2 + static_cast<uint32_t>(
                                rng.NextBelow(21 / config.period - 1));
  config.num_segments = 6 + static_cast<uint32_t>(rng.NextBelow(25));
  config.feature_prob = 0.2 + 0.5 * rng.NextDouble();
  config.min_confidence = 0.25 + 0.5 * rng.NextDouble();
  return config;
}

/// Random series with positionally correlated features (feature `f` fires
/// at offset `f % period` with elevated probability) plus a trailing
/// partial segment, which every miner must ignore.
inline tsdb::TimeSeries MakeRandomSeries(const DiffConfig& config) {
  Rng rng(config.seed);
  tsdb::TimeSeries series;
  for (uint32_t f = 0; f < config.num_features; ++f) {
    series.symbols().Intern("f" + std::to_string(f));
  }
  const uint64_t length =
      uint64_t{config.num_segments} * config.period + config.period / 2;
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    for (uint32_t f = 0; f < config.num_features; ++f) {
      const bool aligned = (t % config.period) == (f % config.period);
      const double p =
          aligned ? config.feature_prob : config.feature_prob / 4;
      if (rng.NextBool(p)) instant.Set(f);
    }
    series.Append(std::move(instant));
  }
  return series;
}

/// Pattern -> count map for order-insensitive cross-miner comparison.
inline std::map<std::string, uint64_t> CountMap(
    const MiningResult& result, const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : result.patterns()) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

/// Canonical byte-exact serialization of a result: one line per pattern in
/// the result's own (canonicalized) order, with the count and the full
/// round-trip representation of the confidence. Two runs that produce the
/// same patterns in the same order with bit-equal confidences serialize
/// identically.
inline std::string Serialize(const MiningResult& result,
                             const tsdb::SymbolTable& symbols) {
  std::string out;
  for (const FrequentPattern& entry : result.patterns()) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "\t%llu\t%.17g\n",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out += entry.pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

/// The `count` whole segments of `instants` starting at segment `start`,
/// as a standalone series sharing `symbols` -- the "effective window" a
/// windowed continuous miner claims to represent, rebuilt from a shadow
/// log of everything ever appended.
inline tsdb::TimeSeries SliceSegments(
    const std::vector<tsdb::FeatureSet>& instants,
    const tsdb::SymbolTable& symbols, uint32_t period, uint64_t start,
    uint64_t count) {
  tsdb::TimeSeries window;
  window.symbols() = symbols;
  const uint64_t begin = start * period;
  const uint64_t end = (start + count) * period;
  for (uint64_t t = begin; t < end; ++t) window.Append(instants[t]);
  return window;
}

/// From-scratch batch reference for an incremental snapshot: mines `window`
/// with `MineHitSet`, restricting the F1 letter space to exactly `seeded`
/// (the continuous miner tracks only its seeded letters, so the batch side
/// must look at the same alphabet for the results to be comparable).
/// Everything downstream of F1 -- thresholds, hit masks, derivation,
/// confidence division -- runs the ordinary batch path.
inline Result<MiningResult> BatchMineWindow(const tsdb::TimeSeries& window,
                                            const MiningOptions& options,
                                            const std::vector<Letter>& seeded,
                                            uint32_t threads) {
  MiningOptions batch = options;
  batch.num_threads = threads;
  const std::set<Letter> space(seeded.begin(), seeded.end());
  batch.letter_filter = [&space](uint32_t position, tsdb::FeatureId feature) {
    return space.count(Letter{position, feature}) > 0;
  };
  tsdb::InMemorySeriesSource source(&window);
  return MineHitSet(source, batch);
}

}  // namespace ppm::diff

#endif  // PPM_TESTS_DIFF_HARNESS_H_
