#include "core/maximal.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "tsdb/time_series.h"

namespace ppm {
namespace {

FrequentPattern Make(const Pattern& pattern, uint64_t count) {
  FrequentPattern out;
  out.pattern = pattern;
  out.count = count;
  out.confidence = 0.5;
  return out;
}

TEST(MaximalTest, PaperExample) {
  // Section 4: frequent set {a*b*, ab**, *c*a} -> maximal set is itself
  // when none contains another; subpatterns get filtered.
  Pattern ab(4), a(4), b(4), cxa(4);
  ab.AddLetter(0, 0);
  ab.AddLetter(2, 1);
  a.AddLetter(0, 0);
  b.AddLetter(2, 1);
  cxa.AddLetter(1, 2);
  cxa.AddLetter(3, 0);

  MiningResult result;
  result.patterns() = {Make(a, 9), Make(b, 8), Make(ab, 6), Make(cxa, 7)};
  result.Canonicalize();

  const auto maximal = MaximalPatterns(result);
  ASSERT_EQ(maximal.size(), 2u);
  // a and b are subsumed by ab; cxa stands alone.
  bool has_ab = false, has_cxa = false;
  for (const auto& entry : maximal) {
    if (entry.pattern == ab) has_ab = true;
    if (entry.pattern == cxa) has_cxa = true;
  }
  EXPECT_TRUE(has_ab);
  EXPECT_TRUE(has_cxa);
}

TEST(MaximalTest, EmptyInput) {
  MiningResult result;
  EXPECT_TRUE(MaximalPatterns(result).empty());
}

TEST(MaximalTest, SingletonIsMaximal) {
  Pattern p(2);
  p.AddLetter(0, 0);
  MiningResult result;
  result.patterns() = {Make(p, 3)};
  const auto maximal = MaximalPatterns(result);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].count, 3u);
}

TEST(MaximalTest, MultiLetterPositionSubsumption) {
  // *{b1,b2} subsumes *b1 and *b2.
  Pattern both(2), b1(2), b2(2);
  both.AddLetter(1, 1);
  both.AddLetter(1, 2);
  b1.AddLetter(1, 1);
  b2.AddLetter(1, 2);
  MiningResult result;
  result.patterns() = {Make(b1, 5), Make(b2, 5), Make(both, 4)};
  result.Canonicalize();
  const auto maximal = MaximalPatterns(result);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].pattern, both);
}

TEST(HasProperSuperpatternTest, SelfIsExcluded) {
  Pattern p(2);
  p.AddLetter(0, 0);
  std::vector<FrequentPattern> set = {Make(p, 1)};
  EXPECT_FALSE(HasProperSuperpattern(p, set));
}

TEST(MaximalTest, EndToEndFromMiner) {
  // Mined result: letters a,b,c and pairs ab, ac, bc (from the hand series
  // of the miner tests) -- maximal set is exactly the three pairs.
  tsdb::TimeSeries series;
  const char* segments[4][3] = {{"a", "b", "c"},
                                {"a", "b", ""},
                                {"a", "", "c"},
                                {"d", "b", "c"}};
  for (const auto& segment : segments) {
    for (const char* name : segment) {
      if (*name) {
        series.AppendNamed({name});
      } else {
        series.AppendEmpty();
      }
    }
  }
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());
  const auto maximal = MaximalPatterns(*result);
  EXPECT_EQ(maximal.size(), 3u);
  for (const auto& entry : maximal) {
    EXPECT_EQ(entry.pattern.LetterCount(), 2u);
  }
}

}  // namespace
}  // namespace ppm
