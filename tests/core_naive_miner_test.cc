#include "core/naive_miner.h"

#include <gtest/gtest.h>

#include "tsdb/series_source.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

TimeSeries MakeTinySeries() {
  TimeSeries series;
  // Period 2, 3 segments: (a b) (a b) (a -).
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  series.AppendNamed({"a"});
  series.AppendNamed({});
  return series;
}

TEST(ExhaustiveTest, CountsFromDefinition) {
  TimeSeries series = MakeTinySeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;  // min_count = 2.
  auto result = MineExhaustive(source, options);
  ASSERT_TRUE(result.ok()) << result.status();

  // a@0 count 3, b@1 count 2, ab count 2.
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->patterns()[0].pattern.LetterCount(), 1u);
  auto ab = Pattern::Parse("a b", &series.symbols());
  ASSERT_TRUE(ab.ok());
  const FrequentPattern* found = result->Find(*ab);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 2u);
}

TEST(ExhaustiveTest, RefusesTooManyLetters) {
  TimeSeries series;
  for (int t = 0; t < 20; ++t) {
    series.AppendNamed({("f" + std::to_string(t)).c_str()});
  }
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 10;
  options.min_confidence = 0.4;
  // 20 distinct letters observed > cap of 4.
  auto result = MineExhaustive(source, options, /*max_total_letters=*/4);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExhaustiveTest, RefusesCapAbove63) {
  TimeSeries series = MakeTinySeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  auto result = MineExhaustive(source, options, /*max_total_letters=*/64);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExhaustiveTest, RespectsMaxLetters) {
  TimeSeries series = MakeTinySeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  options.max_letters = 1;
  auto result = MineExhaustive(source, options);
  ASSERT_TRUE(result.ok());
  for (const auto& entry : result->patterns()) {
    EXPECT_EQ(entry.pattern.LetterCount(), 1u);
  }
}

TEST(NaiveLevelwiseTest, MatchesExhaustiveOnTinyInput) {
  TimeSeries series = MakeTinySeries();
  InMemorySeriesSource s1(&series), s2(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  auto exhaustive = MineExhaustive(s1, options);
  auto levelwise = MineNaiveLevelwise(s2, options);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(levelwise.ok());
  ASSERT_EQ(exhaustive->size(), levelwise->size());
  for (size_t i = 0; i < exhaustive->size(); ++i) {
    EXPECT_EQ(exhaustive->patterns()[i].pattern,
              levelwise->patterns()[i].pattern);
    EXPECT_EQ(exhaustive->patterns()[i].count, levelwise->patterns()[i].count);
  }
}

TEST(NaiveLevelwiseTest, InvalidOptionsPropagate) {
  TimeSeries series = MakeTinySeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 0;
  EXPECT_FALSE(MineNaiveLevelwise(source, options).ok());
}

}  // namespace
}  // namespace ppm
