#include "core/max_subpattern_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/hit_store.h"
#include "util/random.h"

namespace ppm {
namespace {

Bitset MaskOf(std::initializer_list<uint32_t> bits) {
  Bitset mask;
  for (uint32_t bit : bits) mask.Set(bit);
  return mask;
}

Bitset FullMask(uint32_t n) {
  Bitset mask;
  for (uint32_t bit = 0; bit < n; ++bit) mask.Set(bit);
  return mask;
}

TEST(MaxSubpatternTreeTest, StartsWithRootOnly) {
  MaxSubpatternTree tree(FullMask(4), 4);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_hits(), 0u);
  EXPECT_EQ(tree.total_hit_count(), 0u);
}

TEST(MaxSubpatternTreeTest, InsertRootHit) {
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(FullMask(4));
  tree.Insert(FullMask(4));
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_hits(), 1u);
  EXPECT_EQ(tree.total_hit_count(), 2u);
  EXPECT_EQ(tree.CountSuperpatterns(MaskOf({0, 3})), 2u);
}

TEST(MaxSubpatternTreeTest, InsertCreatesPathNodesWithZeroCount) {
  // Paper Section 4: inserting *b1*d* under C_max = a{b1,b2}*d* creates the
  // node with count 1 plus missing ancestors with count 0.
  // Letters: 0=a@0, 1=b1@1, 2=b2@1, 3=d@3. *b1*d* = {1,3}, missing {0,2}.
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(MaskOf({1, 3}));
  // Path: root -> remove 0 -> remove 2. Creates 2 new nodes.
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_hits(), 1u);

  // Interior node {1,2,3} exists with count 0.
  std::map<std::vector<uint32_t>, uint64_t> nodes;
  tree.ForEachNode([&nodes](const Bitset& mask, uint64_t count) {
    nodes[mask.ToVector()] = count;
  });
  ASSERT_TRUE(nodes.contains({1, 2, 3}));
  EXPECT_EQ((nodes[{1, 2, 3}]), 0u);
  ASSERT_TRUE(nodes.contains({1, 3}));
  EXPECT_EQ((nodes[{1, 3}]), 1u);
}

TEST(MaxSubpatternTreeTest, ReinsertIncrementsExistingNode) {
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(MaskOf({1, 3}));
  tree.Insert(MaskOf({1, 3}));
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_hits(), 1u);
  EXPECT_EQ(tree.total_hit_count(), 2u);
}

TEST(MaxSubpatternTreeTest, SharedPrefixPathsShareNodes) {
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(MaskOf({1, 3}));  // missing {0,2}
  tree.Insert(MaskOf({1, 2}));  // missing {0,3}
  // Both paths go through node {1,2,3} (missing 0).
  std::map<std::vector<uint32_t>, uint64_t> nodes;
  tree.ForEachNode([&nodes](const Bitset& mask, uint64_t count) {
    nodes[mask.ToVector()] = count;
  });
  EXPECT_EQ(tree.num_nodes(), 4u);  // root, {1,2,3}, {1,3}, {1,2}.
  EXPECT_TRUE(nodes.contains({1, 2, 3}));
}

TEST(MaxSubpatternTreeTest, CountSuperpatternsSumsAncestors) {
  // Mirror of the paper's Example 4.3 flavor: several hits, counts derived
  // by summing over superpattern nodes.
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(FullMask(4));          // a{b1,b2}*d*      x10
  for (int i = 0; i < 9; ++i) tree.Insert(FullMask(4));
  tree.Insert(MaskOf({1, 2, 3}));    // *{b1,b2}*d*      x50
  for (int i = 0; i < 49; ++i) tree.Insert(MaskOf({1, 2, 3}));
  tree.Insert(MaskOf({0, 1, 3}));    // ab1*d*           x8
  for (int i = 0; i < 7; ++i) tree.Insert(MaskOf({0, 1, 3}));

  // freq(*b1*d*) = hits of all supersets of {1,3}: 10 + 50 + 8 = 68.
  EXPECT_EQ(tree.CountSuperpatterns(MaskOf({1, 3})), 68u);
  // freq(a***?) -- letter {0}: 10 + 8 = 18.
  EXPECT_EQ(tree.CountSuperpatterns(MaskOf({0})), 18u);
  // freq(a{b1,b2}*d*) = 10.
  EXPECT_EQ(tree.CountSuperpatterns(FullMask(4)), 10u);
  // freq of empty mask = all hits.
  EXPECT_EQ(tree.CountSuperpatterns(Bitset()), 68u);
}

TEST(MaxSubpatternTreeTest, ReachableAncestorHits) {
  MaxSubpatternTree tree(FullMask(4), 4);
  tree.Insert(FullMask(4));
  tree.Insert(MaskOf({1, 2, 3}));
  tree.Insert(MaskOf({1, 3}));

  const auto ancestors = tree.ReachableAncestorHits(MaskOf({1, 3}));
  // Proper superpatterns with nonzero count: full and {1,2,3}.
  EXPECT_EQ(ancestors.size(), 2u);
  for (const Bitset& mask : ancestors) {
    EXPECT_TRUE(MaskOf({1, 3}).IsSubsetOf(mask));
    EXPECT_NE(mask, MaskOf({1, 3}));
  }
}

TEST(MaxSubpatternTreeTest, NodeCountBoundedByHitsTimesLetters) {
  // Section 4 analysis: total nodes < n_d * |H| (+1 for the root).
  Rng rng(321);
  const uint32_t n = 10;
  MaxSubpatternTree tree(FullMask(n), n);
  for (int i = 0; i < 200; ++i) {
    Bitset mask;
    for (uint32_t bit = 0; bit < n; ++bit) {
      if (rng.NextBool(0.5)) mask.Set(bit);
    }
    if (mask.Count() < 2) continue;
    tree.Insert(mask);
  }
  EXPECT_LE(tree.num_nodes(), uint64_t{n} * tree.num_hits() + 1);
}

// Differential test: tree counting must agree with a flat multiset.
TEST(MaxSubpatternTreePropertyTest, MatchesFlatCounting) {
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    const uint32_t n = 3 + static_cast<uint32_t>(rng.NextBelow(8));
    MaxSubpatternTree tree(FullMask(n), n);
    HashHitStore flat;
    std::vector<Bitset> hits;
    const int num_hits = 1 + static_cast<int>(rng.NextBelow(60));
    for (int i = 0; i < num_hits; ++i) {
      Bitset mask;
      for (uint32_t bit = 0; bit < n; ++bit) {
        if (rng.NextBool(0.4)) mask.Set(bit);
      }
      if (mask.Count() < 2) continue;
      tree.Insert(mask);
      flat.AddHit(mask);
      hits.push_back(mask);
    }
    // Check a sample of query masks, including empty and full.
    for (int q = 0; q < 40; ++q) {
      Bitset query;
      for (uint32_t bit = 0; bit < n; ++bit) {
        if (rng.NextBool(0.3)) query.Set(bit);
      }
      uint64_t expected = 0;
      for (const Bitset& hit : hits) {
        if (query.IsSubsetOf(hit)) ++expected;
      }
      EXPECT_EQ(tree.CountSuperpatterns(query), expected);
      EXPECT_EQ(flat.CountSuperpatterns(query), expected);
    }
    EXPECT_EQ(tree.CountSuperpatterns(Bitset()), tree.total_hit_count());
    EXPECT_EQ(tree.num_hits(), flat.num_entries());
  }
}

TEST(HitStoreTest, FactoryDispatch) {
  const Bitset full = FullMask(3);
  auto tree_store = MakeHitStore(HitStoreKind::kMaxSubpatternTree, full, 3);
  auto hash_store = MakeHitStore(HitStoreKind::kHashTable, full, 3);
  tree_store->AddHit(MaskOf({0, 1}));
  hash_store->AddHit(MaskOf({0, 1}));
  EXPECT_EQ(tree_store->CountSuperpatterns(MaskOf({0})), 1u);
  EXPECT_EQ(hash_store->CountSuperpatterns(MaskOf({0})), 1u);
  EXPECT_EQ(tree_store->num_entries(), 1u);
  EXPECT_EQ(hash_store->num_entries(), 1u);
  // The tree also reports interior nodes.
  EXPECT_GE(tree_store->num_units(), tree_store->num_entries());
}

}  // namespace
}  // namespace ppm
