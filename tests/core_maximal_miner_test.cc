#include "core/maximal_miner.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/maximal.h"
#include "core/miner.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

std::map<std::string, uint64_t> AsCountMap(
    const std::vector<FrequentPattern>& patterns,
    const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : patterns) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

TEST(MaximalMinerTest, HandSeries) {
  // (a b c) (a b -) (a - c) (d b c): maximal at conf 0.5 are ab, ac, bc.
  TimeSeries series;
  const char* grid[4][3] = {{"a", "b", "c"},
                            {"a", "b", ""},
                            {"a", "", "c"},
                            {"d", "b", "c"}};
  for (const auto& segment : grid) {
    for (const char* name : segment) {
      if (*name) {
        series.AppendNamed({name});
      } else {
        series.AppendEmpty();
      }
    }
  }
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  InMemorySeriesSource source(&series);
  auto result = MineMaximalHitSet(source, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 3u);
  for (const auto& entry : result->patterns()) {
    EXPECT_EQ(entry.pattern.LetterCount(), 2u);
    EXPECT_EQ(entry.count, 2u);
  }
  EXPECT_EQ(result->stats().scans, 2u);
}

TEST(MaximalMinerTest, SingleMaximalLetter) {
  TimeSeries series;
  for (int i = 0; i < 4; ++i) {
    series.AppendNamed({"x"});
    series.AppendEmpty();
  }
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 1.0;
  InMemorySeriesSource source(&series);
  auto result = MineMaximalHitSet(source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->patterns()[0].pattern.LetterCount(), 1u);
  EXPECT_EQ(result->patterns()[0].count, 4u);
}

TEST(MaximalMinerTest, EmptyWhenNothingFrequent) {
  TimeSeries series;
  series.AppendEmpty(20);
  MiningOptions options;
  options.period = 4;
  options.min_confidence = 0.5;
  InMemorySeriesSource source(&series);
  auto result = MineMaximalHitSet(source, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MaximalMinerTest, CorrelatedExplosionStaysCheap) {
  // 16 perfectly correlated letters: the full frequent set has 2^16 - 1
  // members, but there is exactly one maximal pattern. The lookahead must
  // find it with a number of oracle calls that is tiny compared to 2^16.
  TimeSeries series;
  for (int f = 0; f < 16; ++f) series.symbols().Intern("f" + std::to_string(f));
  Rng rng(5);
  for (int segment = 0; segment < 40; ++segment) {
    const bool on = rng.NextBool(0.9);
    for (uint32_t position = 0; position < 16; ++position) {
      tsdb::FeatureSet instant;
      if (on) instant.Set(position);
      series.Append(std::move(instant));
    }
  }
  MiningOptions options;
  options.period = 16;
  options.min_confidence = 0.7;
  InMemorySeriesSource source(&series);
  auto result = MineMaximalHitSet(source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->patterns()[0].pattern.LetterCount(), 16u);
  EXPECT_LT(result->stats().candidates_evaluated, 100u);
}

TEST(MaximalMinerTest, MaxLettersCapsSearch) {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.AppendNamed({"a"});
    series.AppendNamed({"b"});
    series.AppendNamed({"c"});
  }
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.9;
  options.max_letters = 2;
  InMemorySeriesSource source(&series);
  auto result = MineMaximalHitSet(source, options);
  ASSERT_TRUE(result.ok());
  // abc is frequent but capped out; maximal-within-cap are the 3 pairs.
  EXPECT_EQ(result->size(), 3u);
  for (const auto& entry : result->patterns()) {
    EXPECT_EQ(entry.pattern.LetterCount(), 2u);
  }
}

TEST(MaximalMinerTest, InvalidOptionsRejected) {
  TimeSeries series;
  series.AppendEmpty(10);
  MiningOptions options;
  options.period = 0;
  InMemorySeriesSource source(&series);
  EXPECT_FALSE(MineMaximalHitSet(source, options).ok());
}

struct RandomParams {
  uint64_t seed;
  uint32_t period;
  uint32_t num_features;
  double density;
  double min_confidence;
};

class MaximalMinerPropertyTest
    : public ::testing::TestWithParam<RandomParams> {};

TEST_P(MaximalMinerPropertyTest, MatchesFilteredFullEnumeration) {
  const RandomParams& params = GetParam();
  Rng rng(params.seed);
  TimeSeries series;
  for (uint32_t f = 0; f < params.num_features; ++f) {
    series.symbols().Intern("f" + std::to_string(f));
  }
  for (int t = 0; t < 240; ++t) {
    tsdb::FeatureSet instant;
    for (uint32_t f = 0; f < params.num_features; ++f) {
      const bool aligned =
          (static_cast<uint32_t>(t) % params.period) == (f % params.period);
      if (rng.NextBool(aligned ? params.density : params.density / 3)) {
        instant.Set(f);
      }
    }
    series.Append(std::move(instant));
  }

  MiningOptions options;
  options.period = params.period;
  options.min_confidence = params.min_confidence;

  InMemorySeriesSource full_source(&series);
  auto full = Mine(full_source, options);
  ASSERT_TRUE(full.ok());
  const auto expected = MaximalPatterns(*full);

  InMemorySeriesSource direct_source(&series);
  auto direct = MineMaximalHitSet(direct_source, options);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(AsCountMap(direct->patterns(), series.symbols()),
            AsCountMap(expected, series.symbols()));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, MaximalMinerPropertyTest,
    ::testing::Values(RandomParams{1, 3, 5, 0.8, 0.5},
                      RandomParams{2, 4, 4, 0.7, 0.4},
                      RandomParams{3, 5, 6, 0.9, 0.6},
                      RandomParams{4, 6, 3, 0.85, 0.5},
                      RandomParams{5, 2, 8, 0.6, 0.35},
                      RandomParams{6, 8, 4, 0.9, 0.7},
                      RandomParams{7, 4, 7, 0.75, 0.45},
                      RandomParams{8, 10, 3, 0.9, 0.6}),
    [](const auto& info) { return "seed" + std::to_string(info.param.seed); });

}  // namespace
}  // namespace ppm
