#include "tsdb/series_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tsdb/series_codec.h"

namespace ppm::tsdb {
namespace {

TimeSeries MakeSeries(int length) {
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  for (int t = 0; t < length; ++t) {
    FeatureSet instant;
    if (t % 2 == 0) instant.Set(0);
    if (t % 3 == 0) instant.Set(1);
    series.Append(std::move(instant));
  }
  return series;
}

TEST(InMemorySourceTest, DeliversAllInstantsInOrder) {
  const TimeSeries series = MakeSeries(10);
  InMemorySeriesSource source(&series);
  EXPECT_EQ(source.length(), 10u);

  ASSERT_TRUE(source.StartScan().ok());
  FeatureSet instant;
  uint64_t t = 0;
  while (source.Next(&instant)) {
    EXPECT_EQ(instant, series.at(t));
    ++t;
  }
  EXPECT_TRUE(source.status().ok());
  EXPECT_EQ(t, 10u);
}

TEST(InMemorySourceTest, CountsScansAndInstants) {
  const TimeSeries series = MakeSeries(5);
  InMemorySeriesSource source(&series);
  FeatureSet instant;
  for (int scan = 0; scan < 3; ++scan) {
    ASSERT_TRUE(source.StartScan().ok());
    while (source.Next(&instant)) {
    }
  }
  EXPECT_EQ(source.stats().scans, 3u);
  EXPECT_EQ(source.stats().instants_read, 15u);
  source.ResetStats();
  EXPECT_EQ(source.stats().scans, 0u);
  EXPECT_EQ(source.stats().instants_read, 0u);
}

TEST(InMemorySourceTest, RestartMidScan) {
  const TimeSeries series = MakeSeries(6);
  InMemorySeriesSource source(&series);
  FeatureSet instant;
  ASSERT_TRUE(source.StartScan().ok());
  ASSERT_TRUE(source.Next(&instant));
  ASSERT_TRUE(source.Next(&instant));
  // Restart; should deliver from the beginning again.
  ASSERT_TRUE(source.StartScan().ok());
  ASSERT_TRUE(source.Next(&instant));
  EXPECT_EQ(instant, series.at(0));
}

TEST(InMemorySourceTest, ExposesSymbols) {
  const TimeSeries series = MakeSeries(1);
  InMemorySeriesSource source(&series);
  EXPECT_EQ(source.symbols().size(), 2u);
}

class FileSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/ppm_source_test.bin";
    series_ = MakeSeries(100);
    ASSERT_TRUE(WriteBinarySeries(series_, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TimeSeries series_;
};

TEST_F(FileSourceTest, MatchesInMemoryStream) {
  auto source = FileSeriesSource::Open(path_);
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_EQ((*source)->length(), series_.length());
  EXPECT_EQ((*source)->symbols().size(), series_.symbols().size());

  ASSERT_TRUE((*source)->StartScan().ok());
  FeatureSet instant;
  uint64_t t = 0;
  while ((*source)->Next(&instant)) {
    ASSERT_EQ(instant, series_.at(t)) << "instant " << t;
    ++t;
  }
  EXPECT_TRUE((*source)->status().ok());
  EXPECT_EQ(t, series_.length());
}

TEST_F(FileSourceTest, MultipleScansCountBytes) {
  auto source = FileSeriesSource::Open(path_);
  ASSERT_TRUE(source.ok());
  FeatureSet instant;
  ASSERT_TRUE((*source)->StartScan().ok());
  while ((*source)->Next(&instant)) {
  }
  const uint64_t bytes_one_scan = (*source)->stats().bytes_read;
  EXPECT_GT(bytes_one_scan, 0u);
  ASSERT_TRUE((*source)->StartScan().ok());
  while ((*source)->Next(&instant)) {
  }
  EXPECT_EQ((*source)->stats().bytes_read, 2 * bytes_one_scan);
  EXPECT_EQ((*source)->stats().scans, 2u);
  EXPECT_EQ((*source)->stats().instants_read, 200u);
}

TEST_F(FileSourceTest, OpenMissingFileFails) {
  auto source = FileSeriesSource::Open("/no/such/file.bin");
  EXPECT_EQ(source.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ppm::tsdb
