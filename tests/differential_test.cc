// Differential testing harness (docs/PARALLELISM.md): on ~200 seed-derived
// random workloads, every mining implementation -- the exhaustive oracle,
// the level-wise naive miner, Apriori, the hit-set miner with both store
// kinds, and the sharded hit-set miner at 2 and 8 workers -- must agree
// pattern-for-pattern and count-for-count. Failures print the seed, which
// reproduces the workload exactly.

#include <gtest/gtest.h>

#include <string>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/naive_miner.h"
#include "diff_harness.h"
#include "tsdb/series_source.h"

namespace ppm {
namespace {

using diff::CountMap;
using diff::DiffConfig;
using diff::MakeRandomSeries;
using diff::RandomDiffConfig;
using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

constexpr uint64_t kNumSeeds = 200;

std::string Describe(const DiffConfig& config) {
  return "seed=" + std::to_string(config.seed) +
         " period=" + std::to_string(config.period) +
         " features=" + std::to_string(config.num_features) +
         " segments=" + std::to_string(config.num_segments) +
         " conf=" + std::to_string(config.min_confidence);
}

TEST(DifferentialTest, AllMinersAgreeOnRandomSeries) {
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const DiffConfig config = RandomDiffConfig(seed);
    SCOPED_TRACE(Describe(config));
    const TimeSeries series = MakeRandomSeries(config);
    const auto& symbols = series.symbols();

    MiningOptions options;
    options.period = config.period;
    options.min_confidence = config.min_confidence;

    InMemorySeriesSource oracle_source(&series);
    const auto oracle = MineExhaustive(oracle_source, options);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    const auto oracle_map = CountMap(*oracle, symbols);

    {
      InMemorySeriesSource source(&series);
      const auto mined = MineNaiveLevelwise(source, options);
      ASSERT_TRUE(mined.ok()) << mined.status();
      EXPECT_EQ(CountMap(*mined, symbols), oracle_map) << "naive levelwise";
    }
    {
      InMemorySeriesSource source(&series);
      const auto mined = MineApriori(source, options);
      ASSERT_TRUE(mined.ok()) << mined.status();
      EXPECT_EQ(CountMap(*mined, symbols), oracle_map) << "apriori";
    }
    for (const HitStoreKind store :
         {HitStoreKind::kMaxSubpatternTree, HitStoreKind::kHashTable}) {
      for (const uint32_t threads : {1u, 2u, 8u}) {
        MiningOptions hitset_options = options;
        hitset_options.hit_store = store;
        hitset_options.num_threads = threads;
        InMemorySeriesSource source(&series);
        const auto mined = MineHitSet(source, hitset_options);
        ASSERT_TRUE(mined.ok()) << mined.status();
        EXPECT_EQ(CountMap(*mined, symbols), oracle_map)
            << "hitset store=" << static_cast<int>(store)
            << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace ppm
