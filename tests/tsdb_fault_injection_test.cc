// Tests for the deterministic storage fault-injection seam
// (tsdb/fault_injection.h): bit flips and short reads against the codec and
// the streaming source, transient failures against Database::Get's retry
// loop, and fsync failures against the manifest's write-then-rename
// protocol.

#include "tsdb/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "tsdb/database.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"
#include "tsdb/time_series.h"

namespace ppm::tsdb {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

TimeSeries TestSeries() {
  TimeSeries series;
  const FeatureId a = series.symbols().Intern("a");
  const FeatureId b = series.symbols().Intern("b");
  for (int t = 0; t < 50; ++t) {
    FeatureSet instant;
    if (t % 2 == 0) instant.Set(a);
    if (t % 3 == 0) instant.Set(b);
    series.Append(std::move(instant));
  }
  return series;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/fault_series.ppmts";
    ASSERT_TRUE(WriteBinarySeries(TestSeries(), path_).ok());  // v3 default.
  }
  void TearDown() override {
    FaultInjector::Global().Disarm();  // Never leak faults across tests.
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(FaultInjectionTest, DisarmedInjectorIsInvisible) {
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_EQ(FaultInjector::Global().MaybeWrap(nullptr), nullptr);
  EXPECT_FALSE(FaultInjector::Global().ConsumeTransientReadFailure());
  EXPECT_FALSE(FaultInjector::Global().FsyncShouldFail());
  EXPECT_TRUE(ReadBinarySeries(path_).ok());
}

TEST_F(FaultInjectionTest, BitFlipsAreDetectedByV3Checksums) {
  FaultPlan plan;
  plan.seed = 99;
  plan.bit_flip_rate = 0.05;
  const uint64_t injected_before = CounterValue("ppm.fault.injected");
  ScopedFaultInjection scoped(plan);
  const auto series = ReadBinarySeries(path_);
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kCorruption);
  EXPECT_GT(CounterValue("ppm.fault.injected"), injected_before);
}

TEST_F(FaultInjectionTest, BitFlipsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.bit_flip_rate = 0.02;
  ScopedFaultInjection scoped(plan);
  const auto first = ReadBinarySeries(path_);
  const auto second = ReadBinarySeries(path_);
  ASSERT_FALSE(first.ok());
  // Same seed, same file: the identical bytes are corrupted, so the reader
  // fails identically on every attempt.
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
}

TEST_F(FaultInjectionTest, ShortReadsFailTheSourceCleanly) {
  FaultPlan plan;
  plan.seed = 7;
  plan.fail_reads_at_offset = 40;  // Cut the file short mid-header-block.
  ScopedFaultInjection scoped(plan);
  const auto source = FileSeriesSource::Open(path_);
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kCorruption);
}

TEST_F(FaultInjectionTest, TransientFailuresAreRetriedByDatabaseGet) {
  const std::string db_dir = testing::TempDir() + "/fault_db_retry";
  std::filesystem::remove_all(db_dir);
  auto db = Database::Open(db_dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("s", TestSeries()).ok());

  FaultPlan plan;
  plan.seed = 5;
  plan.transient_read_failures = 2;
  const uint64_t retries_before = CounterValue("ppm.fault.retries");
  {
    ScopedFaultInjection scoped(plan);
    // Two injected failures, three attempts: the final attempt succeeds.
    const auto series = (*db)->Get("s");
    ASSERT_TRUE(series.ok()) << series.status().ToString();
    EXPECT_EQ(series->length(), 50u);
  }
  EXPECT_EQ(CounterValue("ppm.fault.retries"), retries_before + 2);

  // More transient failures than attempts: Get surfaces the IoError.
  plan.transient_read_failures = 10;
  {
    ScopedFaultInjection scoped(plan);
    const auto series = (*db)->Get("s");
    ASSERT_FALSE(series.ok());
    EXPECT_EQ(series.status().code(), StatusCode::kIoError);
  }
  std::filesystem::remove_all(db_dir);
}

TEST_F(FaultInjectionTest, GetRejectsAlreadyCancelledToken) {
  const std::string db_dir = testing::TempDir() + "/fault_db_cancel";
  std::filesystem::remove_all(db_dir);
  auto db = Database::Open(db_dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("s", TestSeries()).ok());

  CancelToken token;
  token.Cancel();
  const auto series = (*db)->Get("s", Interrupt(token, Deadline()));
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kCancelled);
  std::filesystem::remove_all(db_dir);
}

TEST_F(FaultInjectionTest, GetRetryBackoffHonorsDeadline) {
  const std::string db_dir = testing::TempDir() + "/fault_db_deadline";
  std::filesystem::remove_all(db_dir);
  auto db = Database::Open(db_dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("s", TestSeries()).ok());

  FaultPlan plan;
  plan.seed = 5;
  plan.transient_read_failures = 10;
  ScopedFaultInjection scoped(plan);
  // More failures than attempts and 5ms of scheduled backoff: a 2ms
  // deadline must expire *during* a backoff sleep, so Get reports the
  // deadline instead of sleeping through it and surfacing the IoError.
  const auto series =
      (*db)->Get("s", Interrupt(CancelToken(), Deadline::After(2)));
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kDeadlineExceeded)
      << series.status().ToString();
  std::filesystem::remove_all(db_dir);
}

TEST_F(FaultInjectionTest, CorruptionIsNeverRetried) {
  const std::string db_dir = testing::TempDir() + "/fault_db_corrupt";
  std::filesystem::remove_all(db_dir);
  auto db = Database::Open(db_dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("s", TestSeries()).ok());

  FaultPlan plan;
  plan.seed = 11;
  plan.bit_flip_rate = 0.05;
  const uint64_t retries_before = CounterValue("ppm.fault.retries");
  ScopedFaultInjection scoped(plan);
  const auto series = (*db)->Get("s");
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(CounterValue("ppm.fault.retries"), retries_before)
      << "corruption must not be retried";
  FaultInjector::Global().Disarm();
  std::filesystem::remove_all(db_dir);
}

TEST_F(FaultInjectionTest, FailedManifestWriteNeverClobbersPrevious) {
  const std::string db_dir = testing::TempDir() + "/fault_db_manifest";
  std::filesystem::remove_all(db_dir);
  auto db = Database::Open(db_dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("first", TestSeries()).ok());

  std::ifstream manifest_in(db_dir + "/MANIFEST");
  std::ostringstream before;
  before << manifest_in.rdbuf();
  manifest_in.close();
  ASSERT_NE(before.str().find("first"), std::string::npos);

  {
    FaultPlan plan;
    plan.seed = 3;
    plan.fail_fsync = true;
    ScopedFaultInjection scoped(plan);
    const Status put = (*db)->Put("second", TestSeries());
    ASSERT_FALSE(put.ok());
    EXPECT_EQ(put.code(), StatusCode::kIoError);
  }

  // The previous manifest is byte-for-byte intact, no temp file remains,
  // and reopening the catalog sees exactly the first series.
  std::ifstream manifest_after(db_dir + "/MANIFEST");
  std::ostringstream after;
  after << manifest_after.rdbuf();
  EXPECT_EQ(after.str(), before.str());
  EXPECT_FALSE(std::filesystem::exists(db_dir + "/MANIFEST.tmp"));

  auto reopened = Database::Open(db_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->List(), std::vector<std::string>{"first"});
  std::filesystem::remove_all(db_dir);
}

TEST_F(FaultInjectionTest, DisarmRestoresCleanReads) {
  {
    FaultPlan plan;
    plan.seed = 21;
    plan.bit_flip_rate = 1.0;
    ScopedFaultInjection scoped(plan);
    EXPECT_FALSE(ReadBinarySeries(path_).ok());
  }
  const auto series = ReadBinarySeries(path_);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series->length(), 50u);
}

}  // namespace
}  // namespace ppm::tsdb
