#include "tsdb/symbol_table.h"

#include <gtest/gtest.h>

namespace ppm::tsdb {
namespace {

TEST(SymbolTableTest, InternAssignsDenseIds) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("a"), 0u);
  EXPECT_EQ(table.Intern("b"), 1u);
  EXPECT_EQ(table.Intern("a"), 0u);  // Idempotent.
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, LookupFindsInterned) {
  SymbolTable table;
  table.Intern("x");
  auto found = table.Lookup("x");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0u);
  EXPECT_EQ(table.Lookup("y").status().code(), StatusCode::kNotFound);
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  const FeatureId id = table.Intern("hello");
  auto name = table.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "hello");
  EXPECT_EQ(table.Name(99).status().code(), StatusCode::kOutOfRange);
}

TEST(SymbolTableTest, NameOrPlaceholder) {
  SymbolTable table;
  table.Intern("real");
  EXPECT_EQ(table.NameOrPlaceholder(0), "real");
  EXPECT_EQ(table.NameOrPlaceholder(7), "#7");
}

TEST(SymbolTableTest, NamesInIdOrder) {
  SymbolTable table;
  table.Intern("z");
  table.Intern("a");
  table.Intern("m");
  EXPECT_EQ(table.names(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(SymbolTableTest, EmptyNameIsAllowedAndDistinct) {
  SymbolTable table;
  const FeatureId empty = table.Intern("");
  const FeatureId other = table.Intern("x");
  EXPECT_NE(empty, other);
  EXPECT_EQ(table.Intern(""), empty);
}

}  // namespace
}  // namespace ppm::tsdb
