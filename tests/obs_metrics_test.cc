#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace ppm::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  const Counter counter = registry.GetCounter("test.events");
  EXPECT_EQ(counter.value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(CounterTest, SameNameSharesOneCell) {
  MetricsRegistry registry;
  const Counter a = registry.GetCounter("test.shared");
  const Counter b = registry.GetCounter("test.shared");
  a.Inc(3);
  b.Inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(CounterTest, UnboundHandleIsSafe) {
  const Counter unbound;
  unbound.Inc(100);  // Goes to the sink; must not crash.
  const Counter another;
  SUCCEED();
}

TEST(CounterTest, HandlesSurviveReset) {
  MetricsRegistry registry;
  const Counter counter = registry.GetCounter("test.reset");
  counter.Inc(9);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.Inc(2);
  EXPECT_EQ(counter.value(), 2u);
  const uint64_t* found = registry.Snapshot().FindCounter("test.reset");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 2u);
}

TEST(GaugeTest, SetIsLastWriteWins) {
  MetricsRegistry registry;
  const Gauge gauge = registry.GetGauge("test.level");
  gauge.Set(5);
  gauge.Set(3);
  EXPECT_EQ(gauge.value(), 3u);
  gauge.Add(4);
  EXPECT_EQ(gauge.value(), 7u);
}

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Values wider than the bucket range land in the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundMatchesIndex) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  // Every value's bucket contains it.
  for (const uint64_t value : {0ull, 1ull, 7ull, 100ull, 65536ull}) {
    EXPECT_LE(value, Histogram::BucketUpperBound(Histogram::BucketIndex(value)));
  }
}

TEST(HistogramTest, ObserveTracksCountSumMax) {
  MetricsRegistry registry;
  const Histogram hist = registry.GetHistogram("test.sizes");
  hist.Observe(10);
  hist.Observe(20);
  hist.Observe(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 35u);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramData& data = snapshot.histograms[0].second;
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 35u);
  EXPECT_EQ(data.max, 20u);
  EXPECT_NEAR(data.Mean(), 35.0 / 3.0, 1e-9);
}

TEST(HistogramTest, ApproxQuantileBracketsTheData) {
  MetricsRegistry registry;
  const Histogram hist = registry.GetHistogram("test.quantile");
  for (uint64_t i = 0; i < 100; ++i) hist.Observe(i);
  const HistogramData data = registry.Snapshot().histograms[0].second;
  // p50 of 0..99 is ~50; the bucket upper edge containing it is 63.
  EXPECT_GE(data.ApproxQuantile(0.5), 31u);
  EXPECT_LE(data.ApproxQuantile(0.5), 63u);
  // p99 lands in the top bucket; the estimate is clamped to the max seen.
  EXPECT_LE(data.ApproxQuantile(0.99), 99u);
  EXPECT_GE(data.ApproxQuantile(1.0), data.ApproxQuantile(0.0));
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  HistogramData data;
  data.buckets.assign(Histogram::kNumBuckets, 0);
  EXPECT_EQ(data.ApproxQuantile(0.5), 0u);
  EXPECT_EQ(data.Mean(), 0.0);
}

TEST(SnapshotTest, EntriesAreSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Inc();
  registry.GetCounter("a.first").Inc();
  registry.GetCounter("m.middle").Inc();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "m.middle");
  EXPECT_EQ(snapshot.counters[2].first, "z.last");
}

TEST(SnapshotTest, FindMissingReturnsNull) {
  MetricsRegistry registry;
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.FindCounter("nope"), nullptr);
  EXPECT_EQ(snapshot.FindGauge("nope"), nullptr);
}

TEST(SnapshotTest, SnapshotIsDetachedFromRegistry) {
  MetricsRegistry registry;
  const Counter counter = registry.GetCounter("test.detach");
  counter.Inc(1);
  const MetricsSnapshot snapshot = registry.Snapshot();
  counter.Inc(10);
  EXPECT_EQ(*snapshot.FindCounter("test.detach"), 1u);
  EXPECT_EQ(*registry.Snapshot().FindCounter("test.detach"), 11u);
}

TEST(SnapshotTest, ToJsonHasAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Inc(7);
  registry.GetGauge("g.one").Set(3);
  registry.GetHistogram("h.one").Observe(100);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g.one\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.one\":{\"count\":1,\"sum\":100,\"max\":100"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos) << json;
}

TEST(SnapshotTest, ZeroValuedMetricsStayVisible) {
  MetricsRegistry registry;
  registry.GetCounter("c.untouched");
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"c.untouched\":0"), std::string::npos) << json;
}

TEST(SnapshotTest, DeltaSinceSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  const Counter counter = registry.GetCounter("d.counter");
  const Gauge gauge = registry.GetGauge("d.gauge");
  const Histogram hist = registry.GetHistogram("d.hist");
  counter.Inc(10);
  gauge.Set(5);
  hist.Observe(8);
  const MetricsSnapshot base = registry.Snapshot();

  counter.Inc(3);
  gauge.Set(9);
  hist.Observe(8);
  hist.Observe(2);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(base);

  // Counters and histogram count/sum subtract; gauges stay last-written.
  EXPECT_EQ(*delta.FindCounter("d.counter"), 3u);
  EXPECT_EQ(*delta.FindGauge("d.gauge"), 9u);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].second.count, 2u);
  EXPECT_EQ(delta.histograms[0].second.sum, 10u);
}

TEST(SnapshotTest, DeltaSincePassesThroughNewMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("d.old").Inc(4);
  const MetricsSnapshot base = registry.Snapshot();
  registry.GetCounter("d.new").Inc(7);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(*delta.FindCounter("d.old"), 0u);
  // Registered after the base snapshot: the full value passes through.
  EXPECT_EQ(*delta.FindCounter("d.new"), 7u);
}

TEST(RegistryTest, GlobalIsStable) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, NamespacesAreIndependent) {
  MetricsRegistry registry;
  registry.GetCounter("same.name").Inc(1);
  registry.GetGauge("same.name").Set(2);
  registry.GetHistogram("same.name").Observe(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(*snapshot.FindCounter("same.name"), 1u);
  EXPECT_EQ(*snapshot.FindGauge("same.name"), 2u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.sum, 3u);
}

}  // namespace
}  // namespace ppm::obs
