#include "service/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/wire.h"
#include "tsdb/time_series.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

class PatternServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unix socket paths are length-limited (~108 bytes), so keep them short.
    dir_ = testing::TempDir() + "/ppmd_" + std::to_string(::getpid()) + "_" +
           std::to_string(instance_++);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = dir_ + "/s.sock";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<PatternServer> StartServer(ServerOptions options = {}) {
    options.socket_path = socket_;
    auto server = PatternServer::Start(dir_ + "/db", options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(*server);
  }

  static tsdb::TimeSeries PeriodicSeries(uint32_t period, uint32_t segments) {
    tsdb::TimeSeries series;
    for (uint32_t s = 0; s < segments; ++s) {
      for (uint32_t p = 0; p < period; ++p) {
        if (p == 0) {
          series.AppendNamed({"tick"});
        } else {
          series.AppendNamed({});
        }
      }
    }
    return series;
  }

  static wire::Request QueryRequest(const std::string& name, uint32_t period) {
    wire::Request request;
    request.op = wire::Op::kQuery;
    request.name = name;
    request.period = period;
    request.min_confidence = 0.8;
    return request;
  }

  std::string dir_;
  std::string socket_;
  inline static int instance_ = 0;
};

TEST_F(PatternServerTest, PutQueryAppendGetOverSocket) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  wire::Request put;
  put.op = wire::Op::kPut;
  put.name = "s";
  put.series = PeriodicSeries(4, 10);
  auto put_response = (*client)->Call(put);
  ASSERT_TRUE(put_response.ok()) << put_response.status().ToString();
  EXPECT_EQ(put_response->code, 0) << put_response->message;
  EXPECT_EQ(put_response->length, 40u);

  auto mined = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined->code, 0) << mined->message;
  EXPECT_EQ(mined->num_periods, 10u);
  ASSERT_EQ(mined->patterns.size(), 1u);
  ASSERT_EQ(mined->patterns[0].letters.size(), 1u);
  EXPECT_EQ(mined->patterns[0].letters[0].first, 0u);  // position
  EXPECT_EQ(mined->patterns[0].count, 10u);
  ASSERT_EQ(mined->symbols.size(), 1u);
  EXPECT_EQ(mined->symbols[0], "tick");

  // Same query again: served from cache, identical payload.
  auto cached = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->cache_outcome, 1);  // hit
  EXPECT_EQ(cached->version, mined->version);

  wire::Request append;
  append.op = wire::Op::kAppend;
  append.name = "s";
  append.instants = {{"tick"}, {}, {}, {}};
  auto appended = (*client)->Call(append);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->code, 0) << appended->message;
  EXPECT_EQ(appended->length, 44u);

  auto refreshed = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->cache_outcome, 2);  // refresh
  EXPECT_EQ(refreshed->num_periods, 11u);
  ASSERT_EQ(refreshed->patterns.size(), 1u);
  EXPECT_EQ(refreshed->patterns[0].count, 11u);

  wire::Request get;
  get.op = wire::Op::kGet;
  get.name = "s";
  auto got = (*client)->Call(get);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->code, 0) << got->message;
  ASSERT_TRUE(got->has_series);
  EXPECT_EQ(got->series.length(), 44u);

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ErrorsTravelAsStatusCodes) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  auto missing = (*client)->Call(QueryRequest("ghost", 4));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, static_cast<uint8_t>(StatusCode::kNotFound));

  wire::Request bad = QueryRequest("ghost", 4);
  bad.algorithm = 99;
  auto rejected = (*client)->Call(bad);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->code,
            static_cast<uint8_t>(StatusCode::kInvalidArgument));

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, DeadlineExceededDoesNotDisturbOtherRequests) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  wire::Request put;
  put.op = wire::Op::kPut;
  put.name = "s";
  put.series = PeriodicSeries(50, 4000);  // Big enough to out-run 0 ms.
  ASSERT_TRUE((*client)->Call(put).ok());

  // An already-expired deadline (mapped from deadline_ms) must reject this
  // request only; a concurrent normal query on another connection succeeds.
  std::thread other([this] {
    auto peer = Client::Connect(socket_);
    ASSERT_TRUE(peer.ok());
    auto response = (*peer)->Call(QueryRequest("s", 50));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0) << response->message;
  });
  wire::Request rushed = QueryRequest("s", 50);
  rushed.op = wire::Op::kMine;  // Bypass the cache so mining actually runs.
  rushed.deadline_ms = 1;
  auto response = (*client)->Call(rushed);
  other.join();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code,
            static_cast<uint8_t>(StatusCode::kDeadlineExceeded))
      << response->message;

  // The connection survives a failed request.
  auto after = (*client)->Call(QueryRequest("s", 50));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, 0) << after->message;

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ShutdownRequestDrainsServer) {
  auto server = StartServer();
  {
    auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok());
    wire::Request shutdown;
    shutdown.op = wire::Op::kShutdown;
    auto response = (*client)->Call(shutdown);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0);
  }
  server->Wait();  // Returns because the shutdown request stopped it.
  EXPECT_FALSE(fs::exists(socket_));
}

TEST_F(PatternServerTest, ConcurrentClientsAreServedCorrectly) {
  ServerOptions options;
  options.num_workers = 4;
  auto server = StartServer(options);
  {
    auto seed = Client::Connect(socket_);
    ASSERT_TRUE(seed.ok());
    wire::Request put;
    put.op = wire::Op::kPut;
    put.name = "s";
    put.series = PeriodicSeries(4, 25);
    ASSERT_TRUE((*seed)->Call(put).ok());
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([this, &failures] {
      auto client = Client::Connect(socket_);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 5; ++round) {
        auto response = (*client)->Call(QueryRequest("s", 4));
        if (!response.ok() || response->code != 0 ||
            response->patterns.size() != 1) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server->RequestStop();
  server->Wait();
}

}  // namespace
}  // namespace ppm::service
