#include "service/server.h"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/client.h"
#include "service/wire.h"
#include "tsdb/time_series.h"
#include "util/crc32c.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

class PatternServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unix socket paths are length-limited (~108 bytes), so keep them short.
    dir_ = testing::TempDir() + "/ppmd_" + std::to_string(::getpid()) + "_" +
           std::to_string(instance_++);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = dir_ + "/s.sock";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<PatternServer> StartServer(ServerOptions options = {}) {
    options.socket_path = socket_;
    auto server = PatternServer::Start(dir_ + "/db", options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(*server);
  }

  static tsdb::TimeSeries PeriodicSeries(uint32_t period, uint32_t segments) {
    tsdb::TimeSeries series;
    for (uint32_t s = 0; s < segments; ++s) {
      for (uint32_t p = 0; p < period; ++p) {
        if (p == 0) {
          series.AppendNamed({"tick"});
        } else {
          series.AppendNamed({});
        }
      }
    }
    return series;
  }

  static wire::Request QueryRequest(const std::string& name, uint32_t period) {
    wire::Request request;
    request.op = wire::Op::kQuery;
    request.name = name;
    request.period = period;
    request.min_confidence = 0.8;
    return request;
  }

  std::string dir_;
  std::string socket_;
  inline static int instance_ = 0;
};

TEST_F(PatternServerTest, PutQueryAppendGetOverSocket) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  wire::Request put;
  put.op = wire::Op::kPut;
  put.name = "s";
  put.series = PeriodicSeries(4, 10);
  auto put_response = (*client)->Call(put);
  ASSERT_TRUE(put_response.ok()) << put_response.status().ToString();
  EXPECT_EQ(put_response->code, 0) << put_response->message;
  EXPECT_EQ(put_response->length, 40u);

  auto mined = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined->code, 0) << mined->message;
  EXPECT_EQ(mined->num_periods, 10u);
  ASSERT_EQ(mined->patterns.size(), 1u);
  ASSERT_EQ(mined->patterns[0].letters.size(), 1u);
  EXPECT_EQ(mined->patterns[0].letters[0].first, 0u);  // position
  EXPECT_EQ(mined->patterns[0].count, 10u);
  ASSERT_EQ(mined->symbols.size(), 1u);
  EXPECT_EQ(mined->symbols[0], "tick");

  // Same query again: served from cache, identical payload.
  auto cached = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->cache_outcome, 1);  // hit
  EXPECT_EQ(cached->version, mined->version);

  wire::Request append;
  append.op = wire::Op::kAppend;
  append.name = "s";
  append.instants = {{"tick"}, {}, {}, {}};
  auto appended = (*client)->Call(append);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->code, 0) << appended->message;
  EXPECT_EQ(appended->length, 44u);

  auto refreshed = (*client)->Call(QueryRequest("s", 4));
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->cache_outcome, 2);  // refresh
  EXPECT_EQ(refreshed->num_periods, 11u);
  ASSERT_EQ(refreshed->patterns.size(), 1u);
  EXPECT_EQ(refreshed->patterns[0].count, 11u);

  wire::Request get;
  get.op = wire::Op::kGet;
  get.name = "s";
  auto got = (*client)->Call(get);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->code, 0) << got->message;
  ASSERT_TRUE(got->has_series);
  EXPECT_EQ(got->series.length(), 44u);

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ErrorsTravelAsStatusCodes) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  auto missing = (*client)->Call(QueryRequest("ghost", 4));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, static_cast<uint8_t>(StatusCode::kNotFound));

  wire::Request bad = QueryRequest("ghost", 4);
  bad.algorithm = 99;
  auto rejected = (*client)->Call(bad);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->code,
            static_cast<uint8_t>(StatusCode::kInvalidArgument));

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, DeadlineExceededDoesNotDisturbOtherRequests) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  wire::Request put;
  put.op = wire::Op::kPut;
  put.name = "s";
  put.series = PeriodicSeries(50, 4000);  // Big enough to out-run 0 ms.
  ASSERT_TRUE((*client)->Call(put).ok());

  // An already-expired deadline (mapped from deadline_ms) must reject this
  // request only; a concurrent normal query on another connection succeeds.
  std::thread other([this] {
    auto peer = Client::Connect(socket_);
    ASSERT_TRUE(peer.ok());
    auto response = (*peer)->Call(QueryRequest("s", 50));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0) << response->message;
  });
  wire::Request rushed = QueryRequest("s", 50);
  rushed.op = wire::Op::kMine;  // Bypass the cache so mining actually runs.
  rushed.deadline_ms = 1;
  auto response = (*client)->Call(rushed);
  other.join();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code,
            static_cast<uint8_t>(StatusCode::kDeadlineExceeded))
      << response->message;

  // The connection survives a failed request.
  auto after = (*client)->Call(QueryRequest("s", 50));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, 0) << after->message;

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ShutdownRequestDrainsServer) {
  auto server = StartServer();
  {
    auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok());
    wire::Request shutdown;
    shutdown.op = wire::Op::kShutdown;
    auto response = (*client)->Call(shutdown);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0);
  }
  server->Wait();  // Returns because the shutdown request stopped it.
  EXPECT_FALSE(fs::exists(socket_));
}

TEST_F(PatternServerTest, ConcurrentClientsAreServedCorrectly) {
  ServerOptions options;
  options.num_workers = 4;
  auto server = StartServer(options);
  {
    auto seed = Client::Connect(socket_);
    ASSERT_TRUE(seed.ok());
    wire::Request put;
    put.op = wire::Op::kPut;
    put.name = "s";
    put.series = PeriodicSeries(4, 25);
    ASSERT_TRUE((*seed)->Call(put).ok());
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([this, &failures] {
      auto client = Client::Connect(socket_);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 5; ++round) {
        auto response = (*client)->Call(QueryRequest("s", 4));
        if (!response.ok() || response->code != 0 ||
            response->patterns.size() != 1) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server->RequestStop();
  server->Wait();
}

// ---------------------------------------------------------------------------
// Startup: stale sockets are reclaimed, live ones are respected.

TEST_F(PatternServerTest, StaleSocketFileIsReclaimedOnStartup) {
  // A SIGKILLed daemon leaves its bound socket file behind with nobody
  // listening. Simulate it: bind + listen, then close the fd without
  // unlinking.
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_.c_str(), socket_.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(stale, 1), 0);
  ::close(stale);
  ASSERT_TRUE(fs::exists(socket_));

  // Startup must detect the dead socket, unlink it, and serve normally.
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  wire::Request stats;
  stats.op = wire::Op::kStats;
  auto response = (*client)->Call(stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, 0);

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, LiveDaemonSocketIsNotStolen) {
  auto server = StartServer();
  // A second daemon on the same socket must refuse to start -- and must
  // not unlink the live daemon's socket on the way out.
  ServerOptions options;
  options.socket_path = socket_;
  auto second = PatternServer::Start(dir_ + "/db2", options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, NonSocketFileAtSocketPathIsRejected) {
  { std::ofstream(socket_) << "precious data"; }
  ServerOptions options;
  options.socket_path = socket_;
  auto server = PatternServer::Start(dir_ + "/db", options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(fs::exists(socket_));  // The file must survive.
}

// ---------------------------------------------------------------------------
// Health, readiness, quotas, and retry.

TEST_F(PatternServerTest, HealthAndReadyAnswerInline) {
  auto server = StartServer();
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  wire::Request health;
  health.op = wire::Op::kHealth;
  auto health_response = (*client)->Call(health);
  ASSERT_TRUE(health_response.ok()) << health_response.status().ToString();
  EXPECT_EQ(health_response->code, 0);
  EXPECT_NE(health_response->health_json.find("\"accepting\""),
            std::string::npos)
      << health_response->health_json;
  EXPECT_NE(health_response->health_json.find("\"queue_depth\""),
            std::string::npos);

  wire::Request ready;
  ready.op = wire::Op::kReady;
  auto ready_response = (*client)->Call(ready);
  ASSERT_TRUE(ready_response.ok());
  EXPECT_EQ(ready_response->code, 0);
  EXPECT_EQ(ready_response->ready_state,
            static_cast<uint8_t>(wire::ReadyState::kAccepting));

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, TenantRateQuotaRejectsOnlyTheOffender) {
  ServerOptions options;
  options.tenant_quotas["greedy"] = TenantQuota{1.0, 1.0, 0};
  auto server = StartServer(options);

  auto greedy = Client::Connect(socket_);
  auto polite = Client::Connect(socket_);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(polite.ok());

  wire::Request stats;
  stats.op = wire::Op::kStats;
  stats.tenant = "greedy";
  auto first = (*greedy)->Call(stats);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, 0) << first->message;
  // The burst of one is spent: the immediate second call is shed with a
  // structured retry hint, and the connection survives.
  auto second = (*greedy)->Call(stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code,
            static_cast<uint8_t>(StatusCode::kResourceExhausted));
  EXPECT_GT(second->retry_after_ms, 0u);

  // An unquota'd tenant is untouched by the greedy tenant's rejections.
  wire::Request polite_stats;
  polite_stats.op = wire::Op::kStats;
  polite_stats.tenant = "polite";
  for (int i = 0; i < 3; ++i) {
    auto response = (*polite)->Call(polite_stats);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0) << response->message;
  }

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ShedRequestSucceedsWithinRetryBudget) {
  ServerOptions options;
  options.tenant_quotas["bursty"] = TenantQuota{5.0, 1.0, 0};
  auto server = StartServer(options);
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());

  wire::Request stats;
  stats.op = wire::Op::kStats;
  stats.tenant = "bursty";
  ASSERT_TRUE((*client)->Call(stats).ok());  // Spend the burst.

  // Immediately shed without retry...
  auto shed = (*client)->Call(stats);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, static_cast<uint8_t>(StatusCode::kResourceExhausted));

  // ...but admitted within a retry budget that covers the refill (200 ms
  // at 5 rps).
  auto retried = (*client)->CallWithRetry(stats, /*retry_budget_ms=*/5000);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->code, 0) << retried->message;

  server->RequestStop();
  server->Wait();
}

// ---------------------------------------------------------------------------
// Adversarial frames: a hostile or broken peer costs one connection,
// never the server.

/// A raw PPMRPC1 peer that speaks bytes, not wire::Client -- for framing
/// attacks the real client cannot express.
class RawPeer {
 public:
  explicit RawPeer(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Handshake() {
    std::string greeting(sizeof(wire::kMagic), '\0');
    if (!ReadExactly(greeting.data(), greeting.size())) return false;
    if (std::memcmp(greeting.data(), wire::kMagic, sizeof(wire::kMagic)) !=
        0) {
      return false;
    }
    return Send(std::string(wire::kMagic, sizeof(wire::kMagic)));
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  bool SendByteByByte(std::string_view bytes) {
    for (const char c : bytes) {
      if (!Send(std::string_view(&c, 1))) return false;
    }
    return true;
  }

  /// Reads one response frame; empty on EOF/error.
  std::string ReadResponsePayload() {
    char header[8];
    if (!ReadExactly(header, sizeof(header))) return "";
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
                << (8 * i);
    }
    std::string payload(length, '\0');
    if (length > 0 && !ReadExactly(payload.data(), payload.size())) return "";
    return payload;
  }

  /// True when the server has closed our connection (EOF within 5 s).
  bool WaitForEof() {
    char byte = 0;
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 5000);
    if (ready <= 0) return false;
    return ::read(fd_, &byte, 1) == 0;
  }

 private:
  bool ReadExactly(char* out, size_t n) {
    size_t got = 0;
    while (got < n) {
      struct pollfd pfd = {fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;
      const ssize_t r = ::read(fd_, out + got, n - got);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

std::string LittleEndian32(uint32_t value) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  return out;
}

TEST_F(PatternServerTest, OversizedDeclaredFrameLengthClosesConnection) {
  auto server = StartServer();
  RawPeer peer(socket_);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.Handshake());
  // Declared length one past the cap: the server must drop us without
  // trying to buffer 64 MiB.
  ASSERT_TRUE(peer.Send(LittleEndian32(wire::kMaxFramePayloadBytes + 1)));
  ASSERT_TRUE(peer.Send(LittleEndian32(0)));  // crc (never checked)
  EXPECT_TRUE(peer.WaitForEof());

  // The server survives to serve a well-formed peer.
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());
  wire::Request stats;
  stats.op = wire::Op::kStats;
  auto response = (*client)->Call(stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, 0);

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, MaximumDeclaredFrameLengthIsNotRejectedOutright) {
  // Exactly at the cap the header is legal; the connection must stay open
  // waiting for the payload (cut off later by the io timeout, not the
  // length check).
  ServerOptions options;
  options.io_timeout_ms = 200;
  auto server = StartServer(options);
  RawPeer peer(socket_);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.Handshake());
  ASSERT_TRUE(peer.Send(LittleEndian32(wire::kMaxFramePayloadBytes)));
  ASSERT_TRUE(peer.Send(LittleEndian32(0)));
  // We never send the payload: the slow-client deadline reaps us.
  EXPECT_TRUE(peer.WaitForEof());

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ZeroLengthFrameIsAnsweredAsDecodeError) {
  auto server = StartServer();
  RawPeer peer(socket_);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.Handshake());
  // length 0, crc of the empty payload (0): a legal frame whose payload
  // fails request decoding -- the server must answer, not hang or die.
  ASSERT_TRUE(peer.Send(LittleEndian32(0)));
  ASSERT_TRUE(peer.Send(LittleEndian32(crc32c::Value(nullptr, 0))));
  const std::string payload = peer.ReadResponsePayload();
  ASSERT_FALSE(payload.empty());
  auto response = wire::DecodeResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->code, 0);

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, HeaderDribbledOneByteAtATimeStillServes) {
  auto server = StartServer();
  RawPeer peer(socket_);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.Handshake());

  wire::Request stats;
  stats.op = wire::Op::kStats;
  const std::string request_payload = wire::EncodeRequest(stats);
  const std::string frame = wire::EncodeFrame(request_payload);
  ASSERT_TRUE(peer.SendByteByByte(frame));

  const std::string payload = peer.ReadResponsePayload();
  ASSERT_FALSE(payload.empty());
  auto response = wire::DecodeResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0) << response->message;

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, ValidFrameFollowedByGarbageAnswersThenCloses) {
  auto server = StartServer();
  RawPeer peer(socket_);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.Handshake());

  wire::Request stats;
  stats.op = wire::Op::kStats;
  std::string bytes = wire::EncodeFrame(wire::EncodeRequest(stats));
  bytes.append(16, '\xAB');  // Parsed as an oversized next header.
  ASSERT_TRUE(peer.Send(bytes));

  const std::string payload = peer.ReadResponsePayload();
  ASSERT_FALSE(payload.empty());
  auto response = wire::DecodeResponse(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, 0) << response->message;
  EXPECT_TRUE(peer.WaitForEof());

  server->RequestStop();
  server->Wait();
}

TEST_F(PatternServerTest, SlowClientCostsOneFdNotAWorker) {
  ServerOptions options;
  options.io_timeout_ms = 150;
  options.num_workers = 1;
  auto server = StartServer(options);

  // A slowloris peer: sends half a header, then stalls.
  RawPeer slow(socket_);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(slow.Handshake());
  ASSERT_TRUE(slow.Send(LittleEndian32(64)));  // Header half; no payload.

  // The single worker must stay available to a well-behaved client while
  // the slow peer stalls.
  auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok());
  wire::Request stats;
  stats.op = wire::Op::kStats;
  auto response = (*client)->Call(stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, 0);

  // And the stalled connection is reaped at the io deadline.
  EXPECT_TRUE(slow.WaitForEof());

  server->RequestStop();
  server->Wait();
}

}  // namespace
}  // namespace ppm::service
