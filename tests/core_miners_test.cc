#include <gtest/gtest.h>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/miner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tsdb/series_source.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

/// Period-3 series with 4 whole segments:
///   (a b c) (a b -) (a - c) (d b c)
/// With min_conf 0.5 (min_count 2): frequent patterns are the letters
/// a@0, b@1, c@2 (count 3 each) and the pairs ab, ac, bc (count 2 each);
/// abc has count 1 and is not frequent.
TimeSeries MakeHandSeries() {
  TimeSeries series;
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  series.AppendNamed({"c"});
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  series.AppendNamed({});
  series.AppendNamed({"a"});
  series.AppendNamed({});
  series.AppendNamed({"c"});
  series.AppendNamed({"d"});
  series.AppendNamed({"b"});
  series.AppendNamed({"c"});
  return series;
}

Pattern ParseIn(TimeSeries& series, const std::string& text) {
  auto pattern = Pattern::Parse(text, &series.symbols());
  EXPECT_TRUE(pattern.ok()) << pattern.status();
  return *pattern;
}

class MinersTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MinersTest, HandSeriesExpectedPatterns) {
  TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;

  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 6u);

  const struct {
    const char* text;
    uint64_t count;
  } expected[] = {
      {"a * *", 3}, {"* b *", 3}, {"* * c", 3},
      {"a b *", 2}, {"a * c", 2}, {"* b c", 2},
  };
  for (const auto& [text, count] : expected) {
    const Pattern pattern = ParseIn(series, text);
    const FrequentPattern* found = result->Find(pattern);
    ASSERT_NE(found, nullptr) << text;
    EXPECT_EQ(found->count, count) << text;
    EXPECT_DOUBLE_EQ(found->confidence, count / 4.0) << text;
  }
  // abc is not frequent.
  EXPECT_EQ(result->Find(ParseIn(series, "a b c")), nullptr);
  EXPECT_EQ(result->stats().num_periods, 4u);
  EXPECT_EQ(result->stats().num_f1_letters, 3u);
  EXPECT_EQ(result->stats().max_level_reached, 2u);
}

TEST_P(MinersTest, MaxLettersCapStopsEarly) {
  TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  options.max_letters = 1;
  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // Letters only.
  for (const auto& entry : result->patterns()) {
    EXPECT_EQ(entry.pattern.LetterCount(), 1u);
  }
}

TEST_P(MinersTest, PerfectPeriodicityThreshold) {
  TimeSeries series;
  for (int i = 0; i < 5; ++i) {
    series.AppendNamed({"x"});
    series.AppendNamed({i % 2 == 0 ? "y" : "z"});
  }
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 1.0;
  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok());
  // Only x@0 holds in every one of the 5 segments.
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->patterns()[0].count, 5u);
  EXPECT_DOUBLE_EQ(result->patterns()[0].confidence, 1.0);
}

TEST_P(MinersTest, EmptyResultWhenNothingFrequent) {
  TimeSeries series;
  for (int i = 0; i < 12; ++i) {
    series.AppendNamed({i % 4 == 0 ? "a" : "b"});
  }
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.95;
  // a appears at alternating offsets (period 4 vs mined period 3), b fills
  // the rest; nothing reaches 95%.
  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok());
  // b@pos counts: positions see b 3 times of 4 -> conf 0.75 < 0.95.
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(result->stats().max_level_reached, 0u);
}

TEST_P(MinersTest, MultiLetterPositionPattern) {
  // b1 and b2 always occur together at offset 1: the 2-letter 1-position
  // pattern *{b1,b2} must be mined.
  TimeSeries series;
  for (int i = 0; i < 4; ++i) {
    series.AppendNamed({"a"});
    series.AppendNamed({"b1", "b2"});
  }
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.9;
  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok());

  TimeSeries& mutable_series = series;
  const Pattern grouped = ParseIn(mutable_series, "* {b1,b2}");
  const FrequentPattern* found = result->Find(grouped);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 4u);
  EXPECT_EQ(found->pattern.LLength(), 1u);
  EXPECT_EQ(found->pattern.LetterCount(), 2u);
  // And the full a{b1,b2}.
  EXPECT_NE(result->Find(ParseIn(mutable_series, "a {b1,b2}")), nullptr);
}

TEST_P(MinersTest, InvalidOptionsRejected) {
  TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 0;
  EXPECT_EQ(Mine(series, options, GetParam()).status().code(),
            StatusCode::kInvalidArgument);
  options.period = 1000;
  EXPECT_EQ(Mine(series, options, GetParam()).status().code(),
            StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MinersTest,
                         ::testing::Values(Algorithm::kApriori,
                                           Algorithm::kMaxSubpatternHitSet),
                         [](const auto& info) {
                           return std::string(AlgorithmToString(info.param)) ==
                                          "apriori"
                                      ? "Apriori"
                                      : "HitSet";
                         });

TEST(AprioriScansTest, OneScanPerLevelPlusF1) {
  const TimeSeries series = MakeHandSeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = MineApriori(source, options);
  ASSERT_TRUE(result.ok());
  // Scan 1 (F_1) + level-2 scan + level-3 scan (candidate abc) = 3.
  EXPECT_EQ(result->stats().scans, 3u);
  EXPECT_EQ(source.stats().scans, 3u);
}

TEST(HitSetScansTest, ExactlyTwoScansAlways) {
  const TimeSeries series = MakeHandSeries();
  for (const double conf : {0.25, 0.5, 1.0}) {
    InMemorySeriesSource source(&series);
    MiningOptions options;
    options.period = 3;
    options.min_confidence = conf;
    auto result = MineHitSet(source, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats().scans, 2u) << "conf " << conf;
  }
}

TEST(HitSetStoreStatsTest, HandSeriesHitEntries) {
  const TimeSeries series = MakeHandSeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = MineHitSet(source, options);
  ASSERT_TRUE(result.ok());
  // Segment masks: {abc}, {ab}, {ac}, {bc} -- all distinct, all >= 2 letters.
  EXPECT_EQ(result->stats().hit_store_entries, 4u);
  EXPECT_GE(result->stats().tree_nodes, 4u);
}

TEST(HitSetHashStoreTest, SameResultAsTreeStore) {
  const TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;

  InMemorySeriesSource tree_source(&series);
  auto tree_result = MineHitSet(tree_source, options);
  options.hit_store = HitStoreKind::kHashTable;
  InMemorySeriesSource hash_source(&series);
  auto hash_result = MineHitSet(hash_source, options);
  ASSERT_TRUE(tree_result.ok());
  ASSERT_TRUE(hash_result.ok());
  ASSERT_EQ(tree_result->size(), hash_result->size());
  for (size_t i = 0; i < tree_result->size(); ++i) {
    EXPECT_EQ(tree_result->patterns()[i].pattern,
              hash_result->patterns()[i].pattern);
    EXPECT_EQ(tree_result->patterns()[i].count,
              hash_result->patterns()[i].count);
  }
  EXPECT_EQ(hash_result->stats().tree_nodes, 0u);
}

TEST_P(MinersTest, ElapsedSecondsIsPopulated) {
  TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = Mine(series, options, GetParam());
  ASSERT_TRUE(result.ok());
  // Both miners time themselves through their root trace span.
  EXPECT_GT(result->stats().elapsed_seconds, 0.0);
  EXPECT_LT(result->stats().elapsed_seconds, 60.0);
}

TEST(MinersObservabilityTest, MiningPopulatesGlobalTraceAndMetrics) {
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const TimeSeries series = MakeHandSeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = MineHitSet(source, options);
  ASSERT_TRUE(result.ok());

  const obs::Tracer& tracer = obs::Tracer::Global();
  EXPECT_TRUE(tracer.HasSpan("mine.hitset"));
  EXPECT_TRUE(tracer.HasSpan("f1_scan"));
  EXPECT_TRUE(tracer.HasSpan("second_scan"));

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* scans = snapshot.FindCounter("ppm.source.scans");
  ASSERT_NE(scans, nullptr);
  EXPECT_EQ(*scans, result->stats().scans);
  // Every hand-series segment has >= 2 frequent letters, so each of the 4
  // segments is inserted as a hit and none are skipped.
  const uint64_t* hits = snapshot.FindCounter("ppm.hitset.hits_inserted");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, result->stats().num_periods);
  const uint64_t* skipped =
      snapshot.FindCounter("ppm.hitset.segments_skipped");
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(*skipped, 0u);

  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();
}

TEST(MiningStatsTest, ToJsonCarriesTheCounters) {
  const TimeSeries series = MakeHandSeries();
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = MineHitSet(source, options);
  ASSERT_TRUE(result.ok());
  const std::string json = result->stats().ToJson();
  EXPECT_NE(json.find("\"scans\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_periods\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_f1_letters\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_store_entries\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_seconds\":"), std::string::npos) << json;
}

TEST(MinerFacadeTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmToString(Algorithm::kApriori), "apriori");
  EXPECT_EQ(AlgorithmToString(Algorithm::kMaxSubpatternHitSet), "hit-set");
}

TEST(MiningResultTest, ToStringListsPatterns) {
  TimeSeries series = MakeHandSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());
  const std::string dump = result->ToString(series.symbols());
  EXPECT_NE(dump.find("a * *"), std::string::npos);
  EXPECT_NE(dump.find("count=3"), std::string::npos);
}

}  // namespace
}  // namespace ppm
