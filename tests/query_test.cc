#include "query/constraints.h"

#include <gtest/gtest.h>

#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::query {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

/// Period-4 series with letters a@0 (conf 1.0), b@1 (0.9), c@2 (0.8),
/// d@3 (0.7), all planted independently.
TimeSeries MakeSeries() {
  Rng rng(77);
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  series.symbols().Intern("c");
  series.symbols().Intern("d");
  for (int segment = 0; segment < 400; ++segment) {
    const double probs[4] = {1.0, 0.9, 0.8, 0.7};
    for (uint32_t position = 0; position < 4; ++position) {
      tsdb::FeatureSet instant;
      if (rng.NextBool(probs[position])) instant.Set(position);
      series.Append(std::move(instant));
    }
  }
  return series;
}

MiningOptions DefaultOptions() {
  MiningOptions options;
  options.period = 4;
  options.min_confidence = 0.6;
  return options;
}

TEST(ConstrainedMineTest, UnconstrainedBaseline) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  auto result = MineConstrained(source, DefaultOptions(), Constraints());
  ASSERT_TRUE(result.ok()) << result.status();
  // a,b,c,d + pairs ab,ac,ad,bc + maybe more; at least the four letters.
  EXPECT_GE(result->size(), 4u);
}

TEST(ConstrainedMineTest, AllowedFeaturesPushdown) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.allowed_features = {0, 1};  // Only a and b.
  auto result = MineConstrained(source, DefaultOptions(), constraints);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  for (const auto& entry : result->patterns()) {
    for (uint32_t position = 0; position < 4; ++position) {
      entry.pattern.at(position).ForEach(
          [](uint32_t feature) { EXPECT_LE(feature, 1u); });
    }
  }
  // Pushdown shrank F_1 to the allowed letters.
  EXPECT_EQ(result->stats().num_f1_letters, 2u);
}

TEST(ConstrainedMineTest, OffsetWindowPushdown) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.offset_low = 1;
  constraints.offset_high = 2;
  auto result = MineConstrained(source, DefaultOptions(), constraints);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  for (const auto& entry : result->patterns()) {
    EXPECT_TRUE(entry.pattern.IsStarAt(0));
    EXPECT_TRUE(entry.pattern.IsStarAt(3));
  }
}

TEST(ConstrainedMineTest, RequiredLetters) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.required_letters = {Letter{0, 0}};  // Must contain a@0.
  auto result = MineConstrained(source, DefaultOptions(), constraints);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  for (const auto& entry : result->patterns()) {
    EXPECT_TRUE(entry.pattern.at(0).Test(0));
  }
}

TEST(ConstrainedMineTest, MinLLengthAndMaxLetters) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.min_l_length = 2;
  constraints.max_letters = 2;
  auto result = MineConstrained(source, DefaultOptions(), constraints);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  for (const auto& entry : result->patterns()) {
    EXPECT_EQ(entry.pattern.LetterCount(), 2u);
    EXPECT_EQ(entry.pattern.LLength(), 2u);
  }
}

TEST(ConstrainedMineTest, TopKKeepsHighestConfidence) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.max_letters = 1;
  constraints.top_k = 2;
  auto result = MineConstrained(source, DefaultOptions(), constraints);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // The two strongest letters are a@0 (1.0) and b@1 (~0.9).
  bool has_a = false, has_b = false;
  for (const auto& entry : result->patterns()) {
    if (entry.pattern.at(0).Test(0)) has_a = true;
    if (entry.pattern.at(1).Test(1)) has_b = true;
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST(ConstrainedMineTest, PushdownEqualsPostFilter) {
  // Pushing constraints down must give the same answer as mining
  // unconstrained and filtering (for threshold-independent constraints).
  TimeSeries series = MakeSeries();
  Constraints constraints;
  constraints.allowed_features = {0, 1, 2};
  constraints.offset_low = 0;
  constraints.offset_high = 2;
  constraints.min_l_length = 1;

  InMemorySeriesSource pushed_source(&series);
  auto pushed = MineConstrained(pushed_source, DefaultOptions(), constraints);
  ASSERT_TRUE(pushed.ok());

  InMemorySeriesSource plain_source(&series);
  auto plain = Mine(plain_source, DefaultOptions());
  ASSERT_TRUE(plain.ok());
  const auto filtered = FilterPatterns(*plain, constraints);

  ASSERT_EQ(pushed->size(), filtered.size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(pushed->patterns()[i].pattern, filtered[i].pattern);
    EXPECT_EQ(pushed->patterns()[i].count, filtered[i].count);
  }
}

TEST(ConstrainedMineTest, ComposesWithUserLetterFilter) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  MiningOptions options = DefaultOptions();
  options.letter_filter = [](uint32_t, tsdb::FeatureId feature) {
    return feature != 1;  // User already excluded b.
  };
  Constraints constraints;
  constraints.allowed_features = {0, 1};  // Constraint allows a and b.
  auto result = MineConstrained(source, options, constraints);
  ASSERT_TRUE(result.ok());
  // Intersection: only a.
  for (const auto& entry : result->patterns()) {
    for (uint32_t position = 0; position < 4; ++position) {
      entry.pattern.at(position).ForEach(
          [](uint32_t feature) { EXPECT_EQ(feature, 0u); });
    }
  }
}

TEST(ConstrainedMineTest, EmptyConstraintsEqualUnconstrainedMining) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource constrained_source(&series);
  auto constrained =
      MineConstrained(constrained_source, DefaultOptions(), Constraints());
  ASSERT_TRUE(constrained.ok());
  InMemorySeriesSource plain_source(&series);
  auto plain = Mine(plain_source, DefaultOptions());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(constrained->size(), plain->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ(constrained->patterns()[i].pattern, plain->patterns()[i].pattern);
    EXPECT_EQ(constrained->patterns()[i].count, plain->patterns()[i].count);
  }
}

TEST(ConstrainedMineTest, WorksWithAllAlgorithms) {
  TimeSeries series = MakeSeries();
  Constraints constraints;
  constraints.allowed_features = {0, 1};
  for (const Algorithm algorithm :
       {Algorithm::kApriori, Algorithm::kMaxSubpatternHitSet}) {
    InMemorySeriesSource source(&series);
    auto result =
        MineConstrained(source, DefaultOptions(), constraints, algorithm);
    ASSERT_TRUE(result.ok()) << AlgorithmToString(algorithm);
    EXPECT_EQ(result->stats().num_f1_letters, 2u);
  }
}

TEST(ConstrainedMineTest, InvalidConstraintsRejected) {
  TimeSeries series = MakeSeries();
  InMemorySeriesSource source(&series);
  Constraints constraints;
  constraints.offset_low = 3;
  constraints.offset_high = 1;
  EXPECT_FALSE(MineConstrained(source, DefaultOptions(), constraints).ok());

  constraints = Constraints();
  constraints.required_letters = {Letter{9, 0}};
  EXPECT_FALSE(MineConstrained(source, DefaultOptions(), constraints).ok());

  constraints = Constraints();
  constraints.required_letters = {Letter{0, 0}};
  constraints.allowed_features = {1};
  EXPECT_FALSE(MineConstrained(source, DefaultOptions(), constraints).ok());

  constraints = Constraints();
  constraints.required_letters = {Letter{0, 0}, Letter{1, 1}};
  constraints.max_letters = 1;
  EXPECT_FALSE(MineConstrained(source, DefaultOptions(), constraints).ok());

  constraints = Constraints();
  constraints.min_l_length = 3;
  constraints.max_letters = 2;
  EXPECT_FALSE(MineConstrained(source, DefaultOptions(), constraints).ok());
}

}  // namespace
}  // namespace ppm::query
