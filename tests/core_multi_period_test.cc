#include "core/multi_period.h"

#include <gtest/gtest.h>

#include <map>

#include "core/hitset_miner.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

TimeSeries MakeMixedPeriodSeries(uint64_t length) {
  // Plant period-3 and period-4 regularities plus noise.
  Rng rng(2024);
  TimeSeries series;
  series.symbols().Intern("p3");
  series.symbols().Intern("p4");
  series.symbols().Intern("noise");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    if (t % 3 == 1 && rng.NextBool(0.9)) instant.Set(0);
    if (t % 4 == 2 && rng.NextBool(0.85)) instant.Set(1);
    if (rng.NextBool(0.1)) instant.Set(2);
    series.Append(std::move(instant));
  }
  return series;
}

std::map<std::string, uint64_t> AsCountMap(const MiningResult& result,
                                           const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : result.patterns()) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

TEST(MultiPeriodTest, SharedEqualsLooped) {
  const TimeSeries series = MakeMixedPeriodSeries(600);
  MiningOptions options;
  options.min_confidence = 0.6;

  InMemorySeriesSource looped_source(&series);
  auto looped = MineMultiPeriodLooped(looped_source, 2, 8, options);
  ASSERT_TRUE(looped.ok()) << looped.status();

  InMemorySeriesSource shared_source(&series);
  auto shared = MineMultiPeriodShared(shared_source, 2, 8, options);
  ASSERT_TRUE(shared.ok()) << shared.status();

  ASSERT_EQ(looped->per_period.size(), shared->per_period.size());
  for (size_t i = 0; i < looped->per_period.size(); ++i) {
    EXPECT_EQ(looped->per_period[i].first, shared->per_period[i].first);
    EXPECT_EQ(AsCountMap(looped->per_period[i].second, series.symbols()),
              AsCountMap(shared->per_period[i].second, series.symbols()))
        << "period " << looped->per_period[i].first;
  }
}

TEST(MultiPeriodTest, SharedUsesTwoScansLoopedUsesTwoPerPeriod) {
  const TimeSeries series = MakeMixedPeriodSeries(300);
  MiningOptions options;
  options.min_confidence = 0.6;

  InMemorySeriesSource looped_source(&series);
  auto looped = MineMultiPeriodLooped(looped_source, 2, 9, options);
  ASSERT_TRUE(looped.ok());
  EXPECT_EQ(looped->total_scans, 2u * 8u);

  InMemorySeriesSource shared_source(&series);
  auto shared = MineMultiPeriodShared(shared_source, 2, 9, options);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->total_scans, 2u);
}

TEST(MultiPeriodTest, EachPeriodMatchesSinglePeriodMining) {
  const TimeSeries series = MakeMixedPeriodSeries(400);
  MiningOptions options;
  options.min_confidence = 0.5;

  InMemorySeriesSource shared_source(&series);
  auto shared = MineMultiPeriodShared(shared_source, 3, 5, options);
  ASSERT_TRUE(shared.ok());

  for (uint32_t period = 3; period <= 5; ++period) {
    InMemorySeriesSource single_source(&series);
    MiningOptions single = options;
    single.period = period;
    auto expected = MineHitSet(single_source, single);
    ASSERT_TRUE(expected.ok());
    const MiningResult* actual = shared->ForPeriod(period);
    ASSERT_NE(actual, nullptr);
    EXPECT_EQ(AsCountMap(*actual, series.symbols()),
              AsCountMap(*expected, series.symbols()))
        << "period " << period;
  }
}

TEST(MultiPeriodTest, FindsPlantedPeriodsOnly) {
  const TimeSeries series = MakeMixedPeriodSeries(1200);
  MiningOptions options;
  options.min_confidence = 0.8;
  InMemorySeriesSource source(&series);
  auto result = MineMultiPeriodShared(source, 2, 6, options);
  ASSERT_TRUE(result.ok());

  // Period 3 must surface the planted p3 pattern.
  const MiningResult* p3 = result->ForPeriod(3);
  ASSERT_NE(p3, nullptr);
  bool found_p3 = false;
  for (const auto& entry : p3->patterns()) {
    if (entry.pattern.at(1).Test(0)) found_p3 = true;
  }
  EXPECT_TRUE(found_p3);

  // Period 4 must surface p4 at offset 2.
  const MiningResult* p4 = result->ForPeriod(4);
  ASSERT_NE(p4, nullptr);
  bool found_p4 = false;
  for (const auto& entry : p4->patterns()) {
    if (entry.pattern.at(2).Test(1)) found_p4 = true;
  }
  EXPECT_TRUE(found_p4);

  // Period 5 aligns with neither plant: with threshold 0.8 nothing survives.
  const MiningResult* p5 = result->ForPeriod(5);
  ASSERT_NE(p5, nullptr);
  EXPECT_TRUE(p5->empty());
}

TEST(MultiPeriodTest, SinglePeriodRange) {
  const TimeSeries series = MakeMixedPeriodSeries(120);
  MiningOptions options;
  options.min_confidence = 0.6;
  InMemorySeriesSource source(&series);
  auto result = MineMultiPeriodShared(source, 3, 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_period.size(), 1u);
  EXPECT_EQ(result->total_scans, 2u);
}

TEST(MultiPeriodTest, InvalidRangesRejected) {
  const TimeSeries series = MakeMixedPeriodSeries(50);
  MiningOptions options;
  InMemorySeriesSource source(&series);
  EXPECT_FALSE(MineMultiPeriodShared(source, 0, 3, options).ok());
  EXPECT_FALSE(MineMultiPeriodShared(source, 5, 3, options).ok());
  EXPECT_FALSE(MineMultiPeriodShared(source, 3, 100, options).ok());
  EXPECT_FALSE(MineMultiPeriodLooped(source, 0, 3, options).ok());
  EXPECT_FALSE(MineMultiPeriodLooped(source, 5, 3, options).ok());
  EXPECT_FALSE(MineMultiPeriodLooped(source, 3, 100, options).ok());
}

TEST(MultiPeriodTest, ForPeriodOutsideRangeIsNull) {
  const TimeSeries series = MakeMixedPeriodSeries(100);
  MiningOptions options;
  options.min_confidence = 0.6;
  InMemorySeriesSource source(&series);
  auto result = MineMultiPeriodShared(source, 3, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ForPeriod(7), nullptr);
}

}  // namespace
}  // namespace ppm
