// Shard plan invariants: splitting, tiling validation, the durable
// manifest round trip, and fingerprint binding.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dist/shard_plan.h"
#include "dist/shard_result.h"

namespace ppm::dist {
namespace {

MiningOptions BaseOptions() {
  MiningOptions options;
  options.period = 4;
  options.min_confidence = 0.5;
  return options;
}

TEST(PlanShardsTest, SplitsIntoContiguousNearEqualRanges) {
  const auto plan = PlanShards({{"a.ppmts", 4 * 10}}, BaseOptions(), 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->shards.size(), 4u);
  EXPECT_EQ(plan->inputs.size(), 1u);
  EXPECT_EQ(plan->inputs[0].num_segments, 10u);
  uint64_t covered = 0;
  for (size_t i = 0; i < plan->shards.size(); ++i) {
    const ShardSpec& shard = plan->shards[i];
    EXPECT_EQ(shard.shard_id, i);
    EXPECT_EQ(shard.input_index, 0u);
    EXPECT_EQ(shard.segment_begin, covered);
    covered = shard.segment_end;
    // Near-equal: 10 segments over 4 shards is 2 or 3 each.
    EXPECT_GE(shard.num_segments(), 2u);
    EXPECT_LE(shard.num_segments(), 3u);
  }
  EXPECT_EQ(covered, 10u);
  EXPECT_TRUE(ValidatePlan(*plan).ok());
}

TEST(PlanShardsTest, FewerShardsWhenInputIsSmall) {
  // 2 whole segments cannot feed 8 shards; the planner degrades to 2.
  const auto plan = PlanShards({{"a.ppmts", 4 * 2 + 3}}, BaseOptions(), 8);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->shards.size(), 2u);
  EXPECT_EQ(plan->inputs[0].num_segments, 2u);  // partial segment dropped
}

TEST(PlanShardsTest, CorpusGetsShardsPerInput) {
  const auto plan = PlanShards({{"a.ppmts", 4 * 6}, {"b.ppmts", 4 * 9}},
                               BaseOptions(), 2);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->shards.size(), 4u);
  EXPECT_EQ(plan->shards[0].input_index, 0u);
  EXPECT_EQ(plan->shards[1].input_index, 0u);
  EXPECT_EQ(plan->shards[2].input_index, 1u);
  EXPECT_EQ(plan->shards[3].input_index, 1u);
  EXPECT_TRUE(ValidatePlan(*plan).ok());
}

TEST(PlanShardsTest, RejectsInputWithNoWholeSegment) {
  const auto plan = PlanShards({{"a.ppmts", 3}}, BaseOptions(), 2);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanShardsTest, RejectsZeroShardsPerInput) {
  EXPECT_FALSE(PlanShards({{"a.ppmts", 40}}, BaseOptions(), 0).ok());
}

TEST(ValidatePlanTest, CatchesGapOverlapAndBadIds) {
  auto base = PlanShards({{"a.ppmts", 4 * 8}}, BaseOptions(), 2);
  ASSERT_TRUE(base.ok());

  ShardPlan gap = *base;
  gap.shards[1].segment_begin += 1;  // hole between shard 0 and 1
  EXPECT_FALSE(ValidatePlan(gap).ok());

  ShardPlan overlap = *base;
  overlap.shards[1].segment_begin -= 1;
  EXPECT_FALSE(ValidatePlan(overlap).ok());

  ShardPlan bad_id = *base;
  bad_id.shards[1].shard_id = 7;
  EXPECT_FALSE(ValidatePlan(bad_id).ok());

  ShardPlan empty_range = *base;
  empty_range.shards[0].segment_end = empty_range.shards[0].segment_begin;
  EXPECT_FALSE(ValidatePlan(empty_range).ok());

  ShardPlan out_of_bounds = *base;
  out_of_bounds.shards[1].segment_end += 5;
  EXPECT_FALSE(ValidatePlan(out_of_bounds).ok());
}

TEST(PlanFileTest, RoundTripsAndStampsFingerprint) {
  const std::string path = testing::TempDir() + "/roundtrip.plan";
  MiningOptions options = BaseOptions();
  options.min_count = 3;
  options.max_letters = 5;
  auto plan = PlanShards({{"series/a.ppmts", 4 * 12}}, options, 3);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(WritePlanFile(&*plan, path).ok());
  EXPECT_NE(plan->fingerprint, 0u);

  const auto read = ReadPlanFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->fingerprint, plan->fingerprint);
  EXPECT_EQ(read->period, 4u);
  EXPECT_EQ(read->min_count, 3u);
  EXPECT_EQ(read->max_letters, 5u);
  ASSERT_EQ(read->inputs.size(), 1u);
  EXPECT_EQ(read->inputs[0].path, "series/a.ppmts");
  EXPECT_EQ(read->inputs[0].length, 48u);
  ASSERT_EQ(read->shards.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(read->shards[i].segment_begin, plan->shards[i].segment_begin);
    EXPECT_EQ(read->shards[i].segment_end, plan->shards[i].segment_end);
  }
  std::remove(path.c_str());
}

TEST(PlanFileTest, MissingFileIsNotFound) {
  const auto read = ReadPlanFile(testing::TempDir() + "/nope.plan");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(PlanFileTest, DifferentParametersDifferentFingerprint) {
  const std::string a_path = testing::TempDir() + "/fp_a.plan";
  const std::string b_path = testing::TempDir() + "/fp_b.plan";
  auto a = PlanShards({{"a.ppmts", 40}}, BaseOptions(), 2);
  MiningOptions other = BaseOptions();
  other.min_confidence = 0.75;
  auto b = PlanShards({{"a.ppmts", 40}}, other, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(WritePlanFile(&*a, a_path).ok());
  ASSERT_TRUE(WritePlanFile(&*b, b_path).ok());
  EXPECT_NE(a->fingerprint, b->fingerprint);
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

TEST(PlanTest, ToMiningOptionsCarriesParameters) {
  MiningOptions options = BaseOptions();
  options.min_count = 2;
  options.max_letters = 6;
  const auto plan = PlanShards({{"a.ppmts", 40}}, options, 2);
  ASSERT_TRUE(plan.ok());
  const MiningOptions round = plan->ToMiningOptions();
  EXPECT_EQ(round.period, 4u);
  EXPECT_EQ(round.min_count, 2u);
  EXPECT_EQ(round.max_letters, 6u);
  EXPECT_DOUBLE_EQ(round.min_confidence, 0.5);
}

TEST(ShardResultPathTest, CanonicalLayout) {
  EXPECT_EQ(ShardResultPath("/tmp/results", 7), "/tmp/results/shard-7.result");
}

}  // namespace
}  // namespace ppm::dist
