// Compile-mode test for the PPM_DCHECK gate: this TU forces debug checks ON
// via the PPM_DCHECK_ENABLED override; util_check_disabled_tu.cc forces them
// OFF. Both modes therefore compile and run in every build configuration,
// regardless of NDEBUG.
#define PPM_DCHECK_ENABLED 1
#include "util/check.h"

#include <gtest/gtest.h>

// Compiled with PPM_DCHECK_ENABLED=0 in util_check_disabled_tu.cc.
namespace ppm_check_test {
bool DisabledDcheckEvaluatesCondition();
bool DisabledDcheckSurvivesFalse();
}  // namespace ppm_check_test

namespace {

TEST(CheckTest, CheckPassesOnTrue) {
  PPM_CHECK(1 + 1 == 2);  // Must not abort.
}

TEST(CheckDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(PPM_CHECK(false), "PPM_CHECK failed");
}

TEST(CheckTest, EnabledDcheckEvaluatesCondition) {
  bool evaluated = false;
  PPM_DCHECK((evaluated = true));
  EXPECT_TRUE(evaluated);
}

TEST(CheckDeathTest, EnabledDcheckAbortsOnFalse) {
  EXPECT_DEATH(PPM_DCHECK(false), "PPM_CHECK failed");
}

TEST(CheckTest, DisabledDcheckNeverEvaluates) {
  EXPECT_FALSE(ppm_check_test::DisabledDcheckEvaluatesCondition());
}

TEST(CheckTest, DisabledDcheckSurvivesFalseCondition) {
  EXPECT_TRUE(ppm_check_test::DisabledDcheckSurvivesFalse());
}

}  // namespace
