#include "core/pattern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "util/random.h"

namespace ppm {
namespace {

using tsdb::SymbolTable;
using tsdb::TimeSeries;

TEST(PatternTest, AllStarByDefault) {
  Pattern pattern(4);
  EXPECT_EQ(pattern.period(), 4u);
  EXPECT_EQ(pattern.LLength(), 0u);
  EXPECT_EQ(pattern.LetterCount(), 0u);
  EXPECT_TRUE(pattern.IsEmpty());
  for (uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(pattern.IsStarAt(i));
}

TEST(PatternTest, LLengthVsLetterCount) {
  // Paper's example: a{b,c}*d* is of length 5, L-length 3, 4 letters.
  Pattern pattern(5);
  pattern.AddLetter(0, 0);  // a
  pattern.AddLetter(1, 1);  // b
  pattern.AddLetter(1, 2);  // c
  pattern.AddLetter(3, 3);  // d
  EXPECT_EQ(pattern.LLength(), 3u);
  EXPECT_EQ(pattern.LetterCount(), 4u);
  EXPECT_FALSE(pattern.IsStarAt(0));
  EXPECT_TRUE(pattern.IsStarAt(2));
}

TEST(PatternTest, RemoveLetter) {
  Pattern pattern(2);
  pattern.AddLetter(0, 7);
  pattern.RemoveLetter(0, 7);
  EXPECT_TRUE(pattern.IsEmpty());
}

TEST(PatternTest, SubpatternRelation) {
  Pattern big(3);
  big.AddLetter(0, 0);
  big.AddLetter(1, 1);
  big.AddLetter(1, 2);

  Pattern small(3);
  small.AddLetter(1, 1);

  EXPECT_TRUE(small.IsSubpatternOf(big));
  EXPECT_FALSE(big.IsSubpatternOf(small));
  EXPECT_TRUE(big.IsSubpatternOf(big));
  EXPECT_TRUE(Pattern(3).IsSubpatternOf(small));  // All-star below everything.

  Pattern other_period(4);
  EXPECT_FALSE(other_period.IsSubpatternOf(big));
  EXPECT_FALSE(small.IsSubpatternOf(other_period));
}

TEST(PatternTest, MatchesSegment) {
  TimeSeries series;
  series.AppendNamed({"a"});        // t=0
  series.AppendNamed({"b", "c"});   // t=1
  series.AppendNamed({});           // t=2
  series.AppendNamed({"a", "b"});   // t=3 (second segment)
  series.AppendNamed({"b"});        // t=4
  series.AppendNamed({"d"});        // t=5
  const auto a = *series.symbols().Lookup("a");
  const auto b = *series.symbols().Lookup("b");
  const auto c = *series.symbols().Lookup("c");

  Pattern pattern(3);
  pattern.AddLetter(0, a);
  pattern.AddLetter(1, b);
  EXPECT_TRUE(pattern.MatchesSegment(series, 0));
  EXPECT_TRUE(pattern.MatchesSegment(series, 3));

  pattern.AddLetter(1, c);  // Now requires both b and c at offset 1.
  EXPECT_TRUE(pattern.MatchesSegment(series, 0));
  EXPECT_FALSE(pattern.MatchesSegment(series, 3));

  // All-star matches everything.
  EXPECT_TRUE(Pattern(3).MatchesSegment(series, 0));
}

TEST(PatternTest, UnionAndIntersect) {
  Pattern a(3), b(3);
  a.AddLetter(0, 1);
  a.AddLetter(1, 2);
  b.AddLetter(1, 2);
  b.AddLetter(2, 3);

  const Pattern u = a.UnionWith(b);
  EXPECT_EQ(u.LetterCount(), 3u);
  EXPECT_TRUE(a.IsSubpatternOf(u));
  EXPECT_TRUE(b.IsSubpatternOf(u));

  const Pattern i = a.IntersectWith(b);
  EXPECT_EQ(i.LetterCount(), 1u);
  EXPECT_TRUE(i.IsSubpatternOf(a));
  EXPECT_TRUE(i.IsSubpatternOf(b));
  EXPECT_TRUE(i.at(1).Test(2));
}

TEST(PatternTest, FormatSingleAndGroupAndStar) {
  SymbolTable symbols;
  const auto a = symbols.Intern("a");
  const auto b1 = symbols.Intern("b1");
  const auto b2 = symbols.Intern("b2");
  const auto d = symbols.Intern("d");

  Pattern pattern(5);
  pattern.AddLetter(0, a);
  pattern.AddLetter(1, b1);
  pattern.AddLetter(1, b2);
  pattern.AddLetter(3, d);
  EXPECT_EQ(pattern.Format(symbols), "a {b1,b2} * d *");
}

TEST(PatternTest, ParseRoundTrip) {
  SymbolTable symbols;
  auto parsed = Pattern::Parse("a {b1,b2} * d *", &symbols);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->period(), 5u);
  EXPECT_EQ(parsed->LetterCount(), 4u);
  EXPECT_EQ(parsed->Format(symbols), "a {b1,b2} * d *");
}

TEST(PatternTest, ParseErrors) {
  SymbolTable symbols;
  EXPECT_FALSE(Pattern::Parse("", &symbols).ok());
  EXPECT_FALSE(Pattern::Parse("   ", &symbols).ok());
  EXPECT_FALSE(Pattern::Parse("{}", &symbols).ok());
  EXPECT_FALSE(Pattern::Parse("{a", &symbols).ok());
  EXPECT_FALSE(Pattern::Parse("a}b", &symbols).ok());
  EXPECT_FALSE(Pattern::Parse("a,b", &symbols).ok());
}

TEST(PatternTest, ParseSingleStarIsValidEmptyPattern) {
  SymbolTable symbols;
  auto parsed = Pattern::Parse("* * *", &symbols);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->period(), 3u);
  EXPECT_TRUE(parsed->IsEmpty());
}

TEST(PatternTest, EqualityAndHash) {
  Pattern a(3), b(3), c(3);
  a.AddLetter(0, 1);
  b.AddLetter(0, 1);
  c.AddLetter(1, 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(PatternHash()(a), PatternHash()(b));

  std::unordered_set<Pattern, PatternHash> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
  EXPECT_EQ(set.count(c), 0u);
}

TEST(PatternPropertyTest, FormatParseRoundTripOnRandomPatterns) {
  // Random patterns over random alphabets: Format then Parse must be the
  // identity (given the same symbol table).
  ppm::Rng rng(2025);
  SymbolTable symbols;
  for (int f = 0; f < 12; ++f) symbols.Intern("sym" + std::to_string(f));
  for (int round = 0; round < 200; ++round) {
    const uint32_t period = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    Pattern pattern(period);
    bool nonempty = false;
    for (uint32_t position = 0; position < period; ++position) {
      const int letters = static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < letters; ++i) {
        pattern.AddLetter(position,
                          static_cast<tsdb::FeatureId>(rng.NextBelow(12)));
        nonempty = true;
      }
    }
    if (!nonempty) pattern.AddLetter(0, 0);
    auto reparsed = Pattern::Parse(pattern.Format(symbols), &symbols);
    ASSERT_TRUE(reparsed.ok()) << pattern.Format(symbols);
    EXPECT_EQ(*reparsed, pattern) << pattern.Format(symbols);
  }
}

TEST(PatternPropertyTest, SubpatternRelationIsPartialOrder) {
  ppm::Rng rng(9);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 20; ++i) {
    Pattern pattern(4);
    for (uint32_t position = 0; position < 4; ++position) {
      if (rng.NextBool(0.5)) {
        pattern.AddLetter(position,
                          static_cast<tsdb::FeatureId>(rng.NextBelow(4)));
      }
    }
    patterns.push_back(std::move(pattern));
  }
  for (const Pattern& a : patterns) {
    EXPECT_TRUE(a.IsSubpatternOf(a));  // Reflexive.
    for (const Pattern& b : patterns) {
      // Antisymmetric.
      if (a.IsSubpatternOf(b) && b.IsSubpatternOf(a)) {
        EXPECT_EQ(a, b);
      }
      for (const Pattern& c : patterns) {
        // Transitive.
        if (a.IsSubpatternOf(b) && b.IsSubpatternOf(c)) {
          EXPECT_TRUE(a.IsSubpatternOf(c));
        }
      }
      // Meet/join interact correctly with the order.
      EXPECT_TRUE(a.IntersectWith(b).IsSubpatternOf(a));
      EXPECT_TRUE(a.IsSubpatternOf(a.UnionWith(b)));
    }
  }
}

TEST(PatternTest, CanonicalOrderIsStrictWeak) {
  std::vector<Pattern> patterns;
  for (uint32_t pos = 0; pos < 3; ++pos) {
    for (uint32_t f = 0; f < 3; ++f) {
      Pattern p(3);
      p.AddLetter(pos, f);
      patterns.push_back(p);
    }
  }
  std::sort(patterns.begin(), patterns.end());
  for (size_t i = 0; i + 1 < patterns.size(); ++i) {
    EXPECT_TRUE(patterns[i] < patterns[i + 1] ||
                patterns[i] == patterns[i + 1]);
    EXPECT_FALSE(patterns[i + 1] < patterns[i]);
  }
  // Shorter periods order first.
  EXPECT_TRUE(Pattern(2) < Pattern(3));
}

}  // namespace
}  // namespace ppm
