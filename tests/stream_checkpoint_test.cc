// Checkpoint/restore for the streaming miner: export/restore determinism,
// the kill-point matrix (crash after every instant, recover, finish, and
// the final snapshot must be byte-identical to an uninterrupted run), the
// every-offset truncation + bit-flip harness over checkpoint files, and the
// last-good-checkpoint guarantee under injected fsync failures. Runs under
// ASan/TSan/UBSan in CI (scripts/ci.sh).

#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "stream/continuous_miner.h"
#include "stream/streaming_miner.h"
#include "tsdb/fault_injection.h"
#include "tsdb/wal.h"
#include "util/random.h"

namespace ppm::stream {
namespace {

namespace fs = std::filesystem;
using tsdb::TimeSeries;

uint64_t FaultSeed() {
  const char* env = std::getenv("PPM_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

uint32_t BitForOffset(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<uint32_t>((z ^ (z >> 27)) & 7);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TimeSeries MakeSeries(uint64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  series.symbols().Intern("c");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    if (t % 4 == 0 && rng.NextBool(0.9)) instant.Set(0);
    if (t % 4 == 1 && rng.NextBool(0.85)) instant.Set(1);
    if (rng.NextBool(0.2)) instant.Set(2);
    series.Append(std::move(instant));
  }
  return series;
}

MiningOptions DefaultOptions() {
  MiningOptions options;
  options.period = 4;
  options.min_confidence = 0.7;
  return options;
}

/// Field-by-field equality of two exported states: the "byte-identical
/// checkpoint" guarantee without going through the codec.
void ExpectStatesEqual(const StreamingMinerState& a,
                       const StreamingMinerState& b) {
  EXPECT_EQ(a.drift_window, b.drift_window);
  EXPECT_EQ(a.letters, b.letters);
  EXPECT_EQ(a.seeded_counts, b.seeded_counts);
  EXPECT_EQ(a.other_counts, b.other_counts);
  EXPECT_EQ(a.window_history, b.window_history);
  EXPECT_EQ(a.pending_other, b.pending_other);
  EXPECT_EQ(a.segment_mask, b.segment_mask);
  EXPECT_EQ(a.segment_position, b.segment_position);
  EXPECT_EQ(a.instants_seen, b.instants_seen);
  EXPECT_EQ(a.segments_committed, b.segments_committed);
  EXPECT_EQ(a.hits, b.hits);
}

/// `ExpectStatesEqual` extended to the continuous state: core fields plus
/// the sliding-window eviction state.
void ExpectContinuousStatesEqual(const ContinuousMinerState& a,
                                 const ContinuousMinerState& b) {
  ExpectStatesEqual(a.core, b.core);
  EXPECT_EQ(a.window_segments, b.window_segments);
  EXPECT_EQ(a.window_masks, b.window_masks);
}

std::unique_ptr<ContinuousMiner> SeededContinuousMiner(
    const TimeSeries& series, uint64_t prefix_len,
    const ContinuousOptions& continuous) {
  TimeSeries prefix;
  prefix.symbols() = series.symbols();
  for (uint64_t t = 0; t < prefix_len; ++t) prefix.Append(series.at(t));
  auto miner =
      ContinuousMiner::SeedFromPrefix(DefaultOptions(), prefix, continuous);
  EXPECT_TRUE(miner.ok()) << miner.status();
  return std::move(*miner);
}

std::unique_ptr<StreamingMiner> SeededMiner(const TimeSeries& series,
                                            uint64_t prefix_len,
                                            uint32_t drift_window = 0) {
  TimeSeries prefix;
  prefix.symbols() = series.symbols();
  for (uint64_t t = 0; t < prefix_len; ++t) prefix.Append(series.at(t));
  auto miner =
      StreamingMiner::SeedFromPrefix(DefaultOptions(), prefix, drift_window);
  EXPECT_TRUE(miner.ok()) << miner.status();
  return std::move(*miner);
}

TEST(CheckpointStateTest, ExportRestoreRoundTripAtEveryCutKind) {
  const TimeSeries series = MakeSeries(1000, 5);
  // Cut right after seeding, mid-segment, at a segment boundary, and at a
  // checkpointed-then-grown point.
  for (const uint64_t cut : {200ull, 333ull, 600ull, 999ull}) {
    auto original = SeededMiner(series, 200, /*drift_window=*/6);
    for (uint64_t t = 200; t < cut; ++t) original->Append(series.at(t));

    const StreamingMinerState state = original->ExportState();
    auto restored = StreamingMiner::Restore(DefaultOptions(), state);
    ASSERT_TRUE(restored.ok()) << "cut " << cut << ": " << restored.status();
    ExpectStatesEqual((*restored)->ExportState(), state);

    // Both finish the stream; every observable must agree.
    for (uint64_t t = cut; t < series.length(); ++t) {
      original->Append(series.at(t));
      (*restored)->Append(series.at(t));
    }
    ExpectStatesEqual((*restored)->ExportState(), original->ExportState());
    EXPECT_EQ((*restored)->Snapshot().ToString(series.symbols()),
              original->Snapshot().ToString(series.symbols()));
    EXPECT_EQ((*restored)->DriftedLetters(), original->DriftedLetters());
  }
}

TEST(CheckpointStateTest, RestoreRejectsTamperedStates) {
  const TimeSeries series = MakeSeries(500, 9);
  auto miner = SeededMiner(series, 100, /*drift_window=*/4);
  for (uint64_t t = 100; t < 443; ++t) miner->Append(series.at(t));
  const StreamingMinerState good = miner->ExportState();
  ASSERT_TRUE(StreamingMiner::Restore(DefaultOptions(), good).ok());

  const auto expect_rejected = [&](StreamingMinerState state,
                                   const char* what) {
    const auto restored = StreamingMiner::Restore(DefaultOptions(), state);
    ASSERT_FALSE(restored.ok()) << what;
    EXPECT_EQ(restored.status().code(), StatusCode::kCorruption) << what;
  };

  {
    StreamingMinerState state = good;
    state.seeded_counts[0] = state.segments_committed + 1;
    expect_rejected(std::move(state), "seeded count beyond segments");
  }
  {
    StreamingMinerState state = good;
    state.instants_seen += 1;
    expect_rejected(std::move(state), "cursor arithmetic mismatch");
  }
  {
    StreamingMinerState state = good;
    if (!state.hits.empty()) {
      state.hits[0].second = state.segments_committed + 7;
      expect_rejected(std::move(state), "hit count beyond segments");
    }
  }
  {
    StreamingMinerState state = good;
    state.letters.push_back(Letter{0, 99});  // Not canonically sorted.
    expect_rejected(std::move(state), "non-canonical letters");
  }
  {
    StreamingMinerState state = good;
    state.window_history.pop_back();  // Window no longer matches counts.
    expect_rejected(std::move(state), "window/horizon mismatch");
  }
}

// Every invariant of the v2 window state must be re-validated on restore:
// a state whose window masks cannot have produced its counts and hits is
// corruption, never a silently different miner.
TEST(CheckpointStateTest, ContinuousRestoreRejectsTamperedWindowStates) {
  const TimeSeries series = MakeSeries(500, 13);
  ContinuousOptions continuous;
  continuous.window_segments = 6;
  continuous.drift_window = 4;
  auto miner = SeededContinuousMiner(series, 100, continuous);
  for (uint64_t t = 100; t < 443; ++t) miner->Append(series.at(t));
  const ContinuousMinerState good = miner->ExportState();
  ASSERT_EQ(good.window_masks.size(), 6u);
  ASSERT_TRUE(ContinuousMiner::Restore(DefaultOptions(), good).ok());

  const auto expect_rejected = [&](ContinuousMinerState state,
                                   const char* what) {
    const auto restored = ContinuousMiner::Restore(DefaultOptions(), state);
    ASSERT_FALSE(restored.ok()) << what;
    EXPECT_EQ(restored.status().code(), StatusCode::kCorruption) << what;
  };

  {
    ContinuousMinerState state = good;
    state.window_segments = 0;  // Masks present without a window.
    expect_rejected(std::move(state), "masks without a window");
  }
  {
    ContinuousMinerState state = good;
    state.window_masks.pop_back();  // Fewer masks than the horizon.
    expect_rejected(std::move(state), "window mask count mismatch");
  }
  {
    ContinuousMinerState state = good;
    for (auto& mask : state.window_masks) {
      if (mask.size() >= 2) {
        std::swap(mask.front(), mask.back());  // Unsorted mask.
        expect_rejected(std::move(state), "unsorted window mask");
        break;
      }
    }
  }
  {
    ContinuousMinerState state = good;
    for (auto& mask : state.window_masks) {
      if (!mask.empty()) {
        mask.back() = static_cast<uint32_t>(good.core.letters.size());
        expect_rejected(std::move(state), "out-of-range letter index");
        break;
      }
    }
  }
  {
    ContinuousMinerState state = good;
    for (auto& mask : state.window_masks) {
      if (!mask.empty()) {
        mask.erase(mask.begin());  // Counts no longer re-aggregate.
        expect_rejected(std::move(state), "masks disagree with counts");
        break;
      }
    }
  }
  {
    // Keep the per-letter counts consistent but break the hit multiset:
    // move one letter from a >=2-letter mask into a disjoint mask. Every
    // letter is still counted once per original segment, so only the
    // masks-vs-hits cross-check can catch it.
    ContinuousMinerState state = good;
    bool mutated = false;
    for (size_t i = 0; i < state.window_masks.size() && !mutated; ++i) {
      auto& from = state.window_masks[i];
      if (from.size() < 2) continue;
      for (size_t j = 0; j < state.window_masks.size() && !mutated; ++j) {
        if (j == i) continue;
        auto& to = state.window_masks[j];
        const uint32_t moved = from.back();
        if (std::find(to.begin(), to.end(), moved) != to.end()) continue;
        from.pop_back();
        to.insert(std::upper_bound(to.begin(), to.end(), moved), moved);
        mutated = true;
      }
    }
    if (mutated) {
      expect_rejected(std::move(state), "masks disagree with hits");
    }
  }
}

TEST(CheckpointStateTest, ContinuousExportRestoreRoundTripsWithWindow) {
  const TimeSeries series = MakeSeries(900, 17);
  ContinuousOptions continuous;
  continuous.window_segments = 8;
  continuous.compact_every = 5;
  continuous.drift_window = 3;
  for (const uint64_t cut : {120ull, 357ull, 600ull, 899ull}) {
    auto original = SeededContinuousMiner(series, 120, continuous);
    for (uint64_t t = 120; t < cut; ++t) original->Append(series.at(t));

    const ContinuousMinerState state = original->ExportState();
    auto restored = ContinuousMiner::Restore(DefaultOptions(), state,
                                             continuous.compact_every);
    ASSERT_TRUE(restored.ok()) << "cut " << cut << ": " << restored.status();
    ExpectContinuousStatesEqual((*restored)->ExportState(), state);

    for (uint64_t t = cut; t < series.length(); ++t) {
      original->Append(series.at(t));
      (*restored)->Append(series.at(t));
    }
    ExpectContinuousStatesEqual((*restored)->ExportState(),
                                original->ExportState());
    EXPECT_EQ((*restored)->Snapshot().ToString(series.symbols()),
              original->Snapshot().ToString(series.symbols()));
    EXPECT_EQ((*restored)->segments_evicted(), original->segments_evicted());
  }
}

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/stream_ckpt_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointDirTest, WriteReadCheckpointRoundTrip) {
  const TimeSeries series = MakeSeries(800, 11);
  auto miner = SeededMiner(series, 200, /*drift_window=*/5);
  for (uint64_t t = 200; t < 650; ++t) miner->Append(series.at(t));

  ASSERT_TRUE(WriteCheckpoint(*miner, series.symbols(), dir_).ok());
  auto data = ReadCheckpoint(CheckpointPath(dir_));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->period, 4u);
  EXPECT_EQ(data->symbols, series.symbols().names());

  auto restored = RestoreMiner(*data, DefaultOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectStatesEqual((*restored)->ExportState(), miner->ExportState());
}

TEST_F(CheckpointDirTest, KillPointMatrixRecoversDeterministically) {
  const TimeSeries series = MakeSeries(400, 7);
  const uint64_t kPrefix = 100;
  const uint64_t kCheckpointEverySegments = 8;

  // The uninterrupted reference.
  auto reference = SeededMiner(series, kPrefix);
  for (uint64_t t = kPrefix; t < series.length(); ++t) {
    reference->Append(series.at(t));
  }
  const std::string ref_snapshot =
      reference->Snapshot().ToString(series.symbols());
  const StreamingMinerState ref_state = reference->ExportState();

  for (uint64_t cut = kPrefix; cut <= series.length(); ++cut) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    // Run the `ppm stream` protocol up to the kill point `cut`.
    {
      auto miner = SeededMiner(series, kPrefix);
      auto wal = tsdb::WalWriter::Open(WalPath(dir_), tsdb::WalFsync::kNever,
                                       0, 0);
      ASSERT_TRUE(wal.ok()) << wal.status();
      for (uint64_t t = 0; t < kPrefix; ++t) {
        ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
      }
      ASSERT_TRUE(
          CheckpointStream(*miner, **wal, series.symbols(), dir_).ok());
      uint64_t last_checkpoint = miner->segments_committed();
      for (uint64_t t = kPrefix; t < cut; ++t) {
        ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
        miner->Append(series.at(t));
        if (miner->instants_seen() % 4 == 0 &&
            miner->segments_committed() - last_checkpoint >=
                kCheckpointEverySegments) {
          ASSERT_TRUE(
              CheckpointStream(*miner, **wal, series.symbols(), dir_).ok());
          last_checkpoint = miner->segments_committed();
        }
      }
      // Crash: no final checkpoint, and on some cuts a torn half-frame
      // lands in the WAL (what the mid-append kill switch produces).
      if (cut % 3 == 1) {
        std::ofstream torn(WalPath(dir_),
                           std::ios::binary | std::ios::app);
        torn.write("\xab\xcd\xef", static_cast<std::streamsize>(cut % 3));
      }
    }

    // Recover, finish the stream, and demand the exact reference state.
    auto recovered = RecoverStream(dir_, DefaultOptions());
    ASSERT_TRUE(recovered.ok()) << "cut " << cut << ": "
                                << recovered.status();
    StreamingMiner& miner = *recovered->miner;
    EXPECT_EQ(miner.instants_seen(), cut) << "cut " << cut;
    auto wal = tsdb::WalWriter::Open(WalPath(dir_), tsdb::WalFsync::kNever,
                                     recovered->wal.next_seq,
                                     recovered->wal.valid_bytes);
    ASSERT_TRUE(wal.ok()) << "cut " << cut << ": " << wal.status();
    for (uint64_t t = miner.instants_seen(); t < series.length(); ++t) {
      ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
      miner.Append(series.at(t));
    }
    ExpectStatesEqual(miner.ExportState(), ref_state);
    EXPECT_EQ(miner.Snapshot().ToString(series.symbols()), ref_snapshot)
        << "cut " << cut;
  }
}

TEST_F(CheckpointDirTest, WindowedCheckpointRoundTripsAndGatesRestore) {
  const TimeSeries series = MakeSeries(800, 19);
  ContinuousOptions continuous;
  continuous.window_segments = 10;
  continuous.drift_window = 5;
  auto miner = SeededContinuousMiner(series, 200, continuous);
  for (uint64_t t = 200; t < 650; ++t) miner->Append(series.at(t));
  ASSERT_GT(miner->segments_evicted(), 0u);

  ASSERT_TRUE(WriteCheckpoint(*miner, series.symbols(), dir_).ok());
  auto data = ReadCheckpoint(CheckpointPath(dir_));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->state.window_segments, 10u);
  EXPECT_EQ(data->state.window_masks.size(), 10u);

  auto restored = RestoreContinuousMiner(*data, DefaultOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectContinuousStatesEqual((*restored)->ExportState(),
                              miner->ExportState());
  EXPECT_EQ((*restored)->segments_evicted(), miner->segments_evicted());

  // A windowed checkpoint cannot silently resume as a whole-history
  // stream: the facade restore must reject it.
  const auto as_streaming = RestoreMiner(*data, DefaultOptions());
  ASSERT_FALSE(as_streaming.ok());
  EXPECT_EQ(as_streaming.status().code(), StatusCode::kCorruption);
  EXPECT_NE(as_streaming.status().ToString().find("pattern window"),
            std::string::npos)
      << as_streaming.status();
}

// The kill-point matrix for the continuous engine: with a sliding window
// evicting on every commit and compaction every 3 segments, crash after
// every instant (torn WAL tails on a third of the cuts), recover with
// `RecoverContinuousStream`, finish the stream, and demand a state
// field-identical to the uninterrupted run -- including cuts that land
// immediately after an eviction or mid-way between two compactions.
TEST_F(CheckpointDirTest, ContinuousKillPointMatrixRecoversDeterministically) {
  const TimeSeries series = MakeSeries(400, 23);
  const uint64_t kPrefix = 100;
  const uint64_t kCheckpointEverySegments = 8;
  ContinuousOptions continuous;
  continuous.window_segments = 6;
  continuous.compact_every = 3;
  continuous.drift_window = 4;

  auto reference = SeededContinuousMiner(series, kPrefix, continuous);
  for (uint64_t t = kPrefix; t < series.length(); ++t) {
    reference->Append(series.at(t));
  }
  const std::string ref_snapshot =
      reference->Snapshot().ToString(series.symbols());
  const ContinuousMinerState ref_state = reference->ExportState();

  for (uint64_t cut = kPrefix; cut <= series.length(); ++cut) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    {
      auto miner = SeededContinuousMiner(series, kPrefix, continuous);
      auto wal = tsdb::WalWriter::Open(WalPath(dir_), tsdb::WalFsync::kNever,
                                       0, 0);
      ASSERT_TRUE(wal.ok()) << wal.status();
      for (uint64_t t = 0; t < kPrefix; ++t) {
        ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
      }
      ASSERT_TRUE(
          CheckpointStream(*miner, **wal, series.symbols(), dir_).ok());
      uint64_t last_checkpoint = miner->segments_committed();
      for (uint64_t t = kPrefix; t < cut; ++t) {
        ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
        miner->Append(series.at(t));
        if (miner->instants_seen() % 4 == 0 &&
            miner->segments_committed() - last_checkpoint >=
                kCheckpointEverySegments) {
          ASSERT_TRUE(
              CheckpointStream(*miner, **wal, series.symbols(), dir_).ok());
          last_checkpoint = miner->segments_committed();
        }
      }
      if (cut % 3 == 1) {
        std::ofstream torn(WalPath(dir_),
                           std::ios::binary | std::ios::app);
        torn.write("\xab\xcd\xef", static_cast<std::streamsize>(cut % 3));
      }
    }

    auto recovered = RecoverContinuousStream(dir_, DefaultOptions(),
                                             continuous.compact_every);
    ASSERT_TRUE(recovered.ok()) << "cut " << cut << ": "
                                << recovered.status();
    ContinuousMiner& miner = *recovered->miner;
    EXPECT_EQ(miner.instants_seen(), cut) << "cut " << cut;
    EXPECT_EQ(miner.window_segments(), 6u);
    auto wal = tsdb::WalWriter::Open(WalPath(dir_), tsdb::WalFsync::kNever,
                                     recovered->wal.next_seq,
                                     recovered->wal.valid_bytes);
    ASSERT_TRUE(wal.ok()) << "cut " << cut << ": " << wal.status();
    for (uint64_t t = miner.instants_seen(); t < series.length(); ++t) {
      ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
      miner.Append(series.at(t));
    }
    ExpectContinuousStatesEqual(miner.ExportState(), ref_state);
    EXPECT_EQ(miner.Snapshot().ToString(series.symbols()), ref_snapshot)
        << "cut " << cut;
    EXPECT_EQ(miner.segments_evicted(), reference->segments_evicted())
        << "cut " << cut;
  }
}

class CheckpointCorruptionTest : public CheckpointDirTest {
 protected:
  void SetUp() override {
    CheckpointDirTest::SetUp();
    series_ = MakeSeries(600, 3);
    auto miner = SeededMiner(series_, 150, /*drift_window=*/7);
    for (uint64_t t = 150; t < 500; ++t) miner->Append(series_.at(t));
    ASSERT_TRUE(WriteCheckpoint(*miner, series_.symbols(), dir_).ok());
    path_ = CheckpointPath(dir_);
    bytes_ = FileBytes(path_);
    ASSERT_GT(bytes_.size(), 20u);
  }

  TimeSeries series_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CheckpointCorruptionTest, TruncationAtEveryOffsetIsCorruption) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    WriteBytes(path_, bytes_.substr(0, len));
    const auto data = ReadCheckpoint(path_);
    ASSERT_FALSE(data.ok()) << "accepted a checkpoint truncated to " << len
                            << " of " << bytes_.size() << " bytes";
    EXPECT_EQ(data.status().code(), StatusCode::kCorruption)
        << "truncated to " << len << ": " << data.status();
  }
}

TEST_F(CheckpointCorruptionTest, BitFlipAtEveryOffsetIsCorruption) {
  const uint64_t seed = FaultSeed();
  for (size_t offset = 0; offset < bytes_.size(); ++offset) {
    std::string corrupted = bytes_;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(path_, corrupted);
    const auto data = ReadCheckpoint(path_);
    ASSERT_FALSE(data.ok()) << "accepted a flip of bit "
                            << BitForOffset(seed, offset) << " at offset "
                            << offset << " (seed " << seed << ")";
    EXPECT_EQ(data.status().code(), StatusCode::kCorruption)
        << "flip at offset " << offset << ": " << data.status();
  }
}

// The same every-offset harness over a v2 checkpoint whose window fields
// are populated: truncation and single-bit damage anywhere in the file --
// including inside the window-mask section -- must read as corruption.
class WindowedCheckpointCorruptionTest : public CheckpointDirTest {
 protected:
  void SetUp() override {
    CheckpointDirTest::SetUp();
    series_ = MakeSeries(320, 29);
    ContinuousOptions continuous;
    continuous.window_segments = 8;
    continuous.drift_window = 3;
    auto miner = SeededContinuousMiner(series_, 100, continuous);
    for (uint64_t t = 100; t < 300; ++t) miner->Append(series_.at(t));
    ASSERT_GT(miner->segments_evicted(), 0u);
    ASSERT_TRUE(WriteCheckpoint(*miner, series_.symbols(), dir_).ok());
    path_ = CheckpointPath(dir_);
    bytes_ = FileBytes(path_);
    ASSERT_GT(bytes_.size(), 20u);
  }

  TimeSeries series_;
  std::string path_;
  std::string bytes_;
};

TEST_F(WindowedCheckpointCorruptionTest, TruncationAtEveryOffsetIsCorruption) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    WriteBytes(path_, bytes_.substr(0, len));
    const auto data = ReadCheckpoint(path_);
    ASSERT_FALSE(data.ok()) << "accepted a windowed checkpoint truncated to "
                            << len << " of " << bytes_.size() << " bytes";
    EXPECT_EQ(data.status().code(), StatusCode::kCorruption)
        << "truncated to " << len << ": " << data.status();
  }
}

TEST_F(WindowedCheckpointCorruptionTest, BitFlipAtEveryOffsetIsCorruption) {
  const uint64_t seed = FaultSeed();
  for (size_t offset = 0; offset < bytes_.size(); ++offset) {
    std::string corrupted = bytes_;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(path_, corrupted);
    const auto data = ReadCheckpoint(path_);
    ASSERT_FALSE(data.ok()) << "accepted a flip of bit "
                            << BitForOffset(seed, offset) << " at offset "
                            << offset << " (seed " << seed << ")";
    EXPECT_EQ(data.status().code(), StatusCode::kCorruption)
        << "flip at offset " << offset << ": " << data.status();
  }
}

TEST_F(CheckpointDirTest, FailedCheckpointWriteKeepsLastGood) {
  const TimeSeries series = MakeSeries(400, 21);
  auto miner = SeededMiner(series, 100);
  ASSERT_TRUE(WriteCheckpoint(*miner, series.symbols(), dir_).ok());
  const uint64_t good_instants = miner->instants_seen();

  for (uint64_t t = 100; t < 300; ++t) miner->Append(series.at(t));
  {
    tsdb::FaultPlan plan;
    plan.seed = 1;
    plan.fail_fsync = true;
    tsdb::ScopedFaultInjection scoped(plan);
    const Status failed = WriteCheckpoint(*miner, series.symbols(), dir_);
    ASSERT_FALSE(failed.ok());
  }
  // The failed write left no temp file and the previous checkpoint intact.
  EXPECT_FALSE(fs::exists(CheckpointPath(dir_) + ".tmp"));
  const auto data = ReadCheckpoint(CheckpointPath(dir_));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->state.core.instants_seen, good_instants);
}

TEST_F(CheckpointDirTest, CheckpointWithoutWalIsCorruption) {
  const TimeSeries series = MakeSeries(400, 2);
  auto miner = SeededMiner(series, 100);
  ASSERT_TRUE(WriteCheckpoint(*miner, series.symbols(), dir_).ok());
  const auto recovered = RecoverStream(dir_, DefaultOptions());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointDirTest, CheckpointAheadOfWalIsCorruption) {
  const TimeSeries series = MakeSeries(400, 2);
  auto miner = SeededMiner(series, 100);
  // A WAL that durably holds fewer instants than the checkpoint covers.
  auto wal = tsdb::WalWriter::Open(WalPath(dir_), tsdb::WalFsync::kNever,
                                   0, 0);
  ASSERT_TRUE(wal.ok());
  for (uint64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE((*wal)->Append(series.at(t)).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  ASSERT_TRUE(WriteCheckpoint(*miner, series.symbols(), dir_).ok());
  const auto recovered = RecoverStream(dir_, DefaultOptions());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
  EXPECT_NE(recovered.status().ToString().find("ahead of the durable WAL"),
            std::string::npos)
      << recovered.status();
}

TEST_F(CheckpointDirTest, MissingCheckpointIsNotFound) {
  const auto recovered = RecoverStream(dir_, DefaultOptions());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ppm::stream
