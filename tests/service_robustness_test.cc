// Serving-path robustness: a client started before the daemon must
// connect once the socket appears (bounded retry for the startup race),
// non-transient failures must fail fast, and a client that disconnects
// mid-response must cost the daemon exactly one connection -- the next
// client is served normally (no SIGPIPE death, no wedged worker).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "tsdb/time_series.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

class ServiceRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // What ppm_main.cc / ppmd_main.cc do for the real binaries: a peer
    // hanging up mid-write must be an EPIPE error, not process death.
    ::signal(SIGPIPE, SIG_IGN);
  }

  void SetUp() override {
    // Unix socket paths are length-limited (~108 bytes), so keep them short.
    dir_ = testing::TempDir() + "/svcrb_" + std::to_string(::getpid()) + "_" +
           std::to_string(instance_++);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = dir_ + "/s.sock";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<PatternServer> StartServer() {
    ServerOptions options;
    options.socket_path = socket_;
    auto server = PatternServer::Start(dir_ + "/db", options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(*server);
  }

  static tsdb::TimeSeries PeriodicSeries(uint32_t period, uint32_t segments) {
    tsdb::TimeSeries series;
    for (uint32_t s = 0; s < segments; ++s) {
      for (uint32_t p = 0; p < period; ++p) {
        if (p == 0) {
          series.AppendNamed({"tick"});
        } else {
          series.AppendNamed({});
        }
      }
    }
    return series;
  }

  std::string dir_;
  std::string socket_;
  inline static int instance_ = 0;
};

TEST_F(ServiceRobustnessTest, ConnectWithRetryLateBindsToAStartingServer) {
  // The client starts first and spins on ECONNREFUSED/ENOENT while the
  // "daemon" takes its time binding the socket -- the startup race
  // `ppm client --connect-wait-ms` absorbs.
  std::unique_ptr<PatternServer> server;
  std::thread late_binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server = StartServer();
  });
  const auto client = Client::ConnectWithRetry(socket_, /*wait_ms=*/5000,
                                               /*retry_interval_ms=*/10);
  late_binder.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  wire::Request stats;
  stats.op = wire::Op::kStats;
  const auto response = (*client)->Call(stats);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
}

TEST_F(ServiceRobustnessTest, ZeroWaitFailsFastWhenNobodyListens) {
  const auto start = std::chrono::steady_clock::now();
  const auto client = Client::ConnectWithRetry(socket_, /*wait_ms=*/0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST_F(ServiceRobustnessTest, RetryGivesUpAfterTheBudget) {
  const auto start = std::chrono::steady_clock::now();
  const auto client = Client::ConnectWithRetry(socket_, /*wait_ms=*/200,
                                               /*retry_interval_ms=*/10);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(client.ok());
  EXPECT_GE(elapsed_ms, 200);
  EXPECT_LT(elapsed_ms, 5000);
}

TEST_F(ServiceRobustnessTest, NonTransientErrorFailsImmediately) {
  // A path that exists but is not a socket: connect fails with
  // ECONNREFUSED on some systems but ENOTSOCK here -- write a plain file
  // and use an unreachable directory instead, which yields ENOTDIR, a
  // permanent error the retry loop must not spin on.
  const std::string bogus = dir_ + "/file/s.sock";
  {
    std::ofstream out(dir_ + "/file");
    out << "plain";
  }
  const auto start = std::chrono::steady_clock::now();
  const auto client = Client::ConnectWithRetry(bogus, /*wait_ms=*/5000,
                                               /*retry_interval_ms=*/10);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(client.ok());
  EXPECT_LT(elapsed_ms, 1000) << "retry loop spun on a permanent error";
}

TEST_F(ServiceRobustnessTest, MidResponseDisconnectDoesNotKillTheServer) {
  auto server = StartServer();

  // Seed a series large enough that its kGet response spans many socket
  // buffer fills, so the abandoning client's hangup lands mid-write.
  {
    const auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    wire::Request put;
    put.op = wire::Op::kPut;
    put.name = "big";
    put.series = PeriodicSeries(16, 20000);
    const auto response = (*client)->Call(put);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->code, 0) << response->message;
  }

  // A raw rude client: handshake, send the kGet request, read one byte of
  // the response, hang up. The daemon is mid-WriteFrame when the
  // connection dies; that must be a per-connection EPIPE, nothing more.
  for (int round = 0; round < 3; ++round) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_.c_str(), socket_.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    ASSERT_TRUE(wire::WriteMagic(fd).ok());
    ASSERT_TRUE(wire::ExpectMagic(fd).ok());
    wire::Request get;
    get.op = wire::Op::kGet;
    get.name = "big";
    ASSERT_TRUE(wire::WriteFrame(fd, wire::EncodeRequest(get)).ok());
    char first = 0;
    ASSERT_EQ(::read(fd, &first, 1), 1);  // response started flowing
    ::close(fd);                          // ... and we are gone
  }

  // The daemon must still be alive and serving.
  const auto client = Client::Connect(socket_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  wire::Request stats;
  stats.op = wire::Op::kStats;
  const auto response = (*client)->Call(stats);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
}

}  // namespace
}  // namespace ppm::service
