#include "core/f1_scan.h"

#include <gtest/gtest.h>

#include "tsdb/series_source.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

TEST(MiningOptionsTest, ValidateRejectsBadInputs) {
  MiningOptions options;
  options.period = 0;
  EXPECT_FALSE(options.Validate(100).ok());
  options.period = 101;
  EXPECT_FALSE(options.Validate(100).ok());
  options.period = 10;
  options.min_confidence = 0.0;
  EXPECT_FALSE(options.Validate(100).ok());
  options.min_confidence = 1.5;
  EXPECT_FALSE(options.Validate(100).ok());
  options.min_confidence = 1.0;
  EXPECT_TRUE(options.Validate(100).ok());
  // Explicit min_count bypasses the confidence check.
  options.min_confidence = 0.0;
  options.min_count = 3;
  EXPECT_TRUE(options.Validate(100).ok());
}

TEST(MiningOptionsTest, EffectiveMinCountRounding) {
  MiningOptions options;
  options.min_confidence = 0.25;
  EXPECT_EQ(options.EffectiveMinCount(100), 25u);  // Exact.
  options.min_confidence = 0.251;
  EXPECT_EQ(options.EffectiveMinCount(100), 26u);  // Rounds up.
  options.min_confidence = 1.0;
  EXPECT_EQ(options.EffectiveMinCount(7), 7u);
  options.min_confidence = 0.001;
  EXPECT_EQ(options.EffectiveMinCount(10), 1u);  // Never below 1.
  options.min_count = 4;
  EXPECT_EQ(options.EffectiveMinCount(100), 4u);  // Override wins.
}

TEST(F1ScanTest, ExactCountsAndThreshold) {
  // Period 2, 4 whole segments: 'a' at even offsets in 3 segments,
  // 'b' at odd offsets in 2 segments, 'c' once.
  TimeSeries series;
  series.AppendNamed({"a"});       // seg 0, pos 0
  series.AppendNamed({"b"});       // seg 0, pos 1
  series.AppendNamed({"a"});       // seg 1
  series.AppendNamed({});          //
  series.AppendNamed({"a", "c"});  // seg 2
  series.AppendNamed({"b"});       //
  series.AppendNamed({});          // seg 3
  series.AppendNamed({});          //

  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;  // min_count = 2 of 4.

  auto f1 = ScanForF1(source, options);
  ASSERT_TRUE(f1.ok()) << f1.status();
  EXPECT_EQ(f1->num_periods, 4u);
  EXPECT_EQ(f1->min_count, 2u);
  // Frequent letters: a@0 (count 3), b@1 (count 2). c@0 has count 1.
  ASSERT_EQ(f1->space.size(), 2u);
  const auto a = *series.symbols().Lookup("a");
  const auto b = *series.symbols().Lookup("b");
  EXPECT_EQ(f1->space.IndexOf(0, a), 0u);
  EXPECT_EQ(f1->space.IndexOf(1, b), 1u);
  EXPECT_EQ(f1->letter_counts, (std::vector<uint64_t>{3, 2}));
}

TEST(F1ScanTest, TailBeyondWholePeriodsIgnored) {
  TimeSeries series;
  // Period 3, length 7: only 2 whole segments; the tail instant has 'z'
  // which must not be counted.
  for (int i = 0; i < 6; ++i) series.AppendNamed({"a"});
  series.AppendNamed({"z"});

  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto f1 = ScanForF1(source, options);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->num_periods, 2u);
  const auto z = *series.symbols().Lookup("z");
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(f1->space.IndexOf(p, z), Bitset::kNoBit);
  }
  EXPECT_EQ(f1->space.size(), 3u);  // a at each of 3 positions, count 2 each.
}

TEST(F1ScanTest, LetterFilterDropsLetters) {
  TimeSeries series;
  for (int i = 0; i < 8; ++i) series.AppendNamed({"a", "b"});
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  const auto b = *series.symbols().Lookup("b");
  options.letter_filter = [b](uint32_t, tsdb::FeatureId feature) {
    return feature != b;
  };
  auto f1 = ScanForF1(source, options);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->space.size(), 2u);  // Only 'a' at both positions.
  for (uint32_t i = 0; i < f1->space.size(); ++i) {
    EXPECT_NE(f1->space.letter(i).feature, b);
  }
}

TEST(F1ScanTest, InvalidOptionsPropagate) {
  TimeSeries series;
  series.AppendEmpty(10);
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 0;
  EXPECT_FALSE(ScanForF1(source, options).ok());
}

TEST(F1ScanTest, EmptyFrequentSetIsValid) {
  TimeSeries series;
  series.AppendNamed({"a"});
  series.AppendEmpty(9);
  InMemorySeriesSource source(&series);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.9;
  auto f1 = ScanForF1(source, options);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->space.size(), 0u);
}

}  // namespace
}  // namespace ppm
