#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace ppm {
namespace {

TEST(ResolveThreadCountTest, LiteralAndHardwareRequests) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // hardware concurrency, never 0
}

TEST(SplitRangeTest, CoversRangeWithDisjointOrderedChunks) {
  for (const uint64_t n : {1ull, 2ull, 7ull, 64ull, 1000ull, 1001ull}) {
    for (const uint32_t k : {1u, 2u, 3u, 8u, 64u}) {
      const auto chunks = ThreadPool::SplitRange(n, k);
      ASSERT_FALSE(chunks.empty());
      ASSERT_LE(chunks.size(), static_cast<size_t>(k));
      ASSERT_LE(chunks.size(), n);
      uint64_t expected_begin = 0;
      for (size_t c = 0; c < chunks.size(); ++c) {
        EXPECT_EQ(chunks[c].index, c);
        EXPECT_EQ(chunks[c].begin, expected_begin);
        EXPECT_GT(chunks[c].end, chunks[c].begin);  // never empty
        expected_begin = chunks[c].end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(SplitRangeTest, EmptyRangeAndZeroChunks) {
  EXPECT_TRUE(ThreadPool::SplitRange(0, 4).empty());
  EXPECT_TRUE(ThreadPool::SplitRange(10, 0).empty());
}

TEST(SplitRangeTest, IsDeterministic) {
  const auto a = ThreadPool::SplitRange(12345, 7);
  const auto b = ThreadPool::SplitRange(12345, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].begin, b[c].begin);
    EXPECT_EQ(a[c].end, b[c].end);
  }
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<uint32_t>> visits(1000);
  pool.ParallelFor(visits.size(), [&visits](const ThreadPool::Chunk& chunk) {
    for (uint64_t i = chunk.begin; i < chunk.end; ++i) {
      visits[i].fetch_add(1);
    }
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForShardedSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<uint64_t> values(10000);
  std::iota(values.begin(), values.end(), 1);
  std::vector<uint64_t> partial(pool.size(), 0);
  pool.ParallelFor(values.size(), [&](const ThreadPool::Chunk& chunk) {
    for (uint64_t i = chunk.begin; i < chunk.end; ++i) {
      partial[chunk.index] += values[i];
    }
  });
  const uint64_t total =
      std::accumulate(partial.begin(), partial.end(), uint64_t{0});
  EXPECT_EQ(total, 10000ull * 10001 / 2);
}

TEST(ThreadPoolTest, ParallelForWithFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](const ThreadPool::Chunk& chunk) {
    counter.fetch_add(static_cast<int>(chunk.end - chunk.begin));
  });
  EXPECT_EQ(counter.load(), 3);
  pool.ParallelFor(0, [&counter](const ThreadPool::Chunk&) {
    counter.fetch_add(1000);  // must never run
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SinglethreadedPoolStillCompletesWork) {
  ThreadPool pool(1);
  uint64_t sum = 0;  // single worker: no synchronization needed
  pool.ParallelFor(100, [&sum](const ThreadPool::Chunk& chunk) {
    for (uint64_t i = chunk.begin; i < chunk.end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

}  // namespace
}  // namespace ppm
