#include "perturb/perturbation.h"

#include <gtest/gtest.h>

#include "tsdb/time_series.h"
#include "util/random.h"

namespace ppm::perturb {
namespace {

using tsdb::TimeSeries;

TEST(EnlargeTimeSlotsTest, ZeroWindowIsIdentity) {
  TimeSeries series;
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  const TimeSeries out = EnlargeTimeSlots(series, 0);
  ASSERT_EQ(out.length(), 2u);
  EXPECT_EQ(out.at(0), series.at(0));
  EXPECT_EQ(out.at(1), series.at(1));
}

TEST(EnlargeTimeSlotsTest, UnionsNeighbors) {
  TimeSeries series;
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  series.AppendNamed({"c"});
  const auto a = *series.symbols().Lookup("a");
  const auto b = *series.symbols().Lookup("b");
  const auto c = *series.symbols().Lookup("c");

  const TimeSeries out = EnlargeTimeSlots(series, 1);
  ASSERT_EQ(out.length(), 3u);
  // t=0 sees {a,b}; t=1 sees {a,b,c}; t=2 sees {b,c}.
  EXPECT_TRUE(out.at(0).Test(a));
  EXPECT_TRUE(out.at(0).Test(b));
  EXPECT_FALSE(out.at(0).Test(c));
  EXPECT_EQ(out.at(1).Count(), 3u);
  EXPECT_FALSE(out.at(2).Test(a));
  EXPECT_TRUE(out.at(2).Test(b));
  EXPECT_TRUE(out.at(2).Test(c));
}

TEST(EnlargeTimeSlotsTest, WindowLargerThanSeries) {
  TimeSeries series;
  series.AppendNamed({"a"});
  series.AppendNamed({"b"});
  const TimeSeries out = EnlargeTimeSlots(series, 10);
  for (uint64_t t = 0; t < out.length(); ++t) {
    EXPECT_EQ(out.at(t).Count(), 2u);
  }
}

TEST(EnlargeTimeSlotsTest, PreservesSymbols) {
  TimeSeries series;
  series.AppendNamed({"x"});
  const TimeSeries out = EnlargeTimeSlots(series, 2);
  EXPECT_TRUE(out.symbols().Lookup("x").ok());
}

/// Jim reads the paper around offset 2 of every 10-instant period, but the
/// exact instant jitters by +/-1. Strict mining at the center offset misses
/// many occurrences; slot enlargement with half-window 1 recovers them.
TEST(PerturbationMiningTest, RecoversJitteredPattern) {
  Rng rng(1001);
  TimeSeries series;
  series.symbols().Intern("paper");
  const uint32_t period = 10;
  const int days = 200;
  for (int day = 0; day < days; ++day) {
    for (uint32_t slot = 0; slot < period; ++slot) {
      tsdb::FeatureSet instant;
      series.Append(std::move(instant));
    }
    const int64_t jitter = static_cast<int64_t>(rng.NextBelow(3)) - 1;
    const uint64_t t = static_cast<uint64_t>(day) * period +
                       static_cast<uint64_t>(2 + jitter);
    series.at(t).Set(0);
  }

  MiningOptions options;
  options.period = period;
  options.min_confidence = 0.9;

  // Strict mining: occurrence probability at the exact offset is ~1/3.
  auto strict = Mine(series, options);
  ASSERT_TRUE(strict.ok());
  Pattern at2(period);
  at2.AddLetter(2, 0);
  EXPECT_EQ(strict->Find(at2), nullptr);

  // Enlarged slots catch the jitter.
  auto tolerant = MineWithPerturbation(series, options, /*half_window=*/1);
  ASSERT_TRUE(tolerant.ok());
  const FrequentPattern* found = tolerant->Find(at2);
  ASSERT_NE(found, nullptr);
  EXPECT_GE(found->confidence, 0.9);
}

// Property: slot enlargement only adds features, so matching is monotone --
// every pattern frequent on the strict series stays frequent (with count at
// least as large) for any half-window.
TEST(PerturbationPropertyTest, EnlargementIsMonotone) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    TimeSeries series;
    for (int f = 0; f < 4; ++f) series.symbols().Intern("f" + std::to_string(f));
    for (int t = 0; t < 300; ++t) {
      tsdb::FeatureSet instant;
      for (uint32_t f = 0; f < 4; ++f) {
        const bool aligned = (static_cast<uint32_t>(t) % 5) == f;
        if (rng.NextBool(aligned ? 0.8 : 0.15)) instant.Set(f);
      }
      series.Append(std::move(instant));
    }
    MiningOptions options;
    options.period = 5;
    options.min_confidence = 0.5;
    // Enlargement makes letters dense and correlated; cap the pattern size
    // so the enlarged frequent set stays enumerable. Monotonicity over all
    // <=3-letter patterns is checked exactly.
    options.max_letters = 3;

    auto strict = Mine(series, options);
    ASSERT_TRUE(strict.ok());
    for (const uint32_t window : {1u, 2u}) {
      auto tolerant = MineWithPerturbation(series, options, window);
      ASSERT_TRUE(tolerant.ok());
      for (const FrequentPattern& entry : strict->patterns()) {
        const FrequentPattern* found = tolerant->Find(entry.pattern);
        ASSERT_NE(found, nullptr)
            << "window " << window << ": "
            << entry.pattern.Format(series.symbols());
        EXPECT_GE(found->count, entry.count);
      }
    }
  }
}

TEST(EnlargeTimeSlotsTest, WindowMonotoneInContainment) {
  Rng rng(3);
  TimeSeries series;
  series.symbols().Intern("x");
  for (int t = 0; t < 100; ++t) {
    tsdb::FeatureSet instant;
    if (rng.NextBool(0.3)) instant.Set(0);
    series.Append(std::move(instant));
  }
  const TimeSeries w1 = EnlargeTimeSlots(series, 1);
  const TimeSeries w3 = EnlargeTimeSlots(series, 3);
  for (uint64_t t = 0; t < series.length(); ++t) {
    EXPECT_TRUE(series.at(t).IsSubsetOf(w1.at(t)));
    EXPECT_TRUE(w1.at(t).IsSubsetOf(w3.at(t)));
  }
}

TEST(PerturbationMiningTest, InvalidOptionsPropagate) {
  TimeSeries series;
  series.AppendNamed({"a"});
  MiningOptions options;
  options.period = 0;
  EXPECT_FALSE(MineWithPerturbation(series, options, 1).ok());
}

}  // namespace
}  // namespace ppm::perturb
