// Direct unit tests of the shared derivation step (Algorithm 4.2) against
// a hand-constructed hit store, independent of any miner.

#include "core/derivation.h"

#include <gtest/gtest.h>

#include "core/hit_store.h"

namespace ppm {
namespace {

Bitset MaskOf(std::initializer_list<uint32_t> bits) {
  Bitset mask;
  for (uint32_t bit : bits) mask.Set(bit);
  return mask;
}

/// Space with letters 0=a@0, 1=b@1, 2=c@2 over period 3.
F1ScanResult MakeF1(uint64_t m, uint64_t min_count,
                    std::vector<uint64_t> letter_counts) {
  F1ScanResult f1;
  f1.num_periods = m;
  f1.min_count = min_count;
  f1.space = LetterSpace(3, {Letter{0, 0}, Letter{1, 1}, Letter{2, 2}});
  f1.letter_counts = std::move(letter_counts);
  return f1;
}

TEST(DerivationTest, DerivesFromHitCounts) {
  const F1ScanResult f1 = MakeF1(10, 5, {9, 8, 7});
  TreeHitStore store(f1.space.full_mask(), 3);
  // 5x {a,b,c}, 3x {a,b}, 2x {b,c}.
  for (int i = 0; i < 5; ++i) store.AddHit(MaskOf({0, 1, 2}));
  for (int i = 0; i < 3; ++i) store.AddHit(MaskOf({0, 1}));
  for (int i = 0; i < 2; ++i) store.AddHit(MaskOf({1, 2}));

  MiningResult result;
  const DerivationStats stats = DeriveFrequentPatterns(
      f1, 0,
      [&store](const Bitset& mask) { return store.CountSuperpatterns(mask); },
      &result);
  result.Canonicalize();

  // Level 1: a(9), b(8), c(7). Level 2: ab=8, ac=5, bc=7. Level 3: abc=5.
  EXPECT_EQ(result.size(), 7u);
  EXPECT_EQ(stats.max_level_reached, 3u);
  EXPECT_EQ(stats.candidates_evaluated, 4u);  // 3 pairs + 1 triple.

  const Pattern abc = f1.space.MaskToPattern(MaskOf({0, 1, 2}));
  const FrequentPattern* found = result.Find(abc);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 5u);
  EXPECT_DOUBLE_EQ(found->confidence, 0.5);
}

TEST(DerivationTest, InfrequentPairPrunesTriple) {
  const F1ScanResult f1 = MakeF1(10, 6, {9, 8, 7});
  TreeHitStore store(f1.space.full_mask(), 3);
  for (int i = 0; i < 5; ++i) store.AddHit(MaskOf({0, 1, 2}));
  for (int i = 0; i < 3; ++i) store.AddHit(MaskOf({0, 1}));
  for (int i = 0; i < 2; ++i) store.AddHit(MaskOf({1, 2}));

  MiningResult result;
  const DerivationStats stats = DeriveFrequentPatterns(
      f1, 0,
      [&store](const Bitset& mask) { return store.CountSuperpatterns(mask); },
      &result);
  // ab=8, bc=7 frequent; ac=5 < 6 infrequent -> abc never evaluated
  // (its subset ac is missing from the frequent 2-sets).
  EXPECT_EQ(stats.candidates_evaluated, 3u);
  EXPECT_EQ(stats.max_level_reached, 2u);
  EXPECT_EQ(result.size(), 5u);
}

TEST(DerivationTest, LevelOneFiltersBelowThresholdLetters) {
  // Letter c's count (4) is below min_count (5): it must not be emitted nor
  // participate in candidate generation. (This path is exercised by the
  // streaming miner's fixed letter space.)
  const F1ScanResult f1 = MakeF1(10, 5, {9, 8, 4});
  HashHitStore store;
  for (int i = 0; i < 6; ++i) store.AddHit(MaskOf({0, 1}));

  MiningResult result;
  const DerivationStats stats = DeriveFrequentPatterns(
      f1, 0,
      [&store](const Bitset& mask) { return store.CountSuperpatterns(mask); },
      &result);
  result.Canonicalize();
  EXPECT_EQ(result.size(), 3u);  // a, b, ab.
  EXPECT_EQ(stats.candidates_evaluated, 1u);
  for (const auto& entry : result.patterns()) {
    EXPECT_TRUE(entry.pattern.at(2).Empty());
  }
}

TEST(DerivationTest, MaxLettersCap) {
  const F1ScanResult f1 = MakeF1(10, 1, {9, 8, 7});
  TreeHitStore store(f1.space.full_mask(), 3);
  for (int i = 0; i < 9; ++i) store.AddHit(MaskOf({0, 1, 2}));

  MiningResult result;
  const DerivationStats stats = DeriveFrequentPatterns(
      f1, /*max_letters=*/2,
      [&store](const Bitset& mask) { return store.CountSuperpatterns(mask); },
      &result);
  EXPECT_EQ(stats.max_level_reached, 2u);
  for (const auto& entry : result.patterns()) {
    EXPECT_LE(entry.pattern.LetterCount(), 2u);
  }
}

TEST(DerivationTest, EmptyLetterSpace) {
  F1ScanResult f1;
  f1.num_periods = 5;
  f1.min_count = 2;
  f1.space = LetterSpace(3, {});
  MiningResult result;
  const DerivationStats stats = DeriveFrequentPatterns(
      f1, 0, [](const Bitset&) -> uint64_t { return 0; }, &result);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(stats.max_level_reached, 0u);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
}

}  // namespace
}  // namespace ppm
