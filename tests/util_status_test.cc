#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "NotFound: missing thing");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, OkStatusConversionBecomesInternalError) {
  // Constructing a Result from an OK status is a caller bug; it must not
  // silently masquerade as success.
  Result<int> result((Status()));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

Status FailInner() { return Status::OutOfRange("inner"); }

Status UseReturnIfError() {
  PPM_RETURN_IF_ERROR(FailInner());
  return Status::Internal("unreachable");
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UseReturnIfError().code(), StatusCode::kOutOfRange);
}

Result<int> ProduceValue() { return 7; }
Result<int> ProduceError() { return Status::IoError("io"); }

Status UseAssignOrReturn(int* out) {
  PPM_ASSIGN_OR_RETURN(*out, ProduceValue());
  PPM_ASSIGN_OR_RETURN(*out, ProduceError());
  return Status::OK();
}

TEST(MacroTest, AssignOrReturn) {
  int value = 0;
  const Status status = UseAssignOrReturn(&value);
  EXPECT_EQ(value, 7);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> result(Status::NotFound("gone"));
  EXPECT_DEATH((void)result.value(), "errored Result");
}

}  // namespace
}  // namespace ppm
