#include "tsdb/time_series.h"

#include <gtest/gtest.h>

namespace ppm::tsdb {
namespace {

TEST(TimeSeriesTest, AppendNamedInternsAndSets) {
  TimeSeries series;
  series.AppendNamed({"a", "b"});
  series.AppendNamed({"b"});
  ASSERT_EQ(series.length(), 2u);
  const FeatureId a = *series.symbols().Lookup("a");
  const FeatureId b = *series.symbols().Lookup("b");
  EXPECT_TRUE(series.at(0).Test(a));
  EXPECT_TRUE(series.at(0).Test(b));
  EXPECT_FALSE(series.at(1).Test(a));
  EXPECT_TRUE(series.at(1).Test(b));
}

TEST(TimeSeriesTest, AppendEmpty) {
  TimeSeries series;
  series.AppendEmpty(3);
  EXPECT_EQ(series.length(), 3u);
  for (uint64_t t = 0; t < 3; ++t) EXPECT_TRUE(series.at(t).Empty());
}

TEST(TimeSeriesTest, NumPeriods) {
  TimeSeries series;
  series.AppendEmpty(10);
  EXPECT_EQ(series.NumPeriods(3), 3u);  // 10 / 3.
  EXPECT_EQ(series.NumPeriods(10), 1u);
  EXPECT_EQ(series.NumPeriods(11), 0u);
  EXPECT_EQ(series.NumPeriods(0), 0u);  // Guarded, not a crash.
}

TEST(TimeSeriesTest, MutableAccess) {
  TimeSeries series;
  series.AppendEmpty(1);
  series.at(0).Set(5);
  EXPECT_TRUE(series.at(0).Test(5));
}

TEST(TimeSeriesTest, CopyIsIndependent) {
  TimeSeries series;
  series.AppendNamed({"a"});
  TimeSeries copy = series;
  copy.at(0).Set(99);
  EXPECT_FALSE(series.at(0).Test(99));
}

}  // namespace
}  // namespace ppm::tsdb
