// The scan/IO accounting contract (docs/OBSERVABILITY.md): the hit-set miner
// is exactly two logical database passes at every thread count, Apriori is
// one pass per level plus the F1 scan, shared multi-period mining is two
// passes for the whole period range, and candidate-set sizes are
// thread-invariant. These exact counts are what scripts/perf_gate.py holds
// the committed BENCH_*.json baselines to, so this test is the in-tree
// anchor for the gate's zero-tolerance fields.
//
// All assertions go through MetricsRegistry::Global() because that is where
// the library's built-in instrumentation records; each test scopes itself
// with Reset().

#include "core/scan_accounting.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <filesystem>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/multi_period.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "stream/streaming_miner.h"
#include "synth/generator.h"
#include "tsdb/database.h"
#include "tsdb/fault_injection.h"
#include "tsdb/series_source.h"
#include "tsdb/wal.h"

namespace ppm {
namespace {

synth::GeneratedSeries TestSeries(uint64_t length = 5000, uint32_t period = 20) {
  synth::GeneratorOptions options;
  options.length = length;
  options.period = period;
  options.max_pat_length = 4;
  options.num_f1 = 8;
  options.num_features = 40;
  options.anchor_confidence = 0.9;
  options.independent_confidence = 0.85;
  options.noise_mean = 1.0;
  options.seed = 99;
  auto result = synth::GenerateSeries(options);
  EXPECT_TRUE(result.status().ok()) << result.status().ToString();
  return std::move(result).value();
}

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  const uint64_t* value = snapshot.FindCounter(name);
  return value == nullptr ? 0 : *value;
}

MiningOptions HitsetOptions(uint32_t period, uint32_t threads = 1) {
  MiningOptions options;
  options.period = period;
  options.min_confidence = 0.8;
  options.num_threads = threads;
  return options;
}

TEST(ScanAccountingTest, HitsetIsTwoDbPassesAtEveryThreadCount) {
  const synth::GeneratedSeries data = TestSeries();
  auto& registry = obs::MetricsRegistry::Global();
  for (const uint32_t threads : {1u, 4u}) {
    registry.Reset();
    tsdb::InMemorySeriesSource source(&data.series);
    const auto result = MineHitSet(source, HitsetOptions(20, threads));
    ASSERT_TRUE(result.status().ok()) << result.status().ToString();

    const obs::MetricsSnapshot snapshot = registry.Snapshot();
    EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 2u)
        << "threads=" << threads;
    EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.f1_scan"), 1u)
        << "threads=" << threads;
    EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.second_scan"), 1u)
        << "threads=" << threads;
    // Both passes cover every whole period of the series.
    const uint64_t covered = (data.series.length() / 20) * 20;
    EXPECT_EQ(CounterValue(snapshot, "ppm.scan.instants_scanned"), 2 * covered)
        << "threads=" << threads;
  }
}

TEST(ScanAccountingTest, AprioriPassesMatchReportedScans) {
  const synth::GeneratedSeries data = TestSeries();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  tsdb::InMemorySeriesSource source(&data.series);
  const auto result = MineApriori(source, HitsetOptions(20));
  ASSERT_TRUE(result.status().ok()) << result.status().ToString();

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const uint64_t level_scans =
      CounterValue(snapshot, "ppm.scan.passes.level_scan");
  EXPECT_GE(level_scans, 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.f1_scan"), 1u);
  // Apriori's logical passes are the F1 scan plus one scan per level --
  // exactly what MiningStats::scans has always reported.
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 1 + level_scans);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"),
            result.value().stats().scans);
}

TEST(ScanAccountingTest, CandidateCountsAreThreadInvariant) {
  const synth::GeneratedSeries data = TestSeries();
  auto& registry = obs::MetricsRegistry::Global();

  std::vector<obs::MetricsSnapshot> snapshots;
  for (const uint32_t threads : {1u, 4u}) {
    registry.Reset();
    tsdb::InMemorySeriesSource source(&data.series);
    const auto result = MineHitSet(source, HitsetOptions(20, threads));
    ASSERT_TRUE(result.status().ok()) << result.status().ToString();
    snapshots.push_back(registry.Snapshot());
  }

  const uint64_t total_t1 =
      CounterValue(snapshots[0], "ppm.derivation.candidates_total");
  EXPECT_GT(total_t1, 0u);
  EXPECT_EQ(total_t1,
            CounterValue(snapshots[1], "ppm.derivation.candidates_total"));
  // Per-level candidate gauges must agree level by level.
  for (const auto& [name, value] : snapshots[0].gauges) {
    if (name.rfind("ppm.derivation.level_candidates.", 0) != 0) continue;
    const uint64_t* other = snapshots[1].FindGauge(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(value, *other) << name;
  }
}

TEST(ScanAccountingTest, SharedMultiPeriodIsTwoPassesTotal) {
  const synth::GeneratedSeries data = TestSeries(4000, 20);
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  tsdb::InMemorySeriesSource source(&data.series);
  const auto result =
      MineMultiPeriodShared(source, 18, 22, HitsetOptions(0));
  ASSERT_TRUE(result.status().ok()) << result.status().ToString();

  // Algorithm 3.4: one shared traversal per scan regardless of how many
  // periods are mined (5 here).
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.shared_scan1"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.shared_scan2"), 1u);
  EXPECT_EQ(result.value().total_scans, 2u);
}

TEST(ScanAccountingTest, RecordDbPassFeedsHistogramAndSegments) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  RecordDbPass("test_phase", 1000, 50);
  RecordDbPass("test_phase", 3000, 150);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.test_phase"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.instants_scanned"), 4000u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.segments_scanned"), 200u);
  bool found = false;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name != "ppm.scan.pass_instants") continue;
    found = true;
    EXPECT_EQ(hist.count, 2u);
    EXPECT_EQ(hist.sum, 4000u);
    EXPECT_EQ(hist.max, 3000u);
  }
  EXPECT_TRUE(found);
}

TEST(ScanAccountingTest, RecordLevelCandidatesExposesGaugeAndTotal) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  RecordLevelCandidates("ppm.test", 2, 10);
  RecordLevelCandidates("ppm.test", 3, 4);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const uint64_t* level2 = snapshot.FindGauge("ppm.test.level_candidates.L2");
  const uint64_t* level3 = snapshot.FindGauge("ppm.test.level_candidates.L3");
  ASSERT_NE(level2, nullptr);
  ASSERT_NE(level3, nullptr);
  EXPECT_EQ(*level2, 10u);
  EXPECT_EQ(*level3, 4u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.test.candidates_total"), 14u);
}

// The registry-reset contract repeated in-process runs rely on: Reset between
// runs makes each run's snapshot identical; without Reset, DeltaSince
// recovers the second run's contribution.
TEST(ScanAccountingTest, ResetAndDeltaScopeRepeatedRuns) {
  const synth::GeneratedSeries data = TestSeries();
  auto& registry = obs::MetricsRegistry::Global();

  registry.Reset();
  {
    tsdb::InMemorySeriesSource source(&data.series);
    ASSERT_TRUE(MineHitSet(source, HitsetOptions(20)).status().ok());
  }
  const obs::MetricsSnapshot first = registry.Snapshot();

  registry.Reset();
  {
    tsdb::InMemorySeriesSource source(&data.series);
    ASSERT_TRUE(MineHitSet(source, HitsetOptions(20)).status().ok());
  }
  const obs::MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(first.counters, second.counters);

  // Same second run, now without a Reset: the delta against the pre-run
  // snapshot equals a scoped run's totals.
  const obs::MetricsSnapshot before = registry.Snapshot();
  {
    tsdb::InMemorySeriesSource source(&data.series);
    ASSERT_TRUE(MineHitSet(source, HitsetOptions(20)).status().ok());
  }
  const obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  for (const auto& [name, value] : first.counters) {
    if (name.rfind("ppm.scan.", 0) != 0) continue;
    const uint64_t* delta_value = delta.FindCounter(name);
    ASSERT_NE(delta_value, nullptr) << name;
    EXPECT_EQ(*delta_value, value) << name;
  }
}

// `Database::Get` is one logical pass per successful load, no matter how
// many physical attempts the transient-retry loop burns: the retry is an
// IO detail, not an algorithm-level traversal.
TEST(ScanAccountingTest, DatabaseGetIsOnePassEvenWithRetries) {
  const synth::GeneratedSeries data = TestSeries(2000, 20);
  const std::string root = ::testing::TempDir() + "/scan_acct_db";
  std::filesystem::remove_all(root);
  auto db = tsdb::Database::Open(root);
  ASSERT_TRUE(db.status().ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Put("s", data.series).ok());

  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  auto got = (*db)->Get("s");
  ASSERT_TRUE(got.status().ok()) << got.status().ToString();
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.db_get"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.instants_scanned"),
            data.series.length());

  // Two injected transient read failures force two retries; the load still
  // succeeds and still accounts as exactly one pass.
  registry.Reset();
  tsdb::FaultPlan plan;
  plan.transient_read_failures = 2;
  tsdb::FaultInjector::Global().Arm(plan);
  got = (*db)->Get("s");
  tsdb::FaultInjector::Global().Disarm();
  ASSERT_TRUE(got.status().ok()) << got.status().ToString();
  snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.fault.retries"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.db_get"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 1u);

  // A failed load (unknown series) records nothing.
  registry.Reset();
  EXPECT_FALSE((*db)->Get("missing").ok());
  snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 0u);
  std::filesystem::remove_all(root);
}

// WAL replay is one logical pass sized by the records it delivered -- the
// per-resume cost of a recovered stream -- and a live snapshot afterwards
// touches the database zero times.
TEST(ScanAccountingTest, WalReplayIsOnePassAndSnapshotIsZero) {
  const synth::GeneratedSeries data = TestSeries(2000, 20);
  const std::string path = ::testing::TempDir() + "/scan_acct.ppmwal";
  std::filesystem::remove(path);
  auto wal = tsdb::WalWriter::Create(path, tsdb::WalFsync::kNever);
  ASSERT_TRUE(wal.status().ok()) << wal.status().ToString();
  constexpr uint64_t kLogged = 240;
  for (uint64_t t = 0; t < kLogged; ++t) {
    ASSERT_TRUE((*wal)->Append(data.series.at(t)).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());

  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  constexpr uint64_t kStart = 200;  // Replay only the tail past a cursor.
  const auto replayed = tsdb::ReplayWal(
      path, kStart, [](uint64_t, const tsdb::FeatureSet&) {
        return Status::OK();
      });
  ASSERT_TRUE(replayed.status().ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->records_delivered, kLogged - kStart);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.passes.wal_replay"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.instants_scanned"),
            kLogged - kStart);

  // A streaming snapshot derives from the hit store alone: zero passes.
  auto miner =
      stream::StreamingMiner::SeedFromPrefix(HitsetOptions(20), data.series);
  ASSERT_TRUE(miner.status().ok()) << miner.status().ToString();
  registry.Reset();
  (*miner)->Snapshot();
  snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "ppm.scan.db_passes"), 0u);
  std::filesystem::remove(path);
}

TEST(ScanAccountingTest, ResourceMetricsPopulateGauges) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  obs::RecordResourceMetrics();
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const uint64_t* rss_hwm = snapshot.FindGauge("ppm.resource.rss_hwm_bytes");
  const uint64_t* rss = snapshot.FindGauge("ppm.resource.rss_bytes");
  ASSERT_NE(rss_hwm, nullptr);
  ASSERT_NE(rss, nullptr);
  // No ordering assertion between the two: the high-water mark comes from
  // getrusage and the current RSS from /proc/self/statm, and the two kernel
  // probes can disagree by a few pages.
  EXPECT_GT(*rss_hwm, 0u);
  EXPECT_GT(*rss, 0u);
}

}  // namespace
}  // namespace ppm
