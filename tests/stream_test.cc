#include "stream/streaming_miner.h"

#include <gtest/gtest.h>

#include <map>

#include "core/hitset_miner.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::stream {
namespace {

using tsdb::TimeSeries;

TimeSeries MakeSeries(uint64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  series.symbols().Intern("c");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    if (t % 4 == 0 && rng.NextBool(0.9)) instant.Set(0);
    if (t % 4 == 1 && rng.NextBool(0.85)) instant.Set(1);
    if (rng.NextBool(0.2)) instant.Set(2);
    series.Append(std::move(instant));
  }
  return series;
}

MiningOptions DefaultOptions() {
  MiningOptions options;
  options.period = 4;
  options.min_confidence = 0.7;
  return options;
}

std::map<std::string, uint64_t> AsCountMap(const MiningResult& result,
                                           const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : result.patterns()) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

TEST(StreamingMinerTest, SnapshotMatchesBatchWhenNoDrift) {
  const TimeSeries series = MakeSeries(2000, 5);
  const MiningOptions options = DefaultOptions();

  // Seed from the first quarter, then stream the rest.
  TimeSeries prefix;
  prefix.symbols() = series.symbols();
  for (uint64_t t = 0; t < 500; ++t) prefix.Append(series.at(t));
  auto miner = StreamingMiner::SeedFromPrefix(options, prefix);
  ASSERT_TRUE(miner.ok()) << miner.status();
  for (uint64_t t = 500; t < series.length(); ++t) {
    (*miner)->Append(series.at(t));
  }
  EXPECT_TRUE((*miner)->DriftedLetters().empty());

  tsdb::InMemorySeriesSource source(&series);
  auto batch = MineHitSet(source, options);
  ASSERT_TRUE(batch.ok());

  const MiningResult snapshot = (*miner)->Snapshot();
  EXPECT_EQ(AsCountMap(snapshot, series.symbols()),
            AsCountMap(*batch, series.symbols()));
  EXPECT_EQ((*miner)->segments_committed(), 500u);
}

TEST(StreamingMinerTest, PartialTrailingSegmentExcluded) {
  const MiningOptions options = DefaultOptions();
  auto miner = StreamingMiner::Create(
      options, {Letter{0, 0}, Letter{1, 1}});
  ASSERT_TRUE(miner.ok());
  // Two whole segments plus 3 trailing instants.
  for (int segment = 0; segment < 2; ++segment) {
    for (uint32_t position = 0; position < 4; ++position) {
      tsdb::FeatureSet instant;
      if (position == 0) instant.Set(0);
      if (position == 1) instant.Set(1);
      (*miner)->Append(instant);
    }
  }
  for (int i = 0; i < 3; ++i) {
    tsdb::FeatureSet instant;
    instant.Set(0);
    instant.Set(1);
    (*miner)->Append(instant);
  }
  EXPECT_EQ((*miner)->segments_committed(), 2u);
  EXPECT_EQ((*miner)->instants_seen(), 11u);
  const MiningResult snapshot = (*miner)->Snapshot();
  // Counts reflect only the two whole segments.
  for (const FrequentPattern& entry : snapshot.patterns()) {
    EXPECT_EQ(entry.count, 2u);
    EXPECT_DOUBLE_EQ(entry.confidence, 1.0);
  }
  EXPECT_EQ(snapshot.size(), 3u);  // a, b, ab.
}

TEST(StreamingMinerTest, SnapshotBeforeAnySegmentIsEmpty) {
  auto miner = StreamingMiner::Create(DefaultOptions(), {Letter{0, 0}});
  ASSERT_TRUE(miner.ok());
  EXPECT_TRUE((*miner)->Snapshot().empty());
  tsdb::FeatureSet instant;
  instant.Set(0);
  (*miner)->Append(instant);
  EXPECT_TRUE((*miner)->Snapshot().empty());  // Segment still in flight.
}

TEST(StreamingMinerTest, DriftDetection) {
  MiningOptions options = DefaultOptions();
  auto miner = StreamingMiner::Create(options, {Letter{0, 0}});
  ASSERT_TRUE(miner.ok());
  // Stream segments where an unseeded letter (pos 2, feature 7) fires in
  // every segment: it must be reported as drifted.
  for (int segment = 0; segment < 10; ++segment) {
    for (uint32_t position = 0; position < 4; ++position) {
      tsdb::FeatureSet instant;
      if (position == 0) instant.Set(0);
      if (position == 2) instant.Set(7);
      (*miner)->Append(instant);
    }
  }
  const auto drifted = (*miner)->DriftedLetters();
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_EQ(drifted[0].position, 2u);
  EXPECT_EQ(drifted[0].feature, 7u);
}

TEST(StreamingMinerTest, WindowedDriftNoticesNewBehaviorPromptly) {
  MiningOptions options = DefaultOptions();
  // 100 segments of history without the new letter, then 20 with it.
  auto whole_history =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/0);
  auto windowed =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/15);
  ASSERT_TRUE(whole_history.ok());
  ASSERT_TRUE(windowed.ok());
  const auto feed = [&](int segments, bool with_new_letter) {
    for (int segment = 0; segment < segments; ++segment) {
      for (uint32_t position = 0; position < 4; ++position) {
        tsdb::FeatureSet instant;
        if (position == 0) instant.Set(0);
        if (with_new_letter && position == 3) instant.Set(5);
        (*whole_history)->Append(instant);
        (*windowed)->Append(instant);
      }
    }
  };
  feed(100, false);
  feed(20, true);
  // 20/120 = 0.17 < 0.7: whole-history drift is silent.
  EXPECT_TRUE((*whole_history)->DriftedLetters().empty());
  // 15/15 over the window: windowed drift fires.
  const auto drifted = (*windowed)->DriftedLetters();
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_EQ(drifted[0].position, 3u);
  EXPECT_EQ(drifted[0].feature, 5u);
}

TEST(StreamingMinerTest, WindowedDriftExpiresOldBehavior) {
  MiningOptions options = DefaultOptions();
  auto miner =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/10);
  ASSERT_TRUE(miner.ok());
  const auto feed = [&](int segments, bool with_new_letter) {
    for (int segment = 0; segment < segments; ++segment) {
      for (uint32_t position = 0; position < 4; ++position) {
        tsdb::FeatureSet instant;
        if (position == 0) instant.Set(0);
        if (with_new_letter && position == 3) instant.Set(5);
        (*miner)->Append(instant);
      }
    }
  };
  feed(12, true);
  ASSERT_EQ((*miner)->DriftedLetters().size(), 1u);
  // The letter stops; once the window rolls past it, the drift clears.
  feed(12, false);
  EXPECT_TRUE((*miner)->DriftedLetters().empty());
}

TEST(StreamingMinerTest, DriftWindowLargerThanHistoryDegeneratesToStream) {
  // While fewer than drift_window segments are committed, the horizon is
  // min(segments_committed, drift_window): an unseeded letter firing in
  // every early segment is reported immediately, not after drift_window
  // segments of warm-up.
  MiningOptions options = DefaultOptions();
  auto miner =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/50);
  ASSERT_TRUE(miner.ok());
  EXPECT_TRUE((*miner)->DriftedLetters().empty());  // No segments yet.
  for (int segment = 0; segment < 3; ++segment) {
    for (uint32_t position = 0; position < 4; ++position) {
      tsdb::FeatureSet instant;
      if (position == 0) instant.Set(0);
      if (position == 2) instant.Set(7);              // Every segment.
      if (position == 3 && segment == 0) instant.Set(8);  // 1/3 < 0.7.
      (*miner)->Append(instant);
    }
  }
  // Horizon is 3 committed segments: 3/3 fires, 1/3 stays silent.
  const auto drifted = (*miner)->DriftedLetters();
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_EQ(drifted[0].position, 2u);
  EXPECT_EQ(drifted[0].feature, 7u);
}

TEST(StreamingMinerTest, DriftWindowLargerThanHistoryMatchesWholeStream) {
  // Until the window fills, a huge-window miner and a whole-stream miner
  // must agree on drift exactly.
  MiningOptions options = DefaultOptions();
  auto windowed =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/1000);
  auto whole =
      StreamingMiner::Create(options, {Letter{0, 0}}, /*drift_window=*/0);
  ASSERT_TRUE(windowed.ok());
  ASSERT_TRUE(whole.ok());
  Rng rng(31);
  for (int t = 0; t < 20 * 4; ++t) {
    tsdb::FeatureSet instant;
    if (t % 4 == 0) instant.Set(0);
    if (t % 4 == 1) instant.Set(5);           // Unseeded, every segment.
    if (rng.NextBool(0.3)) instant.Set(9);    // Noise below threshold.
    (*windowed)->Append(instant);
    (*whole)->Append(instant);
  }
  EXPECT_EQ((*windowed)->DriftedLetters(), (*whole)->DriftedLetters());
  EXPECT_FALSE((*windowed)->DriftedLetters().empty());
}

TEST(StreamingMinerTest, SeededLetterCanDropBelowThreshold) {
  MiningOptions options = DefaultOptions();
  options.min_confidence = 0.6;
  auto miner = StreamingMiner::Create(options, {Letter{0, 0}, Letter{1, 1}});
  ASSERT_TRUE(miner.ok());
  // Letter (1,1) fires in only 2 of 10 segments: must vanish from
  // snapshots even though it was seeded.
  for (int segment = 0; segment < 10; ++segment) {
    for (uint32_t position = 0; position < 4; ++position) {
      tsdb::FeatureSet instant;
      if (position == 0) instant.Set(0);
      if (position == 1 && segment < 2) instant.Set(1);
      (*miner)->Append(instant);
    }
  }
  const MiningResult snapshot = (*miner)->Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.patterns()[0].count, 10u);
}

TEST(StreamingMinerTest, HashStoreGivesSameSnapshots) {
  const TimeSeries series = MakeSeries(1200, 13);
  MiningOptions tree_options = DefaultOptions();
  MiningOptions hash_options = DefaultOptions();
  hash_options.hit_store = HitStoreKind::kHashTable;

  TimeSeries prefix;
  prefix.symbols() = series.symbols();
  for (uint64_t t = 0; t < 400; ++t) prefix.Append(series.at(t));
  auto tree_miner = StreamingMiner::SeedFromPrefix(tree_options, prefix);
  auto hash_miner = StreamingMiner::SeedFromPrefix(hash_options, prefix);
  ASSERT_TRUE(tree_miner.ok());
  ASSERT_TRUE(hash_miner.ok());
  for (uint64_t t = 400; t < series.length(); ++t) {
    (*tree_miner)->Append(series.at(t));
    (*hash_miner)->Append(series.at(t));
  }
  EXPECT_EQ(AsCountMap((*tree_miner)->Snapshot(), series.symbols()),
            AsCountMap((*hash_miner)->Snapshot(), series.symbols()));
}

TEST(StreamingMinerTest, CreateValidation) {
  MiningOptions options;
  options.period = 0;
  EXPECT_FALSE(StreamingMiner::Create(options, {}).ok());
  options.period = 4;
  options.min_confidence = 2.0;
  EXPECT_FALSE(StreamingMiner::Create(options, {}).ok());
  options.min_confidence = 0.5;
  EXPECT_FALSE(StreamingMiner::Create(options, {Letter{9, 0}}).ok());
  EXPECT_TRUE(StreamingMiner::Create(options, {Letter{3, 0}}).ok());
}

TEST(StreamingMinerTest, LongStreamStaysBounded) {
  // The point of the streaming miner: state size depends on the letter
  // space and hit diversity, not on stream length.
  MiningOptions options = DefaultOptions();
  const TimeSeries series = MakeSeries(20000, 9);
  TimeSeries prefix;
  prefix.symbols() = series.symbols();
  for (uint64_t t = 0; t < 400; ++t) prefix.Append(series.at(t));
  auto miner = StreamingMiner::SeedFromPrefix(options, prefix);
  ASSERT_TRUE(miner.ok());
  for (uint64_t t = 400; t < series.length(); ++t) {
    (*miner)->Append(series.at(t));
  }
  const MiningResult snapshot = (*miner)->Snapshot();
  // Hit store entries bounded by 2^n_d - n_d - 1 regardless of 5000 segments.
  const uint64_t n_d = snapshot.stats().num_f1_letters;
  EXPECT_LE(snapshot.stats().hit_store_entries,
            (uint64_t{1} << n_d) - n_d - 1);
  EXPECT_FALSE(snapshot.empty());
}

}  // namespace
}  // namespace ppm::stream
