#include "rules/rules.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "tsdb/time_series.h"
#include "util/random.h"

namespace ppm::rules {
namespace {

using tsdb::TimeSeries;

/// Period-3 series, 4 segments: (a b -) (a b -) (a - -) (a b c).
/// counts: a@0=4, b@1=3, c@2=1, ab=3, abc=1.
TimeSeries MakeRuleSeries() {
  TimeSeries series;
  const char* grid[4][3] = {
      {"a", "b", ""}, {"a", "b", ""}, {"a", "", ""}, {"a", "b", "c"}};
  for (const auto& segment : grid) {
    for (const char* name : segment) {
      if (*name) {
        series.AppendNamed({name});
      } else {
        series.AppendEmpty();
      }
    }
  }
  return series;
}

TEST(RulesTest, GeneratesSplitRulesWithCorrectConfidence) {
  TimeSeries series = MakeRuleSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());
  // Frequent: a(4), b(3), ab(3).

  auto rules = GenerateRules(*mined, 0.0);
  ASSERT_TRUE(rules.ok()) << rules.status();
  // Only ab has L-length 2; single split after position 0: a => b.
  ASSERT_EQ(rules->size(), 1u);
  const PeriodicRule& rule = (*rules)[0];
  EXPECT_EQ(rule.support_count, 3u);
  EXPECT_DOUBLE_EQ(rule.rule_confidence, 3.0 / 4.0);  // count(ab)/count(a).
  EXPECT_DOUBLE_EQ(rule.pattern_confidence, 3.0 / 4.0);
  EXPECT_EQ(rule.antecedent.Format(series.symbols()), "a * *");
  EXPECT_EQ(rule.consequent.Format(series.symbols()), "* b *");
}

TEST(RulesTest, MinRuleConfidenceFilters) {
  TimeSeries series = MakeRuleSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());

  auto strict = GenerateRules(*mined, 0.8);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->empty());  // 0.75 < 0.8.

  auto loose = GenerateRules(*mined, 0.75);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->size(), 1u);
}

TEST(RulesTest, ThreeLetterPatternYieldsTwoSplits) {
  TimeSeries series;
  // (x y z) in every one of 4 segments.
  for (int i = 0; i < 4; ++i) {
    series.AppendNamed({"x"});
    series.AppendNamed({"y"});
    series.AppendNamed({"z"});
  }
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 1.0;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());

  auto rules = GenerateRules(*mined, 0.0);
  ASSERT_TRUE(rules.ok());
  // Patterns with L-length >= 2: xy, xz, yz, xyz.
  //  xy: split after 0 -> x => y.
  //  xz: split after 0 -> x => z.
  //  yz: split after 1 -> y => z.
  //  xyz: splits after 0 and 1 -> x => yz, xy => z.
  EXPECT_EQ(rules->size(), 5u);
  for (const PeriodicRule& rule : *rules) {
    EXPECT_DOUBLE_EQ(rule.rule_confidence, 1.0);
    EXPECT_DOUBLE_EQ(rule.pattern_confidence, 1.0);
    EXPECT_FALSE(rule.antecedent.IsEmpty());
    EXPECT_FALSE(rule.consequent.IsEmpty());
  }
}

TEST(RulesTest, PerfectRulesFilter) {
  TimeSeries series;
  // x always, y in 3 of 4 segments.
  for (int i = 0; i < 4; ++i) {
    series.AppendNamed({"x"});
    if (i < 3) {
      series.AppendNamed({"y"});
    } else {
      series.AppendEmpty();
    }
  }
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());
  auto rules = GenerateRules(*mined, 0.0);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);  // x => y with pattern confidence 0.75.
  EXPECT_TRUE(PerfectRules(*rules).empty());

  // Make y perfect too.
  TimeSeries perfect_series;
  for (int i = 0; i < 4; ++i) {
    perfect_series.AppendNamed({"x"});
    perfect_series.AppendNamed({"y"});
  }
  auto perfect_mined = Mine(perfect_series, options);
  ASSERT_TRUE(perfect_mined.ok());
  auto perfect_rules = GenerateRules(*perfect_mined, 0.0);
  ASSERT_TRUE(perfect_rules.ok());
  EXPECT_EQ(PerfectRules(*perfect_rules).size(), 1u);
}

TEST(RulesTest, FormatIsReadable) {
  TimeSeries series = MakeRuleSeries();
  MiningOptions options;
  options.period = 3;
  options.min_confidence = 0.5;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());
  auto rules = GenerateRules(*mined, 0.0);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  const std::string text = (*rules)[0].Format(series.symbols());
  EXPECT_NE(text.find("=>"), std::string::npos);
  EXPECT_NE(text.find("conf="), std::string::npos);
}

TEST(RulesTest, RejectsBadThreshold) {
  MiningResult empty;
  EXPECT_FALSE(GenerateRules(empty, -0.1).ok());
  EXPECT_FALSE(GenerateRules(empty, 1.1).ok());
  auto ok = GenerateRules(empty, 0.5);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->empty());
}

// Property: on random inputs, every generated rule's numbers must be
// self-consistent with the mining result it came from, and the rule's two
// sides must partition the source pattern at a position boundary.
TEST(RulesPropertyTest, RulesConsistentWithMinedCounts) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    TimeSeries series;
    series.symbols().Intern("x");
    series.symbols().Intern("y");
    series.symbols().Intern("z");
    for (int t = 0; t < 240; ++t) {
      tsdb::FeatureSet instant;
      for (uint32_t f = 0; f < 3; ++f) {
        const bool aligned = (static_cast<uint32_t>(t) % 4) == f;
        if (rng.NextBool(aligned ? 0.85 : 0.2)) instant.Set(f);
      }
      series.Append(std::move(instant));
    }
    MiningOptions options;
    options.period = 4;
    options.min_confidence = 0.4;
    auto mined = Mine(series, options);
    ASSERT_TRUE(mined.ok());
    auto rules = GenerateRules(*mined, 0.0);
    ASSERT_TRUE(rules.ok());

    for (const PeriodicRule& rule : *rules) {
      const Pattern combined = rule.antecedent.UnionWith(rule.consequent);
      const FrequentPattern* whole = mined->Find(combined);
      const FrequentPattern* antecedent = mined->Find(rule.antecedent);
      ASSERT_NE(whole, nullptr);
      ASSERT_NE(antecedent, nullptr);
      EXPECT_EQ(rule.support_count, whole->count);
      EXPECT_DOUBLE_EQ(rule.rule_confidence,
                       static_cast<double>(whole->count) /
                           static_cast<double>(antecedent->count));
      EXPECT_DOUBLE_EQ(rule.pattern_confidence, whole->confidence);
      EXPECT_LE(rule.rule_confidence, 1.0);
      // Temporal split: every antecedent letter precedes every consequent
      // letter.
      uint32_t last_antecedent = 0, first_consequent = UINT32_MAX;
      for (uint32_t position = 0; position < 4; ++position) {
        if (!rule.antecedent.IsStarAt(position)) last_antecedent = position;
        if (!rule.consequent.IsStarAt(position) &&
            first_consequent == UINT32_MAX) {
          first_consequent = position;
        }
      }
      EXPECT_LT(last_antecedent, first_consequent);
    }
  }
}

TEST(RulesTest, InconsistentResultReportsInternal) {
  // A result claiming ab frequent without a being present violates the
  // Apriori property; rule generation must fail loudly, not divide by zero.
  MiningResult bogus;
  Pattern ab(2);
  ab.AddLetter(0, 0);
  ab.AddLetter(1, 1);
  FrequentPattern entry;
  entry.pattern = ab;
  entry.count = 3;
  entry.confidence = 0.75;
  bogus.patterns().push_back(entry);
  auto rules = GenerateRules(bogus, 0.0);
  EXPECT_EQ(rules.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ppm::rules
