#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppm::obs {
namespace {

TEST(JsonWriterTest, ObjectWithScalars) {
  JsonWriter w;
  w.BeginObject()
      .Key("s").String("hi")
      .Key("u").Uint(7)
      .Key("i").Int(-3)
      .Key("b").Bool(true)
      .Key("n").Null();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"s":"hi","u":7,"i":-3,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginArray();
  w.BeginObject().Key("a").Uint(1).EndObject();
  w.BeginObject().Key("b").BeginArray().Uint(2).Uint(3).EndArray().EndObject();
  w.EndArray();
  EXPECT_EQ(w.str(), R"([{"a":1},{"b":[2,3]}])");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("line\nbreak\ttab \\ \"q\"");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"k\\\"ey\":\"line\\nbreak\\ttab \\\\ \\\"q\\\"\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(1.5).Double(0.0 / 0.0).Double(1.0 / 0.0).EndArray();
  EXPECT_EQ(w.str(), "[1.5,null,null]");
}

TEST(JsonWriterTest, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject().Key("inner").Raw(R"({"x":1})").Key("after").Uint(2);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"inner":{"x":1},"after":2})");
}

TEST(RunReportTest, JsonHasAllTopLevelKeys) {
  RunReport report("unit");
  report.AddMeta("algorithm", "hitset");
  report.AddRawSection("mining_stats", R"({"scans":2})");

  MetricsRegistry registry;
  registry.GetCounter("test.count").Inc(5);
  report.SetMetrics(registry.Snapshot());

  Tracer tracer;
  tracer.StartSpan("phase").End();
  report.SetSpans(tracer.events());

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"run\":\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"meta\":{\"algorithm\":\"hitset\"}"),
            std::string::npos)
      << json;
  // The raw section is spliced as JSON, not re-quoted as a string.
  EXPECT_NE(json.find("\"mining_stats\":{\"scans\":2}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.count\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":0"), std::string::npos) << json;
}

TEST(RunReportTest, EmptyReportStillWellFormed) {
  const RunReport report("empty");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"run\":\"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"meta\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"sections\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos);
}

TEST(RunReportTest, TextIncludesMetaMetricsAndSpanTree) {
  RunReport report("text");
  report.AddMeta("input", "series.bin");

  MetricsRegistry registry;
  registry.GetCounter("scan.count").Inc(2);
  registry.GetHistogram("latency").Observe(1000);
  report.SetMetrics(registry.Snapshot());

  Tracer tracer;
  {
    const TraceSpan outer = tracer.StartSpan("mine");
    const TraceSpan inner = tracer.StartSpan("second_scan");
  }
  report.SetSpans(tracer.events());

  const std::string text = report.ToText();
  EXPECT_NE(text.find("== run: text =="), std::string::npos) << text;
  EXPECT_NE(text.find("input: series.bin"), std::string::npos) << text;
  EXPECT_NE(text.find("scan.count = 2"), std::string::npos) << text;
  EXPECT_NE(text.find("latency = count 1"), std::string::npos) << text;
  // Nested span is indented two extra spaces under its parent.
  EXPECT_NE(text.find("    mine"), std::string::npos) << text;
  EXPECT_NE(text.find("      second_scan"), std::string::npos) << text;
}

TEST(RunReportTest, CaptureGlobalReadsProcessState) {
  MetricsRegistry::Global().Reset();
  Tracer::Global().Clear();
  MetricsRegistry::Global().GetCounter("capture.test").Inc(3);
  Tracer::Global().StartSpan("captured").End();

  RunReport report("global");
  report.CaptureGlobal();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"capture.test\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"captured\""), std::string::npos) << json;

  MetricsRegistry::Global().Reset();
  Tracer::Global().Clear();
}

TEST(RunReportTest, WriteJsonRoundTrips) {
  RunReport report("file");
  report.AddMeta("k", "v");
  const std::string path = testing::TempDir() + "/obs_report_test.json";
  ASSERT_TRUE(report.WriteJson(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), report.ToJson() + "\n");
}

TEST(RunReportTest, WriteJsonBadPathFails) {
  const RunReport report("bad");
  EXPECT_FALSE(report.WriteJson("/nonexistent-dir/report.json").ok());
}

}  // namespace
}  // namespace ppm::obs
