// Chaos soak harness (ISSUE 10 acceptance): a multi-tenant `PatternServer`
// under randomized hostile load. Four client personas run concurrently:
//
//   - well-behaved: two polite tenants append/mine/query their own series
//     and diff every served pattern set against a one-shot batch mine of
//     the snapshot the response claims (the ISSUE-8 differential
//     invariant, which must survive overload);
//   - greedy: one tenant hammers at ~10x its token-bucket quota;
//   - slow: a slowloris peer sends half a frame header and stalls until
//     the io deadline reaps it;
//   - disconnecting: sends valid requests and slams the connection shut
//     without reading the response.
//
// Assertions: polite tenants complete 100% of their requests (quota
// isolation -- the greedy tenant's rejections land only on it, proven via
// the ppm.server.tenant.* counters), every served result is field-identical
// to the batch reference, the slow peer is reaped without occupying a
// worker, and the server drains cleanly at the end (no worker deadlock:
// Wait() returns and the socket file is gone).

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hitset_miner.h"
#include "diff_harness.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kPeriod = 4;
constexpr double kMinConf = 0.5;
constexpr int kPoliteTenants = 2;
constexpr int kOpsPerPoliteClient = 10;

/// Ground truth for one series (same discipline as the differential
/// harness): mutations record their (version, length) under the shadow
/// lock before any query can observe them.
struct ShadowSeries {
  std::mutex mu;
  tsdb::SymbolTable symbols;
  std::vector<tsdb::FeatureSet> instants;
  std::map<uint64_t, uint64_t> length_at_version;
};

std::string BatchReference(ShadowSeries* shadow, uint64_t length) {
  tsdb::TimeSeries series;
  {
    std::lock_guard<std::mutex> lock(shadow->mu);
    series.symbols() = shadow->symbols;
    for (uint64_t t = 0; t < length; ++t) series.Append(shadow->instants[t]);
  }
  MiningOptions options;
  options.period = kPeriod;
  options.min_confidence = kMinConf;
  tsdb::InMemorySeriesSource source(&series);
  auto result = MineHitSet(source, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return diff::Serialize(*result, series.symbols());
}

std::string SerializeWire(const wire::Response& response) {
  tsdb::SymbolTable symbols;
  for (const std::string& name : response.symbols) symbols.Intern(name);
  std::string out;
  for (const wire::WirePattern& wp : response.patterns) {
    Pattern pattern(response.period);
    for (const auto& [position, feature] : wp.letters) {
      pattern.AddLetter(position, feature);
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "\t%llu\t%.17g\n",
                  static_cast<unsigned long long>(wp.count), wp.confidence);
    out += pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

tsdb::FeatureSet RandomInstant(Rng* rng, tsdb::SymbolTable* symbols) {
  tsdb::FeatureSet instant;
  for (uint32_t f = 0; f < 4; ++f) {
    if (rng->NextBool(0.45)) {
      instant.Set(symbols->Intern("f" + std::to_string(f)));
    }
  }
  return instant;
}

/// Raw-socket peer for the slow and disconnecting personas.
class RawPeer {
 public:
  explicit RawPeer(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawPeer() { Close(); }

  bool ok() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Handshake() {
    std::string greeting(sizeof(wire::kMagic), '\0');
    if (!ReadExactly(greeting.data(), greeting.size())) return false;
    return Send(std::string(wire::kMagic, sizeof(wire::kMagic)));
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  bool WaitForEof(int timeout_ms) {
    char byte = 0;
    struct pollfd pfd = {fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    return ::read(fd_, &byte, 1) == 0;
  }

 private:
  bool ReadExactly(char* out, size_t n) {
    size_t got = 0;
    while (got < n) {
      struct pollfd pfd = {fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;
      const ssize_t r = ::read(fd_, out + got, n - got);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

class ServingSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/soak_" + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = dir_ + "/s.sock";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  std::string socket_;
};

TEST_F(ServingSoakTest, OverloadedMultiTenantServerStaysCorrectAndIsolated) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t greedy_rejected_before =
      registry.GetCounter("ppm.server.tenant.greedy.rejected").value();
  const uint64_t greedy_admitted_before =
      registry.GetCounter("ppm.server.tenant.greedy.admitted").value();
  std::vector<uint64_t> polite_rejected_before;
  for (int t = 0; t < kPoliteTenants; ++t) {
    polite_rejected_before.push_back(
        registry
            .GetCounter("ppm.server.tenant.polite" + std::to_string(t) +
                        ".rejected")
            .value());
  }
  const uint64_t io_timeouts_before =
      registry.GetCounter("ppm.server.io_timeouts").value();

  ServerOptions options;
  options.socket_path = socket_;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.io_timeout_ms = 200;
  // The greedy tenant may sustain 50 requests/s with a burst of 2; it will
  // send an order of magnitude more. Polite tenants carry no quota entry
  // and therefore fall back to unlimited.
  options.tenant_quotas["greedy"] = TenantQuota{50.0, 2.0, 0};
  auto server = PatternServer::Start(dir_ + "/db", options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Seed one series per polite tenant plus one shared target for the
  // greedy tenant's queries.
  std::vector<ShadowSeries> shadows(kPoliteTenants);
  {
    auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Rng rng(99);
    for (int s = 0; s < kPoliteTenants; ++s) {
      wire::Request put;
      put.op = wire::Op::kPut;
      put.name = "s" + std::to_string(s);
      for (int t = 0; t < 8 * static_cast<int>(kPeriod); ++t) {
        put.series.Append(RandomInstant(&rng, &put.series.symbols()));
      }
      auto response = (*client)->Call(put);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->code, 0) << response->message;
      std::lock_guard<std::mutex> lock(shadows[s].mu);
      shadows[s].symbols = put.series.symbols();
      shadows[s].instants.assign(put.series.instants().begin(),
                                 put.series.instants().end());
      shadows[s].length_at_version[response->version] = response->length;
    }
  }

  std::atomic<bool> chaos_running{true};
  std::atomic<int> polite_failures{0};
  std::atomic<int> polite_served{0};
  std::atomic<int> divergences{0};

  // Persona 1: well-behaved clients, one per polite tenant. Every request
  // must succeed (quota isolation), and every served pattern set must
  // match the batch reference for the claimed snapshot.
  std::vector<std::thread> polite_clients;
  for (int tenant = 0; tenant < kPoliteTenants; ++tenant) {
    polite_clients.emplace_back([&, tenant] {
      auto client = Client::Connect(socket_);
      if (!client.ok()) {
        ++polite_failures;
        return;
      }
      Rng rng(4242 + tenant);
      const std::string tenant_name = "polite" + std::to_string(tenant);
      const std::string series_name = "s" + std::to_string(tenant);
      ShadowSeries& shadow = shadows[tenant];
      for (int op = 0; op < kOpsPerPoliteClient; ++op) {
        if (rng.NextBool(0.4)) {
          wire::Request append;
          append.op = wire::Op::kAppend;
          append.tenant = tenant_name;
          append.name = series_name;
          const uint64_t n = 1 + rng.NextBelow(2 * kPeriod);
          std::vector<tsdb::FeatureSet> delta;
          std::lock_guard<std::mutex> lock(shadow.mu);
          for (uint64_t i = 0; i < n; ++i) {
            const tsdb::FeatureSet instant =
                RandomInstant(&rng, &shadow.symbols);
            std::vector<std::string> names;
            instant.ForEach([&](uint32_t id) {
              names.push_back(shadow.symbols.NameOrPlaceholder(id));
            });
            append.instants.push_back(std::move(names));
            delta.push_back(instant);
          }
          auto response = (*client)->Call(append);
          if (!response.ok() || response->code != 0) {
            ++polite_failures;
            continue;
          }
          for (tsdb::FeatureSet& instant : delta) {
            shadow.instants.push_back(std::move(instant));
          }
          shadow.length_at_version[response->version] = response->length;
        } else {
          wire::Request query;
          query.op = rng.NextBool(0.25) ? wire::Op::kMine : wire::Op::kQuery;
          query.tenant = tenant_name;
          query.name = series_name;
          query.period = kPeriod;
          query.min_confidence = kMinConf;
          if (rng.NextBool(0.5)) query.deadline_ms = 30'000;  // In-deadline.
          auto response = (*client)->Call(query);
          if (!response.ok() || response->code != 0) {
            ++polite_failures;
            continue;
          }
          {
            std::lock_guard<std::mutex> lock(shadow.mu);
            auto it = shadow.length_at_version.find(response->version);
            if (it == shadow.length_at_version.end() ||
                it->second != response->length) {
              ++divergences;
              ADD_FAILURE() << "served unknown snapshot version "
                            << response->version;
              continue;
            }
          }
          if (SerializeWire(*response) !=
              BatchReference(&shadow, response->length)) {
            ++divergences;
            ADD_FAILURE() << "server/batch divergence under overload on "
                          << series_name;
          }
          ++polite_served;
        }
      }
    });
  }

  // Persona 2: the greedy tenant, hammering far past its 50 rps quota.
  std::atomic<int> greedy_attempts{0};
  std::atomic<int> greedy_rejections{0};
  std::thread greedy([&] {
    auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok());
    wire::Request query;
    query.op = wire::Op::kQuery;
    query.tenant = "greedy";
    query.name = "s0";
    query.period = kPeriod;
    query.min_confidence = kMinConf;
    while (chaos_running.load() && greedy_attempts.load() < 2000) {
      ++greedy_attempts;
      auto response = (*client)->Call(query);
      if (!response.ok()) break;  // Never expected; surfaces below.
      if (response->code ==
          static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
        ++greedy_rejections;
      }
    }
  });

  // Persona 3: slowloris. Half a header, then a stall; the io deadline
  // must reap it while the polite tenants keep being served.
  std::thread slow([&] {
    for (int round = 0; round < 2 && chaos_running.load(); ++round) {
      RawPeer peer(socket_);
      if (!peer.ok() || !peer.Handshake()) return;
      char half_header[4] = {64, 0, 0, 0};
      if (!peer.Send(std::string_view(half_header, sizeof(half_header)))) {
        return;
      }
      EXPECT_TRUE(peer.WaitForEof(5000)) << "slow peer was never reaped";
    }
  });

  // Persona 4: disconnectors. Fire a valid request, slam the connection
  // shut without reading the answer; the worker's write must fail softly.
  std::thread disconnector([&] {
    wire::Request stats;
    stats.op = wire::Op::kStats;
    const std::string frame =
        wire::EncodeFrame(wire::EncodeRequest(stats));
    for (int round = 0; round < 8 && chaos_running.load(); ++round) {
      RawPeer peer(socket_);
      if (!peer.ok() || !peer.Handshake()) return;
      peer.Send(frame);
      peer.Close();  // Without reading the response.
    }
  });

  for (std::thread& t : polite_clients) t.join();
  chaos_running.store(false);
  greedy.join();
  slow.join();
  disconnector.join();

  // Quota isolation: the greedy tenant was rate-limited, and every one of
  // its rejections landed on it -- the polite tenants were never shed.
  EXPECT_EQ(polite_failures.load(), 0)
      << "polite tenants must complete 100% of their requests";
  EXPECT_EQ(divergences.load(), 0);
  EXPECT_GT(polite_served.load(), 0);
  EXPECT_GT(greedy_rejections.load(), 0)
      << "greedy tenant at 10x quota must see rejections";
  EXPECT_EQ(
      registry.GetCounter("ppm.server.tenant.greedy.rejected").value() -
          greedy_rejected_before,
      static_cast<uint64_t>(greedy_rejections.load()));
  EXPECT_GT(registry.GetCounter("ppm.server.tenant.greedy.admitted").value(),
            greedy_admitted_before);
  for (int t = 0; t < kPoliteTenants; ++t) {
    EXPECT_EQ(registry
                  .GetCounter("ppm.server.tenant.polite" +
                              std::to_string(t) + ".rejected")
                  .value(),
              polite_rejected_before[t])
        << "rejections leaked onto polite tenant " << t;
  }
  EXPECT_GT(registry.GetCounter("ppm.server.io_timeouts").value(),
            io_timeouts_before)
      << "the slowloris peer must be reaped by the io deadline";

  // A final health probe answers even right after the storm.
  {
    auto client = Client::Connect(socket_);
    ASSERT_TRUE(client.ok());
    wire::Request health;
    health.op = wire::Op::kHealth;
    auto response = (*client)->Call(health);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, 0);
    EXPECT_NE(response->health_json.find("\"tenants\""), std::string::npos);
  }

  // Clean drain: Wait() returning (under the ctest timeout) is the
  // no-worker-deadlock proof; the socket file must be gone.
  (*server)->RequestStop();
  (*server)->Wait();
  EXPECT_FALSE(fs::exists(socket_));
}

}  // namespace
}  // namespace ppm::service
