#include "service/admission.h"

#include <gtest/gtest.h>

#include <string>

namespace ppm::service {
namespace {

TEST(ParseTenantQuotasTest, ParsesSingleAndMultipleEntries) {
  auto one = ParseTenantQuotas("alpha=10:20:4");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ(one->at("alpha").rps, 10.0);
  EXPECT_EQ(one->at("alpha").burst, 20.0);
  EXPECT_EQ(one->at("alpha").max_inflight, 4u);

  auto many = ParseTenantQuotas("alpha=10:20:4,default=2:2:1,beta=0:0:8");
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  EXPECT_EQ(many->size(), 3u);
  EXPECT_EQ(many->at("default").max_inflight, 1u);
  EXPECT_EQ(many->at("beta").rps, 0.0);
  EXPECT_EQ(many->at("beta").max_inflight, 8u);
}

TEST(ParseTenantQuotasTest, EmptySpecYieldsNoQuotas) {
  auto quotas = ParseTenantQuotas("");
  ASSERT_TRUE(quotas.ok()) << quotas.status().ToString();
  EXPECT_TRUE(quotas->empty());
}

TEST(ParseTenantQuotasTest, RateWithoutBurstGetsBucketOfOne) {
  auto quotas = ParseTenantQuotas("a=5:0:0");
  ASSERT_TRUE(quotas.ok()) << quotas.status().ToString();
  EXPECT_EQ(quotas->at("a").burst, 1.0);
}

TEST(ParseTenantQuotasTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"alpha", "alpha=1:2", "alpha=1:2:3:4", "=1:2:3", "alpha=x:2:3",
        "alpha=1:2:3,", "alpha=1:2:3,alpha=4:5:6", "alpha=-1:2:3",
        "alpha=1:2:3.5"}) {
    EXPECT_FALSE(ParseTenantQuotas(bad).ok()) << bad;
  }
}

class AdmissionControllerTest : public ::testing::Test {
 protected:
  AdmissionController Make(AdmissionController::Options options) {
    options.now_ms = [this] { return now_ms_; };
    return AdmissionController(std::move(options));
  }

  uint64_t now_ms_ = 1000;
};

TEST_F(AdmissionControllerTest, UnlimitedByDefault) {
  auto controller = Make({.queue_capacity = 100, .num_workers = 2});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(controller.Admit("anyone", 0).admitted);
  }
  EXPECT_EQ(controller.queue_depth(), 50u);
}

TEST_F(AdmissionControllerTest, TokenBucketLimitsSustainedRate) {
  AdmissionController::Options options;
  options.queue_capacity = 1000;
  ASSERT_TRUE(true);
  auto quotas = ParseTenantQuotas("greedy=10:3:0");
  ASSERT_TRUE(quotas.ok());
  options.quotas = *quotas;
  auto controller = Make(std::move(options));

  // Burst of 3 admits, then the bucket is dry.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(controller.Admit("greedy", 0).admitted) << i;
  }
  auto rejected = controller.Admit("greedy", 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  // At 10 rps one token is 100 ms away; the hint must say so.
  EXPECT_LE(rejected.retry_after_ms, 100u);

  // Advance past the hint: admitted again.
  now_ms_ += rejected.retry_after_ms;
  EXPECT_TRUE(controller.Admit("greedy", 0).admitted);

  // Refill never exceeds burst: after a long idle stretch only 3 admits.
  now_ms_ += 60'000;
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (controller.Admit("greedy", 0).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
}

TEST_F(AdmissionControllerTest, InflightCapIsolatesTenants) {
  AdmissionController::Options options;
  options.queue_capacity = 8;
  auto quotas = ParseTenantQuotas("greedy=0:0:2");
  ASSERT_TRUE(quotas.ok());
  options.quotas = *quotas;
  auto controller = Make(std::move(options));

  EXPECT_TRUE(controller.Admit("greedy", 0).admitted);
  EXPECT_TRUE(controller.Admit("greedy", 0).admitted);
  auto rejected = controller.Admit("greedy", 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NE(rejected.reason.find("in-flight"), std::string::npos);

  // The polite tenant is untouched: greedy's cap leaves queue room.
  EXPECT_TRUE(controller.Admit("polite", 0).admitted);

  // Completion releases the slot.
  controller.OnDequeued();
  controller.OnCompleted("greedy");
  EXPECT_TRUE(controller.Admit("greedy", 0).admitted);
}

TEST_F(AdmissionControllerTest, QueueFullRejectsEveryone) {
  auto controller = Make({.queue_capacity = 2});
  EXPECT_TRUE(controller.Admit("a", 0).admitted);
  EXPECT_TRUE(controller.Admit("b", 0).admitted);
  auto rejected = controller.Admit("c", 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NE(rejected.reason.find("queue full"), std::string::npos);
  controller.OnDequeued();
  EXPECT_TRUE(controller.Admit("c", 0).admitted);
}

TEST_F(AdmissionControllerTest, DeadlineInfeasibleRequestsAreShedEarly) {
  auto controller = Make({.queue_capacity = 100, .num_workers = 1});
  // Teach the EMA that requests take ~200 ms.
  controller.OnExecuted(200);
  // Build a backlog of 5 -> estimated wait ~1000 ms.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(controller.Admit("t", 0).admitted);
  }
  // A 100 ms deadline cannot survive a ~1 s queue wait.
  auto shed = controller.Admit("t", 100);
  EXPECT_FALSE(shed.admitted);
  EXPECT_NE(shed.reason.find("deadline"), std::string::npos);
  EXPECT_GE(shed.retry_after_ms, 100u);
  // A generous deadline still gets in; so does no deadline at all.
  EXPECT_TRUE(controller.Admit("t", 10'000).admitted);
  EXPECT_TRUE(controller.Admit("t", 0).admitted);
}

TEST_F(AdmissionControllerTest, EmptyQueueNeverShedsOnDeadline) {
  // The existing 1 ms-deadline server test depends on this: with no
  // backlog the estimated wait is zero and even a tiny deadline admits.
  auto controller = Make({.queue_capacity = 4});
  controller.OnExecuted(10'000);
  EXPECT_TRUE(controller.Admit("t", 1).admitted);
}

TEST_F(AdmissionControllerTest, ReadyStateDegradesWithQueueDepth) {
  AdmissionController::Options options;
  options.queue_capacity = 4;
  options.shed_watermark = 3;
  auto controller = Make(std::move(options));
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kAccepting);
  for (int i = 0; i < 3; ++i) controller.Admit("t", 0);
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kShedding);
  controller.OnDequeued();
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kAccepting);
}

TEST_F(AdmissionControllerTest, CachePressureDegradesReadiness) {
  double pressure = 0.0;
  AdmissionController::Options options;
  options.queue_capacity = 100;
  options.cache_pressure = [&pressure] { return pressure; };
  auto controller = Make(std::move(options));
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kAccepting);
  pressure = 0.99;
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kShedding);
}

TEST_F(AdmissionControllerTest, DrainRejectsAndReportsDraining) {
  auto controller = Make({.queue_capacity = 4});
  controller.StartDrain();
  EXPECT_EQ(controller.ready_state(), wire::ReadyState::kDraining);
  auto rejected = controller.Admit("t", 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NE(rejected.reason.find("draining"), std::string::npos);
}

TEST_F(AdmissionControllerTest, AdversarialTenantCardinalityIsBounded) {
  auto controller = Make({.queue_capacity = 100'000});
  // Thousands of distinct tenant names must not grow state without bound;
  // the health snapshot stays small because the tail shares one bucket.
  for (int i = 0; i < 5000; ++i) {
    controller.Admit("tenant-" + std::to_string(i), 0);
    controller.OnDequeued();
    controller.OnCompleted("tenant-" + std::to_string(i));
  }
  const std::string health = controller.HealthJson();
  EXPECT_LT(health.size(), 64u * 1024u);
  EXPECT_NE(health.find("!overflow"), std::string::npos);
}

TEST_F(AdmissionControllerTest, HealthJsonReportsCounters) {
  AdmissionController::Options options;
  options.queue_capacity = 4;
  auto quotas = ParseTenantQuotas("greedy=0:0:1");
  ASSERT_TRUE(quotas.ok());
  options.quotas = *quotas;
  auto controller = Make(std::move(options));
  ASSERT_TRUE(controller.Admit("greedy", 0).admitted);
  EXPECT_FALSE(controller.Admit("greedy", 0).admitted);
  const std::string health = controller.HealthJson();
  EXPECT_NE(health.find("\"ready_state\":\"accepting\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"greedy\":{\"inflight\":1,\"admitted\":1,"
                        "\"rejected\":1"),
            std::string::npos)
      << health;
  EXPECT_NE(health.find("\"queue_capacity\":4"), std::string::npos) << health;
}

}  // namespace
}  // namespace ppm::service
