#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/miner.h"
#include "multilevel/multilevel_miner.h"
#include "multilevel/taxonomy.h"
#include "util/random.h"
#include "tsdb/time_series.h"

namespace ppm::multilevel {
namespace {

using tsdb::TimeSeries;

Taxonomy MakeDrinkTaxonomy() {
  Taxonomy taxonomy;
  EXPECT_TRUE(taxonomy.AddEdge("espresso", "coffee").ok());
  EXPECT_TRUE(taxonomy.AddEdge("latte", "coffee").ok());
  EXPECT_TRUE(taxonomy.AddEdge("coffee", "drink").ok());
  EXPECT_TRUE(taxonomy.AddEdge("green_tea", "tea").ok());
  EXPECT_TRUE(taxonomy.AddEdge("tea", "drink").ok());
  return taxonomy;
}

TEST(TaxonomyTest, ParentAndDepth) {
  const Taxonomy taxonomy = MakeDrinkTaxonomy();
  EXPECT_EQ(taxonomy.ParentOf("espresso"), "coffee");
  EXPECT_EQ(taxonomy.ParentOf("coffee"), "drink");
  EXPECT_EQ(taxonomy.ParentOf("drink"), "");
  EXPECT_EQ(taxonomy.ParentOf("unknown"), "");
  EXPECT_EQ(taxonomy.DepthOf("drink"), 1u);
  EXPECT_EQ(taxonomy.DepthOf("coffee"), 2u);
  EXPECT_EQ(taxonomy.DepthOf("espresso"), 3u);
  EXPECT_EQ(taxonomy.DepthOf("unknown"), 1u);
  EXPECT_EQ(taxonomy.MaxDepth(), 3u);
}

TEST(TaxonomyTest, AncestorAtDepth) {
  const Taxonomy taxonomy = MakeDrinkTaxonomy();
  EXPECT_EQ(taxonomy.AncestorAtDepth("espresso", 1), "drink");
  EXPECT_EQ(taxonomy.AncestorAtDepth("espresso", 2), "coffee");
  EXPECT_EQ(taxonomy.AncestorAtDepth("espresso", 3), "espresso");
  // Nodes already at or above the requested depth pass through.
  EXPECT_EQ(taxonomy.AncestorAtDepth("drink", 2), "drink");
  EXPECT_EQ(taxonomy.AncestorAtDepth("unknown", 1), "unknown");
}

TEST(TaxonomyTest, RejectsCyclesAndConflicts) {
  Taxonomy taxonomy;
  ASSERT_TRUE(taxonomy.AddEdge("a", "b").ok());
  ASSERT_TRUE(taxonomy.AddEdge("b", "c").ok());
  EXPECT_EQ(taxonomy.AddEdge("c", "a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(taxonomy.AddEdge("x", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(taxonomy.AddEdge("a", "z").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(taxonomy.AddEdge("a", "b").ok());  // Idempotent.
}

TEST(TaxonomyTest, FromPairs) {
  auto taxonomy = TaxonomyFromPairs({{"fine0", "coarse0"}, {"fine1", "coarse0"}});
  ASSERT_TRUE(taxonomy.ok());
  EXPECT_EQ(taxonomy->ParentOf("fine1"), "coarse0");
  auto bad = TaxonomyFromPairs({{"a", "b"}, {"b", "a"}});
  EXPECT_FALSE(bad.ok());
}

TEST(GeneralizeTest, RewritesFeaturesToAncestors) {
  const Taxonomy taxonomy = MakeDrinkTaxonomy();
  TimeSeries series;
  series.AppendNamed({"espresso", "green_tea"});
  series.AppendNamed({"latte"});

  const TimeSeries level1 = GeneralizeToDepth(series, taxonomy, 1);
  // Both instants collapse to "drink".
  EXPECT_EQ(level1.symbols().size(), 1u);
  EXPECT_EQ(level1.at(0).Count(), 1u);
  EXPECT_TRUE(level1.at(0).Test(*level1.symbols().Lookup("drink")));

  const TimeSeries level2 = GeneralizeToDepth(series, taxonomy, 2);
  EXPECT_TRUE(level2.at(0).Test(*level2.symbols().Lookup("coffee")));
  EXPECT_TRUE(level2.at(0).Test(*level2.symbols().Lookup("tea")));
  EXPECT_TRUE(level2.at(1).Test(*level2.symbols().Lookup("coffee")));
}

/// Daily routine: coffee variant every morning, tea most evenings --
/// specific variants alternate, so "espresso" alone is not frequent at the
/// leaf level in the morning slot, but "coffee" is at level 2.
TimeSeries MakeRoutineSeries(int days) {
  TimeSeries series;
  for (int day = 0; day < days; ++day) {
    series.AppendNamed({day % 2 == 0 ? "espresso" : "latte"});  // Morning.
    series.AppendNamed({"green_tea"});                          // Evening.
  }
  return series;
}

TEST(DrillDownTest, FindsGeneralPatternThenRestrictsSpecifics) {
  const Taxonomy taxonomy = MakeDrinkTaxonomy();
  const TimeSeries series = MakeRoutineSeries(30);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.8;

  auto levels = MineDrillDown(series, taxonomy, options);
  ASSERT_TRUE(levels.ok()) << levels.status();
  ASSERT_EQ(levels->size(), 3u);

  // Depth 1: everything is "drink"; drink@0 and drink@1 frequent.
  const LevelResult& top = (*levels)[0];
  EXPECT_EQ(top.depth, 1u);
  EXPECT_FALSE(top.result.empty());

  // Depth 2: coffee every morning, tea every evening, pair frequent.
  const LevelResult& mid = (*levels)[1];
  auto coffee_morning = Pattern::Parse(
      "coffee tea", const_cast<tsdb::SymbolTable*>(&mid.series.symbols()));
  ASSERT_TRUE(coffee_morning.ok());
  EXPECT_NE(mid.result.Find(*coffee_morning), nullptr);

  // Depth 3: espresso only every other day (conf 0.5 < 0.8): not frequent;
  // green_tea stays frequent.
  const LevelResult& leaf = (*levels)[2];
  bool saw_espresso = false, saw_green_tea = false;
  for (const auto& entry : leaf.result.patterns()) {
    const std::string text = entry.pattern.Format(leaf.series.symbols());
    if (text.find("espresso") != std::string::npos) saw_espresso = true;
    if (text.find("green_tea") != std::string::npos) saw_green_tea = true;
  }
  EXPECT_FALSE(saw_espresso);
  EXPECT_TRUE(saw_green_tea);
}

TEST(DrillDownTest, FilterNeverAdmitsLettersOutsideFrequentParents) {
  const Taxonomy taxonomy = MakeDrinkTaxonomy();
  // Tea only rarely: "tea" not frequent at depth 2, so green_tea must not
  // appear at depth 3 even though it alone would pass the threshold there
  // if mined unrestricted... (it appears in only 20% of segments anyway;
  // here we verify the filter against the mid level explicitly).
  TimeSeries series;
  for (int day = 0; day < 20; ++day) {
    series.AppendNamed({"espresso"});
    if (day % 5 == 0) {
      series.AppendNamed({"green_tea"});
    } else {
      series.AppendEmpty();
    }
  }
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.15;  // green_tea alone would pass (0.2 >= 0.15)…

  auto unrestricted = Mine(series, options);
  ASSERT_TRUE(unrestricted.ok());

  MiningOptions strict = options;
  strict.min_confidence = 0.5;  // …but "tea" fails at depth 2 at 0.5.
  auto levels = MineDrillDown(series, taxonomy, strict);
  ASSERT_TRUE(levels.ok());
  const LevelResult& leaf = (*levels)[2];
  for (const auto& entry : leaf.result.patterns()) {
    EXPECT_EQ(entry.pattern.Format(leaf.series.symbols()).find("tea"),
              std::string::npos);
  }
}

// Property: on random two-level data, the drill-down leaf result is exactly
// the unrestricted leaf mining filtered to letters whose parents were
// frequent one level up (the filter must not change counts, only admission).
TEST(DrillDownPropertyTest, LeafResultMatchesFilteredUnrestrictedMining) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    Taxonomy taxonomy;
    // Parents p0..p2, children c<i>_0, c<i>_1.
    for (int p = 0; p < 3; ++p) {
      for (int c = 0; c < 2; ++c) {
        ASSERT_TRUE(taxonomy
                        .AddEdge("c" + std::to_string(p) + "_" +
                                     std::to_string(c),
                                 "p" + std::to_string(p))
                        .ok());
      }
    }
    TimeSeries series;
    for (int t = 0; t < 200; ++t) {
      tsdb::FeatureSet instant;
      for (int p = 0; p < 3; ++p) {
        const bool aligned = (t % 4) == p;
        if (rng.NextBool(aligned ? 0.8 : 0.1)) {
          const int child = rng.NextBool(0.5) ? 0 : 1;
          instant.Set(series.symbols().Intern(
              "c" + std::to_string(p) + "_" + std::to_string(child)));
        }
      }
      series.Append(std::move(instant));
    }
    MiningOptions options;
    options.period = 4;
    options.min_confidence = 0.3;

    auto levels = MineDrillDown(series, taxonomy, options);
    ASSERT_TRUE(levels.ok());
    ASSERT_EQ(levels->size(), 2u);
    const LevelResult& top = (*levels)[0];
    const LevelResult& leaf = (*levels)[1];

    // Frequent parent letters at depth 1, as (position, name).
    std::set<std::pair<uint32_t, std::string>> frequent_parents;
    for (const auto& entry : top.result.patterns()) {
      if (entry.pattern.LetterCount() != 1) continue;
      for (uint32_t position = 0; position < 4; ++position) {
        entry.pattern.at(position).ForEach([&](uint32_t id) {
          frequent_parents.insert(
              {position, top.series.symbols().NameOrPlaceholder(id)});
        });
      }
    }

    // Unrestricted leaf mining, filtered after the fact.
    auto unrestricted = Mine(series, options);
    ASSERT_TRUE(unrestricted.ok());
    std::map<std::string, uint64_t> expected;
    for (const auto& entry : unrestricted->patterns()) {
      bool admitted = true;
      for (uint32_t position = 0; admitted && position < 4; ++position) {
        entry.pattern.at(position).ForEach([&](uint32_t id) {
          const std::string parent = taxonomy.ParentOf(
              series.symbols().NameOrPlaceholder(id));
          if (!frequent_parents.contains({position, parent})) {
            admitted = false;
          }
        });
      }
      if (admitted) {
        expected[entry.pattern.Format(series.symbols())] = entry.count;
      }
    }

    std::map<std::string, uint64_t> actual;
    for (const auto& entry : leaf.result.patterns()) {
      actual[entry.pattern.Format(leaf.series.symbols())] = entry.count;
    }
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ppm::multilevel
