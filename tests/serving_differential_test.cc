// Differential serving harness (ISSUE 8 acceptance): randomized
// put/append/mine/query traffic against a live `PatternServer`, across
// several named series and concurrent clients. Every served pattern set
// must be field-identical (diff_harness serialization: order, counts,
// bit-exact confidences) to a one-shot batch mine of the same snapshot --
// identified by the (version, length) stamp in the response -- rebuilt
// from a shadow log of everything the test ever stored.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hitset_miner.h"
#include "diff_harness.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kPeriod = 4;
constexpr double kMinConf = 0.5;
constexpr int kSeriesCount = 3;
constexpr int kClientCount = 4;
constexpr int kOpsPerClient = 12;

/// Ground truth for one series: every instant ever acknowledged, by the
/// store version that produced it. Guarded by `mu` -- mutations record
/// their (version, length) under it before any query can observe them.
struct ShadowSeries {
  std::mutex mu;
  tsdb::SymbolTable symbols;
  std::vector<tsdb::FeatureSet> instants;
  /// version -> length at that version (versions are per-series monotonic).
  std::map<uint64_t, uint64_t> length_at_version;
};

std::string SeriesName(int index) { return "s" + std::to_string(index); }

/// The batch reference: a plain one-shot hit-set mine of the first
/// `length` shadow instants -- exactly what `ppm mine` runs on an exported
/// snapshot.
std::string BatchReference(ShadowSeries* shadow, uint64_t length) {
  tsdb::TimeSeries series;
  {
    std::lock_guard<std::mutex> lock(shadow->mu);
    series.symbols() = shadow->symbols;
    for (uint64_t t = 0; t < length; ++t) {
      series.Append(shadow->instants[t]);
    }
  }
  MiningOptions options;
  options.period = kPeriod;
  options.min_confidence = kMinConf;
  tsdb::InMemorySeriesSource source(&series);
  auto result = MineHitSet(source, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return diff::Serialize(*result, series.symbols());
}

/// Serialization of a wire response in the same format as
/// `diff::Serialize`, so server-served patterns diff directly against the
/// batch reference.
std::string SerializeWire(const wire::Response& response) {
  tsdb::SymbolTable symbols;
  for (const std::string& name : response.symbols) symbols.Intern(name);
  std::string out;
  for (const wire::WirePattern& wp : response.patterns) {
    Pattern pattern(response.period);
    for (const auto& [position, feature] : wp.letters) {
      pattern.AddLetter(position, feature);
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "\t%llu\t%.17g\n",
                  static_cast<unsigned long long>(wp.count), wp.confidence);
    out += pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

tsdb::FeatureSet RandomInstant(Rng* rng, tsdb::SymbolTable* symbols) {
  tsdb::FeatureSet instant;
  for (uint32_t f = 0; f < 4; ++f) {
    if (rng->NextBool(0.45)) {
      instant.Set(symbols->Intern("f" + std::to_string(f)));
    }
  }
  return instant;
}

class ServingDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/servdiff_" + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ServingDifferentialTest, RandomizedTrafficMatchesBatchMine) {
  ServerOptions options;
  options.num_workers = 4;
  options.socket_path = dir_ + "/s.sock";
  auto server = PatternServer::Start(dir_ + "/db", options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t hits_before =
      registry.GetCounter("ppm.server.cache.hits").value();

  std::vector<ShadowSeries> shadows(kSeriesCount);

  // Seed every series over the socket (version 1 = the initial put).
  {
    auto client = Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Rng rng(2024);
    for (int s = 0; s < kSeriesCount; ++s) {
      wire::Request put;
      put.op = wire::Op::kPut;
      put.name = SeriesName(s);
      for (int t = 0; t < 10 * static_cast<int>(kPeriod); ++t) {
        put.series.Append(RandomInstant(&rng, &put.series.symbols()));
      }
      auto response = (*client)->Call(put);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->code, 0) << response->message;
      std::lock_guard<std::mutex> lock(shadows[s].mu);
      shadows[s].symbols = put.series.symbols();
      shadows[s].instants.assign(put.series.instants().begin(),
                                 put.series.instants().end());
      shadows[s].length_at_version[response->version] = response->length;
    }
  }

  // Concurrent clients: each owns appends to ONE series (so the shadow log
  // is a faithful order), and queries/mines all of them.
  std::atomic<int> mismatches{0};
  std::atomic<int> queries_served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientCount; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect(options.socket_path);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      Rng rng(7777 + c);
      const int own = c % kSeriesCount;
      for (int op = 0; op < kOpsPerClient; ++op) {
        if (rng.NextBool(0.4)) {
          // Append 1..2*period instants to the owned series.
          ShadowSeries& shadow = shadows[own];
          const uint64_t n = 1 + rng.NextBelow(2 * kPeriod);
          std::vector<tsdb::FeatureSet> delta;
          wire::Request append;
          append.op = wire::Op::kAppend;
          append.name = SeriesName(own);
          // Appends must be serialized against the shadow so (version,
          // length) bookkeeping matches the server's order.
          std::lock_guard<std::mutex> lock(shadow.mu);
          for (uint64_t i = 0; i < n; ++i) {
            const tsdb::FeatureSet instant =
                RandomInstant(&rng, &shadow.symbols);
            std::vector<std::string> names;
            instant.ForEach([&](uint32_t id) {
              names.push_back(shadow.symbols.NameOrPlaceholder(id));
            });
            append.instants.push_back(std::move(names));
            delta.push_back(instant);
          }
          auto response = (*client)->Call(append);
          ASSERT_TRUE(response.ok());
          ASSERT_EQ(response->code, 0) << response->message;
          for (tsdb::FeatureSet& instant : delta) {
            shadow.instants.push_back(std::move(instant));
          }
          ASSERT_EQ(response->length, shadow.instants.size());
          shadow.length_at_version[response->version] = response->length;
        } else {
          // Query (or force-mine) a random series and diff against the
          // batch reference for the snapshot the response claims.
          const int target = static_cast<int>(rng.NextBelow(kSeriesCount));
          wire::Request query;
          query.op = rng.NextBool(0.25) ? wire::Op::kMine : wire::Op::kQuery;
          query.name = SeriesName(target);
          query.period = kPeriod;
          query.min_confidence = kMinConf;
          auto response = (*client)->Call(query);
          ASSERT_TRUE(response.ok());
          ASSERT_EQ(response->code, 0) << response->message;
          ShadowSeries& shadow = shadows[target];
          {
            // The served snapshot must be one the shadow knows: exactly
            // `length` instants at `version`.
            std::lock_guard<std::mutex> lock(shadow.mu);
            auto it = shadow.length_at_version.find(response->version);
            ASSERT_NE(it, shadow.length_at_version.end())
                << "served unknown version " << response->version;
            ASSERT_EQ(it->second, response->length);
          }
          const std::string served = SerializeWire(*response);
          const std::string expected =
              BatchReference(&shadow, response->length);
          if (served != expected) {
            ++mismatches;
            ADD_FAILURE() << "server/batch divergence on "
                          << SeriesName(target) << " version "
                          << response->version << "\nserved:\n"
                          << served << "batch:\n"
                          << expected;
          }
          ++queries_served;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(queries_served.load(), 0);

  // Re-querying every series now (stable state) must produce cache hits,
  // proven via the ppm.server.cache.* metrics.
  {
    auto client = Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok());
    for (int s = 0; s < kSeriesCount; ++s) {
      wire::Request query;
      query.op = wire::Op::kQuery;
      query.name = SeriesName(s);
      query.period = kPeriod;
      query.min_confidence = kMinConf;
      auto warm = (*client)->Call(query);
      ASSERT_TRUE(warm.ok());
      ASSERT_EQ(warm->code, 0) << warm->message;
      auto hit = (*client)->Call(query);
      ASSERT_TRUE(hit.ok());
      ASSERT_EQ(hit->code, 0) << hit->message;
      EXPECT_EQ(hit->cache_outcome, 1) << "expected a cache hit for "
                                       << SeriesName(s);
    }
  }
  EXPECT_GT(registry.GetCounter("ppm.server.cache.hits").value(),
            hits_before);

  // An append invalidates exactly the affected series: the others still
  // answer from their memoized results.
  {
    auto client = Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok());
    wire::Request append;
    append.op = wire::Op::kAppend;
    append.name = SeriesName(0);
    append.instants = {{"f0"}};
    {
      ShadowSeries& shadow = shadows[0];
      std::lock_guard<std::mutex> lock(shadow.mu);
      auto response = (*client)->Call(append);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->code, 0) << response->message;
      tsdb::FeatureSet instant;
      instant.Set(shadow.symbols.Intern("f0"));
      shadow.instants.push_back(std::move(instant));
      shadow.length_at_version[response->version] = response->length;
    }
    for (int s = 0; s < kSeriesCount; ++s) {
      wire::Request query;
      query.op = wire::Op::kQuery;
      query.name = SeriesName(s);
      query.period = kPeriod;
      query.min_confidence = kMinConf;
      auto response = (*client)->Call(query);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->code, 0) << response->message;
      if (s == 0) {
        EXPECT_NE(response->cache_outcome, 1)
            << "append must invalidate the appended series";
      } else {
        EXPECT_EQ(response->cache_outcome, 1)
            << "append must not invalidate " << SeriesName(s);
      }
      EXPECT_EQ(SerializeWire(*response),
                BatchReference(&shadows[s],
                               response->length));
    }
  }

  (*server)->RequestStop();
  (*server)->Wait();
}

}  // namespace
}  // namespace ppm::service
