#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "etl/bucketizer.h"
#include "etl/event_log.h"

namespace ppm::etl {
namespace {

TEST(EventLogTest, AddAndBounds) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.MinTimestamp().ok());
  log.Add(100, "a");
  log.Add(50, "b");
  log.Add(200, "a");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(*log.MinTimestamp(), 50);
  EXPECT_EQ(*log.MaxTimestamp(), 200);
}

TEST(EventLogTest, SortIsStable) {
  EventLog log;
  log.Add(10, "second");
  log.Add(5, "first");
  log.Add(10, "third");
  log.SortByTime();
  EXPECT_EQ(log.events()[0].feature, "first");
  EXPECT_EQ(log.events()[1].feature, "second");
  EXPECT_EQ(log.events()[2].feature, "third");
}

TEST(EventLogIoTest, RoundTrip) {
  const std::string path = testing::TempDir() + "/ppm_etl_roundtrip.log";
  EventLog log;
  log.Add(-5, "before_epoch");
  log.Add(1000, "login");
  log.Add(2000, "logout");
  ASSERT_TRUE(WriteEventLog(log, path).ok());
  auto loaded = ReadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->events()[0], (Event{-5, "before_epoch"}));
  EXPECT_EQ(loaded->events()[2], (Event{2000, "logout"}));
  std::remove(path.c_str());
}

TEST(EventLogIoTest, SkipsCommentsRejectsGarbage) {
  const std::string path = testing::TempDir() + "/ppm_etl_garbage.log";
  std::ofstream(path) << "# header\n\n10 ok\nbadline\n";
  auto loaded = ReadEventLog(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);

  std::ofstream(path, std::ios::trunc) << "xx yy\n";
  EXPECT_EQ(ReadEventLog(path).status().code(), StatusCode::kCorruption);

  std::ofstream(path, std::ios::trunc) << "# only comments\n\n";
  auto empty = ReadEventLog(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  std::remove(path.c_str());
}

TEST(BucketizeTest, GroupsEventsAndKeepsEmptyBuckets) {
  EventLog log;
  log.Add(0, "a");
  log.Add(5, "b");    // Same bucket as a (width 10).
  log.Add(25, "a");   // Bucket 2; bucket 1 empty.
  BucketizeOptions options;
  options.bucket_width = 10;
  auto series = Bucketize(log, options);
  ASSERT_TRUE(series.ok()) << series.status();
  ASSERT_EQ(series->length(), 3u);
  EXPECT_EQ(series->at(0).Count(), 2u);
  EXPECT_TRUE(series->at(1).Empty());
  EXPECT_EQ(series->at(2).Count(), 1u);
}

TEST(BucketizeTest, AutoOriginSnapsToBucketBoundary) {
  EventLog log;
  log.Add(3605, "x");  // 01:00:05.
  log.Add(7200, "y");  // 02:00:00.
  BucketizeOptions options;
  options.bucket_width = 3600;
  auto series = Bucketize(log, options);
  ASSERT_TRUE(series.ok());
  // Origin snaps to 3600, so x is in bucket 0 and y in bucket 1.
  ASSERT_EQ(series->length(), 2u);
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("x")));
  EXPECT_TRUE(series->at(1).Test(*series->symbols().Lookup("y")));
}

TEST(BucketizeTest, ExplicitRangeDropsOutsiders) {
  EventLog log;
  log.Add(-100, "early");
  log.Add(15, "in");
  log.Add(999, "late");
  BucketizeOptions options;
  options.bucket_width = 10;
  options.origin = 0;
  options.end = 30;
  auto series = Bucketize(log, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->length(), 3u);
  EXPECT_FALSE(series->symbols().Lookup("early").ok());
  EXPECT_FALSE(series->symbols().Lookup("late").ok());
  EXPECT_TRUE(series->symbols().Lookup("in").ok());
}

TEST(BucketizeTest, NegativeTimestampsFloorCorrectly) {
  EventLog log;
  log.Add(-25, "a");
  log.Add(-1, "b");
  BucketizeOptions options;
  options.bucket_width = 10;
  auto series = Bucketize(log, options);
  ASSERT_TRUE(series.ok());
  // Auto origin floors -25 to -30: buckets [-30,-20), [-20,-10), [-10,0).
  ASSERT_EQ(series->length(), 3u);
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("a")));
  EXPECT_TRUE(series->at(2).Test(*series->symbols().Lookup("b")));
}

TEST(BucketizeTest, RejectsBadOptions) {
  EventLog log;
  log.Add(0, "a");
  BucketizeOptions options;
  options.bucket_width = 0;
  EXPECT_FALSE(Bucketize(log, options).ok());
  options.bucket_width = 10;
  options.origin = 100;
  options.end = 50;
  EXPECT_FALSE(Bucketize(log, options).ok());
  EXPECT_FALSE(Bucketize(EventLog(), BucketizeOptions()).ok());
}

TEST(BucketizeTest, RejectsInsaneBucketCounts) {
  EventLog log;
  log.Add(0, "a");
  log.Add(2000000000000, "b");  // ~63k years of seconds.
  BucketizeOptions options;
  options.bucket_width = 1;
  EXPECT_EQ(Bucketize(log, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalendarTest, EpochIsThursday) {
  EXPECT_EQ(DayOfWeek(0), 3);          // Thursday, Monday-based.
  EXPECT_EQ(DayOfWeek(4 * 86400), 0);  // Monday 1970-01-05.
  EXPECT_EQ(DayOfWeek(-86400), 2);     // Wednesday 1969-12-31.
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(3 * 3600 + 59), 3);
  EXPECT_EQ(HourOfDay(-1), 23);  // One second before the epoch.
  EXPECT_EQ(HourOfWeek(4 * 86400), 0);
  EXPECT_EQ(HourOfWeek(4 * 86400 + 25 * 3600), 25);
}

TEST(CalendarTest, AnnotateCalendarAddsSlotFeatures) {
  EventLog log;
  const int64_t monday = 4 * 86400;
  log.Add(monday, "x");
  log.Add(monday + 86400, "y");
  BucketizeOptions options;
  options.bucket_width = 86400;
  options.origin = monday;
  auto series = Bucketize(log, options);
  ASSERT_TRUE(series.ok());
  AnnotateCalendar(&*series, monday, 86400, CalendarFeature::kDayOfWeek);
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("dow0")));
  EXPECT_TRUE(series->at(1).Test(*series->symbols().Lookup("dow1")));
}

}  // namespace
}  // namespace ppm::etl
