// Cross-module integration tests: mining through the file-backed source
// must equal in-memory mining; corrupted storage must surface as a
// Corruption status from the miner (never a crash or silent truncation);
// and the full generate -> write -> reload -> mine pipeline round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/multi_period.h"
#include "synth/generator.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"

namespace ppm {
namespace {

std::map<std::string, uint64_t> AsCountMap(const MiningResult& result,
                                           const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : result.patterns()) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

class FileMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorOptions options;
    options.length = 8000;
    options.period = 20;
    options.max_pat_length = 4;
    options.num_f1 = 6;
    options.num_features = 30;
    options.seed = 99;
    auto generated = synth::GenerateSeries(options);
    ASSERT_TRUE(generated.ok());
    series_ = std::move(generated->series);
    path_ = testing::TempDir() + "/ppm_integration.bin";
    ASSERT_TRUE(tsdb::WriteBinarySeries(series_, path_).ok());
    mining_.period = 20;
    mining_.min_confidence = 0.8;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  tsdb::TimeSeries series_;
  std::string path_;
  MiningOptions mining_;
};

TEST_F(FileMiningTest, HitSetFileEqualsMemory) {
  tsdb::InMemorySeriesSource memory(&series_);
  auto memory_result = MineHitSet(memory, mining_);
  ASSERT_TRUE(memory_result.ok());

  auto file = tsdb::FileSeriesSource::Open(path_);
  ASSERT_TRUE(file.ok());
  auto file_result = MineHitSet(**file, mining_);
  ASSERT_TRUE(file_result.ok()) << file_result.status();

  EXPECT_EQ(AsCountMap(*memory_result, series_.symbols()),
            AsCountMap(*file_result, (*file)->symbols()));
  EXPECT_EQ(file_result->stats().scans, 2u);
}

TEST_F(FileMiningTest, AprioriFileEqualsMemory) {
  tsdb::InMemorySeriesSource memory(&series_);
  auto memory_result = MineApriori(memory, mining_);
  ASSERT_TRUE(memory_result.ok());

  auto file = tsdb::FileSeriesSource::Open(path_);
  ASSERT_TRUE(file.ok());
  auto file_result = MineApriori(**file, mining_);
  ASSERT_TRUE(file_result.ok());

  EXPECT_EQ(AsCountMap(*memory_result, series_.symbols()),
            AsCountMap(*file_result, (*file)->symbols()));
}

TEST_F(FileMiningTest, MultiPeriodSharedOverFileUsesTwoScans) {
  auto file = tsdb::FileSeriesSource::Open(path_);
  ASSERT_TRUE(file.ok());
  auto result = MineMultiPeriodShared(**file, 18, 22, mining_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_scans, 2u);

  tsdb::InMemorySeriesSource memory(&series_);
  auto memory_result = MineMultiPeriodShared(memory, 18, 22, mining_);
  ASSERT_TRUE(memory_result.ok());
  for (size_t i = 0; i < result->per_period.size(); ++i) {
    EXPECT_EQ(AsCountMap(result->per_period[i].second, (*file)->symbols()),
              AsCountMap(memory_result->per_period[i].second,
                         series_.symbols()));
  }
}

TEST_F(FileMiningTest, TruncatedFileSurfacesCorruption) {
  // Chop the file short: the declared instant count no longer matches.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();

  // v3 (the default) detects the truncated payload at Open via its
  // checksum pass; if an older format ever gets this far, the corruption
  // must surface during the scan instead.
  auto file = tsdb::FileSeriesSource::Open(path_);
  if (!file.ok()) {
    EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
    return;
  }
  auto result = MineHitSet(**file, mining_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(FileMiningTest, GarbageInsideDataSurfacesError) {
  // Overwrite a chunk in the middle of the instant data with 0xFF bytes:
  // feature ids blow past the symbol table and must be rejected.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(200, std::ios::beg);
  const std::string garbage(64, '\xff');
  file.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  file.close();

  auto source = tsdb::FileSeriesSource::Open(path_);
  if (!source.ok()) return;  // Garbage landed in the header: also fine.
  auto result = MineHitSet(**source, mining_);
  EXPECT_FALSE(result.ok());
}

TEST(PipelineTest, GenerateWriteReloadMineRecoversPlant) {
  synth::GeneratorOptions options;
  options.length = 10000;
  options.period = 25;
  options.max_pat_length = 5;
  options.num_f1 = 8;
  options.num_features = 40;
  options.seed = 1234;
  auto generated = synth::GenerateSeries(options);
  ASSERT_TRUE(generated.ok());

  const std::string path = testing::TempDir() + "/ppm_pipeline.bin";
  ASSERT_TRUE(tsdb::WriteBinarySeries(generated->series, path).ok());

  auto source = tsdb::FileSeriesSource::Open(path);
  ASSERT_TRUE(source.ok());
  MiningOptions mining;
  mining.period = 25;
  mining.min_confidence = 0.8;
  auto result = MineHitSet(**source, mining);
  ASSERT_TRUE(result.ok());

  // The anchor parsed back against the *file's* symbol table must be found.
  tsdb::SymbolTable file_symbols = (*source)->symbols();
  auto anchor = Pattern::Parse(
      generated->anchor.Format(generated->series.symbols()), &file_symbols);
  ASSERT_TRUE(anchor.ok());
  EXPECT_NE(result->Find(*anchor), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppm
