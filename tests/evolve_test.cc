#include "evolve/evolution.h"

#include <gtest/gtest.h>

#include "tsdb/time_series.h"

namespace ppm::evolve {
namespace {

using tsdb::TimeSeries;

/// First half: (a b) every period; second half: (a c) every period.
TimeSeries MakeRegimeShiftSeries(int segments_per_regime) {
  TimeSeries series;
  for (int i = 0; i < segments_per_regime; ++i) {
    series.AppendNamed({"a"});
    series.AppendNamed({"b"});
  }
  for (int i = 0; i < segments_per_regime; ++i) {
    series.AppendNamed({"a"});
    series.AppendNamed({"c"});
  }
  return series;
}

MiningOptions DefaultOptions() {
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.8;
  return options;
}

TEST(MineWindowsTest, SplitsAndMinesEachWindow) {
  const TimeSeries series = MakeRegimeShiftSeries(20);  // 80 instants.
  auto windows = MineWindows(series, 40, DefaultOptions());
  ASSERT_TRUE(windows.ok()) << windows.status();
  ASSERT_EQ(windows->size(), 2u);
  EXPECT_EQ((*windows)[0].start, 0u);
  EXPECT_EQ((*windows)[1].start, 40u);
  EXPECT_EQ((*windows)[0].length, 40u);

  // Window 1 has ab; window 2 has ac.
  const auto& symbols = series.symbols();
  tsdb::SymbolTable mutable_symbols = symbols;
  auto ab = Pattern::Parse("a b", &mutable_symbols);
  auto ac = Pattern::Parse("a c", &mutable_symbols);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ac.ok());
  EXPECT_NE((*windows)[0].result.Find(*ab), nullptr);
  EXPECT_EQ((*windows)[0].result.Find(*ac), nullptr);
  EXPECT_EQ((*windows)[1].result.Find(*ab), nullptr);
  EXPECT_NE((*windows)[1].result.Find(*ac), nullptr);
}

TEST(MineWindowsTest, TrailingPartialWindowKeptIfAtLeastOnePeriod) {
  const TimeSeries series = MakeRegimeShiftSeries(11);  // 44 instants.
  auto windows = MineWindows(series, 40, DefaultOptions());
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 2u);
  EXPECT_EQ((*windows)[1].length, 4u);
}

TEST(MineWindowsTest, RejectsBadWindowLength) {
  const TimeSeries series = MakeRegimeShiftSeries(5);
  EXPECT_FALSE(MineWindows(series, 0, DefaultOptions()).ok());
  MiningOptions options = DefaultOptions();
  options.period = 10;
  EXPECT_FALSE(MineWindows(series, 5, options).ok());
}

TEST(DiffResultsTest, AppearedVanishedShifted) {
  const TimeSeries series = MakeRegimeShiftSeries(20);
  auto windows = MineWindows(series, 40, DefaultOptions());
  ASSERT_TRUE(windows.ok());
  const PatternDiff diff =
      DiffResults((*windows)[0].result, (*windows)[1].result, 0.05);

  // b-letter patterns vanish, c-letter patterns appear, a persists.
  EXPECT_FALSE(diff.appeared.empty());
  EXPECT_FALSE(diff.vanished.empty());
  for (const FrequentPattern& entry : diff.appeared) {
    const std::string text = entry.pattern.Format(series.symbols());
    EXPECT_NE(text.find("c"), std::string::npos) << text;
  }
  for (const FrequentPattern& entry : diff.vanished) {
    const std::string text = entry.pattern.Format(series.symbols());
    EXPECT_NE(text.find("b"), std::string::npos) << text;
  }
  // 'a' holds at confidence 1.0 in both windows: not shifted.
  EXPECT_TRUE(diff.shifted.empty());
}

TEST(DiffResultsTest, ShiftThresholdRespected) {
  // Build two synthetic results sharing one pattern at different conf.
  Pattern p(2);
  p.AddLetter(0, 0);
  MiningResult before, after;
  before.patterns().push_back(FrequentPattern{p, 9, 0.9});
  after.patterns().push_back(FrequentPattern{p, 8, 0.8});

  EXPECT_TRUE(DiffResults(before, after, 0.2).shifted.empty());
  const PatternDiff sensitive = DiffResults(before, after, 0.05);
  ASSERT_EQ(sensitive.shifted.size(), 1u);
  EXPECT_DOUBLE_EQ(sensitive.shifted[0].before_confidence, 0.9);
  EXPECT_DOUBLE_EQ(sensitive.shifted[0].after_confidence, 0.8);
}

TEST(StabilityReportTest, CountsWindowsAndAverages) {
  const TimeSeries series = MakeRegimeShiftSeries(20);
  auto windows = MineWindows(series, 20, DefaultOptions());  // 4 windows.
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 4u);
  const auto report = StabilityReport(*windows);
  ASSERT_FALSE(report.empty());
  // 'a' is frequent in all 4 windows and must rank first.
  tsdb::SymbolTable mutable_symbols = series.symbols();
  auto a = Pattern::Parse("a *", &mutable_symbols);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(report.front().pattern, *a);
  EXPECT_EQ(report.front().windows_present, 4u);
  EXPECT_DOUBLE_EQ(report.front().mean_confidence, 1.0);
  // Regime-specific patterns appear in exactly 2 windows.
  for (const PatternStability& entry : report) {
    EXPECT_LE(entry.windows_present, 4u);
    EXPECT_GE(entry.windows_present, 1u);
  }
}

TEST(StabilityReportTest, EmptyInput) {
  EXPECT_TRUE(StabilityReport({}).empty());
}

}  // namespace
}  // namespace ppm::evolve
