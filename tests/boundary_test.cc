// Boundary regression tests: degenerate inputs (period exceeding or equal
// to the series length, empty series, single-feature alphabets) must give
// clean errors or correct results -- never crashes -- through every miner,
// sequential and sharded alike.

#include <gtest/gtest.h>

#include <string>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/miner.h"
#include "core/multi_period.h"
#include "core/naive_miner.h"
#include "diff_harness.h"
#include "tsdb/series_source.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

TimeSeries SingleFeatureSeries(uint64_t length) {
  TimeSeries series;
  series.symbols().Intern("only");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    instant.Set(0);
    series.Append(std::move(instant));
  }
  return series;
}

TimeSeries TwoFeatureSeries(uint64_t length) {
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    instant.Set(t % 2);
    series.Append(std::move(instant));
  }
  return series;
}

/// Runs every single-period miner (reference miners, hit-set with both
/// stores, hit-set sharded) and checks each outcome with `check`.
template <typename CheckFn>
void ForEveryMiner(const TimeSeries& series, const MiningOptions& options,
                   const CheckFn& check) {
  {
    InMemorySeriesSource source(&series);
    check("exhaustive", MineExhaustive(source, options));
  }
  {
    InMemorySeriesSource source(&series);
    check("naive", MineNaiveLevelwise(source, options));
  }
  {
    InMemorySeriesSource source(&series);
    check("apriori", MineApriori(source, options));
  }
  for (const HitStoreKind store :
       {HitStoreKind::kMaxSubpatternTree, HitStoreKind::kHashTable}) {
    for (const uint32_t threads : {1u, 4u}) {
      MiningOptions hitset_options = options;
      hitset_options.hit_store = store;
      hitset_options.num_threads = threads;
      InMemorySeriesSource source(&series);
      check("hitset store=" + std::to_string(static_cast<int>(store)) +
                " threads=" + std::to_string(threads),
            MineHitSet(source, hitset_options));
    }
  }
}

TEST(BoundaryTest, PeriodExceedingLengthIsInvalidArgument) {
  const TimeSeries series = TwoFeatureSeries(7);
  MiningOptions options;
  options.period = 9;
  ForEveryMiner(series, options,
                [](const std::string& miner, const Result<MiningResult>& r) {
                  ASSERT_FALSE(r.ok()) << miner;
                  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
                      << miner << ": " << r.status();
                });
}

TEST(BoundaryTest, ZeroPeriodIsInvalidArgument) {
  const TimeSeries series = TwoFeatureSeries(8);
  MiningOptions options;
  options.period = 0;
  ForEveryMiner(series, options,
                [](const std::string& miner, const Result<MiningResult>& r) {
                  ASSERT_FALSE(r.ok()) << miner;
                  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
                      << miner << ": " << r.status();
                });
}

TEST(BoundaryTest, EmptySeriesIsInvalidArgument) {
  const TimeSeries series;
  MiningOptions options;
  options.period = 1;
  ForEveryMiner(series, options,
                [](const std::string& miner, const Result<MiningResult>& r) {
                  ASSERT_FALSE(r.ok()) << miner;
                  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
                      << miner << ": " << r.status();
                });
}

TEST(BoundaryTest, PeriodEqualToLengthMinesTheSingleSegment) {
  const TimeSeries series = TwoFeatureSeries(6);
  MiningOptions options;
  options.period = 6;  // exactly one whole segment, m = 1
  options.min_confidence = 1.0;
  ForEveryMiner(
      series, options,
      [&series](const std::string& miner, const Result<MiningResult>& r) {
        ASSERT_TRUE(r.ok()) << miner << ": " << r.status();
        // One segment; every observed letter is frequent with count 1, and
        // so is every combination: 2^6 - 1 subsets of the full pattern.
        EXPECT_EQ(r->stats().num_periods, 1u) << miner;
        EXPECT_EQ(r->size(), 63u) << miner;
        for (const FrequentPattern& entry : r->patterns()) {
          EXPECT_EQ(entry.count, 1u) << miner;
          EXPECT_DOUBLE_EQ(entry.confidence, 1.0) << miner;
        }
      });
}

TEST(BoundaryTest, SingleFeatureAlphabetAgreesAcrossMiners) {
  const TimeSeries series = SingleFeatureSeries(21);
  MiningOptions options;
  options.period = 4;  // m = 5, one instant of slack
  options.min_confidence = 0.9;

  InMemorySeriesSource oracle_source(&series);
  const auto oracle = MineExhaustive(oracle_source, options);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  // The single feature fires at all 4 offsets of every segment: all
  // 2^4 - 1 letter combinations are frequent with count 5.
  EXPECT_EQ(oracle->size(), 15u);
  const auto oracle_map = diff::CountMap(*oracle, series.symbols());

  ForEveryMiner(series, options,
                [&series, &oracle_map](const std::string& miner,
                                       const Result<MiningResult>& r) {
                  ASSERT_TRUE(r.ok()) << miner << ": " << r.status();
                  EXPECT_EQ(diff::CountMap(*r, series.symbols()), oracle_map)
                      << miner;
                });
}

TEST(BoundaryTest, MultiPeriodBoundsAreValidated) {
  const TimeSeries series = TwoFeatureSeries(12);
  MiningOptions options;
  for (const uint32_t threads : {1u, 4u}) {
    options.num_threads = threads;
    for (const bool shared : {false, true}) {
      {
        InMemorySeriesSource source(&series);
        const auto r = shared ? MineMultiPeriodShared(source, 0, 4, options)
                              : MineMultiPeriodLooped(source, 0, 4, options);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
      }
      {
        InMemorySeriesSource source(&series);
        const auto r = shared ? MineMultiPeriodShared(source, 4, 13, options)
                              : MineMultiPeriodLooped(source, 4, 13, options);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
      }
      {
        InMemorySeriesSource source(&series);
        const auto r = shared ? MineMultiPeriodShared(source, 5, 4, options)
                              : MineMultiPeriodLooped(source, 5, 4, options);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(BoundaryTest, MultiPeriodFullRangeIncludingLengthItself) {
  // Periods 1 (sub-2-letter segments, nothing stored) through the series
  // length (a single segment) in one call, sequential and sharded.
  const TimeSeries series = TwoFeatureSeries(12);
  MiningOptions options;
  options.min_confidence = 1.0;

  for (const bool shared : {false, true}) {
    InMemorySeriesSource sequential_source(&series);
    const auto sequential =
        shared ? MineMultiPeriodShared(sequential_source, 1, 12, options)
               : MineMultiPeriodLooped(sequential_source, 1, 12, options);
    ASSERT_TRUE(sequential.ok()) << sequential.status();

    MiningOptions parallel_options = options;
    parallel_options.num_threads = 4;
    InMemorySeriesSource parallel_source(&series);
    const auto concurrent =
        shared
            ? MineMultiPeriodShared(parallel_source, 1, 12, parallel_options)
            : MineMultiPeriodLooped(parallel_source, 1, 12, parallel_options);
    ASSERT_TRUE(concurrent.ok()) << concurrent.status();

    ASSERT_EQ(concurrent->per_period.size(), sequential->per_period.size());
    for (size_t r = 0; r < sequential->per_period.size(); ++r) {
      EXPECT_EQ(diff::CountMap(concurrent->per_period[r].second,
                               series.symbols()),
                diff::CountMap(sequential->per_period[r].second,
                               series.symbols()))
          << (shared ? "shared" : "looped") << " period "
          << sequential->per_period[r].first;
    }
  }
}

}  // namespace
}  // namespace ppm
