#include "service/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "tsdb/time_series.h"

namespace ppm::service::wire {
namespace {

Request MakeMineRequest() {
  Request request;
  request.op = Op::kMine;
  request.name = "sensor.42";
  request.deadline_ms = 1500;
  request.period = 24;
  request.min_confidence = 0.625;  // Exactly representable.
  request.min_count = 7;
  request.max_letters = 3;
  request.algorithm = 0;
  return request;
}

TEST(WireTest, MineRequestRoundTrip) {
  const Request request = MakeMineRequest();
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, Op::kMine);
  EXPECT_EQ(decoded->name, "sensor.42");
  EXPECT_EQ(decoded->deadline_ms, 1500u);
  EXPECT_EQ(decoded->period, 24u);
  EXPECT_EQ(decoded->min_confidence, 0.625);
  EXPECT_EQ(decoded->min_count, 7u);
  EXPECT_EQ(decoded->max_letters, 3u);
  EXPECT_EQ(decoded->algorithm, 0);
}

TEST(WireTest, PutRequestCarriesSeries) {
  Request request;
  request.op = Op::kPut;
  request.name = "s";
  request.series.AppendNamed({"a", "b"});
  request.series.AppendNamed({"b"});
  request.series.AppendNamed({});

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->series.length(), 3u);
  EXPECT_EQ(decoded->series.symbols().names(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(decoded->series.at(0).Count(), 2u);
  EXPECT_EQ(decoded->series.at(2).Count(), 0u);
}

TEST(WireTest, AppendRequestCarriesNamedInstants) {
  Request request;
  request.op = Op::kAppend;
  request.name = "s";
  request.instants = {{"x", "y"}, {}, {"z"}};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->instants, request.instants);
}

TEST(WireTest, ResponseRoundTrip) {
  Response response;
  response.code = 9;  // kDeadlineExceeded
  response.message = "deadline exceeded";
  response.cache_outcome = 2;
  response.version = 17;
  response.length = 4242;
  response.num_periods = 100;
  response.period = 42;
  response.symbols = {"a", "b", "c"};
  WirePattern pattern;
  pattern.letters = {{0, 2}, {41, 0}};
  pattern.count = 93;
  pattern.confidence = 0.93;
  response.patterns.push_back(pattern);
  response.stats_json = "{\"x\":1}";
  response.metrics_prom = "# TYPE x counter\n";

  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, 9);
  EXPECT_EQ(decoded->message, "deadline exceeded");
  EXPECT_EQ(decoded->cache_outcome, 2);
  EXPECT_EQ(decoded->version, 17u);
  EXPECT_EQ(decoded->length, 4242u);
  EXPECT_EQ(decoded->num_periods, 100u);
  EXPECT_EQ(decoded->period, 42u);
  EXPECT_EQ(decoded->symbols, response.symbols);
  ASSERT_EQ(decoded->patterns.size(), 1u);
  EXPECT_EQ(decoded->patterns[0].letters, pattern.letters);
  EXPECT_EQ(decoded->patterns[0].count, 93u);
  EXPECT_EQ(decoded->patterns[0].confidence, 0.93);
  EXPECT_EQ(decoded->stats_json, response.stats_json);
  EXPECT_EQ(decoded->metrics_prom, response.metrics_prom);
}

TEST(WireTest, GetResponseSeriesRoundTrip) {
  Response response;
  response.has_series = true;
  response.series.AppendNamed({"q"});
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->has_series);
  EXPECT_EQ(decoded->series.length(), 1u);
}

TEST(WireTest, V2RequestCarriesTenantAndRoundTrips) {
  Request request = MakeMineRequest();
  request.tenant = "team-alpha";
  const std::string encoded = EncodeRequest(request);
  ASSERT_FALSE(encoded.empty());
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), kV2Marker);
  auto decoded = DecodeRequest(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wire_version, 2);
  EXPECT_EQ(decoded->tenant, "team-alpha");
  EXPECT_EQ(decoded->op, Op::kMine);
  EXPECT_EQ(decoded->name, "sensor.42");
  EXPECT_EQ(decoded->min_confidence, 0.625);
}

TEST(WireTest, V1RequestStaysByteCompatible) {
  // A request with no v2 features must encode in the original layout: no
  // marker byte, op first -- an old server keeps understanding new clients.
  const Request request = MakeMineRequest();
  const std::string encoded = EncodeRequest(request);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), static_cast<uint8_t>(Op::kMine));
  auto decoded = DecodeRequest(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wire_version, 1);
  EXPECT_TRUE(decoded->tenant.empty());
}

TEST(WireTest, HealthAndReadyOpsAreV2Only) {
  for (const Op op : {Op::kHealth, Op::kReady}) {
    Request request;
    request.op = op;
    const std::string encoded = EncodeRequest(request);
    EXPECT_EQ(static_cast<uint8_t>(encoded[0]), kV2Marker);
    auto decoded = DecodeRequest(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->op, op);
    // The same op in a v1 layout is out of range for a v1 decoder.
    auto v1 = DecodeRequest(EncodeRequest(request, 1));
    EXPECT_FALSE(v1.ok());
  }
}

TEST(WireTest, V2ResponseCarriesRetryHintAndReadyState) {
  Response response;
  response.code = 10;  // kResourceExhausted
  response.message = "tenant over quota";
  response.retry_after_ms = 250;
  response.ready_state = static_cast<uint8_t>(ReadyState::kShedding);
  response.health_json = "{\"queue_depth\":9}";
  const std::string encoded = EncodeResponse(response, 2);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), kV2Marker);
  auto decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, 10);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
  EXPECT_EQ(decoded->ready_state, static_cast<uint8_t>(ReadyState::kShedding));
  EXPECT_EQ(decoded->health_json, "{\"queue_depth\":9}");
}

TEST(WireTest, V1ResponseDropsV2FieldsAndStaysCompatible) {
  Response response;
  response.code = 0;
  response.retry_after_ms = 999;  // Must not leak into a v1 payload.
  const std::string v1 = EncodeResponse(response, 1);
  EXPECT_EQ(v1, EncodeResponse(response));
  auto decoded = DecodeResponse(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->retry_after_ms, 0u);
  EXPECT_EQ(decoded->ready_state, 0);
}

TEST(WireTest, V2TruncatedPayloadIsRejectedAtEveryPrefix) {
  Request request = MakeMineRequest();
  request.tenant = "t";
  const std::string encoded = EncodeRequest(request);
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = DecodeRequest(std::string_view(encoded.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(DecodeRequest(encoded).ok());

  Response response;
  response.code = 10;
  response.retry_after_ms = 100;
  response.health_json = "{}";
  const std::string resp = EncodeResponse(response, 2);
  for (size_t len = 0; len < resp.size(); ++len) {
    auto decoded = DecodeResponse(std::string_view(resp.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(DecodeResponse(resp).ok());
}

TEST(WireTest, TruncatedPayloadIsRejectedAtEveryPrefix) {
  // Every proper prefix must fail cleanly (no crash, no OOB) -- the
  // decoder bounds-checks each read against the remaining payload.
  const std::string encoded = EncodeRequest(MakeMineRequest());
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = DecodeRequest(std::string_view(encoded.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(DecodeRequest(encoded).ok());
}

TEST(WireTest, TrailingGarbageIsRejected) {
  std::string encoded = EncodeRequest(MakeMineRequest());
  encoded += '\0';
  EXPECT_FALSE(DecodeRequest(encoded).ok());
}

TEST(WireTest, OutOfRangeFeatureIdIsRejected) {
  Request request;
  request.op = Op::kPut;
  request.name = "s";
  request.series.AppendNamed({"a"});
  std::string encoded = EncodeRequest(request);
  // The single set feature id lives at the end of the payload; bump it
  // past the symbol table.
  encoded[encoded.size() - 4] = 7;
  auto decoded = DecodeRequest(encoded);
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace ppm::service::wire
