// Parameterized sweeps of the Table 1 generator: across the parameter grid,
// the mined output must contain every planted letter, the planted anchor
// must be frequent and maximal, and independent letters must not conspire
// into unplanted long patterns.

#include <gtest/gtest.h>

#include <string>

#include "core/maximal.h"
#include "core/miner.h"
#include "synth/generator.h"

namespace ppm::synth {
namespace {

struct SweepConfig {
  uint64_t seed;
  uint32_t period;
  uint32_t max_pat_length;
  uint32_t num_f1;
  double anchor_confidence;
};

std::string ConfigName(const ::testing::TestParamInfo<SweepConfig>& info) {
  const SweepConfig& c = info.param;
  return "seed" + std::to_string(c.seed) + "_p" + std::to_string(c.period) +
         "_mpl" + std::to_string(c.max_pat_length) + "_f" +
         std::to_string(c.num_f1);
}

class GeneratorSweepTest : public ::testing::TestWithParam<SweepConfig> {
 protected:
  GeneratorOptions MakeOptions() const {
    const SweepConfig& c = GetParam();
    GeneratorOptions options;
    options.length = 20000;
    options.period = c.period;
    options.max_pat_length = c.max_pat_length;
    options.num_f1 = c.num_f1;
    options.num_features = c.num_f1 + 30;
    options.anchor_confidence = c.anchor_confidence;
    options.independent_confidence = 0.85;
    options.noise_mean = 0.8;
    options.seed = c.seed;
    return options;
  }
};

TEST_P(GeneratorSweepTest, MinedOutputMatchesGroundTruth) {
  auto generated = GenerateSeries(MakeOptions());
  ASSERT_TRUE(generated.ok()) << generated.status();

  MiningOptions mining;
  mining.period = GetParam().period;
  mining.min_confidence = 0.8;
  auto result = Mine(generated->series, mining);
  ASSERT_TRUE(result.ok());

  // Every planted letter is frequent.
  for (const Pattern& letter : generated->planted_letters) {
    EXPECT_NE(result->Find(letter), nullptr)
        << letter.Format(generated->series.symbols());
  }
  // The anchor is frequent with confidence near its target.
  const FrequentPattern* anchor = result->Find(generated->anchor);
  ASSERT_NE(anchor, nullptr);
  EXPECT_NEAR(anchor->confidence, GetParam().anchor_confidence, 0.06);

  // Structural ground truth of the generator:
  //  * anchor letters live at positions < MPL, so a pattern's anchor-letter
  //    projection never exceeds MPL letters, and the anchor itself is the
  //    unique largest such projection;
  //  * independent letters are mutually independent at confidence 0.85, so
  //    any pair of them sits near 0.72 -- far below the 0.8 threshold --
  //    and no frequent pattern may contain two of them. (A single
  //    independent letter riding on the anchor can be frequent when
  //    anchor_conf * 0.85 brushes the threshold; that is legitimate.)
  const uint32_t mpl = GetParam().max_pat_length;
  uint32_t longest_anchor_projection = 0;
  for (const auto& entry : result->patterns()) {
    uint32_t anchor_letters = 0;
    uint32_t independent_letters = 0;
    for (uint32_t position = 0; position < entry.pattern.period();
         ++position) {
      anchor_letters += position < mpl ? entry.pattern.at(position).Count() : 0;
      independent_letters +=
          position >= mpl ? entry.pattern.at(position).Count() : 0;
    }
    EXPECT_LE(anchor_letters, mpl);
    EXPECT_LE(independent_letters, 1u)
        << entry.pattern.Format(generated->series.symbols());
    longest_anchor_projection =
        std::max(longest_anchor_projection, anchor_letters);
  }
  EXPECT_EQ(longest_anchor_projection, mpl);
}

TEST_P(GeneratorSweepTest, DeterministicAcrossCalls) {
  auto a = GenerateSeries(MakeOptions());
  auto b = GenerateSeries(MakeOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->series.length(), b->series.length());
  for (uint64_t t = 0; t < a->series.length(); t += 37) {
    ASSERT_EQ(a->series.at(t), b->series.at(t)) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1Grid, GeneratorSweepTest,
    ::testing::Values(SweepConfig{11, 20, 2, 4, 0.9},
                      SweepConfig{12, 20, 4, 8, 0.9},
                      SweepConfig{13, 50, 6, 12, 0.9},
                      SweepConfig{14, 50, 8, 12, 0.85},
                      SweepConfig{15, 50, 10, 12, 0.9},
                      SweepConfig{16, 10, 3, 6, 0.95},
                      SweepConfig{17, 100, 5, 20, 0.9},
                      SweepConfig{18, 25, 12, 16, 0.9}),
    ConfigName);

}  // namespace
}  // namespace ppm::synth
