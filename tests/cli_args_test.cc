#include "cli/args.h"

#include <gtest/gtest.h>

namespace ppm::cli {
namespace {

TEST(ArgMapTest, ParsesKeyValuePairs) {
  auto args = ArgMap::Parse({"--input", "a.bin", "--period=7", "--verbose"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("input", ""), "a.bin");
  EXPECT_EQ(*args->GetUint("period", 0), 7u);
  EXPECT_TRUE(args->Has("verbose"));
  EXPECT_EQ(args->GetString("verbose", ""), "true");
  EXPECT_FALSE(args->Has("missing"));
}

TEST(ArgMapTest, Defaults) {
  auto args = ArgMap::Parse({});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("x", "fallback"), "fallback");
  EXPECT_EQ(*args->GetUint("n", 9), 9u);
  EXPECT_DOUBLE_EQ(*args->GetDouble("d", 0.5), 0.5);
}

TEST(ArgMapTest, Positionals) {
  auto args = ArgMap::Parse({"one", "--k", "v", "two"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(ArgMapTest, DoubleDashEndsFlags) {
  auto args = ArgMap::Parse({"--k", "v", "--", "--not-a-flag"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(ArgMapTest, DuplicateFlagRejected) {
  auto args = ArgMap::Parse({"--k", "1", "--k", "2"});
  EXPECT_FALSE(args.ok());
}

TEST(ArgMapTest, NumericParseErrors) {
  auto args = ArgMap::Parse({"--n", "abc", "--d", "1.5x"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetUint("n", 0).ok());
  EXPECT_FALSE(args->GetDouble("d", 0).ok());
}

TEST(ArgMapTest, DoubleParsing) {
  auto args = ArgMap::Parse({"--conf=0.85"});
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(*args->GetDouble("conf", 0), 0.85);
}

TEST(ArgMapTest, CheckAllowedCatchesTypos) {
  auto args = ArgMap::Parse({"--min-cof", "0.8"});
  ASSERT_TRUE(args.ok());
  const Status status = args->CheckAllowed({"min-conf", "input"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("min-cof"), std::string::npos);
  EXPECT_TRUE(args->CheckAllowed({"min-cof"}).ok());
}

TEST(ArgMapTest, EmptyFlagNameRejected) {
  // "--" alone is the separator; "--=v" has an empty name.
  auto args = ArgMap::Parse({"--=v"});
  EXPECT_FALSE(args.ok());
}

TEST(ArgMapTest, FlagValueCanBeNegativeLookingPositional) {
  // A following token starting with "--" is not consumed as a value.
  auto args = ArgMap::Parse({"--a", "--b"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("a", ""), "true");
  EXPECT_EQ(args->GetString("b", ""), "true");
}

TEST(ArgMapTest, UnknownFlagSuggestsNearestMatch) {
  auto args = ArgMap::Parse({"--min-cof", "0.8"});
  ASSERT_TRUE(args.ok());
  const Status status = args->CheckAllowed({"min-conf", "min-count", "input"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown flag: --min-cof"),
            std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("did you mean --min-conf?"),
            std::string::npos)
      << status.message();
}

TEST(ArgMapTest, UnknownFlagFarFromEverythingGetsNoSuggestion) {
  auto args = ArgMap::Parse({"--zzzzzzzz", "1"});
  ASSERT_TRUE(args.ok());
  const Status status = args->CheckAllowed({"min-conf", "input"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message().find("did you mean"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace ppm::cli
