#include "core/candidate_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ppm {
namespace {

LevelEntry Entry(std::vector<uint32_t> items) {
  LevelEntry entry;
  for (uint32_t item : items) entry.mask.Set(item);
  entry.items = std::move(items);
  return entry;
}

std::set<std::vector<uint32_t>> ItemSets(const std::vector<LevelEntry>& v) {
  std::set<std::vector<uint32_t>> out;
  for (const LevelEntry& entry : v) out.insert(entry.items);
  return out;
}

TEST(MakeLevelOneTest, OneEntryPerLetter) {
  const auto level = MakeLevelOne({10, 20, 30});
  ASSERT_EQ(level.size(), 3u);
  EXPECT_EQ(level[0].items, (std::vector<uint32_t>{0}));
  EXPECT_EQ(level[1].count, 20u);
  EXPECT_TRUE(level[2].mask.Test(2));
  EXPECT_EQ(level[2].mask.Count(), 1u);
}

TEST(MakeLevelOneTest, EmptyCounts) {
  EXPECT_TRUE(MakeLevelOne({}).empty());
}

TEST(GenerateCandidatesTest, PairsFromSingletons) {
  const auto candidates = GenerateCandidates(MakeLevelOne({1, 1, 1}));
  EXPECT_EQ(ItemSets(candidates),
            (std::set<std::vector<uint32_t>>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(GenerateCandidatesTest, EmptyInput) {
  EXPECT_TRUE(GenerateCandidates({}).empty());
}

TEST(GenerateCandidatesTest, SingleEntryYieldsNothing) {
  EXPECT_TRUE(GenerateCandidates(MakeLevelOne({5})).empty());
}

TEST(GenerateCandidatesTest, JoinRequiresSharedPrefix) {
  // Frequent 2-sets {0,1} and {2,3} share no prefix: no candidate.
  const auto candidates = GenerateCandidates({Entry({0, 1}), Entry({2, 3})});
  EXPECT_TRUE(candidates.empty());
}

TEST(GenerateCandidatesTest, AprioriPruneDropsCandidateWithInfrequentSubset) {
  // {0,1}, {0,2} join to {0,1,2}, but {1,2} is not frequent: pruned.
  const auto candidates = GenerateCandidates({Entry({0, 1}), Entry({0, 2})});
  EXPECT_TRUE(candidates.empty());
}

TEST(GenerateCandidatesTest, TriangleSurvivesPrune) {
  const auto candidates =
      GenerateCandidates({Entry({0, 1}), Entry({0, 2}), Entry({1, 2})});
  EXPECT_EQ(ItemSets(candidates),
            (std::set<std::vector<uint32_t>>{{0, 1, 2}}));
}

TEST(GenerateCandidatesTest, Level4FromCompleteLevel3) {
  // All four 3-subsets of {0,1,2,3} frequent -> only candidate {0,1,2,3}.
  const auto candidates = GenerateCandidates(
      {Entry({0, 1, 2}), Entry({0, 1, 3}), Entry({0, 2, 3}), Entry({1, 2, 3})});
  EXPECT_EQ(ItemSets(candidates),
            (std::set<std::vector<uint32_t>>{{0, 1, 2, 3}}));
}

// Reference implementation: all (k)-supersets of pairs of frequent (k-1)
// sets whose every (k-1)-subset is frequent.
TEST(GenerateCandidatesPropertyTest, MatchesBruteForceDefinition) {
  // Frequent 2-sets over 5 items, arbitrary but fixed.
  const std::vector<std::vector<uint32_t>> frequent2 = {
      {0, 1}, {0, 2}, {0, 4}, {1, 2}, {1, 3}, {2, 4}, {3, 4}};
  std::vector<LevelEntry> entries;
  for (const auto& items : frequent2) entries.push_back(Entry(items));
  std::sort(entries.begin(), entries.end(),
            [](const LevelEntry& a, const LevelEntry& b) {
              return a.items < b.items;
            });

  std::set<std::vector<uint32_t>> frequent_set(frequent2.begin(),
                                               frequent2.end());
  std::set<std::vector<uint32_t>> expected;
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = a + 1; b < 5; ++b) {
      for (uint32_t c = b + 1; c < 5; ++c) {
        const bool all_subsets_frequent = frequent_set.contains({a, b}) &&
                                          frequent_set.contains({a, c}) &&
                                          frequent_set.contains({b, c});
        if (all_subsets_frequent) expected.insert({a, b, c});
      }
    }
  }
  EXPECT_EQ(ItemSets(GenerateCandidates(entries)), expected);
}

}  // namespace
}  // namespace ppm
