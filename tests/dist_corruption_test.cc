// Corruption harness for the distributed formats, mirroring
// tsdb_corruption_test: every readable byte of the plan manifest and a
// shard result file is truncated and bit-flipped, and the readers must
// *detect* the damage (both formats are CRC32C-framed, so any single-bit
// flip is caught) -- the merger refuses rather than mis-merges. Runs
// under the sanitizer matrix in scripts/ci.sh.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>

#include "diff_harness.h"
#include "dist/merger.h"
#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "dist/worker.h"

namespace ppm::dist {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("PPM_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

/// SplitMix64-style mix used to pick the bit to flip at each offset.
uint32_t BitForOffset(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<uint32_t>((z ^ (z >> 27)) & 7);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A planned workload with every shard's result mined and written out.
class DistCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/dist_corruption";
    ::mkdir(dir_.c_str(), 0755);
    const diff::DiffConfig config = diff::RandomDiffConfig(3);
    series_ = diff::MakeRandomSeries(config);
    MiningOptions options;
    options.period = config.period;
    options.min_confidence = config.min_confidence;
    auto plan = PlanShards({{"mem", series_.length()}}, options, 3);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = *plan;
    plan_path_ = dir_ + "/mine.plan";
    ASSERT_TRUE(WritePlanFile(&plan_, plan_path_).ok());
    for (const ShardSpec& spec : plan_.shards) {
      const auto mined = MineShardCounts(series_, plan_, spec.shard_id);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      ASSERT_TRUE(
          WriteShardResultFile(*mined, ShardResultPath(dir_, spec.shard_id))
              .ok());
    }
  }

  void TearDown() override {
    for (const ShardSpec& spec : plan_.shards) {
      std::remove(ShardResultPath(dir_, spec.shard_id).c_str());
    }
    std::remove(plan_path_.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  std::string plan_path_;
  tsdb::TimeSeries series_;
  ShardPlan plan_;
};

TEST_F(DistCorruptionTest, PlanTruncationAtEveryOffsetIsRejected) {
  const std::string bytes = FileBytes(plan_path_);
  ASSERT_GT(bytes.size(), 20u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(plan_path_, bytes.substr(0, len));
    const auto read = ReadPlanFile(plan_path_);
    ASSERT_FALSE(read.ok()) << "plan truncated to " << len << " of "
                            << bytes.size() << " bytes was accepted";
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
        << "truncation to " << len << ": " << read.status().ToString();
  }
  WriteBytes(plan_path_, bytes);
  EXPECT_TRUE(ReadPlanFile(plan_path_).ok());
}

TEST_F(DistCorruptionTest, PlanBitFlipAtEveryOffsetIsDetected) {
  const std::string bytes = FileBytes(plan_path_);
  const uint64_t seed = FaultSeed();
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(plan_path_, corrupted);
    EXPECT_FALSE(ReadPlanFile(plan_path_).ok())
        << "plan accepted a flip of bit " << BitForOffset(seed, offset)
        << " at offset " << offset << " (seed " << seed << ")";
  }
  WriteBytes(plan_path_, bytes);
}

TEST_F(DistCorruptionTest, ResultTruncationAtEveryOffsetIsRejected) {
  const std::string path = ShardResultPath(dir_, 0);
  const std::string bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 20u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(path, bytes.substr(0, len));
    const auto read = ReadShardResultFile(path);
    ASSERT_FALSE(read.ok()) << "result truncated to " << len << " of "
                            << bytes.size() << " bytes was accepted";
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  }
  WriteBytes(path, bytes);
  EXPECT_TRUE(ReadShardResultFile(path).ok());
}

TEST_F(DistCorruptionTest, ResultBitFlipNeverReachesTheMerge) {
  const std::string path = ShardResultPath(dir_, 1);
  const std::string bytes = FileBytes(path);
  const uint64_t seed = FaultSeed();
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(path, corrupted);
    EXPECT_FALSE(ReadShardResultFile(path).ok())
        << "result accepted a flip of bit " << BitForOffset(seed, offset)
        << " at offset " << offset << " (seed " << seed << ")";
  }
  WriteBytes(path, bytes);
}

TEST_F(DistCorruptionTest, CorruptResultAmongManyRefusesEvenPartialMerge) {
  // Flip one payload bit of shard 2's file. `--partial ok` tolerates a
  // *missing* result, never a corrupt one: silent data loss must not be
  // upgradeable to "partial".
  const std::string path = ShardResultPath(dir_, 2);
  const std::string bytes = FileBytes(path);
  std::string corrupted = bytes;
  corrupted[bytes.size() - 1] = static_cast<char>(
      static_cast<unsigned char>(corrupted[bytes.size() - 1]) ^ 0x10);
  WriteBytes(path, corrupted);

  for (const bool allow_partial : {false, true}) {
    const auto merged = MergeFromDir(plan_, dir_, allow_partial);
    ASSERT_FALSE(merged.ok()) << "allow_partial=" << allow_partial;
    EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
  }

  // A cleanly *deleted* result, by contrast, is mergeable under partial.
  std::remove(path.c_str());
  EXPECT_EQ(MergeFromDir(plan_, dir_, false).status().code(),
            StatusCode::kNotFound);
  const auto partial = MergeFromDir(plan_, dir_, true);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->shards_missing, 1u);
  WriteBytes(path, bytes);
}

TEST_F(DistCorruptionTest, ResultSwappedBetweenShardsIsRejected) {
  // Shard 0's file copied over shard 1's: the frame CRC is fine, but the
  // payload identifies as shard 0 and must fail cross-validation.
  const std::string bytes = FileBytes(ShardResultPath(dir_, 0));
  WriteBytes(ShardResultPath(dir_, 1), bytes);
  const auto merged = MergeFromDir(plan_, dir_, false);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ppm::dist
