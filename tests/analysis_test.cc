#include "analysis/period_suggest.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ppm::analysis {
namespace {

using tsdb::TimeSeries;

TimeSeries MakePlantedSeries(uint32_t true_period, double conf,
                             uint64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series;
  series.symbols().Intern("planted");
  series.symbols().Intern("noise");
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    if (t % true_period == 2 && rng.NextBool(conf)) instant.Set(0);
    if (rng.NextBool(0.2)) instant.Set(1);
    series.Append(std::move(instant));
  }
  return series;
}

TEST(SuggestPeriodsTest, RanksTruePeriodFirst) {
  const TimeSeries series = MakePlantedSeries(7, 0.9, 2000, 42);
  auto scores = SuggestPeriods(series, 2, 20);
  ASSERT_TRUE(scores.ok()) << scores.status();
  ASSERT_FALSE(scores->empty());
  // Period 7 (or a multiple) must rank first; 7 itself should win since
  // multiples halve m without improving concentration.
  EXPECT_EQ(scores->front().period % 7, 0u);
  EXPECT_EQ(scores->front().feature, 0u);
  EXPECT_EQ(scores->front().position % 7, 2u);
  EXPECT_GT(scores->front().concentration, 0.5);
}

TEST(SuggestPeriodsTest, AlwaysOnFeatureScoresNearZero) {
  TimeSeries series;
  series.symbols().Intern("always");
  for (int t = 0; t < 500; ++t) {
    tsdb::FeatureSet instant;
    instant.Set(0);
    series.Append(std::move(instant));
  }
  auto scores = SuggestPeriods(series, 2, 10);
  ASSERT_TRUE(scores.ok());
  for (const PeriodScore& score : *scores) {
    EXPECT_NEAR(score.concentration, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(score.confidence, 1.0);
  }
}

TEST(SuggestPeriodsTest, SkipsPeriodsWithFewerThanTwoSegments) {
  TimeSeries series;
  series.symbols().Intern("x");
  for (int t = 0; t < 10; ++t) {
    tsdb::FeatureSet instant;
    instant.Set(0);
    series.Append(std::move(instant));
  }
  auto scores = SuggestPeriods(series, 2, 10);
  ASSERT_TRUE(scores.ok());
  for (const PeriodScore& score : *scores) {
    EXPECT_LE(score.period, 5u);  // Period 6..10 would give m < 2.
  }
}

TEST(SuggestPeriodsTest, RejectsBadArguments) {
  TimeSeries series;
  series.AppendEmpty(10);
  EXPECT_FALSE(SuggestPeriods(series, 0, 5).ok());
  EXPECT_FALSE(SuggestPeriods(series, 5, 3).ok());
  EXPECT_FALSE(SuggestPeriods(TimeSeries(), 2, 3).ok());
}

TEST(SuggestPerFeatureTest, WeakerSignalNotShadowed) {
  // Feature 0: strong daily (period 4) signal; feature 1: weekly (period 8)
  // signal, weaker. The aggregate ranking at period 8 is dominated by
  // feature 0; the per-feature ranking keeps feature 1's period-8 entry.
  Rng rng(3);
  TimeSeries series;
  series.symbols().Intern("daily");
  series.symbols().Intern("weekly");
  for (uint64_t t = 0; t < 4000; ++t) {
    tsdb::FeatureSet instant;
    if (t % 4 == 1 && rng.NextBool(0.95)) instant.Set(0);
    if (t % 8 == 6 && rng.NextBool(0.7)) instant.Set(1);
    series.Append(std::move(instant));
  }
  auto per_feature = SuggestPeriodsPerFeature(series, 2, 12);
  ASSERT_TRUE(per_feature.ok());
  const auto fundamentals = FundamentalPeriods(*per_feature, 0.1);
  bool weekly_found = false;
  for (const PeriodScore& score : fundamentals) {
    if (score.feature == 1 && score.period == 8) weekly_found = true;
    // Feature 0's period-8 harmonic must be collapsed.
    EXPECT_FALSE(score.feature == 0 && score.period == 8 &&
                 score.position % 4 == 1)
        << "uncollapsed harmonic";
  }
  EXPECT_TRUE(weekly_found);
}

TEST(FundamentalPeriodsTest, CollapsesHarmonics) {
  const TimeSeries series = MakePlantedSeries(7, 0.9, 3000, 11);
  auto scores = SuggestPeriods(series, 2, 30);
  ASSERT_TRUE(scores.ok());
  const auto fundamentals = FundamentalPeriods(*scores, 0.1);
  ASSERT_FALSE(fundamentals.empty());
  EXPECT_EQ(fundamentals.front().period, 7u);
  // 14, 21, 28 are harmonics of 7 and must be gone.
  for (const PeriodScore& score : fundamentals) {
    if (score.period == 7) continue;
    EXPECT_NE(score.period % 7, 0u) << score.period;
  }
}

TEST(FundamentalPeriodsTest, KeepsIndependentPeriods) {
  // Two scores at unrelated periods both survive.
  std::vector<PeriodScore> scores(2);
  scores[0].period = 5;
  scores[0].concentration = 0.9;
  scores[1].period = 7;
  scores[1].concentration = 0.8;
  const auto fundamentals = FundamentalPeriods(scores);
  EXPECT_EQ(fundamentals.size(), 2u);
}

TEST(FundamentalPeriodsTest, WeakDivisorDoesNotSuppress) {
  // The divisor exists but with far lower concentration: keep the multiple.
  std::vector<PeriodScore> scores(2);
  scores[0].period = 6;
  scores[0].concentration = 0.9;
  scores[1].period = 3;
  scores[1].concentration = 0.1;
  const auto fundamentals = FundamentalPeriods(scores, 0.05);
  ASSERT_EQ(fundamentals.size(), 2u);
}

TEST(AutocorrelationTest, PeaksAtTruePeriod) {
  const TimeSeries series = MakePlantedSeries(6, 0.95, 3000, 7);
  auto scores = OccurrenceAutocorrelation(series, 0, 1, 12);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 12u);
  // Lag 6 and 12 dominate all non-multiples.
  const double at6 = (*scores)[5];
  const double at12 = (*scores)[11];
  for (uint32_t lag = 1; lag <= 12; ++lag) {
    if (lag % 6 == 0) continue;
    EXPECT_LT((*scores)[lag - 1], at6) << "lag " << lag;
  }
  EXPECT_GT(at6, 0.8);
  EXPECT_GT(at12, 0.8);
}

TEST(AutocorrelationTest, AbsentFeatureGivesZeros) {
  TimeSeries series;
  series.AppendEmpty(100);
  auto scores = OccurrenceAutocorrelation(series, 99, 1, 5);
  ASSERT_TRUE(scores.ok());
  for (double score : *scores) EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(AutocorrelationTest, RejectsBadLags) {
  TimeSeries series;
  series.AppendEmpty(10);
  EXPECT_FALSE(OccurrenceAutocorrelation(series, 0, 0, 5).ok());
  EXPECT_FALSE(OccurrenceAutocorrelation(series, 0, 5, 3).ok());
  EXPECT_FALSE(OccurrenceAutocorrelation(series, 0, 1, 10).ok());
}

}  // namespace
}  // namespace ppm::analysis
