#include "synth/generator.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/maximal.h"
#include "tsdb/series_source.h"

namespace ppm::synth {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.length = 5000;
  options.period = 20;
  options.max_pat_length = 4;
  options.num_f1 = 6;
  options.num_features = 30;
  options.noise_mean = 0.5;
  options.seed = 7;
  return options;
}

TEST(GeneratorTest, DeterministicFromSeed) {
  auto a = GenerateSeries(SmallOptions());
  auto b = GenerateSeries(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->series.length(), b->series.length());
  for (uint64_t t = 0; t < a->series.length(); ++t) {
    ASSERT_EQ(a->series.at(t), b->series.at(t)) << "instant " << t;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateSeries(SmallOptions());
  GeneratorOptions other = SmallOptions();
  other.seed = 8;
  auto b = GenerateSeries(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  uint64_t differing = 0;
  for (uint64_t t = 0; t < a->series.length(); ++t) {
    if (!(a->series.at(t) == b->series.at(t))) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(GeneratorTest, ValidatesParameters) {
  GeneratorOptions options = SmallOptions();
  options.period = 0;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.length = 5;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.max_pat_length = 0;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.max_pat_length = options.num_f1 + 1;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.num_f1 = options.period + 1;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.num_features = options.num_f1;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.anchor_confidence = 0.0;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.independent_confidence = 1.5;
  EXPECT_FALSE(GenerateSeries(options).ok());
  options = SmallOptions();
  options.noise_mean = -1.0;
  EXPECT_FALSE(GenerateSeries(options).ok());
}

TEST(GeneratorTest, GroundTruthShapes) {
  auto generated = GenerateSeries(SmallOptions());
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->series.length(), 5000u);
  EXPECT_EQ(generated->anchor.period(), 20u);
  EXPECT_EQ(generated->anchor.LLength(), 4u);
  EXPECT_EQ(generated->planted_letters.size(), 6u);
  for (const Pattern& letter : generated->planted_letters) {
    EXPECT_EQ(letter.LetterCount(), 1u);
    EXPECT_TRUE(letter.IsSubpatternOf(letter));
  }
  // Anchor letters are the first max_pat_length planted letters.
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(generated->planted_letters[i].IsSubpatternOf(generated->anchor));
  }
}

TEST(GeneratorTest, PlantedAnchorOccupancyNearConfidence) {
  GeneratorOptions options = SmallOptions();
  options.length = 40000;
  options.anchor_confidence = 0.9;
  options.noise_mean = 0.0;
  auto generated = GenerateSeries(options);
  ASSERT_TRUE(generated.ok());

  const uint64_t m = generated->series.length() / options.period;
  uint64_t hits = 0;
  for (uint64_t segment = 0; segment < m; ++segment) {
    if (generated->anchor.MatchesSegment(generated->series,
                                         segment * options.period)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(m), 0.9, 0.05);
}

TEST(GeneratorTest, MinerRecoversPlantedAnchorAsMaximal) {
  GeneratorOptions options = SmallOptions();
  options.length = 20000;
  auto generated = GenerateSeries(options);
  ASSERT_TRUE(generated.ok());

  MiningOptions mining;
  mining.period = options.period;
  mining.min_confidence = 0.8;
  auto result = Mine(generated->series, mining);
  ASSERT_TRUE(result.ok());

  // The anchor itself must be frequent...
  const FrequentPattern* anchor = result->Find(generated->anchor);
  ASSERT_NE(anchor, nullptr);
  EXPECT_GE(anchor->confidence, 0.8);
  // ...and maximal: nothing longer survives.
  const auto maximal = MaximalPatterns(*result);
  uint32_t longest = 0;
  for (const auto& entry : maximal) {
    longest = std::max(longest, entry.pattern.LetterCount());
  }
  EXPECT_EQ(longest, options.max_pat_length);
  // All planted letters are frequent.
  for (const Pattern& letter : generated->planted_letters) {
    EXPECT_NE(result->Find(letter), nullptr);
  }
}

TEST(GeneratorTest, IndependentLettersDoNotFormPairs) {
  GeneratorOptions options = SmallOptions();
  options.length = 50000;
  options.independent_confidence = 0.85;
  auto generated = GenerateSeries(options);
  ASSERT_TRUE(generated.ok());

  MiningOptions mining;
  mining.period = options.period;
  mining.min_confidence = 0.8;
  auto result = Mine(generated->series, mining);
  ASSERT_TRUE(result.ok());

  // A pair of two independent letters has expected confidence
  // 0.85^2 = 0.72 < 0.8 and must not be frequent.
  const Pattern& l4 = generated->planted_letters[4];
  const Pattern& l5 = generated->planted_letters[5];
  EXPECT_EQ(result->Find(l4.UnionWith(l5)), nullptr);
}

TEST(GeneratorTest, NoiseOnlyWhenNothingPlanted) {
  GeneratorOptions options = SmallOptions();
  options.noise_mean = 2.0;
  auto generated = GenerateSeries(options);
  ASSERT_TRUE(generated.ok());
  // Noise features live in the disjoint id range [num_f1, num_features).
  uint64_t noise_features = 0;
  for (uint64_t t = 0; t < generated->series.length(); ++t) {
    generated->series.at(t).ForEach([&](uint32_t id) {
      if (id >= options.num_f1) ++noise_features;
      ASSERT_LT(id, options.num_features);
    });
  }
  EXPECT_GT(noise_features, generated->series.length());  // Mean 2 per instant.
}

}  // namespace
}  // namespace ppm::synth
