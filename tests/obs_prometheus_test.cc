// Prometheus text exposition (format 0.0.4) of a MetricsSnapshot: name
// sanitization, per-type TYPE lines, and the cumulative histogram encoding
// with its +Inf/_sum/_count tail. This is the payload `ppm mine
// --metrics-prom` writes and a future scrape endpoint would serve, so the
// format details are pinned here.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace ppm::obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PrometheusTest, CounterRendersTypeLineAndSample) {
  MetricsRegistry registry;
  registry.GetCounter("ppm.scan.db_passes").Inc(2);
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE ppm_scan_db_passes counter\n")) << text;
  EXPECT_TRUE(Contains(text, "ppm_scan_db_passes 2\n")) << text;
  // The dotted library name must not leak through unsanitized.
  EXPECT_FALSE(Contains(text, "ppm.scan")) << text;
}

TEST(PrometheusTest, GaugeRendersGaugeType) {
  MetricsRegistry registry;
  registry.GetGauge("ppm.resource.rss_bytes").Set(4096);
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE ppm_resource_rss_bytes gauge\n")) << text;
  EXPECT_TRUE(Contains(text, "ppm_resource_rss_bytes 4096\n")) << text;
}

TEST(PrometheusTest, InvalidCharactersMapToUnderscore) {
  MetricsRegistry registry;
  registry.GetCounter("weird-name.with space").Inc();
  registry.GetCounter("9starts_with_digit").Inc();
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "weird_name_with_space 1\n")) << text;
  // A leading digit is invalid in a Prometheus metric name.
  EXPECT_TRUE(Contains(text, "_starts_with_digit 1\n")) << text;
  EXPECT_FALSE(Contains(text, "\n9starts_with_digit")) << text;
}

TEST(PrometheusTest, HistogramRendersCumulativeBuckets) {
  MetricsRegistry registry;
  const Histogram hist = registry.GetHistogram("ppm.scan.pass_instants");
  hist.Observe(0);  // bucket 0, le="0"
  hist.Observe(1);  // bucket 1, le="1"
  hist.Observe(5);  // bucket 3, le="7"
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE ppm_scan_pass_instants histogram\n"))
      << text;
  // Cumulative counts: 1 value <= 0, 2 values <= 1, still 2 <= 3, 3 <= 7.
  EXPECT_TRUE(
      Contains(text, "ppm_scan_pass_instants_bucket{le=\"0\"} 1\n")) << text;
  EXPECT_TRUE(
      Contains(text, "ppm_scan_pass_instants_bucket{le=\"1\"} 2\n")) << text;
  EXPECT_TRUE(
      Contains(text, "ppm_scan_pass_instants_bucket{le=\"3\"} 2\n")) << text;
  EXPECT_TRUE(
      Contains(text, "ppm_scan_pass_instants_bucket{le=\"7\"} 3\n")) << text;
  EXPECT_TRUE(
      Contains(text, "ppm_scan_pass_instants_bucket{le=\"+Inf\"} 3\n")) << text;
  EXPECT_TRUE(Contains(text, "ppm_scan_pass_instants_sum 6\n")) << text;
  EXPECT_TRUE(Contains(text, "ppm_scan_pass_instants_count 3\n")) << text;
  // Trailing empty buckets collapse into +Inf: no bucket line past le="7".
  EXPECT_FALSE(Contains(text, "{le=\"15\"}")) << text;
}

TEST(PrometheusTest, PlusInfMatchesCountEvenWithEmptyTail) {
  MetricsRegistry registry;
  registry.GetHistogram("h").Observe(2);
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "h_bucket{le=\"3\"} 1\n")) << text;
  EXPECT_TRUE(Contains(text, "h_bucket{le=\"+Inf\"} 1\n")) << text;
}

TEST(PrometheusTest, RegistryMethodMatchesFreeFunction) {
  MetricsRegistry registry;
  registry.GetCounter("a.b").Inc(7);
  registry.GetGauge("c.d").Set(3);
  registry.GetHistogram("e.f").Observe(10);
  EXPECT_EQ(registry.RenderPrometheus(),
            RenderPrometheus(registry.Snapshot()));
}

TEST(PrometheusTest, EmptySnapshotRendersEmptyString) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RenderPrometheus(), "");
  EXPECT_EQ(RenderPrometheus(MetricsSnapshot()), "");
}

TEST(PrometheusTest, OutputIsStableAcrossRenders) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Inc();
  registry.GetCounter("a.first").Inc();
  const std::string first = registry.RenderPrometheus();
  const std::string second = registry.RenderPrometheus();
  EXPECT_EQ(first, second);
  // Snapshot ordering is by name, so a_first renders before z_last.
  EXPECT_LT(first.find("a_first"), first.find("z_last"));
}

}  // namespace
}  // namespace ppm::obs
