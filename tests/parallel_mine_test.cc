// Tests of the parallel mining building blocks (src/parallel/ plus the
// sharded branches of the core miners): prefix materialization, hit-store
// merging, sharded F_1 counting, and end-to-end parity between sequential
// and sharded mining, including the metrics the parallel paths publish.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/f1_scan.h"
#include "core/hit_store.h"
#include "core/hitset_miner.h"
#include "core/multi_period.h"
#include "obs/metrics.h"
#include "parallel/materialize.h"
#include "diff_harness.h"
#include "tsdb/series_source.h"
#include "util/thread_pool.h"

namespace ppm {
namespace {

using diff::DiffConfig;
using diff::MakeRandomSeries;
using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

TimeSeries SmallSeries() {
  TimeSeries series;
  series.symbols().Intern("a");
  series.symbols().Intern("b");
  for (int i = 0; i < 10; ++i) {
    tsdb::FeatureSet instant;
    instant.Set(i % 2);
    series.Append(std::move(instant));
  }
  return series;
}

TEST(MaterializePrefixTest, ReadsExactlyThePrefixInOneScan) {
  const TimeSeries series = SmallSeries();
  InMemorySeriesSource source(&series);
  const auto instants = parallel::MaterializePrefix(source, 7);
  ASSERT_TRUE(instants.ok()) << instants.status();
  ASSERT_EQ(instants->size(), 7u);
  for (size_t t = 0; t < instants->size(); ++t) {
    EXPECT_TRUE((*instants)[t].Test(t % 2));
  }
  EXPECT_EQ(source.stats().scans, 1u);
  EXPECT_EQ(source.stats().instants_read, 7u);
}

TEST(MaterializePrefixTest, FailsWhenSourceIsTooShort) {
  const TimeSeries series = SmallSeries();
  InMemorySeriesSource source(&series);
  const auto instants = parallel::MaterializePrefix(source, 11);
  ASSERT_FALSE(instants.ok());
  EXPECT_EQ(instants.status().code(), StatusCode::kInternal);
}

TEST(HitStoreMergeTest, MergedCountsAreAdditive) {
  const uint32_t num_letters = 4;
  Bitset full(num_letters);
  for (uint32_t i = 0; i < num_letters; ++i) full.Set(i);

  Bitset ab(num_letters), cd(num_letters);
  ab.Set(0);
  ab.Set(1);
  cd.Set(2);
  cd.Set(3);

  for (const HitStoreKind kind :
       {HitStoreKind::kMaxSubpatternTree, HitStoreKind::kHashTable}) {
    auto combined = MakeHitStore(kind, full, num_letters);
    auto shard_a = MakeHitStore(kind, full, num_letters);
    auto shard_b = MakeHitStore(kind, full, num_letters);
    shard_a->AddHit(ab);
    shard_a->AddHit(ab);
    shard_a->AddHit(full);
    shard_b->AddHit(cd);
    shard_b->AddHit(full);

    combined->Merge(*shard_a);
    combined->Merge(*shard_b);

    Bitset just_a(num_letters);
    just_a.Set(0);
    // full(2) + ab(2) match {a}; full(2) + cd(1) match {c,d}.
    EXPECT_EQ(combined->CountSuperpatterns(just_a), 4u);
    EXPECT_EQ(combined->CountSuperpatterns(cd), 3u);
    EXPECT_EQ(combined->CountSuperpatterns(full), 2u);
    EXPECT_EQ(combined->num_entries(), 3u);  // ab, cd, full
  }
}

TEST(HitStoreMergeTest, MergeAcrossStoreKinds) {
  // Merge goes through the virtual ForEachHit/AddHits interface, so a tree
  // store can absorb a hash store's hits (and vice versa).
  const uint32_t num_letters = 3;
  Bitset full(num_letters);
  for (uint32_t i = 0; i < num_letters; ++i) full.Set(i);
  Bitset pair(num_letters);
  pair.Set(0);
  pair.Set(2);

  auto tree = MakeHitStore(HitStoreKind::kMaxSubpatternTree, full, num_letters);
  auto hash = MakeHitStore(HitStoreKind::kHashTable, full, num_letters);
  hash->AddHit(pair);
  hash->AddHit(full);
  tree->Merge(*hash);
  EXPECT_EQ(tree->CountSuperpatterns(pair), 2u);
  EXPECT_EQ(tree->num_entries(), 2u);
}

TEST(BuildF1Test, ShardedCountsMatchSequential) {
  DiffConfig config;
  config.seed = 99;
  config.period = 6;
  config.num_features = 8;
  config.num_segments = 50;
  const TimeSeries series = MakeRandomSeries(config);

  MiningOptions options;
  options.period = config.period;
  options.min_confidence = 0.3;

  const uint64_t covered =
      (series.length() / options.period) * options.period;
  const std::vector<tsdb::FeatureSet> instants(
      series.instants().begin(), series.instants().begin() + covered);

  const F1ScanResult sequential = BuildF1FromInstants(instants, options);
  ThreadPool pool(4);
  const F1ScanResult sharded = BuildF1FromInstants(instants, options, &pool);

  EXPECT_EQ(sharded.num_periods, sequential.num_periods);
  EXPECT_EQ(sharded.min_count, sequential.min_count);
  ASSERT_EQ(sharded.space.size(), sequential.space.size());
  for (uint32_t i = 0; i < sequential.space.size(); ++i) {
    EXPECT_EQ(sharded.space.letter(i), sequential.space.letter(i));
  }
  EXPECT_EQ(sharded.letter_counts, sequential.letter_counts);
}

TEST(ParallelMineTest, ShardedHitSetMatchesSequentialWithFewerScans) {
  DiffConfig config;
  config.seed = 7;
  config.period = 8;
  config.num_features = 12;
  config.num_segments = 60;
  const TimeSeries series = MakeRandomSeries(config);

  MiningOptions options;
  options.period = config.period;
  options.min_confidence = 0.4;

  InMemorySeriesSource sequential_source(&series);
  const auto sequential = MineHitSet(sequential_source, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_EQ(sequential->stats().scans, 2u);

  options.num_threads = 4;
  InMemorySeriesSource sharded_source(&series);
  const auto sharded = MineHitSet(sharded_source, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->stats().scans, 1u);  // materialized once

  EXPECT_EQ(diff::Serialize(*sharded, series.symbols()),
            diff::Serialize(*sequential, series.symbols()));
  EXPECT_EQ(sharded->stats().num_f1_letters,
            sequential->stats().num_f1_letters);
  EXPECT_EQ(sharded->stats().num_periods, sequential->stats().num_periods);
  EXPECT_EQ(sharded->stats().hit_store_entries,
            sequential->stats().hit_store_entries);
  EXPECT_EQ(sharded->stats().candidates_evaluated,
            sequential->stats().candidates_evaluated);
}

TEST(ParallelMineTest, PublishesShardMetrics) {
  DiffConfig config;
  config.seed = 13;
  config.period = 6;
  config.num_features = 8;
  config.num_segments = 40;
  const TimeSeries series = MakeRandomSeries(config);

  MiningOptions options;
  options.period = config.period;
  options.min_confidence = 0.4;
  options.num_threads = 3;

  obs::MetricsRegistry::Global().Reset();
  InMemorySeriesSource source(&series);
  const auto mined = MineHitSet(source, options);
  ASSERT_TRUE(mined.ok()) << mined.status();

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* shards = snapshot.FindCounter("ppm.parallel.shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_GT(*shards, 0u);
  const uint64_t* threads = snapshot.FindGauge("ppm.parallel.threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(*threads, 3u);
}

TEST(ParallelMineTest, MultiPeriodMinersMatchSequential) {
  DiffConfig config;
  config.seed = 21;
  config.period = 10;  // series length driver; range below covers 4..12
  config.num_features = 10;
  config.num_segments = 40;
  const TimeSeries series = MakeRandomSeries(config);

  MiningOptions options;
  options.min_confidence = 0.4;

  for (const bool shared : {false, true}) {
    InMemorySeriesSource sequential_source(&series);
    const auto sequential =
        shared ? MineMultiPeriodShared(sequential_source, 4, 12, options)
               : MineMultiPeriodLooped(sequential_source, 4, 12, options);
    ASSERT_TRUE(sequential.ok()) << sequential.status();

    MiningOptions parallel_options = options;
    parallel_options.num_threads = 4;
    InMemorySeriesSource parallel_source(&series);
    const auto concurrent =
        shared ? MineMultiPeriodShared(parallel_source, 4, 12, parallel_options)
               : MineMultiPeriodLooped(parallel_source, 4, 12, parallel_options);
    ASSERT_TRUE(concurrent.ok()) << concurrent.status();

    ASSERT_EQ(concurrent->per_period.size(), sequential->per_period.size());
    for (size_t r = 0; r < sequential->per_period.size(); ++r) {
      EXPECT_EQ(concurrent->per_period[r].first,
                sequential->per_period[r].first);
      EXPECT_EQ(diff::Serialize(concurrent->per_period[r].second,
                                series.symbols()),
                diff::Serialize(sequential->per_period[r].second,
                                series.symbols()))
          << (shared ? "shared" : "looped") << " period "
          << sequential->per_period[r].first;
    }
    EXPECT_EQ(concurrent->total_scans, 1u);  // one materializing scan
  }
}

}  // namespace
}  // namespace ppm
