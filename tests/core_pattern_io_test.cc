#include "core/pattern_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/miner.h"
#include "tsdb/time_series.h"

namespace ppm {
namespace {

using tsdb::TimeSeries;

TimeSeries MakeSeries(int ab_segments, int a_only_segments) {
  TimeSeries series;
  for (int i = 0; i < ab_segments; ++i) {
    series.AppendNamed({"a"});
    series.AppendNamed({"b"});
  }
  for (int i = 0; i < a_only_segments; ++i) {
    series.AppendNamed({"a"});
    series.AppendEmpty();
  }
  return series;
}

class PatternIoTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    return testing::TempDir() + "/ppm_patterns_test.txt";
  }
  void TearDown() override { std::remove(TempPath().c_str()); }
};

TEST_F(PatternIoTest, RoundTripPreservesEverything) {
  TimeSeries series = MakeSeries(8, 2);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  auto mined = Mine(series, options);
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined->size(), 3u);  // a, b, ab.

  ASSERT_TRUE(WritePatternsFile(*mined, series.symbols(), TempPath()).ok());

  tsdb::SymbolTable fresh;
  auto loaded = ReadPatternsFile(TempPath(), &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), mined->size());
  for (size_t i = 0; i < mined->size(); ++i) {
    EXPECT_EQ(loaded->patterns()[i].count, mined->patterns()[i].count);
    EXPECT_DOUBLE_EQ(loaded->patterns()[i].confidence,
                     mined->patterns()[i].confidence);
    // Compare by formatted text (ids may differ across symbol tables).
    EXPECT_EQ(loaded->patterns()[i].pattern.Format(fresh),
              mined->patterns()[i].pattern.Format(series.symbols()));
  }
}

TEST_F(PatternIoTest, EmptyResultRoundTrips) {
  MiningResult empty;
  tsdb::SymbolTable symbols;
  ASSERT_TRUE(WritePatternsFile(empty, symbols, TempPath()).ok());
  auto loaded = ReadPatternsFile(TempPath(), &symbols);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(PatternIoTest, RejectsUnwritableNames) {
  TimeSeries series;
  series.AppendNamed({"has space"});
  MiningResult result;
  EXPECT_EQ(WritePatternsFile(result, series.symbols(), TempPath()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PatternIoTest, ReadRejectsGarbage) {
  std::ofstream(TempPath()) << "notanumber 0.5 a b\n";
  tsdb::SymbolTable symbols;
  EXPECT_EQ(ReadPatternsFile(TempPath(), &symbols).status().code(),
            StatusCode::kCorruption);

  std::ofstream(TempPath(), std::ios::trunc) << "3 bad a b\n";
  EXPECT_EQ(ReadPatternsFile(TempPath(), &symbols).status().code(),
            StatusCode::kCorruption);

  std::ofstream(TempPath(), std::ios::trunc) << "3\n";
  EXPECT_EQ(ReadPatternsFile(TempPath(), &symbols).status().code(),
            StatusCode::kCorruption);
}

TEST_F(PatternIoTest, ApplyRecountsOnNewSeries) {
  // Mine on a regime where ab holds 80%, apply to one where it holds 30%.
  TimeSeries before = MakeSeries(8, 2);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  auto mined = Mine(before, options);
  ASSERT_TRUE(mined.ok());

  // New series shares the symbol table (ids align).
  TimeSeries after;
  after.symbols() = before.symbols();
  for (int i = 0; i < 3; ++i) {
    after.AppendNamed({"a"});
    after.AppendNamed({"b"});
  }
  for (int i = 0; i < 7; ++i) {
    after.AppendNamed({"a"});
    after.AppendEmpty();
  }

  auto applied = ApplyPatterns(*mined, after);
  ASSERT_TRUE(applied.ok()) << applied.status();
  ASSERT_EQ(applied->size(), mined->size());
  for (const AppliedPattern& row : *applied) {
    if (row.pattern.LetterCount() == 2) {  // ab
      EXPECT_DOUBLE_EQ(row.old_confidence, 0.8);
      EXPECT_EQ(row.new_count, 3u);
      EXPECT_DOUBLE_EQ(row.new_confidence, 0.3);
    }
    if (row.pattern.LetterCount() == 1 && row.pattern.at(0).Count() == 1 &&
        !row.pattern.at(0).Empty() && row.pattern.IsStarAt(1)) {  // a
      EXPECT_DOUBLE_EQ(row.new_confidence, 1.0);
    }
  }
}

TEST_F(PatternIoTest, ApplyRejectsOversizedPeriod) {
  TimeSeries tiny;
  tiny.AppendEmpty(1);
  MiningResult patterns;
  FrequentPattern entry;
  entry.pattern = Pattern(5);
  entry.pattern.AddLetter(0, 0);
  patterns.patterns().push_back(entry);
  EXPECT_FALSE(ApplyPatterns(patterns, tiny).ok());
}

TEST_F(PatternIoTest, MineSaveLoadApplyPipeline) {
  TimeSeries january = MakeSeries(20, 5);
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.5;
  auto mined = Mine(january, options);
  ASSERT_TRUE(mined.ok());
  ASSERT_TRUE(
      WritePatternsFile(*mined, january.symbols(), TempPath()).ok());

  // February: different series; its own symbol table, ids interned on read.
  TimeSeries february;
  for (int i = 0; i < 10; ++i) {
    february.AppendNamed({"a"});
    february.AppendNamed({"b"});
  }
  auto loaded = ReadPatternsFile(TempPath(), &february.symbols());
  ASSERT_TRUE(loaded.ok());
  auto applied = ApplyPatterns(*loaded, february);
  ASSERT_TRUE(applied.ok());
  for (const AppliedPattern& row : *applied) {
    EXPECT_DOUBLE_EQ(row.new_confidence, 1.0);  // ab holds every February day.
  }
}

}  // namespace
}  // namespace ppm
