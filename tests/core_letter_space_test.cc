#include "core/letter_space.h"

#include <gtest/gtest.h>

namespace ppm {
namespace {

LetterSpace MakeFigure1Space() {
  // The paper's Figure 1 setting: C_max = a{b1,b2}*d* over period 5, with
  // features a=0, b1=1, b2=2, d=3.
  return LetterSpace(5, {Letter{0, 0}, Letter{1, 1}, Letter{1, 2}, Letter{3, 3}});
}

TEST(LetterSpaceTest, BasicAccessors) {
  const LetterSpace space = MakeFigure1Space();
  EXPECT_EQ(space.period(), 5u);
  EXPECT_EQ(space.size(), 4u);
  EXPECT_EQ(space.letter(0).position, 0u);
  EXPECT_EQ(space.letter(2).feature, 2u);
  EXPECT_EQ(space.full_mask().Count(), 4u);
}

TEST(LetterSpaceTest, IndexOf) {
  const LetterSpace space = MakeFigure1Space();
  EXPECT_EQ(space.IndexOf(0, 0), 0u);
  EXPECT_EQ(space.IndexOf(1, 1), 1u);
  EXPECT_EQ(space.IndexOf(1, 2), 2u);
  EXPECT_EQ(space.IndexOf(3, 3), 3u);
  EXPECT_EQ(space.IndexOf(1, 0), Bitset::kNoBit);
  EXPECT_EQ(space.IndexOf(2, 0), Bitset::kNoBit);
  EXPECT_EQ(space.IndexOf(7, 0), Bitset::kNoBit);  // Beyond period.
}

TEST(LetterSpaceTest, MaxPattern) {
  const LetterSpace space = MakeFigure1Space();
  const Pattern cmax = space.MaxPattern();
  EXPECT_EQ(cmax.period(), 5u);
  EXPECT_EQ(cmax.LetterCount(), 4u);
  EXPECT_EQ(cmax.LLength(), 3u);
  EXPECT_TRUE(cmax.at(1).Test(1));
  EXPECT_TRUE(cmax.at(1).Test(2));
}

TEST(LetterSpaceTest, MaskPatternRoundTrip) {
  const LetterSpace space = MakeFigure1Space();
  Bitset mask;
  mask.Set(0);
  mask.Set(2);
  const Pattern pattern = space.MaskToPattern(mask);
  EXPECT_EQ(pattern.LetterCount(), 2u);
  auto back = space.PatternToMask(pattern);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, mask);
}

TEST(LetterSpaceTest, PatternToMaskRejectsForeignLetters) {
  const LetterSpace space = MakeFigure1Space();
  Pattern foreign(5);
  foreign.AddLetter(2, 0);  // Position 2 has no letters in the space.
  EXPECT_EQ(space.PatternToMask(foreign).status().code(), StatusCode::kNotFound);

  Pattern wrong_period(4);
  EXPECT_EQ(space.PatternToMask(wrong_period).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LetterSpaceTest, SegmentMaskIsMaximalHitSubpattern) {
  const LetterSpace space = MakeFigure1Space();
  // Segment (a b1 - d -): the hit is a b1 * d * = letters {0,1,3}.
  std::vector<tsdb::FeatureSet> segment(5);
  segment[0].Set(0);
  segment[1].Set(1);
  segment[3].Set(3);
  Bitset mask;
  space.SegmentMask(segment.data(), &mask);
  Bitset expected;
  expected.Set(0);
  expected.Set(1);
  expected.Set(3);
  EXPECT_EQ(mask, expected);

  // Extra features not in the space are ignored.
  segment[2].Set(9);
  segment[0].Set(5);
  space.SegmentMask(segment.data(), &mask);
  EXPECT_EQ(mask, expected);
}

TEST(LetterSpaceTest, AccumulatePositionMatchesSegmentMask) {
  const LetterSpace space = MakeFigure1Space();
  std::vector<tsdb::FeatureSet> segment(5);
  segment[0].Set(0);
  segment[1].Set(2);
  segment[3].Set(3);

  Bitset whole;
  space.SegmentMask(segment.data(), &whole);

  Bitset incremental(space.size());
  for (uint32_t p = 0; p < 5; ++p) {
    space.AccumulatePosition(p, segment[p], &incremental);
  }
  EXPECT_EQ(whole, incremental);
}

TEST(LetterSpaceTest, EmptySpace) {
  const LetterSpace space(3, {});
  EXPECT_EQ(space.size(), 0u);
  EXPECT_TRUE(space.full_mask().Empty());
  EXPECT_TRUE(space.MaxPattern().IsEmpty());
  std::vector<tsdb::FeatureSet> segment(3);
  segment[0].Set(0);
  Bitset mask;
  space.SegmentMask(segment.data(), &mask);
  EXPECT_TRUE(mask.Empty());
}

TEST(LetterSpaceTest, MultipleLettersPerPosition) {
  const LetterSpace space(2, {Letter{0, 3}, Letter{0, 8}, Letter{1, 3}});
  EXPECT_EQ(space.IndexOf(0, 3), 0u);
  EXPECT_EQ(space.IndexOf(0, 8), 1u);
  EXPECT_EQ(space.IndexOf(1, 3), 2u);

  std::vector<tsdb::FeatureSet> segment(2);
  segment[0].Set(3);
  segment[0].Set(8);
  segment[1].Set(3);
  Bitset mask;
  space.SegmentMask(segment.data(), &mask);
  EXPECT_EQ(mask.Count(), 3u);
}

}  // namespace
}  // namespace ppm
