#include "tsdb/database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/miner.h"

namespace ppm::tsdb {
namespace {

namespace fs = std::filesystem;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ppm_db_test";
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  TimeSeries MakeSeries(int length, const char* feature) {
    TimeSeries series;
    for (int i = 0; i < length; ++i) series.AppendNamed({feature});
    return series;
  }

  std::string root_;
};

TEST_F(DatabaseTest, OpenCreatesEmptyCatalog) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->List().empty());
  EXPECT_TRUE(fs::exists(root_ + "/MANIFEST"));
}

TEST_F(DatabaseTest, PutGetRoundTrip) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  const TimeSeries original = MakeSeries(10, "x");
  ASSERT_TRUE((*db)->Put("daily", original).ok());
  EXPECT_TRUE((*db)->Contains("daily"));

  auto loaded = (*db)->Get("daily");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->length(), 10u);
  EXPECT_EQ(*loaded->symbols().Name(0), "x");
}

TEST_F(DatabaseTest, PutReplacesExisting) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("s", MakeSeries(5, "a")).ok());
  ASSERT_TRUE((*db)->Put("s", MakeSeries(7, "b")).ok());
  EXPECT_EQ((*db)->List().size(), 1u);
  auto loaded = (*db)->Get("s");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->length(), 7u);
}

TEST_F(DatabaseTest, ListSortedAndPersistent) {
  {
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("zeta", MakeSeries(1, "z")).ok());
    ASSERT_TRUE((*db)->Put("alpha", MakeSeries(1, "a")).ok());
    ASSERT_TRUE((*db)->Put("mid", MakeSeries(1, "m")).ok());
  }
  // Reopen: catalog survives.
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->List(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(DatabaseTest, DropRemovesSeries) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("gone", MakeSeries(3, "g")).ok());
  ASSERT_TRUE((*db)->Drop("gone").ok());
  EXPECT_FALSE((*db)->Contains("gone"));
  EXPECT_EQ((*db)->Get("gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*db)->Drop("gone").code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs::exists(root_ + "/gone.series"));
}

TEST_F(DatabaseTest, ScanStreamsSeries) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("stream", MakeSeries(20, "s")).ok());
  auto source = (*db)->Scan("stream");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->length(), 20u);
  // Mining straight off the catalog works.
  MiningOptions options;
  options.period = 2;
  options.min_confidence = 0.9;
  auto result = Mine(**source, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());
}

TEST_F(DatabaseTest, RejectsInvalidNames) {
  auto db = Database::Open(root_);
  ASSERT_TRUE(db.ok());
  const TimeSeries series = MakeSeries(1, "x");
  EXPECT_FALSE((*db)->Put("", series).ok());
  EXPECT_FALSE((*db)->Put("../escape", series).ok());
  EXPECT_FALSE((*db)->Put("has space", series).ok());
  EXPECT_FALSE((*db)->Put("..", series).ok());
  EXPECT_TRUE((*db)->Put("ok-name_1.2", series).ok());
}

TEST_F(DatabaseTest, CorruptManifestRejected) {
  {
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok());
  }
  std::ofstream(root_ + "/MANIFEST", std::ios::app) << "../evil\n";
  EXPECT_EQ(Database::Open(root_).status().code(), StatusCode::kCorruption);
}

TEST_F(DatabaseTest, ManifestReferencingMissingPayloadRejected) {
  {
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("real", MakeSeries(1, "x")).ok());
  }
  fs::remove(root_ + "/real.series");
  EXPECT_EQ(Database::Open(root_).status().code(), StatusCode::kCorruption);
}

TEST(SeriesNameTest, Validation) {
  EXPECT_TRUE(IsValidSeriesName("abc"));
  EXPECT_TRUE(IsValidSeriesName("A-b_c.9"));
  EXPECT_FALSE(IsValidSeriesName(""));
  EXPECT_FALSE(IsValidSeriesName("."));
  EXPECT_FALSE(IsValidSeriesName(".."));
  EXPECT_FALSE(IsValidSeriesName("a/b"));
  EXPECT_FALSE(IsValidSeriesName("a b"));
  EXPECT_FALSE(IsValidSeriesName(std::string(200, 'a')));
}

}  // namespace
}  // namespace ppm::tsdb
