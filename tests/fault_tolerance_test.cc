// Library-level tests for the fault-tolerant execution paths: cooperative
// cancellation, wall-clock deadlines, and memory budgets (ISSUE 4's
// acceptance criteria; see docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/budget.h"
#include "core/maximal_miner.h"
#include "core/miner.h"
#include "core/multi_period.h"
#include "obs/metrics.h"
#include "synth/generator.h"
#include "tsdb/series_source.h"
#include "util/cancellation.h"
#include "util/check.h"

namespace ppm {
namespace {

/// A series large enough that mining takes well over a millisecond, so a
/// 1 ms deadline always fires mid-run rather than racing completion.
const tsdb::TimeSeries& LargeSeries() {
  static const tsdb::TimeSeries* series = [] {
    synth::GeneratorOptions options;
    options.length = 400000;
    options.period = 50;
    options.max_pat_length = 6;
    options.num_f1 = 10;
    options.num_features = 60;
    options.seed = 7;
    auto generated = synth::GenerateSeries(options);
    PPM_CHECK(generated.ok());
    return new tsdb::TimeSeries(std::move(generated.value().series));
  }();
  return *series;
}

MiningOptions BaseOptions() {
  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;
  return options;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

TEST(DeadlineMiningTest, OneMsDeadlineReturnsDeadlineExceededAtAnyThreads) {
  for (const uint32_t threads : {1u, 8u}) {
    MiningOptions options = BaseOptions();
    options.num_threads = threads;
    options.deadline = Deadline::After(1);
    // Ensure the deadline has passed by the first check even on a machine
    // fast enough to finish scan setup within a millisecond.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const uint64_t hits_before = CounterValue("ppm.fault.deadline_hits");
    const auto result = Mine(LargeSeries(), options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads << ": " << result.status().ToString();
    EXPECT_GT(CounterValue("ppm.fault.deadline_hits"), hits_before);
  }
}

TEST(DeadlineMiningTest, AprioriAndMaximalHonorDeadlines) {
  MiningOptions options = BaseOptions();
  options.deadline = Deadline::After(0);
  tsdb::InMemorySeriesSource source(&LargeSeries());
  EXPECT_EQ(Mine(source, options, Algorithm::kApriori).status().code(),
            StatusCode::kDeadlineExceeded);
  tsdb::InMemorySeriesSource source2(&LargeSeries());
  EXPECT_EQ(MineMaximalHitSet(source2, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(DeadlineMiningTest, MultiPeriodHonorsDeadlines) {
  MiningOptions options = BaseOptions();
  options.deadline = Deadline::After(0);
  tsdb::InMemorySeriesSource source(&LargeSeries());
  EXPECT_EQ(MineMultiPeriodShared(source, 2, 8, options).status().code(),
            StatusCode::kDeadlineExceeded);
  tsdb::InMemorySeriesSource source2(&LargeSeries());
  EXPECT_EQ(MineMultiPeriodLooped(source2, 2, 8, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(CancellationMiningTest, PreCancelledTokenReturnsCancelled) {
  MiningOptions options = BaseOptions();
  options.cancel.Cancel();
  const uint64_t before = CounterValue("ppm.fault.cancellations");
  const auto result = Mine(LargeSeries(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GT(CounterValue("ppm.fault.cancellations"), before);
}

TEST(CancellationMiningTest, CancellationWinsOverExpiredDeadline) {
  MiningOptions options = BaseOptions();
  options.cancel.Cancel();
  options.deadline = Deadline::After(0);
  EXPECT_EQ(Mine(LargeSeries(), options).status().code(),
            StatusCode::kCancelled);
}

TEST(CancellationMiningTest, MidRunCancelFromAnotherThreadStopsMining) {
  MiningOptions options = BaseOptions();
  CancelToken token = options.cancel;
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  const auto result = Mine(LargeSeries(), options);
  canceller.join();
  // The run either finished before the cancel landed or was cut short; it
  // must never abort, hang, or report any other error.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(BudgetTest, HitSetUpperBoundMatchesProperty32) {
  EXPECT_EQ(HitSetUpperBound(100, 0), 0u);  // < 2 letters: nothing stored.
  EXPECT_EQ(HitSetUpperBound(100, 1), 0u);
  EXPECT_EQ(HitSetUpperBound(100, 3), 4u);    // 2^3 - 3 - 1.
  EXPECT_EQ(HitSetUpperBound(2, 10), 2u);     // m wins.
  EXPECT_EQ(HitSetUpperBound(7, 100), 7u);    // Saturating shift: m wins.
}

TEST(BudgetTest, TinyBudgetWithFailPolicyIsResourceExhausted) {
  MiningOptions options = BaseOptions();
  options.memory_budget_bytes = 64;
  options.budget_policy = BudgetPolicy::kFail;
  const uint64_t before = CounterValue("ppm.fault.budget_denials");
  const auto result = Mine(LargeSeries(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(CounterValue("ppm.fault.budget_denials"), before);
}

TEST(BudgetTest, TinyBudgetWithDegradePolicyIsAlsoExhausted) {
  // 64 bytes fits neither the tree nor the hash store.
  MiningOptions options = BaseOptions();
  options.memory_budget_bytes = 64;
  options.budget_policy = BudgetPolicy::kDegrade;
  EXPECT_EQ(Mine(LargeSeries(), options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetTest, DegradedRunMinesIdenticalPatterns) {
  // Pick a budget between the hash-store and tree-store predictions so the
  // degrade policy is forced to fall back, then compare against the
  // unbudgeted run: the patterns must be byte-for-byte identical.
  MiningOptions unbudgeted = BaseOptions();
  const auto reference = Mine(LargeSeries(), unbudgeted);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->stats().tree_nodes, 0u)
      << "reference run should use the tree store";

  const uint64_t num_periods = reference->stats().num_periods;
  const uint32_t num_letters =
      static_cast<uint32_t>(reference->stats().num_f1_letters);
  const uint64_t entries = HitSetUpperBound(num_periods, num_letters);
  const uint64_t hash_bytes = PredictHitStoreBytes(HitStoreKind::kHashTable,
                                                   entries, num_letters);
  const uint64_t tree_bytes = PredictHitStoreBytes(
      HitStoreKind::kMaxSubpatternTree, entries, num_letters);
  ASSERT_LT(hash_bytes, tree_bytes);

  MiningOptions budgeted = BaseOptions();
  budgeted.memory_budget_bytes = (hash_bytes + tree_bytes) / 2;
  budgeted.budget_policy = BudgetPolicy::kDegrade;
  const uint64_t degradations_before = CounterValue("ppm.fault.degradations");
  const auto degraded = Mine(LargeSeries(), budgeted);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_GT(CounterValue("ppm.fault.degradations"), degradations_before);
  EXPECT_EQ(degraded->stats().tree_nodes, 0u) << "should use the hash store";

  ASSERT_EQ(degraded->size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(degraded->patterns()[i].pattern, reference->patterns()[i].pattern);
    EXPECT_EQ(degraded->patterns()[i].count, reference->patterns()[i].count);
  }
}

TEST(BudgetTest, DecideHitStoreUnlimitedKeepsRequestedStore) {
  MiningOptions options = BaseOptions();
  const auto decision = DecideHitStore(options, 1000, 10);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->store, HitStoreKind::kMaxSubpatternTree);
  EXPECT_FALSE(decision->degraded);
}

TEST(DeterminismTest, DeadlineStatusIdenticalAcrossThreadCounts) {
  // Acceptance criterion: the 1 ms deadline behaves identically (same
  // status code, no crash) at 1 and 8 threads.
  Status at_one, at_eight;
  for (int round = 0; round < 2; ++round) {
    MiningOptions options = BaseOptions();
    options.num_threads = round == 0 ? 1 : 8;
    options.deadline = Deadline::After(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (round == 0 ? at_one : at_eight) = Mine(LargeSeries(), options).status();
  }
  EXPECT_EQ(at_one.code(), at_eight.code());
  EXPECT_EQ(at_one.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace ppm
