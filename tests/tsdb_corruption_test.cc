// Corruption harness: every readable byte of every binary format version is
// truncated and bit-flipped, and the readers must fail cleanly -- no crash,
// no hang, no sanitizer report. v3's checksummed blocks must additionally
// *detect* every single-bit flip (CRC32C guarantees it). Runs under ASan and
// UBSan in CI (scripts/ci.sh).
//
// The bit chosen per offset is seed-driven; set PPM_FAULT_SEED to reproduce
// a CI failure locally or to widen coverage across runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"
#include "tsdb/time_series.h"

namespace ppm::tsdb {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("PPM_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

/// SplitMix64-style mix used to pick the bit to flip at each offset.
uint32_t BitForOffset(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<uint32_t>((z ^ (z >> 27)) & 7);
}

TimeSeries SmallSeries() {
  TimeSeries series;
  const FeatureId a = series.symbols().Intern("alpha");
  const FeatureId b = series.symbols().Intern("beta");
  const FeatureId c = series.symbols().Intern("gamma");
  for (int t = 0; t < 12; ++t) {
    FeatureSet instant;
    if (t % 3 == 0) instant.Set(a);
    if (t % 3 == 1) instant.Set(b);
    if (t % 2 == 0) instant.Set(c);
    series.Append(std::move(instant));
  }
  return series;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CorruptionTest : public ::testing::TestWithParam<BinaryFormatVersion> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/corruption_" +
            std::to_string(static_cast<int>(GetParam())) + ".ppmts";
    ASSERT_TRUE(WriteBinarySeries(SmallSeries(), path_, GetParam()).ok());
    bytes_ = FileBytes(path_);
    ASSERT_GT(bytes_.size(), 16u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string bytes_;
};

TEST_P(CorruptionTest, TruncationAtEveryOffsetFailsCleanly) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    WriteBytes(path_, bytes_.substr(0, len));
    const auto series = ReadBinarySeries(path_);
    EXPECT_FALSE(series.ok()) << "version " << static_cast<int>(GetParam())
                              << " accepted a file truncated to " << len
                              << " of " << bytes_.size() << " bytes";
    // The streaming reader must fail cleanly too: either at Open or, for
    // pre-v3 formats, before a scan delivers the advertised instant count.
    auto source = FileSeriesSource::Open(path_);
    if (source.ok()) {
      uint64_t drained = 0;
      FeatureSet instant;
      if ((*source)->StartScan().ok()) {
        while ((*source)->Next(&instant)) ++drained;
      }
      EXPECT_FALSE((*source)->status().ok() &&
                   drained == (*source)->length())
          << "truncated file at " << len << " bytes scanned cleanly";
    }
  }
}

TEST_P(CorruptionTest, BitFlipAtEveryOffsetNeverCrashes) {
  const uint64_t seed = FaultSeed();
  for (size_t offset = 0; offset < bytes_.size(); ++offset) {
    std::string corrupted = bytes_;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(path_, corrupted);

    // Reading may succeed (pre-v3 flips in payload bytes can decode to a
    // different valid series) but must never crash, hang, or trip a
    // sanitizer.
    const auto series = ReadBinarySeries(path_);
    if (GetParam() == BinaryFormatVersion::kV3) {
      EXPECT_FALSE(series.ok())
          << "v3 failed to detect a flip of bit "
          << BitForOffset(seed, offset) << " at offset " << offset
          << " (seed " << seed << ")";
    }

    auto source = FileSeriesSource::Open(path_);
    if (GetParam() == BinaryFormatVersion::kV3) {
      EXPECT_FALSE(source.ok())
          << "v3 source failed to detect a flip at offset " << offset;
    } else if (source.ok()) {
      FeatureSet instant;
      if ((*source)->StartScan().ok()) {
        while ((*source)->Next(&instant)) {
        }
      }
    }
  }
}

TEST_P(CorruptionTest, IntactFileStillRoundTrips) {
  const auto series = ReadBinarySeries(path_);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series->length(), 12u);
  EXPECT_EQ(series->symbols().size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, CorruptionTest,
                         ::testing::Values(BinaryFormatVersion::kV1,
                                           BinaryFormatVersion::kV2,
                                           BinaryFormatVersion::kV3));

}  // namespace
}  // namespace ppm::tsdb
