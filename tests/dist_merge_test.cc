// Exact-merge equivalence: for randomized workloads, mining shards
// in-process and merging must reproduce the one-shot result
// byte-for-byte (patterns, counts, and bit-equal confidences). Partial
// merges must equal a one-shot mine of the covered segments. Every
// cross-validation failure must be a refusal, never a best-effort merge.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/miner.h"
#include "diff_harness.h"
#include "dist/merger.h"
#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "dist/worker.h"

namespace ppm::dist {
namespace {

MiningOptions OptionsFor(const diff::DiffConfig& config) {
  MiningOptions options;
  options.period = config.period;
  options.min_confidence = config.min_confidence;
  return options;
}

/// Mines every shard of `plan` in-process.
std::vector<ShardResult> MineAllShards(const tsdb::TimeSeries& series,
                                       const ShardPlan& plan) {
  std::vector<ShardResult> results;
  for (const ShardSpec& spec : plan.shards) {
    auto mined = MineShardCounts(series, plan, spec.shard_id);
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    if (mined.ok()) results.push_back(std::move(*mined));
  }
  return results;
}

TEST(DistMergeTest, MergedEqualsOneShotAcrossRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const diff::DiffConfig config = diff::RandomDiffConfig(seed);
    const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
    const MiningOptions options = OptionsFor(config);

    for (uint32_t num_shards : {1u, 2u, 3u, 5u}) {
      auto plan = PlanShards({{"mem", series.length()}}, options, num_shards);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      plan->fingerprint = 0xfeedf00d;  // in-process: any consistent value

      const std::vector<ShardResult> results = MineAllShards(series, *plan);
      const auto merged = MergeShardResults(*plan, results, false);
      ASSERT_TRUE(merged.ok())
          << "seed " << seed << " shards " << num_shards << ": "
          << merged.status().ToString();
      ASSERT_EQ(merged->inputs.size(), 1u);
      EXPECT_FALSE(merged->inputs[0].partial());

      const auto one_shot = Mine(series, options);
      ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();
      EXPECT_EQ(
          diff::Serialize(merged->inputs[0].result, merged->inputs[0].symbols),
          diff::Serialize(*one_shot, series.symbols()))
          << "seed " << seed << " shards " << num_shards
          << ": merged pattern set diverged from the one-shot mine";
      EXPECT_EQ(merged->inputs[0].result.stats().num_periods,
                one_shot->stats().num_periods);
      EXPECT_EQ(merged->inputs[0].result.stats().num_f1_letters,
                one_shot->stats().num_f1_letters);
    }
  }
}

TEST(DistMergeTest, PartialMergeEqualsOneShotOverCoveredSegments) {
  for (uint64_t seed = 101; seed <= 110; ++seed) {
    const diff::DiffConfig config = diff::RandomDiffConfig(seed);
    const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
    const MiningOptions options = OptionsFor(config);
    auto plan = PlanShards({{"mem", series.length()}}, options, 4);
    ASSERT_TRUE(plan.ok());
    if (plan->shards.size() < 2) continue;
    plan->fingerprint = 0xfeedf00d;

    std::vector<ShardResult> results = MineAllShards(series, *plan);
    // Drop one shard (the second, so the gap is interior when possible).
    const ShardSpec dropped = plan->shards[1];
    results.erase(results.begin() + 1);

    // Without allow_partial the merge must refuse with the re-run hint.
    const auto strict = MergeShardResults(*plan, results, false);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kNotFound);

    const auto partial = MergeShardResults(*plan, results, true);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    ASSERT_EQ(partial->inputs.size(), 1u);
    const MergedInput& merged = partial->inputs[0];
    ASSERT_TRUE(merged.partial());
    ASSERT_EQ(merged.missing.size(), 1u);
    EXPECT_EQ(merged.missing[0].segment_begin, dropped.segment_begin);
    EXPECT_EQ(merged.missing[0].segment_end, dropped.segment_end);
    EXPECT_EQ(partial->shards_missing, 1u);

    // Reference: one-shot mine of the covered segments concatenated.
    // Counts are additive over segments and the hit-set pipeline never
    // looks across a segment boundary, so stitching the covered ranges
    // together is the exact ground truth for the partial merge.
    std::vector<tsdb::FeatureSet> instants(series.instants().begin(),
                                           series.instants().end());
    tsdb::TimeSeries covered;
    covered.symbols() = series.symbols();
    for (const ShardSpec& spec : plan->shards) {
      if (spec.shard_id == dropped.shard_id) continue;
      for (uint64_t t = spec.segment_begin * config.period;
           t < spec.segment_end * config.period; ++t) {
        covered.Append(instants[t]);
      }
    }
    const auto reference = Mine(covered, options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(diff::Serialize(merged.result, merged.symbols),
              diff::Serialize(*reference, covered.symbols()))
        << "seed " << seed << ": partial merge diverged from a one-shot "
        << "mine of the covered segments";
    EXPECT_EQ(merged.segments_covered, reference->stats().num_periods);
  }
}

TEST(DistMergeTest, DuplicateShardIsCorruption) {
  const diff::DiffConfig config = diff::RandomDiffConfig(7);
  const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
  auto plan = PlanShards({{"mem", series.length()}}, OptionsFor(config), 2);
  ASSERT_TRUE(plan.ok());
  plan->fingerprint = 1;
  std::vector<ShardResult> results = MineAllShards(series, *plan);
  ASSERT_EQ(results.size(), 2u);
  results.push_back(results[0]);
  const auto merged = MergeShardResults(*plan, results, false);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
}

TEST(DistMergeTest, ForeignFingerprintIsCorruption) {
  const diff::DiffConfig config = diff::RandomDiffConfig(8);
  const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
  auto plan = PlanShards({{"mem", series.length()}}, OptionsFor(config), 2);
  ASSERT_TRUE(plan.ok());
  plan->fingerprint = 1;
  std::vector<ShardResult> results = MineAllShards(series, *plan);
  results[0].plan_fingerprint = 2;  // mined under a different plan
  const auto merged = MergeShardResults(*plan, results, false);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
}

TEST(DistMergeTest, TamperedCountsAreCorruption) {
  const diff::DiffConfig config = diff::RandomDiffConfig(9);
  const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
  auto plan = PlanShards({{"mem", series.length()}}, OptionsFor(config), 2);
  ASSERT_TRUE(plan.ok());
  plan->fingerprint = 1;

  // A hit count above the shard's segment count cannot have been mined.
  std::vector<ShardResult> results = MineAllShards(series, *plan);
  ASSERT_FALSE(results[0].hits.empty());
  results[0].hits[0].count = plan->shards[0].num_segments() + 1;
  EXPECT_EQ(MergeShardResults(*plan, results, false).status().code(),
            StatusCode::kCorruption);

  // A shard claiming a different segment range than the plan's spec.
  results = MineAllShards(series, *plan);
  results[1].segment_begin += 1;
  EXPECT_EQ(MergeShardResults(*plan, results, false).status().code(),
            StatusCode::kCorruption);
}

TEST(DistWorkerTest, RefusesSeriesThatChangedSincePlanning) {
  const diff::DiffConfig config = diff::RandomDiffConfig(10);
  const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
  auto plan =
      PlanShards({{"mem", series.length() + 4}}, OptionsFor(config), 2);
  ASSERT_TRUE(plan.ok());
  const auto mined = MineShardCounts(series, *plan, 0);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistResultFileTest, RoundTripsThroughDisk) {
  const diff::DiffConfig config = diff::RandomDiffConfig(11);
  const tsdb::TimeSeries series = diff::MakeRandomSeries(config);
  auto plan = PlanShards({{"mem", series.length()}}, OptionsFor(config), 2);
  ASSERT_TRUE(plan.ok());
  plan->fingerprint = 42;
  const auto mined = MineShardCounts(series, *plan, 1);
  ASSERT_TRUE(mined.ok());

  const std::string path = testing::TempDir() + "/shard-1.result";
  ASSERT_TRUE(WriteShardResultFile(*mined, path).ok());
  const auto read = ReadShardResultFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(ValidateShardResult(*plan, 1, *read).ok());
  EXPECT_EQ(read->letter_counts.size(), mined->letter_counts.size());
  EXPECT_EQ(read->hits.size(), mined->hits.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppm::dist
