#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ppm {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanSmall) {
  Rng rng(11);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.NextPoisson(2.5);
  EXPECT_NEAR(total / n, 2.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(11);
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += rng.NextPoisson(100.0);
  EXPECT_NEAR(total / n, 100.0, 1.5);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(3.0);
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / n, 3.0, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(19);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t rank = rng.NextZipf(10, 1.0);
    ASSERT_LT(rank, 10u);
    ++histogram[rank];
  }
  // Rank 0 must dominate rank 9 by roughly the 1/(k+1) law.
  EXPECT_GT(histogram[0], histogram[9] * 5);
}

}  // namespace
}  // namespace ppm
