#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>

namespace ppm::obs {
namespace {

TEST(TraceSpanTest, RecordsOneEvent) {
  Tracer tracer;
  {
    const TraceSpan span = tracer.StartSpan("work");
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  ASSERT_EQ(tracer.events().size(), 1u);
  const TraceEvent& event = tracer.events()[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.depth, 0u);
  EXPECT_TRUE(tracer.HasSpan("work"));
  EXPECT_FALSE(tracer.HasSpan("other"));
}

TEST(TraceSpanTest, NestingTracksDepth) {
  Tracer tracer;
  {
    const TraceSpan outer = tracer.StartSpan("outer");
    {
      const TraceSpan inner = tracer.StartSpan("inner");
      const TraceSpan innermost = tracer.StartSpan("innermost");
    }
    const TraceSpan sibling = tracer.StartSpan("sibling");
  }
  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events()[0].depth, 0u);  // outer
  EXPECT_EQ(tracer.events()[1].depth, 1u);  // inner
  EXPECT_EQ(tracer.events()[2].depth, 2u);  // innermost
  EXPECT_EQ(tracer.events()[3].depth, 1u);  // sibling, after inner closed
}

TEST(TraceSpanTest, EndIsIdempotentAndFreezesElapsed) {
  Tracer tracer;
  TraceSpan span = tracer.StartSpan("once");
  span.End();
  const double frozen = span.ElapsedSeconds();
  span.End();
  EXPECT_EQ(span.ElapsedSeconds(), frozen);
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(TraceSpanTest, MoveTransfersOwnership) {
  Tracer tracer;
  TraceSpan a = tracer.StartSpan("moved");
  TraceSpan b = std::move(a);
  b.End();
  // Ending the moved-from span must not close the event twice or crash.
  a.End();  // NOLINT(bugprone-use-after-move)
  ASSERT_EQ(tracer.events().size(), 1u);
}

TEST(TraceSpanTest, SpanOrphanedByClearIsANoOp) {
  Tracer tracer;
  TraceSpan span = tracer.StartSpan("orphan");
  tracer.Clear();
  // New generation starts; the old span may not touch recycled slots.
  const TraceSpan fresh = tracer.StartSpan("fresh");
  span.End();
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "fresh");
  EXPECT_EQ(tracer.events()[0].dur_us, 0u);  // Still open.
}

TEST(TraceSpanTest, ElapsedSecondsGrowsWhileOpen) {
  Tracer tracer;
  const TraceSpan span = tracer.StartSpan("live");
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(span.ElapsedSeconds(), 0.0);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  {
    const TraceSpan outer = tracer.StartSpan("mine");
    const TraceSpan inner = tracer.StartSpan("f1_scan");
  }
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"mine\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"f1_scan\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
}

TEST(TracerTest, EmptyTracerSerializesEmptyArray) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToChromeTraceJson(), "[]");
}

TEST(TracerTest, ClearDropsEvents) {
  Tracer tracer;
  tracer.StartSpan("gone").End();
  EXPECT_EQ(tracer.events().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.ToChromeTraceJson(), "[]");
}

TEST(TracerTest, StartTimesAreMonotonic) {
  Tracer tracer;
  tracer.StartSpan("first").End();
  tracer.StartSpan("second").End();
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_LE(tracer.events()[0].start_us, tracer.events()[1].start_us);
}

TEST(TracerTest, WriteChromeTraceCreatesFile) {
  Tracer tracer;
  tracer.StartSpan("io").End();
  const std::string path = testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), tracer.ToChromeTraceJson() + "\n");
}

TEST(TracerTest, WriteToBadPathFails) {
  Tracer tracer;
  EXPECT_FALSE(tracer.WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST(TracerTest, GlobalIsStable) {
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
}

}  // namespace
}  // namespace ppm::obs
