#include "multidim/multidim.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "util/random.h"

namespace ppm::multidim {
namespace {

TEST(BuilderTest, CombinesDimensions) {
  DimensionedSeriesBuilder builder;
  ASSERT_TRUE(builder.AddDimension("weather", {"cold", "warm"}).ok());
  ASSERT_TRUE(builder.AddDimension("traffic", {"jam", ""}).ok());
  auto series = builder.Build();
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->length(), 2u);
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("weather:cold")));
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("traffic:jam")));
  EXPECT_EQ(series->at(0).Count(), 2u);
  // Empty value -> no feature in that dimension.
  EXPECT_EQ(series->at(1).Count(), 1u);
  EXPECT_TRUE(series->at(1).Test(*series->symbols().Lookup("weather:warm")));
}

TEST(BuilderTest, Validation) {
  DimensionedSeriesBuilder builder;
  EXPECT_FALSE(builder.AddDimension("", {"x"}).ok());
  EXPECT_FALSE(builder.AddDimension("a:b", {"x"}).ok());
  ASSERT_TRUE(builder.AddDimension("a", {"x", "y"}).ok());
  EXPECT_EQ(builder.AddDimension("a", {"x", "y"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(builder.AddDimension("b", {"x"}).ok());  // Length mismatch.
  EXPECT_FALSE(DimensionedSeriesBuilder().Build().ok());
}

TEST(DimensionOfTest, ParsesNames) {
  EXPECT_EQ(DimensionOf("weather:cold"), "weather");
  EXPECT_EQ(DimensionOf("a:b:c"), "a");
  EXPECT_EQ(DimensionOf("plain"), "");
}

TEST(ProjectionTest, SlicesPatternByDimension) {
  DimensionedSeriesBuilder builder;
  ASSERT_TRUE(builder.AddDimension("w", {"c", "h"}).ok());
  ASSERT_TRUE(builder.AddDimension("t", {"jam", "free"}).ok());
  auto series = builder.Build();
  ASSERT_TRUE(series.ok());

  Pattern pattern(2);
  pattern.AddLetter(0, *series->symbols().Lookup("w:c"));
  pattern.AddLetter(0, *series->symbols().Lookup("t:jam"));
  pattern.AddLetter(1, *series->symbols().Lookup("w:h"));

  const Pattern weather = ProjectPattern(pattern, series->symbols(), "w");
  EXPECT_EQ(weather.LetterCount(), 2u);
  const Pattern traffic = ProjectPattern(pattern, series->symbols(), "t");
  EXPECT_EQ(traffic.LetterCount(), 1u);
  EXPECT_TRUE(traffic.at(0).Test(*series->symbols().Lookup("t:jam")));
  EXPECT_TRUE(weather.IsSubpatternOf(pattern));
  EXPECT_EQ(DimensionCount(pattern, series->symbols()), 2u);
  EXPECT_EQ(DimensionCount(weather, series->symbols()), 1u);
}

TEST(CrossDimensionalMiningTest, FindsInterDimensionRegularity) {
  // Weekly rhythm over 2 instants/day * 7 days: Monday morning is cold AND
  // jammed with high probability; other correlations absent.
  Rng rng(12);
  std::vector<std::string> weather, traffic;
  const int weeks = 100;
  for (int week = 0; week < weeks; ++week) {
    for (int day = 0; day < 7; ++day) {
      for (int half = 0; half < 2; ++half) {
        const bool monday_morning = day == 0 && half == 0;
        if (monday_morning && rng.NextBool(0.9)) {
          weather.push_back("cold");
          traffic.push_back("jam");
        } else {
          weather.push_back(rng.NextBool(0.3) ? "cold" : "warm");
          traffic.push_back(rng.NextBool(0.3) ? "jam" : "free");
        }
      }
    }
  }
  DimensionedSeriesBuilder builder;
  ASSERT_TRUE(builder.AddDimension("weather", weather).ok());
  ASSERT_TRUE(builder.AddDimension("traffic", traffic).ok());
  auto series = builder.Build();
  ASSERT_TRUE(series.ok());

  MiningOptions options;
  options.period = 14;
  options.min_confidence = 0.75;
  auto result = Mine(*series, options);
  ASSERT_TRUE(result.ok());

  const auto cross = CrossDimensionalPatterns(*result, series->symbols());
  ASSERT_FALSE(cross.empty());
  bool found = false;
  for (const FrequentPattern& entry : cross) {
    const auto cold = series->symbols().Lookup("weather:cold");
    const auto jam = series->symbols().Lookup("traffic:jam");
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(jam.ok());
    if (entry.pattern.at(0).Test(*cold) && entry.pattern.at(0).Test(*jam)) {
      found = true;
      EXPECT_GE(entry.confidence, 0.75);
    }
  }
  EXPECT_TRUE(found);
  // Every cross pattern genuinely spans two dimensions.
  for (const FrequentPattern& entry : cross) {
    EXPECT_GE(DimensionCount(entry.pattern, series->symbols()), 2u);
  }
}

TEST(CrossDimensionalTest, EmptyResultYieldsNothing) {
  MiningResult empty;
  tsdb::SymbolTable symbols;
  EXPECT_TRUE(CrossDimensionalPatterns(empty, symbols).empty());
}

}  // namespace
}  // namespace ppm::multidim
