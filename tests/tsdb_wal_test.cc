// WAL framing and replay: round trips, fsync policies, torn-tail recovery,
// and the same every-offset truncation + bit-flip harness the series codec
// gets (tsdb_corruption_test.cc). The invariant under test: replay either
// delivers an exact prefix of what was appended (truncating a torn tail) or
// fails `kCorruption` -- it never delivers a record that was not written.
// Runs under ASan/TSan/UBSan in CI (scripts/ci.sh).

#include "tsdb/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace ppm::tsdb {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("PPM_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

uint32_t BitForOffset(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<uint32_t>((z ^ (z >> 27)) & 7);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A varied but deterministic instant: feature sets of different sizes so
/// record lengths differ (exercises offset arithmetic).
FeatureSet InstantFor(uint64_t t) {
  FeatureSet instant;
  if (t % 3 != 2) instant.Set(static_cast<uint32_t>(t % 5));
  if (t % 2 == 0) instant.Set(static_cast<uint32_t>(7 + t % 11));
  if (t % 7 == 0) instant.Set(200);
  return instant;
}

std::vector<FeatureSet> Collect(const std::string& path, uint64_t start_seq,
                                Result<WalReplayInfo>* info_out) {
  std::vector<FeatureSet> delivered;
  *info_out = ReplayWal(path, start_seq,
                        [&](uint64_t, const FeatureSet& instant) {
                          delivered.push_back(instant);
                          return Status::OK();
                        });
  return delivered;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/wal_test.ppmwal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `count` instants into a fresh WAL and returns them.
  std::vector<FeatureSet> WriteWal(uint64_t count,
                                   WalFsync fsync = WalFsync::kNever) {
    auto writer = WalWriter::Create(path_, fsync);
    EXPECT_TRUE(writer.ok()) << writer.status();
    std::vector<FeatureSet> written;
    for (uint64_t t = 0; t < count; ++t) {
      written.push_back(InstantFor(t));
      EXPECT_TRUE((*writer)->Append(written.back()).ok());
    }
    EXPECT_TRUE((*writer)->Sync().ok());
    return written;
  }

  std::string path_;
};

TEST_F(WalTest, RoundTrip) {
  const std::vector<FeatureSet> written = WriteWal(25);
  Result<WalReplayInfo> info = Status::Internal("unset");
  const std::vector<FeatureSet> delivered = Collect(path_, 0, &info);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(delivered, written);
  EXPECT_EQ(info->records_delivered, 25u);
  EXPECT_EQ(info->records_skipped, 0u);
  EXPECT_EQ(info->next_seq, 25u);
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->dropped_bytes, 0u);
}

TEST_F(WalTest, StartSeqSkipsCheckpointCoveredRecords) {
  const std::vector<FeatureSet> written = WriteWal(20);
  Result<WalReplayInfo> info = Status::Internal("unset");
  const std::vector<FeatureSet> delivered = Collect(path_, 12, &info);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->records_skipped, 12u);
  EXPECT_EQ(info->records_delivered, 8u);
  const std::vector<FeatureSet> tail(written.begin() + 12, written.end());
  EXPECT_EQ(delivered, tail);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  Result<WalReplayInfo> info = Status::Internal("unset");
  Collect(path_ + ".nope", 0, &info);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, FsyncAlwaysSyncsEveryAppend) {
  obs::MetricsRegistry::Global().Reset();
  WriteWal(5, WalFsync::kAlways);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* fsyncs = snapshot.FindCounter("ppm.wal.fsyncs");
  ASSERT_NE(fsyncs, nullptr);
  // One per append, one for file creation, one for the final Sync().
  EXPECT_GE(*fsyncs, 7u);
  const uint64_t* appends = snapshot.FindCounter("ppm.wal.appends");
  ASSERT_NE(appends, nullptr);
  EXPECT_EQ(*appends, 5u);
}

TEST_F(WalTest, FsyncNeverOnlySyncsExplicitly) {
  obs::MetricsRegistry::Global().Reset();
  WriteWal(5, WalFsync::kNever);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* fsyncs = snapshot.FindCounter("ppm.wal.fsyncs");
  ASSERT_NE(fsyncs, nullptr);
  // Creation + the final explicit Sync() only.
  EXPECT_EQ(*fsyncs, 2u);
}

TEST_F(WalTest, TruncationAtEveryOffsetYieldsExactPrefix) {
  const std::vector<FeatureSet> written = WriteWal(12);
  const std::string bytes = FileBytes(path_);
  ASSERT_GT(bytes.size(), sizeof(kWalMagic));
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(path_, bytes.substr(0, len));
    Result<WalReplayInfo> info = Status::Internal("unset");
    const std::vector<FeatureSet> delivered = Collect(path_, 0, &info);
    // Truncation only removes a suffix: replay must succeed with a torn
    // tail (or cleanly at a record boundary) and deliver an exact prefix.
    ASSERT_TRUE(info.ok()) << "truncated to " << len << ": " << info.status();
    ASSERT_LE(delivered.size(), written.size());
    for (size_t i = 0; i < delivered.size(); ++i) {
      EXPECT_EQ(delivered[i], written[i]) << "record " << i << " at len "
                                          << len;
    }
    EXPECT_EQ(info->valid_bytes + info->dropped_bytes, len);
    if (len < bytes.size()) {
      EXPECT_EQ(info->torn_tail, info->dropped_bytes != 0);
    }
  }
}

TEST_F(WalTest, BitFlipAtEveryOffsetNeverDeliversWrongData) {
  const uint64_t seed = FaultSeed();
  const std::vector<FeatureSet> written = WriteWal(12);
  const std::string bytes = FileBytes(path_);
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^
        (1u << BitForOffset(seed, offset)));
    WriteBytes(path_, corrupted);
    Result<WalReplayInfo> info = Status::Internal("unset");
    const std::vector<FeatureSet> delivered = Collect(path_, 0, &info);
    if (info.ok()) {
      // Tolerated as a torn tail: everything delivered must still be an
      // exact prefix, and the flipped record itself must have been dropped.
      ASSERT_LT(delivered.size(), written.size())
          << "flip at offset " << offset << " (seed " << seed
          << ") delivered a full replay";
      for (size_t i = 0; i < delivered.size(); ++i) {
        EXPECT_EQ(delivered[i], written[i])
            << "record " << i << ", flip at offset " << offset << " (seed "
            << seed << ")";
      }
    } else {
      EXPECT_EQ(info.status().code(), StatusCode::kCorruption)
          << "flip at offset " << offset << ": " << info.status();
    }
  }
}

TEST_F(WalTest, AppendResumesAfterTornTail) {
  const std::vector<FeatureSet> written = WriteWal(10);
  const std::string bytes = FileBytes(path_);
  // Cut mid-way through the last record.
  WriteBytes(path_, bytes.substr(0, bytes.size() - 3));

  Result<WalReplayInfo> info = Status::Internal("unset");
  std::vector<FeatureSet> delivered = Collect(path_, 0, &info);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->torn_tail);
  ASSERT_EQ(info->next_seq, 9u);

  // Re-open past the torn tail and append two more records.
  auto writer =
      WalWriter::Open(path_, WalFsync::kNever, info->next_seq,
                      info->valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status();
  std::vector<FeatureSet> expected(written.begin(), written.begin() + 9);
  for (uint64_t t = 9; t < 11; ++t) {
    expected.push_back(InstantFor(t));
    ASSERT_TRUE((*writer)->Append(expected.back()).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());

  delivered = Collect(path_, 0, &info);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->next_seq, 11u);
  EXPECT_EQ(delivered, expected);
}

TEST_F(WalTest, OpenRefusesFileShorterThanValidPrefix) {
  WriteWal(4);
  const std::string bytes = FileBytes(path_);
  WriteBytes(path_, bytes.substr(0, sizeof(kWalMagic) + 5));
  auto writer = WalWriter::Open(path_, WalFsync::kNever, 4, bytes.size());
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, SplicedOutRecordIsASequenceGap) {
  WriteWal(5);
  std::string bytes = FileBytes(path_);
  // Walk the frames to find record 1's extent.
  size_t offset = sizeof(kWalMagic);
  const auto frame_len = [&](size_t at) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
    }
    return kWalRecordHeaderBytes + len;
  };
  const size_t record1 = offset + frame_len(offset);
  const size_t record2 = record1 + frame_len(record1);
  bytes.erase(record1, record2 - record1);
  WriteBytes(path_, bytes);

  Result<WalReplayInfo> info = Status::Internal("unset");
  Collect(path_, 0, &info);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kCorruption);
  EXPECT_NE(info.status().ToString().find("sequence gap"), std::string::npos)
      << info.status();
}

TEST_F(WalTest, OversizedLengthWithValidHeaderCrcIsCorruption) {
  WriteWal(2);
  std::string bytes = FileBytes(path_);
  // Craft a header claiming an implausible payload but with a *valid*
  // header CRC, appended as the next record: the length cap must reject it
  // rather than attempting a giant read.
  std::string frame;
  const uint32_t len = kMaxWalRecordBytes + 1;
  const uint64_t seq = 2;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<char>((seq >> (8 * i)) & 0xff));
  }
  const uint32_t hcrc = crc32c::Value(frame.data(), 12);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((hcrc >> (8 * i)) & 0xff));
  }
  frame.append(4, '\0');  // Payload CRC (never reached).
  WriteBytes(path_, bytes + frame);

  Result<WalReplayInfo> info = Status::Internal("unset");
  Collect(path_, 0, &info);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, EmptyAndMagicOnlyFilesReplayCleanly) {
  WriteBytes(path_, "");
  Result<WalReplayInfo> info = Status::Internal("unset");
  Collect(path_, 0, &info);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->next_seq, 0u);

  WriteBytes(path_, std::string(kWalMagic, sizeof(kWalMagic)));
  Collect(path_, 0, &info);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->next_seq, 0u);
}

TEST_F(WalTest, TailLogInfersBaseFromFirstRecord) {
  // A tail log written with CreateAt(first_seq=100) replays with
  // ReplayWalTail: the base is inferred from the first record, so the
  // caller's start_seq (its payload length) delivers exactly the tail.
  auto writer = WalWriter::CreateAt(path_, WalFsync::kNever, 100);
  ASSERT_TRUE(writer.ok()) << writer.status();
  std::vector<FeatureSet> written;
  for (uint64_t t = 0; t < 5; ++t) {
    written.push_back(InstantFor(t));
    ASSERT_TRUE((*writer)->Append(written.back()).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());

  std::vector<FeatureSet> delivered;
  std::vector<uint64_t> seqs;
  auto info = ReplayWalTail(path_, 100,
                            [&](uint64_t seq, const FeatureSet& instant) {
                              seqs.push_back(seq);
                              delivered.push_back(instant);
                              return Status::OK();
                            });
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(delivered, written);
  EXPECT_EQ(seqs.front(), 100u);
  EXPECT_EQ(info->records_delivered, 5u);
  EXPECT_EQ(info->records_skipped, 0u);
  EXPECT_EQ(info->next_seq, 105u);
}

TEST_F(WalTest, TailLogSkipsRecordsBelowStartSeq) {
  // start_seq past the base: records already folded into the payload by a
  // compaction are skipped, the rest delivered.
  auto writer = WalWriter::CreateAt(path_, WalFsync::kNever, 10);
  ASSERT_TRUE(writer.ok()) << writer.status();
  std::vector<FeatureSet> written;
  for (uint64_t t = 0; t < 6; ++t) {
    written.push_back(InstantFor(t));
    ASSERT_TRUE((*writer)->Append(written.back()).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());

  std::vector<FeatureSet> delivered;
  auto info = ReplayWalTail(path_, 13,
                            [&](uint64_t, const FeatureSet& instant) {
                              delivered.push_back(instant);
                              return Status::OK();
                            });
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->records_skipped, 3u);
  EXPECT_EQ(info->records_delivered, 3u);
  const std::vector<FeatureSet> tail(written.begin() + 3, written.end());
  EXPECT_EQ(delivered, tail);
  EXPECT_EQ(info->next_seq, 16u);
}

TEST_F(WalTest, EmptyTailLogReportsNextSeqZero) {
  // With no records there is nothing to infer the base from: next_seq is 0
  // and the caller substitutes its snapshot length.
  auto writer = WalWriter::CreateAt(path_, WalFsync::kNever, 42);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  auto info = ReplayWalTail(path_, 42,
                            [](uint64_t, const FeatureSet&) {
                              ADD_FAILURE() << "no records expected";
                              return Status::OK();
                            });
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->records_delivered, 0u);
  EXPECT_EQ(info->next_seq, 0u);
}

}  // namespace
}  // namespace ppm::tsdb
