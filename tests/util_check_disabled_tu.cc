// The PPM_DCHECK_ENABLED=0 half of util_check_test.cc: debug checks are
// forced off here even in debug builds, so the disabled expansion is
// compiled and exercised in every configuration.
#define PPM_DCHECK_ENABLED 0
#include "util/check.h"

namespace ppm_check_test {

bool DisabledDcheckEvaluatesCondition() {
  bool evaluated = false;
  PPM_DCHECK((evaluated = true));
  return evaluated;
}

bool DisabledDcheckSurvivesFalse() {
  PPM_DCHECK(false);  // Must not abort when disabled.
  return true;
}

}  // namespace ppm_check_test
