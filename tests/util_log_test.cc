#include "util/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ppm {
namespace {

/// Redirects the log sink to a buffer and restores defaults on exit.
class LogTest : public testing::Test {
 protected:
  void SetUp() override {
    SetLogSink(&captured_);
    SetLogLevel(LogLevel::kWarn);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kWarn);
  }

  std::string captured() const { return captured_.str(); }

  std::ostringstream captured_;
};

TEST_F(LogTest, DefaultThresholdDropsInfo) {
  PPM_LOG(kInfo) << "quiet";
  EXPECT_EQ(captured(), "");
  PPM_LOG(kWarn) << "loud";
  EXPECT_EQ(captured(), "[warn] loud\n");
}

TEST_F(LogTest, FormatsLevelPrefixAndStreamedValues) {
  SetLogLevel(LogLevel::kDebug);
  PPM_LOG(kDebug) << "mined " << 42 << " patterns at conf " << 0.5;
  EXPECT_EQ(captured(), "[debug] mined 42 patterns at conf 0.5\n");
}

TEST_F(LogTest, ErrorAlwaysPassesBelowOff) {
  SetLogLevel(LogLevel::kError);
  PPM_LOG(kWarn) << "dropped";
  PPM_LOG(kError) << "kept";
  EXPECT_EQ(captured(), "[error] kept\n");
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  PPM_LOG(kError) << "never";
  EXPECT_EQ(captured(), "");
}

TEST_F(LogTest, SuppressedStatementDoesNotEvaluateOperands) {
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  PPM_LOG(kDebug) << count();  // Below threshold: operand must not run.
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  PPM_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, MacroIsSafeInUnbracedIf) {
  // The ternary form must bind as a single statement.
  if (true)
    PPM_LOG(kError) << "then";
  else
    PPM_LOG(kError) << "else";
  EXPECT_EQ(captured(), "[error] then\n");
}

TEST(LogLevelTest, ToStringRoundTrips) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    const auto parsed = ParseLogLevel(LogLevelToString(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
}

TEST(LogLevelTest, ParseAcceptsAliases) {
  EXPECT_EQ(*ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("none"), LogLevel::kOff);
}

TEST(LogLevelTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
  EXPECT_FALSE(ParseLogLevel("WARN").ok());
}

}  // namespace
}  // namespace ppm
