// The incremental == batch equivalence contract for continuous mining
// (docs/INCREMENTAL.md): for ANY interleaving of appends, live queries,
// sliding-window evictions, checkpoint/restore cuts, and compactions, a
// `ContinuousMiner::Snapshot` must be field-identical -- same pattern set,
// same counts, bit-equal confidences, in the same canonical order -- to a
// from-scratch `MineHitSet` batch mine over exactly the effective window
// (the last min(W, committed) whole segments), restricted to the seeded
// letter space.
//
// The schedules are randomized but fully seed-determined: every failure
// message carries the seed and step, so any discrepancy replays exactly.
// Both hit-store backends, both window modes (whole-history and sliding),
// and batch thread counts 1 and 4 are exercised; across all seeds the
// harness executes well over 1000 schedule steps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "diff_harness.h"
#include "core/letter_space.h"
#include "core/mining_options.h"
#include "stream/checkpoint.h"
#include "stream/continuous_miner.h"
#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/random.h"

namespace ppm {
namespace {

namespace fs = std::filesystem;

/// One seed-determined continuous-mining workload.
struct Workload {
  uint64_t seed = 0;
  MiningOptions options;
  stream::ContinuousOptions continuous;
  uint32_t num_features = 0;
  std::vector<Letter> seed_letters;
};

Workload MakeWorkload(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 3);
  Workload w;
  w.seed = seed;
  w.options.period = 3 + static_cast<uint32_t>(rng.NextBelow(5));  // 3..7
  w.num_features = 2 + static_cast<uint32_t>(rng.NextBelow(4));    // 2..5
  w.options.min_confidence = 0.25 + 0.5 * rng.NextDouble();
  w.options.num_threads = 1;
  // Cover both decrement paths: the tree's Remove and the hash table's.
  w.options.hit_store = (seed % 2 == 0) ? HitStoreKind::kMaxSubpatternTree
                                        : HitStoreKind::kHashTable;
  // Two thirds of the seeds run a sliding window, the rest whole-history.
  if (seed % 3 != 0) {
    w.continuous.window_segments = 3 + static_cast<uint32_t>(rng.NextBelow(8));
  }
  if (rng.NextBool(0.5)) {
    w.continuous.compact_every = 2 + static_cast<uint32_t>(rng.NextBelow(4));
  }
  w.continuous.drift_window = static_cast<uint32_t>(rng.NextBelow(6));
  // Seed most of the (position, feature) alphabet, leaving holes so the
  // unseeded/other-counts path stays live too.
  for (uint32_t position = 0; position < w.options.period; ++position) {
    for (uint32_t feature = 0; feature < w.num_features; ++feature) {
      if (rng.NextBool(0.8)) w.seed_letters.push_back({position, feature});
    }
  }
  if (w.seed_letters.size() < 2) {
    w.seed_letters = {{0, 0}, {1, 1 % w.num_features}};
  }
  return w;
}

tsdb::SymbolTable MakeSymbols(uint32_t num_features) {
  tsdb::SymbolTable symbols;
  for (uint32_t f = 0; f < num_features; ++f) {
    symbols.Intern("f" + std::to_string(f));
  }
  return symbols;
}

/// Drives one random schedule of appends, queries, checkpoints, restores,
/// and compactions; checks incremental == batch at every query. Adds the
/// number of schedule steps executed to `*steps_out`.
void RunSchedule(const Workload& w, const std::string& checkpoint_dir,
                 uint64_t num_ops, uint64_t* steps_out) {
  const tsdb::SymbolTable symbols = MakeSymbols(w.num_features);
  auto created = stream::ContinuousMiner::Create(w.options, w.seed_letters,
                                                 w.continuous);
  ASSERT_TRUE(created.status().ok()) << created.status().ToString();
  std::unique_ptr<stream::ContinuousMiner> miner = std::move(created).value();

  // Shadow log of every instant the miner has consumed on the current
  // timeline; a restore rolls it back to the checkpoint's length.
  std::vector<tsdb::FeatureSet> appended;
  bool have_checkpoint = false;
  size_t checkpoint_len = 0;

  Rng data_rng(w.seed);   // Generates the instants.
  Rng op_rng(w.seed + 1);  // Picks the schedule.
  const uint32_t period = w.options.period;

  const auto append_instants = [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t t = appended.size();
      tsdb::FeatureSet instant;
      for (uint32_t f = 0; f < w.num_features; ++f) {
        const bool aligned = (t % period) == (f % period);
        if (data_rng.NextBool(aligned ? 0.7 : 0.15)) instant.Set(f);
      }
      appended.push_back(instant);
      miner->Append(instant);
    }
  };

  const auto check_query = [&](uint64_t step) {
    const uint64_t committed = miner->segments_committed();
    const uint64_t effective = miner->effective_segments();
    ASSERT_LE(committed * period, appended.size());
    const MiningResult incremental = miner->Snapshot();
    if (effective == 0) {
      EXPECT_EQ(incremental.size(), 0u) << "seed=" << w.seed;
      return;
    }
    const tsdb::TimeSeries window = diff::SliceSegments(
        appended, symbols, period, committed - effective, effective);
    // The incremental F1 row equals a recount of the window.
    const std::vector<Letter>& letters = miner->space().letters();
    std::vector<uint64_t> recount(letters.size(), 0);
    for (size_t i = 0; i < letters.size(); ++i) {
      for (uint64_t t = letters[i].position; t < window.length();
           t += period) {
        if (window.at(t).Test(letters[i].feature)) ++recount[i];
      }
    }
    EXPECT_EQ(miner->seeded_counts(), recount)
        << "seed=" << w.seed << " step=" << step;
    // Full-result equivalence at both batch thread counts.
    const std::string got = diff::Serialize(incremental, symbols);
    for (const uint32_t threads : {1u, 4u}) {
      const auto batch =
          diff::BatchMineWindow(window, w.options, letters, threads);
      ASSERT_TRUE(batch.status().ok()) << batch.status().ToString();
      EXPECT_EQ(got, diff::Serialize(*batch, symbols))
          << "seed=" << w.seed << " step=" << step << " threads=" << threads
          << " window=" << w.continuous.window_segments
          << " effective=" << effective << " committed=" << committed;
    }
  };

  for (uint64_t op = 0; op < num_ops; ++op, ++*steps_out) {
    const uint64_t roll = op_rng.NextBelow(100);
    if (roll < 55 || appended.empty()) {
      append_instants(1 + op_rng.NextBelow(2ull * period));
    } else if (roll < 70) {
      check_query(op);
      if (::testing::Test::HasFatalFailure()) return;
    } else if (roll < 80) {
      ASSERT_TRUE(
          stream::WriteCheckpoint(*miner, symbols, checkpoint_dir).ok());
      have_checkpoint = true;
      checkpoint_len = appended.size();
    } else if (roll < 90 && have_checkpoint) {
      // Crash: lose everything after the checkpoint, restore, verify the
      // restored miner still matches a batch mine of its window.
      auto data =
          stream::ReadCheckpoint(stream::CheckpointPath(checkpoint_dir));
      ASSERT_TRUE(data.status().ok()) << data.status().ToString();
      auto restored = stream::RestoreContinuousMiner(
          *data, w.options, w.continuous.compact_every);
      ASSERT_TRUE(restored.status().ok()) << restored.status().ToString();
      miner = std::move(restored).value();
      appended.resize(checkpoint_len);
      check_query(op);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      miner->Compact();
    }
  }
  check_query(num_ops);
}

class IncrementalEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/incr_equiv_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(IncrementalEquivalenceTest, RandomSchedulesMatchBatchMine) {
  uint64_t total_steps = 0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RunSchedule(MakeWorkload(seed), dir_, 48, &total_steps);
    if (HasFatalFailure()) {
      FAIL() << "schedule aborted at seed " << seed;
    }
  }
  // The acceptance bar: the harness must drive at least 1000 randomized
  // schedule steps across seeds.
  EXPECT_GE(total_steps, 1000u);
}

// The window boundary in isolation: a window of W segments must behave
// exactly like batch mining the last W segments at every fill level --
// before the window fills, as it fills exactly, and long after segments
// have been evicted.
TEST_F(IncrementalEquivalenceTest, WindowRollsMatchBatchAtEveryFillLevel) {
  Workload w = MakeWorkload(7);
  w.continuous.window_segments = 5;
  w.continuous.compact_every = 3;
  const tsdb::SymbolTable symbols = MakeSymbols(w.num_features);
  auto miner = stream::ContinuousMiner::Create(w.options, w.seed_letters,
                                               w.continuous);
  ASSERT_TRUE(miner.status().ok()) << miner.status().ToString();

  std::vector<tsdb::FeatureSet> appended;
  Rng rng(w.seed);
  for (uint64_t segment = 0; segment < 20; ++segment) {
    for (uint32_t i = 0; i < w.options.period; ++i) {
      const uint64_t t = appended.size();
      tsdb::FeatureSet instant;
      for (uint32_t f = 0; f < w.num_features; ++f) {
        const bool aligned = (t % w.options.period) == (f % w.options.period);
        if (rng.NextBool(aligned ? 0.7 : 0.15)) instant.Set(f);
      }
      appended.push_back(instant);
      (*miner)->Append(instant);
    }
    const uint64_t committed = (*miner)->segments_committed();
    const uint64_t effective = (*miner)->effective_segments();
    EXPECT_EQ(committed, segment + 1);
    EXPECT_EQ(effective, std::min<uint64_t>(segment + 1, 5));
    const tsdb::TimeSeries window =
        diff::SliceSegments(appended, symbols, w.options.period,
                            committed - effective, effective);
    const auto batch = diff::BatchMineWindow(
        window, w.options, (*miner)->space().letters(), 1);
    ASSERT_TRUE(batch.status().ok()) << batch.status().ToString();
    EXPECT_EQ(diff::Serialize((*miner)->Snapshot(), symbols),
              diff::Serialize(*batch, symbols))
        << "segment=" << segment;
  }
  EXPECT_EQ((*miner)->segments_evicted(), 15u);
}

}  // namespace
}  // namespace ppm
