// Parameterized round-trip sweeps: for a grid of random series shapes, the
// binary codec must reproduce the series exactly, the file-backed source
// must stream the identical instants, and the text codec must preserve the
// feature names per instant.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::tsdb {
namespace {

struct CodecConfig {
  uint64_t seed;
  uint32_t num_features;
  uint64_t length;
  double density;  // Expected features per instant / num_features.
};

std::string ConfigName(const ::testing::TestParamInfo<CodecConfig>& info) {
  return "seed" + std::to_string(info.param.seed) + "_f" +
         std::to_string(info.param.num_features) + "_n" +
         std::to_string(info.param.length);
}

TimeSeries MakeRandomSeries(const CodecConfig& config) {
  Rng rng(config.seed);
  TimeSeries series;
  for (uint32_t f = 0; f < config.num_features; ++f) {
    series.symbols().Intern("feat_" + std::to_string(f));
  }
  for (uint64_t t = 0; t < config.length; ++t) {
    FeatureSet instant;
    for (uint32_t f = 0; f < config.num_features; ++f) {
      if (rng.NextBool(config.density)) instant.Set(f);
    }
    series.Append(std::move(instant));
  }
  return series;
}

class CodecPropertyTest : public ::testing::TestWithParam<CodecConfig> {
 protected:
  std::string TempPath(const char* tag) {
    return testing::TempDir() + "/ppm_codec_prop_" + tag + "_" +
           std::to_string(GetParam().seed) + ".bin";
  }
};

TEST_P(CodecPropertyTest, BinaryRoundTripIsIdentityBothVersions) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  for (const auto version :
       {BinaryFormatVersion::kV1, BinaryFormatVersion::kV2}) {
    const std::string path = TempPath("bin");
    ASSERT_TRUE(WriteBinarySeries(series, path, version).ok());
    auto loaded = ReadBinarySeries(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_EQ(loaded->length(), series.length());
    ASSERT_EQ(loaded->symbols().size(), series.symbols().size());
    for (uint64_t t = 0; t < series.length(); ++t) {
      ASSERT_EQ(loaded->at(t), series.at(t))
          << "v" << static_cast<int>(version) << " instant " << t;
    }
    std::remove(path.c_str());
  }
}

TEST_P(CodecPropertyTest, FileSourceStreamsIdenticalInstantsBothVersions) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  for (const auto version :
       {BinaryFormatVersion::kV1, BinaryFormatVersion::kV2}) {
    const std::string path = TempPath("src");
    ASSERT_TRUE(WriteBinarySeries(series, path, version).ok());
    auto source = FileSeriesSource::Open(path);
    ASSERT_TRUE(source.ok());
    ASSERT_EQ((*source)->length(), series.length());

    // Two scans must both match (seek-back correctness).
    for (int scan = 0; scan < 2; ++scan) {
      ASSERT_TRUE((*source)->StartScan().ok());
      FeatureSet instant;
      uint64_t t = 0;
      while ((*source)->Next(&instant)) {
        ASSERT_EQ(instant, series.at(t))
            << "v" << static_cast<int>(version) << " scan " << scan
            << " instant " << t;
        ++t;
      }
      ASSERT_TRUE((*source)->status().ok());
      ASSERT_EQ(t, series.length());
    }
    std::remove(path.c_str());
  }
}

TEST_P(CodecPropertyTest, V2NeverLargerThanV1) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  const std::string v1_path = TempPath("v1");
  const std::string v2_path = TempPath("v2");
  ASSERT_TRUE(WriteBinarySeries(series, v1_path, BinaryFormatVersion::kV1).ok());
  ASSERT_TRUE(WriteBinarySeries(series, v2_path, BinaryFormatVersion::kV2).ok());
  std::ifstream v1(v1_path, std::ios::binary | std::ios::ate);
  std::ifstream v2(v2_path, std::ios::binary | std::ios::ate);
  EXPECT_LE(v2.tellg(), v1.tellg());
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST_P(CodecPropertyTest, TextRoundTripPreservesNames) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  const std::string path = TempPath("txt");
  ASSERT_TRUE(WriteTextSeries(series, path).ok());
  auto loaded = ReadTextSeries(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->length(), series.length());
  for (uint64_t t = 0; t < series.length(); ++t) {
    ASSERT_EQ(loaded->at(t).Count(), series.at(t).Count()) << t;
    series.at(t).ForEach([&](uint32_t id) {
      const auto reloaded =
          loaded->symbols().Lookup(series.symbols().NameOrPlaceholder(id));
      ASSERT_TRUE(reloaded.ok());
      EXPECT_TRUE(loaded->at(t).Test(*reloaded));
    });
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, CodecPropertyTest,
    ::testing::Values(CodecConfig{1, 1, 1, 1.0},      // Minimal.
                      CodecConfig{2, 3, 100, 0.0},    // All-empty instants.
                      CodecConfig{3, 8, 500, 0.3},    // Typical.
                      CodecConfig{4, 64, 200, 0.5},   // Word-boundary ids.
                      CodecConfig{5, 65, 200, 0.5},   // Just past a word.
                      CodecConfig{6, 200, 300, 0.05}, // Sparse, wide.
                      CodecConfig{7, 5, 3000, 0.9},   // Dense, long.
                      CodecConfig{8, 130, 50, 1.0}),  // Every feature set.
    ConfigName);

}  // namespace
}  // namespace ppm::tsdb
