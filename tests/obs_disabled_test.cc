// Compiled with PPM_OBS_DISABLED (via the ppm_obs_noop library): verifies the
// instrumentation API still compiles and behaves as a no-op, and that
// TraceSpan keeps measuring wall time so miner `elapsed_seconds` stays
// meaningful with observability compiled out.

#ifndef PPM_OBS_DISABLED
#error "this test must be built with PPM_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace ppm::obs {
namespace {

TEST(DisabledMetricsTest, EverythingReadsZero) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const Counter counter = registry.GetCounter("disabled.counter");
  counter.Inc();
  counter.Inc(100);
  EXPECT_EQ(counter.value(), 0u);

  const Gauge gauge = registry.GetGauge("disabled.gauge");
  gauge.Set(42);
  gauge.Add(1);
  EXPECT_EQ(gauge.value(), 0u);

  const Histogram hist = registry.GetHistogram("disabled.hist");
  hist.Observe(1000);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
}

TEST(DisabledMetricsTest, SnapshotIsEmpty) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("disabled.visible").Inc(5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.FindCounter("disabled.visible"), nullptr);
  registry.Reset();  // Must compile and not crash.
}

TEST(DisabledMetricsTest, PrometheusRendersEmpty) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("disabled.prom").Inc(3);
  EXPECT_EQ(registry.RenderPrometheus(), "");
  // The free function still renders whatever snapshot it is handed, and the
  // no-op registry only ever hands it an empty one.
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()), "");
}

TEST(DisabledResourceTest, RecordingIsANoOpButProbesStillWork) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  RecordResourceMetrics();
  EXPECT_TRUE(registry.Snapshot().empty());
  // ReadResourceUsage is a plain probe, independent of the metrics build.
  const ResourceUsage usage = ReadResourceUsage();
  EXPECT_GT(usage.rss_bytes, 0u);
  // PhaseTimer compiles to nothing: no histograms appear.
  {
    PhaseTimer timer("disabled_phase");
    timer.End();
  }
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(DisabledTraceTest, NothingIsRecorded) {
  Tracer& tracer = Tracer::Global();
  {
    const TraceSpan outer = tracer.StartSpan("outer");
    const TraceSpan inner = tracer.StartSpan("inner");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_FALSE(tracer.HasSpan("outer"));
  EXPECT_EQ(tracer.ToChromeTraceJson(), "[]");
}

TEST(DisabledTraceTest, SpanStillMeasuresTime) {
  TraceSpan span = Tracer::Global().StartSpan("timed");
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 200000; ++i) sink = sink + i;
  EXPECT_GE(span.ElapsedSeconds(), 0.0);
  span.End();
  const double frozen = span.ElapsedSeconds();
  EXPECT_GT(frozen, 0.0);
  // End is idempotent; elapsed stays frozen afterwards.
  span.End();
  EXPECT_EQ(span.ElapsedSeconds(), frozen);
}

TEST(DisabledTraceTest, WriteChromeTraceWritesEmptyArray) {
  const std::string path = testing::TempDir() + "/obs_disabled_trace.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path).ok());
}

TEST(DisabledReportTest, ReportStillSerializes) {
  RunReport report("disabled");
  report.AddMeta("mode", "noop");
  report.AddRawSection("stats", R"({"scans":2})");
  report.CaptureGlobal();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"run\":\"disabled\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stats\":{\"scans\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace ppm::obs
