// Coordinator supervision against real worker processes (the `ppm`
// binary, located via the PPM_BIN environment variable set by CMake):
// the kill-point matrix -- workers SIGKILLed at every cut point of their
// segment range, timed out, exiting nonzero, or dying after the durable
// write -- must always end in a merged pattern set field-identical to
// the uninterrupted one-shot mine, and a resumed run must re-execute
// only the shards without valid results.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/miner.h"
#include "diff_harness.h"
#include "dist/coordinator.h"
#include "dist/merger.h"
#include "dist/shard_plan.h"
#include "obs/metrics.h"
#include "tsdb/series_codec.h"

namespace ppm::dist {
namespace {

const char* PpmBin() { return std::getenv("PPM_BIN"); }

/// One disposable distributed workload: a series file, a written plan,
/// and a results dir, torn down afterwards.
class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (PpmBin() == nullptr) {
      GTEST_SKIP() << "PPM_BIN not set; coordinator tests need the ppm binary";
    }
    dir_ = testing::TempDir() + "/dist_coord_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    results_dir_ = dir_ + "/results";
    ::mkdir(dir_.c_str(), 0755);

    const diff::DiffConfig config = diff::RandomDiffConfig(21);
    series_ = diff::MakeRandomSeries(config);
    options_.period = config.period;
    options_.min_confidence = config.min_confidence;
    series_path_ = dir_ + "/input.ppmts";
    ASSERT_TRUE(tsdb::WriteBinarySeries(series_, series_path_).ok());

    auto plan = PlanShards({{series_path_, series_.length()}}, options_, 4);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = *plan;
    plan_path_ = dir_ + "/mine.plan";
    ASSERT_TRUE(WritePlanFile(&plan_, plan_path_).ok());
    obs::MetricsRegistry::Global().Reset();
  }

  void TearDown() override {
    for (const ShardSpec& spec : plan_.shards) {
      std::remove(ShardResultPath(results_dir_, spec.shard_id).c_str());
    }
    ::rmdir(results_dir_.c_str());
    std::remove(plan_path_.c_str());
    std::remove(series_path_.c_str());
    ::rmdir(dir_.c_str());
  }

  CoordinatorOptions Opts() {
    CoordinatorOptions options;
    options.worker_binary = PpmBin();
    options.max_parallel = 4;
    options.backoff_initial_ms = 1;  // keep the retry matrix fast
    options.backoff_max_ms = 20;
    return options;
  }

  /// Asserts the merged output equals the one-shot mine of the series.
  void ExpectExactMerge() {
    const auto merged = MergeFromDir(plan_, results_dir_, false);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ASSERT_EQ(merged->inputs.size(), 1u);
    const auto one_shot = Mine(series_, options_);
    ASSERT_TRUE(one_shot.ok());
    EXPECT_EQ(
        diff::Serialize(merged->inputs[0].result, merged->inputs[0].symbols),
        diff::Serialize(*one_shot, series_.symbols()));
  }

  std::string dir_, results_dir_, series_path_, plan_path_;
  tsdb::TimeSeries series_;
  MiningOptions options_;
  ShardPlan plan_;
};

TEST_F(CoordinatorTest, CleanRunMergesExactly) {
  const auto run = RunShards(plan_, plan_path_, results_dir_, Opts());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->complete());
  EXPECT_EQ(run->launched, plan_.shards.size());
  EXPECT_EQ(run->retried, 0u);
  EXPECT_EQ(run->adopted, 0u);
  ExpectExactMerge();
}

TEST_F(CoordinatorTest, KillPointMatrixHealsByRetry) {
  // Kill shard 1's worker at every cut point of its range: before any
  // segment (0), after the first, mid-range, and after the last segment
  // but before the write makes it durable is covered by the range end
  // (the worker raises SIGKILL from inside the mining loop).
  const uint64_t segments = plan_.shards[1].num_segments();
  std::vector<uint64_t> cut_points = {0, 1, segments / 2, segments};
  for (const uint64_t cut : cut_points) {
    for (const ShardSpec& spec : plan_.shards) {
      std::remove(ShardResultPath(results_dir_, spec.shard_id).c_str());
    }
    CoordinatorOptions options = Opts();
    options.max_retries = 2;
    options.chaos_args[1] = {"--crash-after-segments", std::to_string(cut),
                             "--chaos-until-attempt", "1"};
    const auto run = RunShards(plan_, plan_path_, results_dir_, options);
    ASSERT_TRUE(run.ok()) << "cut point " << cut << ": "
                          << run.status().ToString();
    EXPECT_TRUE(run->complete()) << "cut point " << cut;
    EXPECT_EQ(run->retried, 1u) << "cut point " << cut;
    EXPECT_EQ(run->shards[1].attempts, 2u);
    EXPECT_EQ(run->shards[1].last_failure.rfind("signal", 0), 0u)
        << run->shards[1].last_failure;
    ExpectExactMerge();
  }
}

TEST_F(CoordinatorTest, TimeoutIsKilledAndRetried) {
  CoordinatorOptions options = Opts();
  options.max_retries = 1;
  options.shard_timeout_ms = 400;
  options.chaos_args[2] = {"--hang-ms", "60000", "--chaos-until-attempt", "1"};
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->complete());
  EXPECT_EQ(run->shards[2].last_failure.rfind("timeout", 0), 0u)
      << run->shards[2].last_failure;
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* timeouts = snapshot.FindCounter("ppm.dist.failures.timeout");
  ASSERT_NE(timeouts, nullptr);
  EXPECT_EQ(*timeouts, 1u);
  ExpectExactMerge();
}

TEST_F(CoordinatorTest, TransientExitFailureIsRetried) {
  CoordinatorOptions options = Opts();
  options.max_retries = 2;
  options.chaos_args[0] = {"--fail-exit", "7", "--chaos-until-attempt", "2"};
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->complete());
  EXPECT_EQ(run->shards[0].attempts, 3u);
  EXPECT_EQ(run->shards[0].last_failure.rfind("exit", 0), 0u)
      << run->shards[0].last_failure;
  ExpectExactMerge();
}

TEST_F(CoordinatorTest, CrashAfterDurableWriteIsAdoptedNotRemined) {
  // The worker writes a valid result, then dies. The retry's pre-launch
  // adoption check must pick the result up without re-mining.
  CoordinatorOptions options = Opts();
  options.max_retries = 1;
  options.chaos_args[3] = {"--crash-after-write", "1", "--chaos-until-attempt",
                           "99"};
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->complete());
  EXPECT_TRUE(run->shards[3].completed);
  EXPECT_TRUE(run->shards[3].adopted);
  // One launch was enough: the "retry" became an adoption.
  EXPECT_EQ(run->launched, plan_.shards.size());
  ExpectExactMerge();
}

TEST_F(CoordinatorTest, PermanentFailureFailsTheRunByDefault) {
  CoordinatorOptions options = Opts();
  options.max_retries = 1;
  options.chaos_args[1] = {"--fail-exit", "9"};  // no gate: every attempt
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

TEST_F(CoordinatorTest, PermanentTimeoutMapsToDeadlineExceeded) {
  CoordinatorOptions options = Opts();
  options.max_retries = 0;
  options.shard_timeout_ms = 300;
  options.chaos_args[1] = {"--hang-ms", "60000"};
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CoordinatorTest, PartialOkSkipsAndReportsTheLostShard) {
  CoordinatorOptions options = Opts();
  options.max_retries = 1;
  options.partial_ok = true;
  options.chaos_args[1] = {"--crash-after-segments", "1"};
  const auto run = RunShards(plan_, plan_path_, results_dir_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->failed, 1u);
  EXPECT_FALSE(run->shards[1].completed);
  EXPECT_EQ(run->shards[1].attempts, 2u);

  // Strict merge refuses; partial merge reports exactly the lost range.
  EXPECT_EQ(MergeFromDir(plan_, results_dir_, false).status().code(),
            StatusCode::kNotFound);
  const auto partial = MergeFromDir(plan_, results_dir_, true);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_EQ(partial->inputs.size(), 1u);
  ASSERT_EQ(partial->inputs[0].missing.size(), 1u);
  EXPECT_EQ(partial->inputs[0].missing[0].segment_begin,
            plan_.shards[1].segment_begin);
}

TEST_F(CoordinatorTest, ResumedRunReExecutesOnlyFailedShards) {
  // Run 1: shard 2 is killed on every attempt and abandoned (partial ok).
  CoordinatorOptions broken = Opts();
  broken.max_retries = 0;
  broken.partial_ok = true;
  broken.chaos_args[2] = {"--crash-after-segments", "1"};
  const auto first = RunShards(plan_, plan_path_, results_dir_, broken);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->failed, 1u);

  // Run 2, no chaos: the three completed shards must be adopted from
  // their result files and only shard 2 launched -- proven both by the
  // summary and by the ppm.dist.* counters.
  obs::MetricsRegistry::Global().Reset();
  const auto second = RunShards(plan_, plan_path_, results_dir_, Opts());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->complete());
  EXPECT_EQ(second->adopted, 3u);
  EXPECT_EQ(second->launched, 1u);
  EXPECT_EQ(second->retried, 0u);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t* launched = snapshot.FindCounter("ppm.dist.shards.launched");
  const uint64_t* adopted = snapshot.FindCounter("ppm.dist.shards.adopted");
  ASSERT_NE(launched, nullptr);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(*launched, 1u);
  EXPECT_EQ(*adopted, 3u);
  ExpectExactMerge();
}

TEST_F(CoordinatorTest, CorruptPreexistingResultIsDiscardedAndRemined) {
  // A garbage file squatting on shard 0's result path must not be
  // adopted: the coordinator discards it and mines the shard for real.
  ::mkdir(results_dir_.c_str(), 0755);
  {
    FILE* f = std::fopen(ShardResultPath(results_dir_, 0).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a shard result", f);
    std::fclose(f);
  }
  const auto run = RunShards(plan_, plan_path_, results_dir_, Opts());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->complete());
  EXPECT_EQ(run->adopted, 0u);
  EXPECT_EQ(run->launched, plan_.shards.size());
  ExpectExactMerge();
}

}  // namespace
}  // namespace ppm::dist
