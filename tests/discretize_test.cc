#include "discretize/discretizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ppm::discretize {
namespace {

TEST(BreakpointsTest, EqualWidth) {
  auto bp = ComputeBreakpoints({0.0, 10.0}, BinningMethod::kEqualWidth, 4);
  ASSERT_TRUE(bp.ok());
  ASSERT_EQ(bp->size(), 3u);
  EXPECT_DOUBLE_EQ((*bp)[0], 2.5);
  EXPECT_DOUBLE_EQ((*bp)[1], 5.0);
  EXPECT_DOUBLE_EQ((*bp)[2], 7.5);
}

TEST(BreakpointsTest, EqualFrequencyBalancesBins) {
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) values.push_back(rng.NextExponential(5.0));
  auto bp = ComputeBreakpoints(values, BinningMethod::kEqualFrequency, 4);
  ASSERT_TRUE(bp.ok());
  std::vector<int> histogram(4, 0);
  for (double v : values) ++histogram[BinOf(v, *bp)];
  for (int count : histogram) {
    EXPECT_NEAR(count, 1000, 60);
  }
}

TEST(BreakpointsTest, GaussianBalancesBinsOnNormalData) {
  std::vector<double> values;
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) values.push_back(3.0 + 2.0 * rng.NextGaussian());
  auto bp = ComputeBreakpoints(values, BinningMethod::kGaussian, 4);
  ASSERT_TRUE(bp.ok());
  // Middle breakpoint is the mean; outer ones symmetric around it.
  EXPECT_NEAR((*bp)[1], 3.0, 0.15);
  EXPECT_NEAR((*bp)[1] - (*bp)[0], (*bp)[2] - (*bp)[1], 0.05);
  std::vector<int> histogram(4, 0);
  for (double v : values) ++histogram[BinOf(v, *bp)];
  for (int count : histogram) EXPECT_NEAR(count, 1000, 100);
}

TEST(BreakpointsTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeBreakpoints({}, BinningMethod::kEqualWidth, 4).ok());
  EXPECT_FALSE(ComputeBreakpoints({1.0}, BinningMethod::kEqualWidth, 1).ok());
}

TEST(BinOfTest, EdgeSemantics) {
  const std::vector<double> bp = {1.0, 2.0};
  EXPECT_EQ(BinOf(0.5, bp), 0u);
  EXPECT_EQ(BinOf(1.0, bp), 0u);  // Boundary belongs to the lower bin.
  EXPECT_EQ(BinOf(1.5, bp), 1u);
  EXPECT_EQ(BinOf(2.0, bp), 1u);
  EXPECT_EQ(BinOf(9.9, bp), 2u);
}

TEST(DiscretizeTest, OneFeaturePerInstant) {
  DiscretizeOptions options;
  options.num_bins = 3;
  options.prefix = "v";
  auto series = Discretize({0.0, 5.0, 10.0, 2.0}, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->length(), 4u);
  EXPECT_EQ(series->symbols().size(), 3u);
  for (uint64_t t = 0; t < series->length(); ++t) {
    EXPECT_EQ(series->at(t).Count(), 1u);
  }
  // 0.0 -> v0, 10.0 -> v2.
  EXPECT_TRUE(series->at(0).Test(*series->symbols().Lookup("v0")));
  EXPECT_TRUE(series->at(2).Test(*series->symbols().Lookup("v2")));
}

TEST(DiscretizeMultiLevelTest, NestingInvariant) {
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble() * 100);
  auto ml = DiscretizeMultiLevel(values, 2, 8, BinningMethod::kEqualWidth);
  ASSERT_TRUE(ml.ok()) << ml.status();

  EXPECT_EQ(ml->hierarchy.size(), 8u);
  // Every instant has exactly one coarse and one fine feature, and the fine
  // one maps to the coarse one through the hierarchy.
  std::unordered_map<std::string, std::string> parent(ml->hierarchy.begin(),
                                                      ml->hierarchy.end());
  for (uint64_t t = 0; t < ml->series.length(); ++t) {
    std::vector<std::string> coarse, fine;
    ml->series.at(t).ForEach([&](uint32_t id) {
      const std::string name = ml->series.symbols().NameOrPlaceholder(id);
      if (name.find("hi") != std::string::npos) coarse.push_back(name);
      if (name.find("lo") != std::string::npos) fine.push_back(name);
    });
    ASSERT_EQ(coarse.size(), 1u);
    ASSERT_EQ(fine.size(), 1u);
    EXPECT_EQ(parent[fine[0]], coarse[0]);
  }
}

TEST(DiscretizeMultiLevelTest, RejectsNonNestedBinCounts) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_FALSE(DiscretizeMultiLevel(values, 3, 8, BinningMethod::kEqualWidth).ok());
  EXPECT_FALSE(DiscretizeMultiLevel(values, 4, 4, BinningMethod::kEqualWidth).ok());
  EXPECT_FALSE(DiscretizeMultiLevel(values, 1, 4, BinningMethod::kEqualWidth).ok());
}

TEST(SmoothTest, ZeroWindowIsIdentity) {
  const std::vector<double> values = {1, 5, 2};
  auto smoothed = SmoothMovingAverage(values, 0);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_EQ(*smoothed, values);
}

TEST(SmoothTest, CenteredMeanWithEdgeShrink) {
  auto smoothed = SmoothMovingAverage({0, 6, 0, 6, 0}, 1);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->size(), 5u);
  EXPECT_DOUBLE_EQ((*smoothed)[0], 3.0);  // Mean of {0,6}.
  EXPECT_DOUBLE_EQ((*smoothed)[1], 2.0);  // Mean of {0,6,0}.
  EXPECT_DOUBLE_EQ((*smoothed)[2], 4.0);
  EXPECT_DOUBLE_EQ((*smoothed)[4], 3.0);
}

TEST(SmoothTest, ConstantSeriesUnchanged) {
  auto smoothed = SmoothMovingAverage({7, 7, 7, 7}, 2);
  ASSERT_TRUE(smoothed.ok());
  for (double v : *smoothed) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(SmoothTest, ReducesNoiseVariance) {
  Rng rng(21);
  std::vector<double> noisy;
  for (int i = 0; i < 2000; ++i) noisy.push_back(rng.NextGaussian());
  auto smoothed = SmoothMovingAverage(noisy, 3);
  ASSERT_TRUE(smoothed.ok());
  double var_raw = 0, var_smooth = 0;
  for (size_t i = 0; i < noisy.size(); ++i) {
    var_raw += noisy[i] * noisy[i];
    var_smooth += (*smoothed)[i] * (*smoothed)[i];
  }
  EXPECT_LT(var_smooth, var_raw / 3);  // 7-wide mean cuts variance ~7x.
}

TEST(SmoothTest, RejectsEmpty) {
  EXPECT_FALSE(SmoothMovingAverage({}, 1).ok());
}

TEST(EncodeMovementTest, UpDownFlat) {
  auto series = EncodeMovement({10.0, 12.0, 11.5, 11.5001, 9.0}, 0.1);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->length(), 5u);
  EXPECT_TRUE(series->at(0).Empty());
  EXPECT_TRUE(series->at(1).Test(*series->symbols().Lookup("up")));
  EXPECT_TRUE(series->at(2).Test(*series->symbols().Lookup("down")));
  EXPECT_TRUE(series->at(3).Test(*series->symbols().Lookup("flat")));
  EXPECT_TRUE(series->at(4).Test(*series->symbols().Lookup("down")));
  for (uint64_t t = 1; t < 5; ++t) EXPECT_EQ(series->at(t).Count(), 1u);
}

TEST(EncodeMovementTest, PrefixAndValidation) {
  auto series = EncodeMovement({1.0, 2.0}, 0.0, "stockA_");
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->symbols().Lookup("stockA_up").ok());
  EXPECT_FALSE(EncodeMovement({}, 0.1).ok());
  EXPECT_FALSE(EncodeMovement({1.0}, -0.1).ok());
}

TEST(EncodeMovementTest, ZeroEpsilonBoundary) {
  auto series = EncodeMovement({1.0, 1.0, 1.0 + 1e-12}, 0.0);
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->at(1).Test(*series->symbols().Lookup("flat")));
  EXPECT_TRUE(series->at(2).Test(*series->symbols().Lookup("up")));
}

TEST(DiscretizeTest, ConstantSeriesAllInOneBin) {
  DiscretizeOptions options;
  options.num_bins = 4;
  auto series = Discretize({5.0, 5.0, 5.0}, options);
  ASSERT_TRUE(series.ok());
  // Degenerate width: every value lands in the same bin (no crash).
  uint32_t first_id = series->at(0).FindFirst();
  for (uint64_t t = 1; t < series->length(); ++t) {
    EXPECT_EQ(series->at(t).FindFirst(), first_id);
  }
}

}  // namespace
}  // namespace ppm::discretize
