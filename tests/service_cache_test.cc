#include "service/pattern_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/hitset_miner.h"
#include "diff_harness.h"
#include "service/series_store.h"
#include "tsdb/series_source.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

class PatternCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/pattern_cache_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    auto store = SeriesStore::Open(root_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Wires `cache` as the store's listener (what MineService::Open does).
  void Wire(PatternCache* cache) {
    store_->SetMutationListener([cache](const SeriesStore::Mutation& m) {
      cache->OnMutation(m);
    });
  }

  static PatternCache::Request MakeRequest(const std::string& series,
                                           uint32_t period,
                                           double min_conf) {
    PatternCache::Request request;
    request.series = series;
    request.options.period = period;
    request.options.min_confidence = min_conf;
    return request;
  }

  /// Batch reference: full hit-set mine of the store's current snapshot.
  MiningResult BatchMine(const std::string& series, uint32_t period,
                         double min_conf, tsdb::SymbolTable* symbols) {
    auto snapshot = store_->Snapshot(series);
    EXPECT_TRUE(snapshot.ok());
    MiningOptions options;
    options.period = period;
    options.min_confidence = min_conf;
    tsdb::InMemorySeriesSource source(&snapshot->series);
    auto result = MineHitSet(source, options);
    EXPECT_TRUE(result.ok());
    *symbols = snapshot->series.symbols();
    return std::move(*result);
  }

  std::string root_;
  std::unique_ptr<SeriesStore> store_;
};

TEST_F(PatternCacheTest, MissHitRefreshLifecycle) {
  PatternCache cache(store_.get(), 0);
  Wire(&cache);
  const diff::DiffConfig config = diff::RandomDiffConfig(7);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(config)).ok());

  const auto request = MakeRequest("s", config.period, config.min_confidence);
  auto first = cache.Serve(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->outcome, PatternCache::Outcome::kMiss);

  auto second = cache.Serve(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->outcome, PatternCache::Outcome::kHit);
  EXPECT_EQ(second->version, first->version);
  EXPECT_EQ(diff::Serialize(second->result, second->symbols),
            diff::Serialize(first->result, first->symbols));

  // An append feeds the resident miner: the next query refreshes in O(Δ)
  // and still matches a from-scratch batch mine of the new snapshot.
  ASSERT_TRUE(store_->Append("s", {{"f0"}, {"f1", "f0"}}).ok());
  auto third = cache.Serve(request);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->outcome, PatternCache::Outcome::kRefresh);
  EXPECT_GT(third->version, first->version);

  tsdb::SymbolTable batch_symbols;
  const MiningResult batch = BatchMine("s", config.period,
                                       config.min_confidence, &batch_symbols);
  EXPECT_EQ(diff::Serialize(third->result, third->symbols),
            diff::Serialize(batch, batch_symbols));
}

TEST_F(PatternCacheTest, PutInvalidatesToMiss) {
  PatternCache cache(store_.get(), 0);
  Wire(&cache);
  const diff::DiffConfig config = diff::RandomDiffConfig(11);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(config)).ok());
  const auto request = MakeRequest("s", config.period, config.min_confidence);
  ASSERT_TRUE(cache.Serve(request).ok());

  // Replacing the series discards the resident miner outright.
  const diff::DiffConfig other = diff::RandomDiffConfig(12);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(
                                   {other.seed, config.period,
                                    other.num_features, other.num_segments,
                                    other.feature_prob,
                                    other.min_confidence})).ok());
  auto served = cache.Serve(request);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->outcome, PatternCache::Outcome::kMiss);

  tsdb::SymbolTable batch_symbols;
  const MiningResult batch = BatchMine("s", config.period,
                                       config.min_confidence, &batch_symbols);
  EXPECT_EQ(diff::Serialize(served->result, served->symbols),
            diff::Serialize(batch, batch_symbols));
}

TEST_F(PatternCacheTest, ForceRebuildBypassesMemo) {
  PatternCache cache(store_.get(), 0);
  Wire(&cache);
  const diff::DiffConfig config = diff::RandomDiffConfig(23);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(config)).ok());
  auto request = MakeRequest("s", config.period, config.min_confidence);
  ASSERT_TRUE(cache.Serve(request).ok());

  request.force_rebuild = true;  // `mine` semantics
  auto mined = cache.Serve(request);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->outcome, PatternCache::Outcome::kMiss);

  request.force_rebuild = false;  // memo was updated by the rebuild
  auto queried = cache.Serve(request);
  ASSERT_TRUE(queried.ok());
  EXPECT_EQ(queried->outcome, PatternCache::Outcome::kHit);
}

TEST_F(PatternCacheTest, DistinctParametersAreDistinctEntries) {
  PatternCache cache(store_.get(), 0);
  Wire(&cache);
  const diff::DiffConfig config = diff::RandomDiffConfig(31);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(config)).ok());
  ASSERT_TRUE(
      cache.Serve(MakeRequest("s", config.period, config.min_confidence))
          .ok());
  ASSERT_TRUE(
      cache.Serve(MakeRequest("s", config.period, config.min_confidence / 2))
          .ok());
  ASSERT_TRUE(
      cache.Serve(MakeRequest("s", config.period + 1, config.min_confidence))
          .ok());
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_GT(cache.resident_bytes(), 0u);
}

TEST_F(PatternCacheTest, BudgetEvictsLeastRecentlyUsed) {
  // A 1-byte budget cannot hold any entry: each Serve charges the entry
  // and immediately evicts, so the count stays bounded and later queries
  // still answer correctly (as misses).
  PatternCache cache(store_.get(), 1);
  Wire(&cache);
  const diff::DiffConfig config = diff::RandomDiffConfig(43);
  ASSERT_TRUE(store_->Put("s", diff::MakeRandomSeries(config)).ok());
  const auto request = MakeRequest("s", config.period, config.min_confidence);
  for (int round = 0; round < 3; ++round) {
    auto served = cache.Serve(request);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served->outcome, PatternCache::Outcome::kMiss);
  }
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST_F(PatternCacheTest, QueryAgainstMissingSeriesFails) {
  PatternCache cache(store_.get(), 0);
  Wire(&cache);
  auto served = cache.Serve(MakeRequest("ghost", 4, 0.5));
  EXPECT_EQ(served.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ppm::service
