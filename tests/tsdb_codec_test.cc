#include "tsdb/series_codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/random.h"

namespace ppm::tsdb {
namespace {

class CodecTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/ppm_codec_" + name;
  }

  TimeSeries MakeSampleSeries() {
    TimeSeries series;
    series.AppendNamed({"coffee", "newspaper"});
    series.AppendEmpty();
    series.AppendNamed({"newspaper"});
    series.AppendNamed({"coffee", "tea", "newspaper"});
    return series;
  }

  void ExpectSeriesEqual(const TimeSeries& a, const TimeSeries& b) {
    ASSERT_EQ(a.length(), b.length());
    ASSERT_EQ(a.symbols().size(), b.symbols().size());
    for (uint32_t id = 0; id < a.symbols().size(); ++id) {
      EXPECT_EQ(*a.symbols().Name(id), *b.symbols().Name(id));
    }
    for (uint64_t t = 0; t < a.length(); ++t) {
      EXPECT_EQ(a.at(t), b.at(t)) << "instant " << t;
    }
  }
};

TEST_F(CodecTest, BinaryRoundTrip) {
  const TimeSeries original = MakeSampleSeries();
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteBinarySeries(original, path).ok());
  auto loaded = ReadBinarySeries(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSeriesEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST_F(CodecTest, BinaryRoundTripEmptySeries) {
  TimeSeries empty;
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteBinarySeries(empty, path).ok());
  auto loaded = ReadBinarySeries(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->length(), 0u);
  std::remove(path.c_str());
}

TEST_F(CodecTest, BinaryRoundTripLargeRandom) {
  Rng rng(77);
  TimeSeries series;
  for (int f = 0; f < 20; ++f) {
    series.symbols().Intern("f" + std::to_string(f));
  }
  for (int t = 0; t < 5000; ++t) {
    FeatureSet instant;
    const int k = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < k; ++i) {
      instant.Set(static_cast<uint32_t>(rng.NextBelow(20)));
    }
    series.Append(std::move(instant));
  }
  const std::string path = TempPath("large.bin");
  ASSERT_TRUE(WriteBinarySeries(series, path).ok());
  auto loaded = ReadBinarySeries(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSeriesEqual(series, *loaded);
  std::remove(path.c_str());
}

TEST_F(CodecTest, ReadMissingFileFails) {
  auto loaded = ReadBinarySeries("/nonexistent/dir/file.bin");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CodecTest, ReadBadMagicFails) {
  const std::string path = TempPath("badmagic.bin");
  std::ofstream(path) << "NOTAPPM_anything";
  auto loaded = ReadBinarySeries(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CodecTest, ReadTruncatedFails) {
  const TimeSeries original = MakeSampleSeries();
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteBinarySeries(original, path).ok());
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 5));
  out.close();
  auto loaded = ReadBinarySeries(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CodecTest, TextRoundTrip) {
  const TimeSeries original = MakeSampleSeries();
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteTextSeries(original, path).ok());
  auto loaded = ReadTextSeries(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Text reload re-interns in first-seen order; compare by names per instant.
  ASSERT_EQ(original.length(), loaded->length());
  for (uint64_t t = 0; t < original.length(); ++t) {
    std::vector<std::string> expected, actual;
    original.at(t).ForEach([&](uint32_t id) {
      expected.push_back(original.symbols().NameOrPlaceholder(id));
    });
    loaded->at(t).ForEach([&](uint32_t id) {
      actual.push_back(loaded->symbols().NameOrPlaceholder(id));
    });
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(expected, actual) << "instant " << t;
  }
  std::remove(path.c_str());
}

TEST_F(CodecTest, TextReaderSkipsComments) {
  const std::string path = TempPath("comments.txt");
  std::ofstream(path) << "# header comment\na b\n\nb\n";
  auto loaded = ReadTextSeries(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->length(), 3u);  // Comment line dropped, empty kept.
  EXPECT_EQ(loaded->at(0).Count(), 2u);
  EXPECT_TRUE(loaded->at(1).Empty());
  std::remove(path.c_str());
}

TEST_F(CodecTest, TextWriterRejectsUnsafeNames) {
  TimeSeries series;
  series.AppendNamed({"has space"});
  // AppendNamed splits nothing -- the name literally contains a space, which
  // the text format cannot represent.
  const std::string path = TempPath("unsafe.txt");
  EXPECT_EQ(WriteTextSeries(series, path).code(), StatusCode::kInvalidArgument);

  TimeSeries hash_series;
  hash_series.AppendNamed({"#tag"});
  EXPECT_EQ(WriteTextSeries(hash_series, path).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppm::tsdb
