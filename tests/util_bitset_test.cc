#include "util/bitset.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/random.h"

namespace ppm {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset bits;
  EXPECT_TRUE(bits.Empty());
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1000));
  EXPECT_EQ(bits.FindFirst(), Bitset::kNoBit);
}

TEST(BitsetTest, SetTestClear) {
  Bitset bits;
  bits.Set(3);
  bits.Set(64);   // Crosses a word boundary.
  bits.Set(191);  // Third word.
  EXPECT_TRUE(bits.Test(3));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(191));
  EXPECT_FALSE(bits.Test(4));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
  bits.Clear(9999);  // Beyond capacity: no-op.
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, PresizedConstructor) {
  Bitset bits(130);
  EXPECT_TRUE(bits.Empty());
  bits.Set(129);
  EXPECT_TRUE(bits.Test(129));
}

TEST(BitsetTest, EqualityIgnoresCapacity) {
  Bitset a;
  a.Set(5);
  Bitset b(1024);
  b.Set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(500);
  EXPECT_NE(a, b);
  b.Clear(500);
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, SubsetAndIntersects) {
  Bitset a, b;
  a.Set(1);
  a.Set(70);
  b.Set(1);
  b.Set(70);
  b.Set(130);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));

  Bitset c;
  c.Set(2);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(b) == false);

  Bitset empty;
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BitsetTest, SetOperations) {
  Bitset a, b;
  a.Set(0);
  a.Set(65);
  b.Set(65);
  b.Set(200);

  Bitset u = a;
  u.UnionWith(b);
  EXPECT_TRUE(u.Test(0));
  EXPECT_TRUE(u.Test(65));
  EXPECT_TRUE(u.Test(200));
  EXPECT_EQ(u.Count(), 3u);

  Bitset i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(65));

  Bitset d = a;
  d.SubtractWith(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(0));
}

TEST(BitsetTest, FindNextAndForEachAscending) {
  Bitset bits;
  const std::vector<uint32_t> expected = {0, 63, 64, 127, 128, 300};
  for (uint32_t bit : expected) bits.Set(bit);

  std::vector<uint32_t> via_find;
  for (uint32_t bit = bits.FindFirst(); bit != Bitset::kNoBit;
       bit = bits.FindNext(bit + 1)) {
    via_find.push_back(bit);
  }
  EXPECT_EQ(via_find, expected);
  EXPECT_EQ(bits.ToVector(), expected);
}

TEST(BitsetTest, ResetClearsEverything) {
  Bitset bits;
  bits.Set(10);
  bits.Set(100);
  bits.Reset();
  EXPECT_TRUE(bits.Empty());
  EXPECT_EQ(bits, Bitset());
}

TEST(BitsetTest, OrderingIsTotalAndConsistent) {
  Bitset a, b, c;
  a.Set(1);
  b.Set(2);
  c.Set(1);
  c.Set(2);
  EXPECT_TRUE(a < b);   // {1} < {2} numerically.
  EXPECT_TRUE(b < c);   // {2} < {1,2}.
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(a < a);
  // Capacity must not affect ordering.
  Bitset wide(512);
  wide.Set(1);
  EXPECT_FALSE(a < wide);
  EXPECT_FALSE(wide < a);
}

TEST(BitsetTest, WorksAsUnorderedKey) {
  std::unordered_set<Bitset, BitsetHash> set;
  Bitset a;
  a.Set(7);
  set.insert(a);
  Bitset b(256);
  b.Set(7);
  EXPECT_EQ(set.count(b), 1u);
}

// Randomized differential test against std::set<uint32_t>.
TEST(BitsetPropertyTest, MatchesReferenceSemantics) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    Bitset bits;
    std::set<uint32_t> reference;
    for (int op = 0; op < 200; ++op) {
      const uint32_t index = static_cast<uint32_t>(rng.NextBelow(300));
      if (rng.NextBool(0.6)) {
        bits.Set(index);
        reference.insert(index);
      } else {
        bits.Clear(index);
        reference.erase(index);
      }
    }
    EXPECT_EQ(bits.Count(), reference.size());
    EXPECT_EQ(bits.ToVector(),
              std::vector<uint32_t>(reference.begin(), reference.end()));
    for (uint32_t probe = 0; probe < 300; ++probe) {
      EXPECT_EQ(bits.Test(probe), reference.count(probe) > 0);
    }
  }
}

TEST(BitsetPropertyTest, SubsetMatchesReference) {
  Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    Bitset a, b;
    std::set<uint32_t> ra, rb;
    for (int i = 0; i < 30; ++i) {
      const uint32_t bit = static_cast<uint32_t>(rng.NextBelow(100));
      if (rng.NextBool(0.5)) {
        a.Set(bit);
        ra.insert(bit);
      }
      if (rng.NextBool(0.5)) {
        b.Set(bit);
        rb.insert(bit);
      }
    }
    const bool ref_subset =
        std::includes(rb.begin(), rb.end(), ra.begin(), ra.end());
    EXPECT_EQ(a.IsSubsetOf(b), ref_subset);
  }
}

}  // namespace
}  // namespace ppm
