#include "service/series_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tsdb/time_series.h"

namespace ppm::service {
namespace {

namespace fs = std::filesystem;

tsdb::TimeSeries MakeSeries(std::initializer_list<const char*> instants) {
  tsdb::TimeSeries series;
  for (const char* features : instants) {
    tsdb::FeatureSet instant;
    std::string token;
    for (const char* p = features;; ++p) {
      if (*p == ' ' || *p == '\0') {
        if (!token.empty()) instant.Set(series.symbols().Intern(token));
        token.clear();
        if (*p == '\0') break;
      } else {
        token.push_back(*p);
      }
    }
    series.Append(std::move(instant));
  }
  return series;
}

class SeriesStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/series_store_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_F(SeriesStoreTest, PutSnapshotRoundTrip) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const tsdb::TimeSeries series = MakeSeries({"a b", "c", "a"});
  ASSERT_TRUE((*store)->Put("s", series).ok());

  auto snapshot = (*store)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->series.length(), 3u);
  EXPECT_EQ(snapshot->series.symbols().size(), 3u);
  EXPECT_GE(snapshot->version, 1u);

  EXPECT_TRUE((*store)->Contains("s"));
  EXPECT_FALSE((*store)->Contains("missing"));
  EXPECT_EQ((*store)->List(), std::vector<std::string>{"s"});
  EXPECT_EQ((*store)->Snapshot("missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SeriesStoreTest, AppendBumpsVersionAndIsDurable) {
  {
    auto store = SeriesStore::Open(root_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("s", MakeSeries({"a", "b"})).ok());
    auto before = (*store)->VersionAndLength("s");
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE((*store)->Append("s", {{"a"}, {"b", "a"}}).ok());
    auto after = (*store)->VersionAndLength("s");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->first, before->first + 1);  // version
    EXPECT_EQ(after->second, 4u);                // length
  }
  // A fresh process sees the appended tail: payload + WAL replay.
  auto reopened = SeriesStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = (*reopened)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->series.length(), 4u);
  EXPECT_EQ(snapshot->series.at(3).Count(), 2u);
}

TEST_F(SeriesStoreTest, AppendWithNewFeatureNamesInterns) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a"})).ok());
  // "z" is new: the store must compact so the payload's symbol table
  // covers it, then append through the fresh WAL.
  ASSERT_TRUE((*store)->Append("s", {{"z", "a"}}).ok());

  auto reopened = SeriesStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = (*reopened)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->series.length(), 2u);
  const auto names = snapshot->series.symbols().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "z");
  EXPECT_EQ(snapshot->series.at(1).Count(), 2u);
}

TEST_F(SeriesStoreTest, AppendToMissingSeriesIsNotFound) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Append("ghost", {{"a"}}).code(), StatusCode::kNotFound);
}

TEST_F(SeriesStoreTest, DropRemovesPayloadAndWal) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a"})).ok());
  ASSERT_TRUE((*store)->Append("s", {{"a"}}).ok());
  ASSERT_TRUE((*store)->Drop("s").ok());
  EXPECT_FALSE((*store)->Contains("s"));
  EXPECT_EQ((*store)->Snapshot("s").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->Drop("s").code(), StatusCode::kNotFound);
  // Re-putting under the dropped name starts a fresh series, not the tail.
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"b", "b"})).ok());
  auto snapshot = (*store)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->series.length(), 2u);
}

TEST_F(SeriesStoreTest, PutReplacesAndDiscardsTail) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a"})).ok());
  ASSERT_TRUE((*store)->Append("s", {{"a"}, {"a"}}).ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"b"})).ok());

  auto reopened = SeriesStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = (*reopened)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->series.length(), 1u);
}

TEST_F(SeriesStoreTest, CompactKeepsContentsAndSurvivesReopen) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a"})).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Append("s", {{"a"}}).ok());
  }
  ASSERT_TRUE((*store)->Compact("s").ok());
  ASSERT_TRUE((*store)->Append("s", {{"a"}}).ok());

  auto reopened = SeriesStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = (*reopened)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->series.length(), 7u);
}

TEST_F(SeriesStoreTest, MutationListenerSeesDeltas) {
  auto store = SeriesStore::Open(root_);
  ASSERT_TRUE(store.ok());
  std::vector<SeriesStore::Mutation::Kind> kinds;
  uint64_t last_length = 0;
  size_t delta_instants = 0;
  (*store)->SetMutationListener([&](const SeriesStore::Mutation& m) {
    kinds.push_back(m.kind);
    last_length = m.length;
    if (m.delta != nullptr) delta_instants += m.delta->size();
  });
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a"})).ok());
  ASSERT_TRUE((*store)->Append("s", {{"a"}, {"a"}}).ok());
  ASSERT_TRUE((*store)->Drop("s").ok());
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], SeriesStore::Mutation::Kind::kPut);
  EXPECT_EQ(kinds[1], SeriesStore::Mutation::Kind::kAppend);
  EXPECT_EQ(kinds[2], SeriesStore::Mutation::Kind::kDrop);
  EXPECT_EQ(delta_instants, 2u);
  EXPECT_EQ(last_length, 0u);  // after the drop
}

TEST_F(SeriesStoreTest, StaleTailWalFromOldPayloadIsIgnored) {
  // Simulate a WAL left behind by an older payload generation: its
  // sequence numbers start past the payload's length, so replay must skip
  // it rather than append wrong instants.
  {
    auto store = SeriesStore::Open(root_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("s", MakeSeries({"a", "a", "a"})).ok());
    ASSERT_TRUE((*store)->Append("s", {{"a"}}).ok());  // WAL seq 3
  }
  {
    // Shrink the payload out from under the WAL (crash between the
    // payload rewrite of a Put and the WAL reset, reordered by the FS).
    auto store = SeriesStore::Open(root_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("s", MakeSeries({"b"})).ok());
  }
  auto reopened = SeriesStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = (*reopened)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->series.length(), 1u);
}

TEST_F(SeriesStoreTest, RetentionCapTruncatesOldestOnAppend) {
  SeriesStore::Options options;
  options.max_instants_per_series = 4;
  auto store = SeriesStore::Open(root_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a", "b", "c"})).ok());
  ASSERT_TRUE((*store)->Append("s", {{"d"}, {"e"}, {"f"}}).ok());

  auto snapshot = (*store)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->series.length(), 4u);
  // The two oldest instants ("a", "b") are gone; the survivors keep their
  // feature ids ("c" interned first, so its id is stable).
  const auto c_id = snapshot->series.symbols().Lookup("c");
  ASSERT_TRUE(c_id.ok());
  EXPECT_TRUE(snapshot->series.at(0).Test(*c_id));

  // The truncated payload is the durable baseline: a fresh process must
  // see the same four instants, not a replay of the pre-truncation tail.
  auto reopened = SeriesStore::Open(root_, options);
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->Snapshot("s");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->series.length(), 4u);
  EXPECT_TRUE(recovered->series.at(0).Test(*c_id));
}

TEST_F(SeriesStoreTest, RetentionCapClampsOversizedPut) {
  SeriesStore::Options options;
  options.max_instants_per_series = 2;
  auto store = SeriesStore::Open(root_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a", "b", "c", "d", "e"})).ok());

  auto snapshot = (*store)->Snapshot("s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->series.length(), 2u);
  const auto d_id = snapshot->series.symbols().Lookup("d");
  const auto e_id = snapshot->series.symbols().Lookup("e");
  ASSERT_TRUE(d_id.ok());
  ASSERT_TRUE(e_id.ok());
  EXPECT_TRUE(snapshot->series.at(0).Test(*d_id));
  EXPECT_TRUE(snapshot->series.at(1).Test(*e_id));
}

TEST_F(SeriesStoreTest, RetentionTruncationBumpsVersionAndNotifies) {
  SeriesStore::Options options;
  options.max_instants_per_series = 3;
  auto store = SeriesStore::Open(root_, options);
  ASSERT_TRUE(store.ok());
  std::vector<SeriesStore::Mutation::Kind> kinds;
  std::vector<uint64_t> versions;
  (*store)->SetMutationListener([&](const SeriesStore::Mutation& m) {
    kinds.push_back(m.kind);
    versions.push_back(m.version);
  });
  ASSERT_TRUE((*store)->Put("s", MakeSeries({"a", "b"})).ok());
  ASSERT_TRUE((*store)->Append("s", {{"c"}, {"d"}}).ok());

  // The overflowing append notifies twice -- the append itself, then the
  // truncation -- each with its own version, so a cached (version, length)
  // claim can never describe the pre-truncation contents.
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], SeriesStore::Mutation::Kind::kPut);
  EXPECT_EQ(kinds[1], SeriesStore::Mutation::Kind::kAppend);
  EXPECT_EQ(kinds[2], SeriesStore::Mutation::Kind::kTruncate);
  EXPECT_LT(versions[1], versions[2]);

  auto version_length = (*store)->VersionAndLength("s");
  ASSERT_TRUE(version_length.ok());
  EXPECT_EQ(version_length->first, versions[2]);
  EXPECT_EQ(version_length->second, 3u);
}

TEST_F(SeriesStoreTest, LoadSeriesFileRejectsEmptyPath) {
  EXPECT_EQ(LoadSeriesFile("").status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppm::service
