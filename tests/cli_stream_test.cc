// `ppm stream` end to end through RunCli: fresh runs, checkpointed resume,
// flag validation, the exit-code map for aborted runs (corruption -> 4,
// deadline -> 5), and the structured stderr line.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "stream/checkpoint.h"
#include "util/random.h"

namespace ppm::cli {
namespace {

namespace fs = std::filesystem;

class CliStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/cli_stream_test";
    fs::remove_all(root_);
    fs::create_directories(root_);
    series_txt_ = root_ + "/stream_series.txt";
    ckpt_dir_ = root_ + "/ckpt";

    // A period-4 stream with two planted letters plus noise, long enough
    // that resume happens mid-stream with several checkpoints behind it.
    Rng rng(17);
    std::ofstream out(series_txt_);
    for (int t = 0; t < 1200; ++t) {
      if (t % 4 == 0 && rng.NextBool(0.9)) out << "a";
      if (t % 4 == 1 && rng.NextBool(0.85)) out << "b";
      out << "\n";
    }
  }
  void TearDown() override { fs::remove_all(root_); }

  int Run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::vector<std::string> StreamArgs(
      const std::vector<std::string>& extra = {}) {
    std::vector<std::string> args = {
        "stream",       "--input",          series_txt_,
        "--period",     "4",                "--min-conf",
        "0.7",          "--checkpoint-dir", ckpt_dir_,
        "--wal-fsync",  "never",            "--checkpoint-every",
        "8"};
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  }

  std::string root_;
  std::string series_txt_;
  std::string ckpt_dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliStreamTest, FreshRunStreamsAndCheckpoints) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("streamed 1200 instants"), std::string::npos) << text;
  EXPECT_NE(text.find("m=300"), std::string::npos) << text;
  EXPECT_NE(text.find("a * * *"), std::string::npos) << text;
  EXPECT_TRUE(fs::exists(stream::CheckpointPath(ckpt_dir_)));
  EXPECT_TRUE(fs::exists(stream::WalPath(ckpt_dir_)));
}

TEST_F(CliStreamTest, ResumeReproducesTheUninterruptedRun) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  const std::string reference = out_.str();

  // Second run over the same stream resumes at the end: no new instants,
  // same patterns.
  ASSERT_EQ(Run(StreamArgs({"--resume"})), 0) << err_.str();
  const std::string resumed = out_.str();
  EXPECT_NE(resumed.find("streamed 1200 instants (resumed)"),
            std::string::npos)
      << resumed;
  // The pattern lines must match the reference byte for byte.
  const auto patterns_of = [](const std::string& text) {
    std::istringstream in(text);
    std::string line, patterns;
    while (std::getline(in, line)) {
      if (line.rfind("  count=", 0) == 0) patterns += line + "\n";
    }
    return patterns;
  };
  EXPECT_EQ(patterns_of(resumed), patterns_of(reference));
}

TEST_F(CliStreamTest, FreshRunIntoPopulatedDirNeedsResume) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  EXPECT_EQ(Run(StreamArgs()), 2);
  EXPECT_NE(err_.str().find("--resume"), std::string::npos) << err_.str();
}

TEST_F(CliStreamTest, MissingCheckpointDirIsInvalid) {
  EXPECT_EQ(Run({"stream", "--input", series_txt_, "--period", "4"}), 2);
  EXPECT_NE(err_.str().find("--checkpoint-dir"), std::string::npos);
}

TEST_F(CliStreamTest, BadWalFsyncModeIsInvalid) {
  EXPECT_EQ(Run({"stream", "--input", series_txt_, "--period", "4",
                 "--checkpoint-dir", ckpt_dir_, "--wal-fsync", "sometimes"}),
            2);
  EXPECT_NE(err_.str().find("--wal-fsync"), std::string::npos);
}

TEST_F(CliStreamTest, ResumePeriodMismatchIsInvalid) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  EXPECT_EQ(Run({"stream", "--input", series_txt_, "--period", "6",
                 "--checkpoint-dir", ckpt_dir_, "--resume"}),
            2);
  EXPECT_NE(err_.str().find("disagrees with the checkpoint"),
            std::string::npos)
      << err_.str();
}

TEST_F(CliStreamTest, CorruptCheckpointExitsFourWithStructuredError) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  // Flip one byte in the checkpoint body.
  const std::string path = stream::CheckpointPath(ckpt_dir_);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(30);
  file.put(static_cast<char>(0xff));
  file.close();

  EXPECT_EQ(Run(StreamArgs({"--resume"})), 4);
  const std::string err = err_.str();
  EXPECT_NE(err.find("[code=6 exit=4]"), std::string::npos) << err;
}

TEST_F(CliStreamTest, ExpiredDeadlineExitsFive) {
  EXPECT_EQ(Run(StreamArgs({"--deadline-ms", "0"})), 5);
  EXPECT_NE(err_.str().find("exit=5"), std::string::npos) << err_.str();
}

TEST_F(CliStreamTest, FailedRunStillWritesStatsJson) {
  const std::string stats = root_ + "/fail_stats.json";
  EXPECT_EQ(Run(StreamArgs({"--deadline-ms", "0", "--stats-json", stats})),
            5);
  std::ifstream in(stats);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"error\""), std::string::npos);
}

TEST_F(CliStreamTest, StatsJsonReportsRecovery) {
  ASSERT_EQ(Run(StreamArgs()), 0) << err_.str();
  const std::string stats = root_ + "/stream_stats.json";
  ASSERT_EQ(Run(StreamArgs({"--resume", "--stats-json", stats})), 0)
      << err_.str();
  std::ifstream in(stats);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"resumed\":\"true\""), std::string::npos) << json;
  EXPECT_NE(json.find("recovery.wal_records_replayed"), std::string::npos)
      << json;
  EXPECT_NE(json.find("ppm.stream.checkpoint.writes"), std::string::npos)
      << json;
}

TEST_F(CliStreamTest, UnknownFlagRejected) {
  EXPECT_EQ(Run(StreamArgs({"--frobnicate", "1"})), 2);
}

}  // namespace
}  // namespace ppm::cli
