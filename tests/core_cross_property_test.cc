// Cross-algorithm property tests: on randomized inputs, every miner in the
// library must produce the identical frequent pattern set, and the sets must
// satisfy the structural properties the paper proves (Apriori closure,
// hit-set bound, max-pattern containment).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/maximal.h"
#include "core/miner.h"
#include "core/naive_miner.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm {
namespace {

using tsdb::InMemorySeriesSource;
using tsdb::TimeSeries;

struct RandomConfig {
  uint64_t seed;
  uint32_t period;
  uint32_t num_features;
  uint32_t num_segments;
  double feature_prob;
  double min_confidence;
};

std::string ConfigName(const ::testing::TestParamInfo<RandomConfig>& info) {
  const RandomConfig& c = info.param;
  return "seed" + std::to_string(c.seed) + "_p" + std::to_string(c.period) +
         "_f" + std::to_string(c.num_features) + "_m" +
         std::to_string(c.num_segments) + "_c" +
         std::to_string(static_cast<int>(c.min_confidence * 100));
}

/// Random series with correlated features: feature f fires at position
/// (f % period) with elevated probability so non-trivial patterns emerge.
TimeSeries MakeRandomSeries(const RandomConfig& config) {
  Rng rng(config.seed);
  TimeSeries series;
  for (uint32_t f = 0; f < config.num_features; ++f) {
    series.symbols().Intern("f" + std::to_string(f));
  }
  const uint64_t length =
      uint64_t{config.num_segments} * config.period + config.period / 2;
  for (uint64_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    for (uint32_t f = 0; f < config.num_features; ++f) {
      const bool aligned = (t % config.period) == (f % config.period);
      const double p = aligned ? config.feature_prob : config.feature_prob / 4;
      if (rng.NextBool(p)) instant.Set(f);
    }
    series.Append(std::move(instant));
  }
  return series;
}

std::map<std::string, uint64_t> AsCountMap(const MiningResult& result,
                                           const tsdb::SymbolTable& symbols) {
  std::map<std::string, uint64_t> out;
  for (const FrequentPattern& entry : result.patterns()) {
    out[entry.pattern.Format(symbols)] = entry.count;
  }
  return out;
}

class CrossAlgorithmTest : public ::testing::TestWithParam<RandomConfig> {};

TEST_P(CrossAlgorithmTest, AllMinersAgreeWithExhaustiveOracle) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;

  InMemorySeriesSource s1(&series), s2(&series), s3(&series), s4(&series),
      s5(&series);
  auto exhaustive = MineExhaustive(s1, options, /*max_total_letters=*/22);
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
  auto apriori = MineApriori(s2, options);
  ASSERT_TRUE(apriori.ok()) << apriori.status();
  auto hitset_tree = MineHitSet(s3, options);
  ASSERT_TRUE(hitset_tree.ok()) << hitset_tree.status();
  MiningOptions hash_options = options;
  hash_options.hit_store = HitStoreKind::kHashTable;
  auto hitset_hash = MineHitSet(s4, hash_options);
  ASSERT_TRUE(hitset_hash.ok()) << hitset_hash.status();
  auto naive = MineNaiveLevelwise(s5, options);
  ASSERT_TRUE(naive.ok()) << naive.status();

  const auto& symbols = series.symbols();
  const auto oracle_map = AsCountMap(*exhaustive, symbols);
  EXPECT_EQ(AsCountMap(*apriori, symbols), oracle_map);
  EXPECT_EQ(AsCountMap(*hitset_tree, symbols), oracle_map);
  EXPECT_EQ(AsCountMap(*hitset_hash, symbols), oracle_map);
  EXPECT_EQ(AsCountMap(*naive, symbols), oracle_map);
}

TEST_P(CrossAlgorithmTest, AprioriClosureHolds) {
  // Property 3.1: every subpattern of a frequent pattern (with >= 1 letter)
  // is frequent, with count >= the superpattern's count.
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());

  for (const FrequentPattern& entry : result->patterns()) {
    // Drop each letter in turn; the remaining pattern must be present.
    for (uint32_t position = 0; position < entry.pattern.period(); ++position) {
      entry.pattern.at(position).ForEach([&](uint32_t feature) {
        Pattern sub = entry.pattern;
        sub.RemoveLetter(position, feature);
        if (sub.IsEmpty()) return;
        const FrequentPattern* found = result->Find(sub);
        ASSERT_NE(found, nullptr)
            << "missing subpattern of " << entry.pattern.Format(series.symbols());
        EXPECT_GE(found->count, entry.count);
      });
    }
  }
}

TEST_P(CrossAlgorithmTest, HitSetBoundHolds) {
  // Property 3.2: |H| <= min(m, 2^n_d - n_d - 1).
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;
  InMemorySeriesSource source(&series);
  auto result = MineHitSet(source, options);
  ASSERT_TRUE(result.ok());

  const uint64_t m = result->stats().num_periods;
  const uint64_t n_d = result->stats().num_f1_letters;
  uint64_t subset_bound = UINT64_MAX;
  if (n_d < 63) {
    const uint64_t total = uint64_t{1} << n_d;
    subset_bound = total >= n_d + 1 ? total - n_d - 1 : 0;
  }
  EXPECT_LE(result->stats().hit_store_entries, std::min(m, subset_bound));
}

TEST_P(CrossAlgorithmTest, EveryFrequentPatternIsUnderCmax) {
  // Every mined pattern must be a subpattern of the candidate max-pattern
  // (which is itself the union of the frequent 1-patterns).
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());

  Pattern cmax(options.period);
  for (const FrequentPattern& entry : result->patterns()) {
    if (entry.pattern.LetterCount() == 1) cmax = cmax.UnionWith(entry.pattern);
  }
  for (const FrequentPattern& entry : result->patterns()) {
    EXPECT_TRUE(entry.pattern.IsSubpatternOf(cmax));
  }
}

TEST_P(CrossAlgorithmTest, MaximalPatternsCoverFrequentSet) {
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());

  const auto maximal = MaximalPatterns(*result);
  // No maximal pattern is a proper subpattern of another maximal one.
  for (const FrequentPattern& entry : maximal) {
    EXPECT_FALSE(HasProperSuperpattern(entry.pattern, maximal));
  }
  // Every frequent pattern is a subpattern of some maximal pattern.
  for (const FrequentPattern& entry : result->patterns()) {
    bool covered = false;
    for (const FrequentPattern& top : maximal) {
      if (entry.pattern.IsSubpatternOf(top.pattern)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST_P(CrossAlgorithmTest, CountsMatchDirectSegmentCounting) {
  // Recount every mined pattern straight from the definition.
  const TimeSeries series = MakeRandomSeries(GetParam());
  MiningOptions options;
  options.period = GetParam().period;
  options.min_confidence = GetParam().min_confidence;
  auto result = Mine(series, options);
  ASSERT_TRUE(result.ok());

  const uint64_t m = series.length() / options.period;
  for (const FrequentPattern& entry : result->patterns()) {
    uint64_t count = 0;
    for (uint64_t segment = 0; segment < m; ++segment) {
      if (entry.pattern.MatchesSegment(series, segment * options.period)) {
        ++count;
      }
    }
    EXPECT_EQ(count, entry.count)
        << entry.pattern.Format(series.symbols());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CrossAlgorithmTest,
    ::testing::Values(
        RandomConfig{1, 3, 4, 30, 0.7, 0.5}, RandomConfig{2, 4, 4, 40, 0.8, 0.5},
        RandomConfig{3, 5, 3, 25, 0.9, 0.6}, RandomConfig{4, 2, 6, 50, 0.6, 0.4},
        RandomConfig{5, 6, 3, 20, 0.8, 0.7}, RandomConfig{6, 3, 5, 35, 0.5, 0.3},
        RandomConfig{7, 4, 5, 60, 0.75, 0.5}, RandomConfig{8, 7, 2, 30, 0.9, 0.8},
        RandomConfig{9, 5, 4, 45, 0.65, 0.45}, RandomConfig{10, 8, 2, 24, 0.85, 0.6},
        RandomConfig{11, 2, 8, 64, 0.55, 0.35}, RandomConfig{12, 10, 2, 18, 0.9, 0.7}),
    ConfigName);

}  // namespace
}  // namespace ppm
