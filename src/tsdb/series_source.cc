#include "tsdb/series_source.h"

#include <utility>

#include "tsdb/binary_format.h"
#include "util/check.h"

namespace ppm::tsdb {

namespace {
using internal::kMagic;
using internal::kMaxSymbolNameBytes;
using internal::ReadU32;
using internal::ReadU64;
}  // namespace

SeriesSource::SeriesSource()
    : scans_counter_(obs::MetricsRegistry::Global().GetCounter("ppm.source.scans")),
      instants_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.source.instants_read")),
      bytes_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.source.bytes_read")) {}

InMemorySeriesSource::InMemorySeriesSource(const TimeSeries* series)
    : series_(series) {
  PPM_CHECK(series != nullptr);
}

Status InMemorySeriesSource::StartScan() {
  position_ = 0;
  ++stats_.scans;
  scans_counter_.Inc();
  return Status::OK();
}

bool InMemorySeriesSource::Next(FeatureSet* out) {
  if (position_ >= series_->length()) return false;
  *out = series_->at(position_++);
  ++stats_.instants_read;
  instants_counter_.Inc();
  return true;
}

uint64_t InMemorySeriesSource::length() const { return series_->length(); }

const SymbolTable& InMemorySeriesSource::symbols() const {
  return series_->symbols();
}

Result<std::unique_ptr<FileSeriesSource>> FileSeriesSource::Open(
    const std::string& path) {
  std::unique_ptr<FileSeriesSource> source(new FileSeriesSource());
  source->path_ = path;
  source->file_.open(path, std::ios::binary);
  if (!source->file_) return Status::IoError("cannot open: " + path);

  char magic[sizeof(kMagic)];
  if (!source->file_.read(magic, sizeof(magic))) {
    return Status::Corruption("bad magic in " + path);
  }
  const std::string_view magic_view(magic, sizeof(magic));
  if (magic_view == std::string_view(kMagic, sizeof(kMagic))) {
    source->fixed_width_ = true;
  } else if (magic_view ==
             std::string_view(internal::kMagicV2, sizeof(internal::kMagicV2))) {
    source->fixed_width_ = false;
  } else {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t num_symbols = 0;
  if (!ReadU32(source->file_, &num_symbols)) {
    return Status::Corruption("truncated header in " + path);
  }
  for (uint32_t i = 0; i < num_symbols; ++i) {
    uint32_t len = 0;
    if (!ReadU32(source->file_, &len)) {
      return Status::Corruption("truncated symbol table in " + path);
    }
    // Cap before allocating: a corrupt length must not trigger a
    // multi-gigabyte allocation.
    if (len > kMaxSymbolNameBytes) {
      return Status::Corruption("implausible symbol name length in " + path);
    }
    std::string name(len, '\0');
    if (!source->file_.read(name.data(), len)) {
      return Status::Corruption("truncated symbol name in " + path);
    }
    source->symbols_.Intern(name);
  }
  if (!ReadU64(source->file_, &source->num_instants_)) {
    return Status::Corruption("truncated length in " + path);
  }
  source->data_offset_ = source->file_.tellg();
  return source;
}

Status FileSeriesSource::StartScan() {
  status_ = Status::OK();
  delivered_ = 0;
  file_.clear();
  file_.seekg(data_offset_);
  if (!file_) {
    status_ = Status::IoError("seek failed: " + path_);
    return status_;
  }
  ++stats_.scans;
  scans_counter_.Inc();
  return Status::OK();
}

bool FileSeriesSource::Next(FeatureSet* out) {
  if (!status_.ok()) return false;
  if (delivered_ >= num_instants_) return false;

  uint32_t count = 0;
  int count_bytes = 4;
  const bool count_ok = fixed_width_
                            ? ReadU32(file_, &count)
                            : internal::ReadVarint32(file_, &count,
                                                     &count_bytes);
  if (!count_ok) {
    status_ = Status::Corruption("truncated instant in " + path_);
    return false;
  }
  // An instant holds distinct feature ids, so its count can never exceed
  // the symbol table; a larger value is corruption and must fail fast
  // rather than grinding through billions of bogus reads.
  if (count > symbols_.size()) {
    status_ = Status::Corruption("instant feature count " +
                                 std::to_string(count) + " exceeds symbol "
                                 "table in " + path_);
    return false;
  }
  out->Reset();
  uint64_t data_bytes = 0;
  uint32_t previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t value = 0;
    int value_bytes = 4;
    const bool value_ok = fixed_width_
                              ? ReadU32(file_, &value)
                              : internal::ReadVarint32(file_, &value,
                                                       &value_bytes);
    if (!value_ok) {
      status_ = Status::Corruption("truncated feature id in " + path_);
      return false;
    }
    const uint32_t id = fixed_width_ || i == 0 ? value : previous + value;
    if (id >= symbols_.size()) {
      status_ = Status::Corruption("feature id out of range in " + path_);
      return false;
    }
    out->Set(id);
    previous = id;
    data_bytes += static_cast<uint64_t>(value_bytes);
  }
  ++delivered_;
  ++stats_.instants_read;
  stats_.bytes_read += static_cast<uint64_t>(count_bytes) + data_bytes;
  instants_counter_.Inc();
  bytes_counter_.Inc(static_cast<uint64_t>(count_bytes) + data_bytes);
  return true;
}

}  // namespace ppm::tsdb
