#include "tsdb/series_source.h"

#include <sstream>
#include <utility>

#include "tsdb/binary_format.h"
#include "tsdb/fault_injection.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace ppm::tsdb {

namespace {
using internal::kMagic;
using internal::kMaxSymbolNameBytes;
using internal::ReadU32;
using internal::ReadU64;

/// Reads the symbol table + instant count fields from `in` (the layout
/// shared by every version) into `*symbols` / `*num_instants`.
Status ReadHeaderFields(std::istream& in, const std::string& path,
                        SymbolTable* symbols, uint64_t* num_instants) {
  uint32_t num_symbols = 0;
  if (!ReadU32(in, &num_symbols)) {
    return Status::Corruption("truncated header in " + path);
  }
  for (uint32_t i = 0; i < num_symbols; ++i) {
    uint32_t len = 0;
    if (!ReadU32(in, &len)) {
      return Status::Corruption("truncated symbol table in " + path);
    }
    // Cap before allocating: a corrupt length must not trigger a
    // multi-gigabyte allocation.
    if (len > kMaxSymbolNameBytes) {
      return Status::Corruption("implausible symbol name length in " + path);
    }
    std::string name(len, '\0');
    if (!in.read(name.data(), len)) {
      return Status::Corruption("truncated symbol name in " + path);
    }
    symbols->Intern(name);
  }
  if (!ReadU64(in, num_instants)) {
    return Status::Corruption("truncated length in " + path);
  }
  return Status::OK();
}
}  // namespace

SeriesSource::SeriesSource()
    : scans_counter_(obs::MetricsRegistry::Global().GetCounter("ppm.source.scans")),
      instants_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.source.instants_read")),
      bytes_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.source.bytes_read")) {}

InMemorySeriesSource::InMemorySeriesSource(const TimeSeries* series)
    : series_(series) {
  PPM_CHECK(series != nullptr);
}

Status InMemorySeriesSource::StartScan() {
  position_ = 0;
  ++stats_.scans;
  scans_counter_.Inc();
  return Status::OK();
}

bool InMemorySeriesSource::Next(FeatureSet* out) {
  if (position_ >= series_->length()) return false;
  *out = series_->at(position_++);
  ++stats_.instants_read;
  instants_counter_.Inc();
  return true;
}

uint64_t InMemorySeriesSource::length() const { return series_->length(); }

const SymbolTable& InMemorySeriesSource::symbols() const {
  return series_->symbols();
}

Result<std::unique_ptr<FileSeriesSource>> FileSeriesSource::Open(
    const std::string& path) {
  if (FaultInjector::Global().ConsumeTransientReadFailure()) {
    return Status::IoError("injected transient read failure: " + path);
  }
  std::unique_ptr<FileSeriesSource> source(new FileSeriesSource());
  source->path_ = path;
  source->file_.open(path, std::ios::binary);
  if (!source->file_) return Status::IoError("cannot open: " + path);
  source->fault_buf_ = FaultInjector::Global().MaybeWrap(source->file_.rdbuf());
  source->stream_.rdbuf(source->fault_buf_ != nullptr
                            ? source->fault_buf_.get()
                            : source->file_.rdbuf());
  std::istream& in = source->stream_;

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic))) {
    return Status::Corruption("bad magic in " + path);
  }
  const std::string_view magic_view(magic, sizeof(magic));
  bool checksummed = false;
  if (magic_view == std::string_view(kMagic, sizeof(kMagic))) {
    source->fixed_width_ = true;
  } else if (magic_view ==
             std::string_view(internal::kMagicV2, sizeof(internal::kMagicV2))) {
    source->fixed_width_ = false;
  } else if (magic_view ==
             std::string_view(internal::kMagicV3, sizeof(internal::kMagicV3))) {
    source->fixed_width_ = false;
    checksummed = true;
  } else {
    return Status::Corruption("bad magic in " + path);
  }

  if (checksummed) {
    // v3: verify the header block's CRC before parsing any of its fields.
    uint32_t header_len = 0;
    uint32_t header_crc = 0;
    if (!ReadU32(in, &header_len) || !ReadU32(in, &header_crc)) {
      return Status::Corruption("truncated v3 framing in " + path);
    }
    if (header_len > internal::kMaxBlockBytes) {
      return Status::Corruption("implausible v3 header length in " + path);
    }
    std::string header(header_len, '\0');
    if (!in.read(header.data(), header_len)) {
      return Status::Corruption("truncated v3 header block in " + path);
    }
    if (crc32c::Value(header.data(), header.size()) != header_crc) {
      return Status::Corruption("v3 header checksum mismatch in " + path);
    }
    std::istringstream header_in(header);
    PPM_RETURN_IF_ERROR(ReadHeaderFields(header_in, path, &source->symbols_,
                                         &source->num_instants_));

    uint64_t payload_len = 0;
    uint32_t payload_crc = 0;
    if (!ReadU64(in, &payload_len) || !ReadU32(in, &payload_crc)) {
      return Status::Corruption("truncated v3 framing in " + path);
    }
    if (payload_len > internal::kMaxBlockBytes) {
      return Status::Corruption("implausible v3 payload length in " + path);
    }
    source->data_offset_ = in.tellg();

    // One integrity pass over the payload now, so every later scan can
    // stream the verified bytes without recomputing the checksum.
    uint32_t crc = 0;
    char chunk[4096];
    uint64_t remaining = payload_len;
    while (remaining > 0) {
      const std::streamsize want = static_cast<std::streamsize>(
          remaining < sizeof(chunk) ? remaining : sizeof(chunk));
      if (!in.read(chunk, want)) {
        return Status::Corruption("truncated v3 payload block in " + path);
      }
      crc = crc32c::Extend(crc, chunk, static_cast<size_t>(want));
      remaining -= static_cast<uint64_t>(want);
    }
    if (crc != payload_crc) {
      return Status::Corruption("v3 payload checksum mismatch in " + path);
    }
    in.clear();
    in.seekg(source->data_offset_);
    if (!in) return Status::IoError("seek failed: " + path);
    return source;
  }

  PPM_RETURN_IF_ERROR(ReadHeaderFields(in, path, &source->symbols_,
                                       &source->num_instants_));
  source->data_offset_ = in.tellg();
  return source;
}

Status FileSeriesSource::StartScan() {
  status_ = Status::OK();
  delivered_ = 0;
  stream_.clear();
  stream_.seekg(data_offset_);
  if (!stream_) {
    status_ = Status::IoError("seek failed: " + path_);
    return status_;
  }
  ++stats_.scans;
  scans_counter_.Inc();
  return Status::OK();
}

bool FileSeriesSource::Next(FeatureSet* out) {
  if (!status_.ok()) return false;
  if (delivered_ >= num_instants_) return false;

  uint32_t count = 0;
  int count_bytes = 4;
  const bool count_ok = fixed_width_
                            ? ReadU32(stream_, &count)
                            : internal::ReadVarint32(stream_, &count,
                                                     &count_bytes);
  if (!count_ok) {
    status_ = Status::Corruption("truncated instant in " + path_);
    return false;
  }
  // An instant holds distinct feature ids, so its count can never exceed
  // the symbol table; a larger value is corruption and must fail fast
  // rather than grinding through billions of bogus reads.
  if (count > symbols_.size()) {
    status_ = Status::Corruption("instant feature count " +
                                 std::to_string(count) + " exceeds symbol "
                                 "table in " + path_);
    return false;
  }
  out->Reset();
  uint64_t data_bytes = 0;
  uint32_t previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t value = 0;
    int value_bytes = 4;
    const bool value_ok = fixed_width_
                              ? ReadU32(stream_, &value)
                              : internal::ReadVarint32(stream_, &value,
                                                       &value_bytes);
    if (!value_ok) {
      status_ = Status::Corruption("truncated feature id in " + path_);
      return false;
    }
    const uint32_t id = fixed_width_ || i == 0 ? value : previous + value;
    if (id >= symbols_.size()) {
      status_ = Status::Corruption("feature id out of range in " + path_);
      return false;
    }
    out->Set(id);
    previous = id;
    data_bytes += static_cast<uint64_t>(value_bytes);
  }
  ++delivered_;
  ++stats_.instants_read;
  stats_.bytes_read += static_cast<uint64_t>(count_bytes) + data_bytes;
  instants_counter_.Inc();
  bytes_counter_.Inc(static_cast<uint64_t>(count_bytes) + data_bytes);
  return true;
}

}  // namespace ppm::tsdb
