#ifndef PPM_TSDB_TIME_SERIES_H_
#define PPM_TSDB_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

#include "tsdb/symbol_table.h"
#include "util/bitset.h"
#include "util/status.h"

namespace ppm::tsdb {

/// The set of features observed at one time instant.
using FeatureSet = Bitset;

/// An in-memory feature time series: for each time instant `i`, the set of
/// features `D_i` derived from the dataset collected at that instant
/// (Section 2 of the paper). Owns the `SymbolTable` that names its features.
class TimeSeries {
 public:
  TimeSeries() = default;

  TimeSeries(const TimeSeries&) = default;
  TimeSeries& operator=(const TimeSeries&) = default;
  TimeSeries(TimeSeries&&) noexcept = default;
  TimeSeries& operator=(TimeSeries&&) noexcept = default;

  /// Appends one instant with an already-built feature set.
  void Append(FeatureSet features) { instants_.push_back(std::move(features)); }

  /// Appends one instant whose features are given by name (interned).
  void AppendNamed(std::initializer_list<std::string_view> names);

  /// Appends `count` empty instants (no features observed).
  void AppendEmpty(uint64_t count = 1);

  /// Removes the `count` oldest instants (retention truncation). The
  /// symbol table is untouched -- ids stay stable for the surviving tail.
  void DropFront(uint64_t count) {
    if (count >= instants_.size()) {
      instants_.clear();
      return;
    }
    instants_.erase(instants_.begin(),
                    instants_.begin() + static_cast<ptrdiff_t>(count));
  }

  /// Number of time instants.
  uint64_t length() const { return instants_.size(); }

  /// Feature set at instant `t` (must be `< length()`).
  const FeatureSet& at(uint64_t t) const { return instants_[t]; }
  FeatureSet& at(uint64_t t) { return instants_[t]; }

  const std::vector<FeatureSet>& instants() const { return instants_; }

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Number of whole period segments of length `period` ("m" in the paper);
  /// zero when `period` is zero or exceeds the series length.
  uint64_t NumPeriods(uint32_t period) const {
    if (period == 0) return 0;
    return length() / period;
  }

 private:
  SymbolTable symbols_;
  std::vector<FeatureSet> instants_;
};

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_TIME_SERIES_H_
