#include "tsdb/series_codec.h"

#include <cctype>
#include <fstream>
#include <string_view>

#include "tsdb/binary_format.h"
#include "util/string_util.h"

namespace ppm::tsdb {

namespace {
using internal::kMagic;
using internal::kMagicV2;
using internal::ReadU32;
using internal::ReadU64;
using internal::ReadVarint32;
using internal::WriteU32;
using internal::WriteU64;
using internal::WriteVarint32;
}  // namespace

Status WriteBinarySeries(const TimeSeries& series, const std::string& path,
                         BinaryFormatVersion version) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);

  out.write(version == BinaryFormatVersion::kV1 ? kMagic : kMagicV2,
            sizeof(kMagic));
  const SymbolTable& symbols = series.symbols();
  WriteU32(out, symbols.size());
  for (const std::string& name : symbols.names()) {
    WriteU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  WriteU64(out, series.length());
  for (const FeatureSet& instant : series.instants()) {
    if (version == BinaryFormatVersion::kV1) {
      WriteU32(out, instant.Count());
      instant.ForEach([&out](uint32_t id) { WriteU32(out, id); });
    } else {
      WriteVarint32(out, instant.Count());
      // ForEach iterates ascending, so delta encoding needs no sort.
      uint32_t previous = 0;
      bool first = true;
      instant.ForEach([&out, &previous, &first](uint32_t id) {
        WriteVarint32(out, first ? id : id - previous);
        previous = id;
        first = false;
      });
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadBinarySeries(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic))) {
    return Status::Corruption("bad magic in " + path);
  }
  BinaryFormatVersion version;
  if (std::string_view(magic, sizeof(magic)) ==
      std::string_view(kMagic, sizeof(kMagic))) {
    version = BinaryFormatVersion::kV1;
  } else if (std::string_view(magic, sizeof(magic)) ==
             std::string_view(kMagicV2, sizeof(kMagicV2))) {
    version = BinaryFormatVersion::kV2;
  } else {
    return Status::Corruption("bad magic in " + path);
  }

  TimeSeries series;
  uint32_t num_symbols = 0;
  if (!ReadU32(in, &num_symbols)) return Status::Corruption("truncated header");
  for (uint32_t i = 0; i < num_symbols; ++i) {
    uint32_t len = 0;
    if (!ReadU32(in, &len)) return Status::Corruption("truncated symbol table");
    // Cap before allocating: a corrupt length must not trigger a
    // multi-gigabyte allocation.
    if (len > internal::kMaxSymbolNameBytes) {
      return Status::Corruption("implausible symbol name length");
    }
    std::string name(len, '\0');
    if (!in.read(name.data(), len)) {
      return Status::Corruption("truncated symbol name");
    }
    const FeatureId id = series.symbols().Intern(name);
    if (id != i) return Status::Corruption("duplicate symbol: " + name);
  }

  uint64_t num_instants = 0;
  if (!ReadU64(in, &num_instants)) return Status::Corruption("truncated length");
  const bool v1 = version == BinaryFormatVersion::kV1;
  for (uint64_t t = 0; t < num_instants; ++t) {
    uint32_t count = 0;
    if (v1 ? !ReadU32(in, &count) : !ReadVarint32(in, &count)) {
      return Status::Corruption("truncated instant");
    }
    // Distinct ids per instant cannot exceed the symbol table; fail fast on
    // corrupt counts instead of looping through bogus reads.
    if (count > num_symbols) {
      return Status::Corruption("instant feature count " +
                                std::to_string(count) +
                                " exceeds symbol table");
    }
    FeatureSet features;
    uint32_t previous = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t value = 0;
      if (v1 ? !ReadU32(in, &value) : !ReadVarint32(in, &value)) {
        return Status::Corruption("truncated feature id");
      }
      const uint32_t id = v1 || i == 0 ? value : previous + value;
      if (id >= num_symbols) {
        return Status::Corruption("feature id out of range: " +
                                  std::to_string(id));
      }
      features.Set(id);
      previous = id;
    }
    series.Append(std::move(features));
  }
  return series;
}

Status WriteTextSeries(const TimeSeries& series, const std::string& path) {
  for (const std::string& name : series.symbols().names()) {
    if (name.empty()) return Status::InvalidArgument("empty feature name");
    if (name.front() == '#') {
      return Status::InvalidArgument("feature name starts with '#': " + name);
    }
    for (char c : name) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument("feature name has whitespace: " + name);
      }
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const FeatureSet& instant : series.instants()) {
    bool first = true;
    instant.ForEach([&](uint32_t id) {
      if (!first) out << ' ';
      first = false;
      out << series.symbols().NameOrPlaceholder(id);
    });
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadTextSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  TimeSeries series;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (!stripped.empty() && stripped.front() == '#') continue;
    FeatureSet features;
    for (const std::string& token : SplitSkipEmpty(stripped, ' ')) {
      features.Set(series.symbols().Intern(token));
    }
    series.Append(std::move(features));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return series;
}

}  // namespace ppm::tsdb
