#include "tsdb/series_codec.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string_view>

#include "tsdb/binary_format.h"
#include "tsdb/fault_injection.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace ppm::tsdb {

namespace {
using internal::kMagic;
using internal::kMagicV2;
using internal::kMagicV3;
using internal::ReadU32;
using internal::ReadU64;
using internal::ReadVarint32;
using internal::WriteU32;
using internal::WriteU64;
using internal::WriteVarint32;

/// Serialized symbol table + instant count (every version's header fields).
std::string EncodeHeaderBlock(const TimeSeries& series) {
  std::ostringstream header;
  const SymbolTable& symbols = series.symbols();
  WriteU32(header, symbols.size());
  for (const std::string& name : symbols.names()) {
    WriteU32(header, static_cast<uint32_t>(name.size()));
    header.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  WriteU64(header, series.length());
  return std::move(header).str();
}

/// v2-encoded instant data (varint counts, delta+varint ids).
void EncodeInstantsV2(const TimeSeries& series, std::ostream& out) {
  for (const FeatureSet& instant : series.instants()) {
    WriteVarint32(out, instant.Count());
    // ForEach iterates ascending, so delta encoding needs no sort.
    uint32_t previous = 0;
    bool first = true;
    instant.ForEach([&out, &previous, &first](uint32_t id) {
      WriteVarint32(out, first ? id : id - previous);
      previous = id;
      first = false;
    });
  }
}

/// Parses the header-block fields (symbol table, instant count) from `in`
/// into `*series` / `*num_instants`.
Status ParseHeaderFields(std::istream& in, TimeSeries* series,
                         uint64_t* num_instants) {
  uint32_t num_symbols = 0;
  if (!ReadU32(in, &num_symbols)) return Status::Corruption("truncated header");
  for (uint32_t i = 0; i < num_symbols; ++i) {
    uint32_t len = 0;
    if (!ReadU32(in, &len)) return Status::Corruption("truncated symbol table");
    // Cap before allocating: a corrupt length must not trigger a
    // multi-gigabyte allocation.
    if (len > internal::kMaxSymbolNameBytes) {
      return Status::Corruption("implausible symbol name length");
    }
    std::string name(len, '\0');
    if (!in.read(name.data(), len)) {
      return Status::Corruption("truncated symbol name");
    }
    const FeatureId id = series->symbols().Intern(name);
    if (id != i) return Status::Corruption("duplicate symbol: " + name);
  }
  if (!ReadU64(in, num_instants)) return Status::Corruption("truncated length");
  return Status::OK();
}

/// Parses `num_instants` instants from `in` (fixed-width v1 or varint
/// v2/v3 encoding) and appends them to `*series`.
Status ParseInstants(std::istream& in, bool v1, uint64_t num_instants,
                     TimeSeries* series) {
  const uint32_t num_symbols = series->symbols().size();
  for (uint64_t t = 0; t < num_instants; ++t) {
    uint32_t count = 0;
    if (v1 ? !ReadU32(in, &count) : !ReadVarint32(in, &count)) {
      return Status::Corruption("truncated instant");
    }
    // Distinct ids per instant cannot exceed the symbol table; fail fast on
    // corrupt counts instead of looping through bogus reads.
    if (count > num_symbols) {
      return Status::Corruption("instant feature count " +
                                std::to_string(count) +
                                " exceeds symbol table");
    }
    FeatureSet features;
    uint32_t previous = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t value = 0;
      if (v1 ? !ReadU32(in, &value) : !ReadVarint32(in, &value)) {
        return Status::Corruption("truncated feature id");
      }
      const uint32_t id = v1 || i == 0 ? value : previous + value;
      if (id >= num_symbols) {
        return Status::Corruption("feature id out of range: " +
                                  std::to_string(id));
      }
      features.Set(id);
      previous = id;
    }
    series->Append(std::move(features));
  }
  return Status::OK();
}

/// Reads a v3 file's checksummed blocks from `in` (positioned just past the
/// magic). Each block's CRC is verified before any of its fields are parsed.
Result<TimeSeries> ParseV3(std::istream& in, const std::string& path) {
  uint32_t header_len = 0;
  uint32_t header_crc = 0;
  if (!ReadU32(in, &header_len) || !ReadU32(in, &header_crc)) {
    return Status::Corruption("truncated v3 framing in " + path);
  }
  if (header_len > internal::kMaxBlockBytes) {
    return Status::Corruption("implausible v3 header length in " + path);
  }
  std::string header(header_len, '\0');
  if (!in.read(header.data(), header_len)) {
    return Status::Corruption("truncated v3 header block in " + path);
  }
  if (crc32c::Value(header.data(), header.size()) != header_crc) {
    return Status::Corruption("v3 header checksum mismatch in " + path);
  }

  TimeSeries series;
  uint64_t num_instants = 0;
  std::istringstream header_in(header);
  PPM_RETURN_IF_ERROR(ParseHeaderFields(header_in, &series, &num_instants));

  uint64_t payload_len = 0;
  uint32_t payload_crc = 0;
  if (!ReadU64(in, &payload_len) || !ReadU32(in, &payload_crc)) {
    return Status::Corruption("truncated v3 framing in " + path);
  }
  if (payload_len > internal::kMaxBlockBytes) {
    return Status::Corruption("implausible v3 payload length in " + path);
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(),
               static_cast<std::streamsize>(payload_len))) {
    return Status::Corruption("truncated v3 payload block in " + path);
  }
  if (crc32c::Value(payload.data(), payload.size()) != payload_crc) {
    return Status::Corruption("v3 payload checksum mismatch in " + path);
  }

  std::istringstream payload_in(payload);
  PPM_RETURN_IF_ERROR(
      ParseInstants(payload_in, /*v1=*/false, num_instants, &series));
  return series;
}

}  // namespace

Status WriteBinarySeries(const TimeSeries& series, const std::string& path,
                         BinaryFormatVersion version) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);

  if (version == BinaryFormatVersion::kV3) {
    // Blocks are buffered so their CRCs are known before anything hits the
    // file; the framing lengths double as truncation checks on read.
    const std::string header = EncodeHeaderBlock(series);
    std::ostringstream payload_stream;
    EncodeInstantsV2(series, payload_stream);
    const std::string payload = std::move(payload_stream).str();

    out.write(kMagicV3, sizeof(kMagicV3));
    WriteU32(out, static_cast<uint32_t>(header.size()));
    WriteU32(out, crc32c::Value(header.data(), header.size()));
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    WriteU64(out, payload.size());
    WriteU32(out, crc32c::Value(payload.data(), payload.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  } else {
    out.write(version == BinaryFormatVersion::kV1 ? kMagic : kMagicV2,
              sizeof(kMagic));
    const std::string header = EncodeHeaderBlock(series);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (version == BinaryFormatVersion::kV1) {
      for (const FeatureSet& instant : series.instants()) {
        WriteU32(out, instant.Count());
        instant.ForEach([&out](uint32_t id) { WriteU32(out, id); });
      }
    } else {
      EncodeInstantsV2(series, out);
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadBinarySeries(const std::string& path) {
  if (FaultInjector::Global().ConsumeTransientReadFailure()) {
    return Status::IoError("injected transient read failure: " + path);
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for read: " + path);
  // Test seam: when armed, reads go through a deterministic fault-injecting
  // buffer (bit flips, short reads); disarmed this is a single atomic load.
  const std::unique_ptr<std::streambuf> fault_buf =
      FaultInjector::Global().MaybeWrap(file.rdbuf());
  std::istream in(fault_buf != nullptr ? fault_buf.get() : file.rdbuf());

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic))) {
    return Status::Corruption("bad magic in " + path);
  }
  const std::string_view magic_view(magic, sizeof(magic));
  BinaryFormatVersion version;
  if (magic_view == std::string_view(kMagic, sizeof(kMagic))) {
    version = BinaryFormatVersion::kV1;
  } else if (magic_view == std::string_view(kMagicV2, sizeof(kMagicV2))) {
    version = BinaryFormatVersion::kV2;
  } else if (magic_view == std::string_view(kMagicV3, sizeof(kMagicV3))) {
    return ParseV3(in, path);
  } else {
    return Status::Corruption("bad magic in " + path);
  }

  TimeSeries series;
  uint64_t num_instants = 0;
  PPM_RETURN_IF_ERROR(ParseHeaderFields(in, &series, &num_instants));
  PPM_RETURN_IF_ERROR(ParseInstants(
      in, version == BinaryFormatVersion::kV1, num_instants, &series));
  return series;
}

Status WriteTextSeries(const TimeSeries& series, const std::string& path) {
  for (const std::string& name : series.symbols().names()) {
    if (name.empty()) return Status::InvalidArgument("empty feature name");
    if (name.front() == '#') {
      return Status::InvalidArgument("feature name starts with '#': " + name);
    }
    for (char c : name) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument("feature name has whitespace: " + name);
      }
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const FeatureSet& instant : series.instants()) {
    bool first = true;
    instant.ForEach([&](uint32_t id) {
      if (!first) out << ' ';
      first = false;
      out << series.symbols().NameOrPlaceholder(id);
    });
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadTextSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  TimeSeries series;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (!stripped.empty() && stripped.front() == '#') continue;
    FeatureSet features;
    for (const std::string& token : SplitSkipEmpty(stripped, ' ')) {
      features.Set(series.symbols().Intern(token));
    }
    series.Append(std::move(features));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return series;
}

}  // namespace ppm::tsdb
