#ifndef PPM_TSDB_DATABASE_H_
#define PPM_TSDB_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/series_source.h"
#include "tsdb/time_series.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm::tsdb {

/// A directory of named feature time series -- the "time series database"
/// the paper mines against, as a concrete on-disk catalog.
///
/// Layout: `<root>/MANIFEST` lists one series name per line;
/// `<root>/<name>.series` holds the binary-v2 payload. Names are restricted
/// to `[A-Za-z0-9._-]` so they are safe as file names. All mutating
/// operations rewrite the manifest last, so a crash mid-`Put` leaves at
/// worst an orphaned payload file, never a dangling manifest entry.
///
/// The class is single-process, single-threaded: it is a catalog, not a
/// server.
class Database {
 public:
  /// Opens the catalog at `root`, creating the directory and an empty
  /// manifest if absent. Fails when the manifest exists but is unreadable
  /// or references missing payload files.
  static Result<std::unique_ptr<Database>> Open(const std::string& root);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Writes (or atomically replaces) the series stored under `name`.
  Status Put(std::string_view name, const TimeSeries& series);

  /// Loads the series `name` fully into memory. Transient I/O errors are
  /// retried with a short backoff; the backoff sleeps poll `interrupt`, so
  /// a deadline-bounded caller can never overshoot inside storage retries
  /// (the default interrupt never fires).
  Result<TimeSeries> Get(std::string_view name,
                         const Interrupt& interrupt = Interrupt()) const;

  /// Opens a streaming scan source over `name` without loading it.
  Result<std::unique_ptr<FileSeriesSource>> Scan(std::string_view name) const;

  /// Removes `name` and its payload. NotFound when absent.
  Status Drop(std::string_view name);

  /// Sorted names of all stored series.
  std::vector<std::string> List() const;

  bool Contains(std::string_view name) const;

  const std::string& root() const { return root_; }

 private:
  explicit Database(std::string root) : root_(std::move(root)) {}

  std::string PayloadPath(std::string_view name) const;
  Status WriteManifest() const;

  std::string root_;
  std::vector<std::string> names_;  // Sorted.
};

/// True iff `name` is a legal series name (non-empty, `[A-Za-z0-9._-]`,
/// at most 128 bytes, not "." or "..").
bool IsValidSeriesName(std::string_view name);

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_DATABASE_H_
