#ifndef PPM_TSDB_WAL_H_
#define PPM_TSDB_WAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::tsdb {

/// Write-ahead log of appended instants, the durability companion of the
/// streaming miner (docs/FILE_FORMATS.md, docs/ROBUSTNESS.md).
///
/// Layout (little-endian):
///
///   magic            8 bytes  "PPMWAL1\n"
///   record*          until EOF
///
/// Each record frames one instant:
///
///   payload_len      u32      bytes in the payload
///   seq              u64      record sequence number (0, 1, 2, ...)
///   header_crc       u32      CRC32C of the 12 bytes above
///   payload_crc      u32      CRC32C of the payload
///   payload          payload_len bytes: varint feature count, then the
///                    sorted feature ids delta-encoded as varints (first id
///                    absolute, then gaps >= 1) -- the v2 instant encoding
///
/// Replay distinguishes a *torn tail* (a crash mid-append: the log is valid
/// up to the tear, which is truncated away on the next open) from *interior
/// corruption* (bit rot or splicing before later valid records: `kCorruption`,
/// never silently skipped).
inline constexpr char kWalMagic[8] = {'P', 'P', 'M', 'W', 'A', 'L', '1', '\n'};

/// Bytes of one record frame before the payload.
inline constexpr uint64_t kWalRecordHeaderBytes = 20;

/// Upper bound on a record payload's declared length; larger values are
/// rejected as corruption before allocating.
inline constexpr uint32_t kMaxWalRecordBytes = 1u << 24;

/// Upper bound on an encoded feature id (matches the series codec's
/// plausibility cap so hostile bytes cannot force huge bitsets).
inline constexpr uint32_t kMaxWalFeatureId = 1u << 24;

/// When `WalWriter::Append` flushes to stable storage.
enum class WalFsync {
  /// fsync after every appended record (no acknowledged instant is ever
  /// lost; the default).
  kAlways = 0,
  /// Never fsync on append (the OS decides; a crash may lose the tail back
  /// to the last `Sync()` -- recovery still converges, later).
  kNever = 1,
};

/// What `ReplayWal` found.
struct WalReplayInfo {
  /// Records delivered to the callback (seq >= start_seq).
  uint64_t records_delivered = 0;
  /// Valid records before `start_seq`, skipped without delivery.
  uint64_t records_skipped = 0;
  /// Sequence number the next appended record must carry.
  uint64_t next_seq = 0;
  /// Bytes of the file covered by valid records (incl. the magic); a new
  /// writer truncates the file to this length before appending.
  uint64_t valid_bytes = 0;
  /// Bytes discarded past `valid_bytes` (nonzero iff `torn_tail`).
  uint64_t dropped_bytes = 0;
  /// True when the file ended in a torn (partially written) record that
  /// was truncated away.
  bool torn_tail = false;
};

/// Replays the log at `path`, invoking `fn(seq, instant)` for every valid
/// record with `seq >= start_seq`, in order. Returns what it found.
///
/// - Missing file: `NotFound`.
/// - Torn tail (short header/payload, or a bad payload CRC on the final
///   record): the tail is reported (not yet truncated) and replay succeeds
///   with `torn_tail = true`.
/// - Anything else -- bad magic, a bad record followed by later valid
///   records, a sequence gap, an oversized length, undecodable payload --
///   is `kCorruption`.
/// - A non-OK status from `fn` aborts the replay and is returned as-is.
Result<WalReplayInfo> ReplayWal(
    const std::string& path, uint64_t start_seq,
    const std::function<Status(uint64_t seq, const FeatureSet& instant)>& fn);

/// `ReplayWal` for a *tail log*: a WAL whose first record may carry any
/// sequence number (a per-series append log laid down against a base
/// snapshot of that many instants, see `service/series_store`). The base is
/// inferred from the first valid record; contiguity is enforced from there
/// exactly as in `ReplayWal`. When the log holds no records, the returned
/// `next_seq` is 0 -- the caller knows the true base (its snapshot length)
/// and must substitute it.
Result<WalReplayInfo> ReplayWalTail(
    const std::string& path, uint64_t start_seq,
    const std::function<Status(uint64_t seq, const FeatureSet& instant)>& fn);

/// Appends CRC-framed instants to a WAL file.
class WalWriter {
 public:
  /// Creates a fresh log at `path` (truncating anything already there).
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   WalFsync fsync);

  /// Creates a fresh *tail log* at `path` (truncating anything already
  /// there) whose first record will carry sequence `first_seq` -- the length
  /// of the base snapshot the log extends. Replay it with `ReplayWalTail`.
  static Result<std::unique_ptr<WalWriter>> CreateAt(const std::string& path,
                                                     WalFsync fsync,
                                                     uint64_t first_seq);

  /// Opens `path` for appending after a replay: truncates the file to
  /// `valid_bytes` (discarding any torn tail) and continues at `next_seq`.
  /// When the file is missing or `valid_bytes` doesn't cover the magic, a
  /// fresh log is written instead.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 WalFsync fsync,
                                                 uint64_t next_seq,
                                                 uint64_t valid_bytes);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one instant; with `WalFsync::kAlways` the record is on stable
  /// storage when this returns.
  Status Append(const FeatureSet& instant);

  /// Flushes and fsyncs everything appended so far (a checkpoint barrier
  /// under `WalFsync::kNever`).
  Status Sync();

  /// Sequence number the next `Append` will write.
  uint64_t next_seq() const { return next_seq_; }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, WalFsync fsync, uint64_t next_seq);

  static Result<std::unique_ptr<WalWriter>> OpenImpl(const std::string& path,
                                                     WalFsync fsync,
                                                     uint64_t next_seq,
                                                     uint64_t valid_bytes,
                                                     uint64_t fresh_seq);

  std::string path_;
  WalFsync fsync_;
  uint64_t next_seq_;
  std::ofstream out_;
  int sync_fd_ = -1;
};

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_WAL_H_
