#include "tsdb/database.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "tsdb/fault_injection.h"
#include "tsdb/series_codec.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace ppm::tsdb {

namespace fs = std::filesystem;

namespace {

/// Flushes `path` to stable storage, honoring the fault-injection seam.
Status SyncPath(const std::string& path) {
  if (FaultInjector::Global().FsyncShouldFail()) {
    return Status::IoError("injected fsync failure: " + path);
  }
  return fsutil::FsyncPath(path);
}

/// Sleeps for `backoff`, waking every millisecond to poll `interrupt` so a
/// cancelled or deadlined caller escapes the retry loop promptly.
Status InterruptibleBackoff(std::chrono::milliseconds backoff,
                            const Interrupt& interrupt) {
  while (backoff > std::chrono::milliseconds::zero()) {
    PPM_RETURN_IF_INTERRUPTED(interrupt);
    const auto slice = std::min(backoff, std::chrono::milliseconds(1));
    std::this_thread::sleep_for(slice);
    backoff -= slice;
  }
  return interrupt.Check();
}

}  // namespace

bool IsValidSeriesName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  if (name == "." || name == "..") return false;
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create database directory " + root + ": " +
                           ec.message());
  }
  std::unique_ptr<Database> db(new Database(root));

  const std::string manifest_path = root + "/MANIFEST";
  if (!fs::exists(manifest_path)) {
    PPM_RETURN_IF_ERROR(db->WriteManifest());
    return db;
  }

  std::ifstream manifest(manifest_path);
  if (!manifest) return Status::IoError("cannot read manifest in " + root);
  std::string line;
  while (std::getline(manifest, line)) {
    const std::string_view name = StripWhitespace(line);
    if (name.empty() || name.front() == '#') continue;
    if (!IsValidSeriesName(name)) {
      return Status::Corruption("invalid series name in manifest: " +
                                std::string(name));
    }
    db->names_.emplace_back(name);
    if (!fs::exists(db->PayloadPath(name))) {
      return Status::Corruption("manifest references missing payload: " +
                                std::string(name));
    }
  }
  if (manifest.bad()) return Status::IoError("manifest read failed");
  std::sort(db->names_.begin(), db->names_.end());
  db->names_.erase(std::unique(db->names_.begin(), db->names_.end()),
                   db->names_.end());
  return db;
}

std::string Database::PayloadPath(std::string_view name) const {
  return root_ + "/" + std::string(name) + ".series";
}

Status Database::WriteManifest() const {
  // Write-then-fsync-then-rename (fsutil::AtomicWriteFile): any failure
  // before the rename leaves the previous MANIFEST untouched, and fsyncing
  // the temp file plus the parent directory makes the swap durable across a
  // crash, not just atomic.
  std::string manifest = "# ppm series catalog\n";
  for (const std::string& name : names_) {
    manifest += name;
    manifest += '\n';
  }
  return fsutil::AtomicWriteFile(root_ + "/MANIFEST", manifest, SyncPath);
}

Status Database::Put(std::string_view name, const TimeSeries& series) {
  if (!IsValidSeriesName(name)) {
    return Status::InvalidArgument("invalid series name: " + std::string(name));
  }
  // Payload first, manifest second: a crash in between leaves an orphan
  // file but never a manifest entry without data.
  PPM_RETURN_IF_ERROR(WriteBinarySeries(series, PayloadPath(name)));
  if (!Contains(name)) {
    names_.emplace_back(name);
    std::sort(names_.begin(), names_.end());
    PPM_RETURN_IF_ERROR(WriteManifest());
  }
  return Status::OK();
}

Result<TimeSeries> Database::Get(std::string_view name,
                                 const Interrupt& interrupt) const {
  if (!Contains(name)) {
    return Status::NotFound("no series named " + std::string(name));
  }
  PPM_RETURN_IF_INTERRUPTED(interrupt);
  // Transient I/O errors (EINTR-class flakes, injected faults) are retried
  // with a short backoff; corruption is never retried -- a bad checksum is
  // a property of the bytes on disk, not of the read attempt. The backoff
  // polls `interrupt` so a deadline-bounded mine cannot overshoot in here.
  constexpr int kMaxAttempts = 3;
  constexpr std::chrono::milliseconds kBackoff[] = {
      std::chrono::milliseconds(1), std::chrono::milliseconds(4)};
  Result<TimeSeries> result = ReadBinarySeries(PayloadPath(name));
  for (int attempt = 1;
       attempt < kMaxAttempts && !result.ok() &&
       result.status().code() == StatusCode::kIoError;
       ++attempt) {
    obs::MetricsRegistry::Global().GetCounter("ppm.fault.retries").Inc();
    PPM_RETURN_IF_ERROR(InterruptibleBackoff(kBackoff[attempt - 1], interrupt));
    result = ReadBinarySeries(PayloadPath(name));
  }
  // Exactly one logical pass per successful load, however many physical
  // read attempts the retry loop burned -- `ppm.scan.db_passes` counts
  // algorithm-level traversals, and a retried read delivers one series.
  if (result.ok()) RecordDbPass("db_get", result->length(), 0);
  return result;
}

Result<std::unique_ptr<FileSeriesSource>> Database::Scan(
    std::string_view name) const {
  if (!Contains(name)) {
    return Status::NotFound("no series named " + std::string(name));
  }
  return FileSeriesSource::Open(PayloadPath(name));
}

Status Database::Drop(std::string_view name) {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    return Status::NotFound("no series named " + std::string(name));
  }
  names_.erase(it);
  // Manifest first so a crash cannot leave an entry pointing at nothing.
  PPM_RETURN_IF_ERROR(WriteManifest());
  std::error_code ec;
  fs::remove(PayloadPath(name), ec);
  if (ec) return Status::IoError("payload delete failed: " + ec.message());
  return Status::OK();
}

std::vector<std::string> Database::List() const { return names_; }

bool Database::Contains(std::string_view name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

}  // namespace ppm::tsdb
