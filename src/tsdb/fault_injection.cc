#include "tsdb/fault_injection.h"

#include "obs/metrics.h"

namespace ppm::tsdb {

namespace {

/// SplitMix64: a cheap, well-distributed hash of (seed, offset). The same
/// pair always yields the same value, which is what makes injected faults
/// reproducible.
uint64_t Mix(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void RecordInjectedFault() {
  obs::MetricsRegistry::Global().GetCounter("ppm.fault.injected").Inc();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  transient_remaining_.store(plan.transient_read_failures,
                             std::memory_order_relaxed);
  wal_crash_countdown_.store(plan.crash_after_wal_appends,
                             std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  plan_ = FaultPlan();
  transient_remaining_.store(0, std::memory_order_relaxed);
  wal_crash_countdown_.store(0, std::memory_order_relaxed);
}

std::unique_ptr<std::streambuf> FaultInjector::MaybeWrap(
    std::streambuf* inner) {
  if (!armed()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.bit_flip_rate <= 0.0 && plan_.fail_reads_at_offset == 0) {
    return nullptr;
  }
  return std::make_unique<FaultInjectingStreamBuf>(inner, plan_);
}

bool FaultInjector::ConsumeTransientReadFailure() {
  if (!armed()) return false;
  uint32_t remaining = transient_remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (transient_remaining_.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      RecordInjectedFault();
      return true;
    }
  }
  return false;
}

bool FaultInjector::ConsumeWalAppendCrash() {
  if (!armed()) return false;
  uint32_t remaining = wal_crash_countdown_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (wal_crash_countdown_.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      if (remaining == 1) {
        RecordInjectedFault();
        return true;
      }
      return false;
    }
  }
  return false;
}

bool FaultInjector::FsyncShouldFail() {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!plan_.fail_fsync) return false;
  RecordInjectedFault();
  return true;
}

FaultInjectingStreamBuf::FaultInjectingStreamBuf(std::streambuf* inner,
                                                 const FaultPlan& plan)
    : inner_(inner), plan_(plan) {
  setg(&buffer_, &buffer_ + 1, &buffer_ + 1);  // Empty: force underflow.
}

bool FaultInjectingStreamBuf::ShouldFlip(uint64_t offset,
                                         uint32_t* bit) const {
  if (plan_.bit_flip_rate <= 0.0) return false;
  const uint64_t hash = Mix(plan_.seed, offset);
  // Top 53 bits as a uniform double in [0, 1).
  const double draw =
      static_cast<double>(hash >> 11) * (1.0 / 9007199254740992.0);
  if (draw >= plan_.bit_flip_rate) return false;
  *bit = static_cast<uint32_t>(hash & 7);
  return true;
}

std::streambuf::int_type FaultInjectingStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (plan_.fail_reads_at_offset != 0 &&
      offset_ >= plan_.fail_reads_at_offset) {
    RecordInjectedFault();
    return traits_type::eof();  // Short read: the file "ends" here.
  }
  const int_type c = inner_->sbumpc();
  if (traits_type::eq_int_type(c, traits_type::eof())) {
    return traits_type::eof();
  }
  char delivered = traits_type::to_char_type(c);
  uint32_t bit = 0;
  if (ShouldFlip(offset_, &bit)) {
    delivered = static_cast<char>(
        static_cast<unsigned char>(delivered) ^ (1u << bit));
    RecordInjectedFault();
  }
  ++offset_;
  buffer_ = delivered;
  setg(&buffer_, &buffer_, &buffer_ + 1);
  return traits_type::to_int_type(buffer_);
}

std::streambuf::pos_type FaultInjectingStreamBuf::seekoff(
    off_type off, std::ios_base::seekdir dir, std::ios_base::openmode which) {
  // `cur`-relative seeks must account for the one byte buffered here but
  // not yet consumed from the caller's point of view.
  if (dir == std::ios_base::cur && gptr() < egptr()) {
    off -= static_cast<off_type>(egptr() - gptr());
  }
  const pos_type pos = inner_->pubseekoff(off, dir, which);
  if (pos != pos_type(off_type(-1))) {
    offset_ = static_cast<uint64_t>(static_cast<off_type>(pos));
    setg(&buffer_, &buffer_ + 1, &buffer_ + 1);  // Drop the stale byte.
  }
  return pos;
}

std::streambuf::pos_type FaultInjectingStreamBuf::seekpos(
    pos_type pos, std::ios_base::openmode which) {
  const pos_type result = inner_->pubseekpos(pos, which);
  if (result != pos_type(off_type(-1))) {
    offset_ = static_cast<uint64_t>(static_cast<off_type>(result));
    setg(&buffer_, &buffer_ + 1, &buffer_ + 1);
  }
  return result;
}

}  // namespace ppm::tsdb
