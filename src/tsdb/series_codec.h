#ifndef PPM_TSDB_SERIES_CODEC_H_
#define PPM_TSDB_SERIES_CODEC_H_

#include <string>

#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::tsdb {

/// On-disk encodings of the binary series format. Readers auto-detect the
/// version from the magic; writers pick via the parameter below.
enum class BinaryFormatVersion {
  /// Fixed-width u32 feature ids (simple, seekable arithmetic).
  kV1 = 1,
  /// Delta+varint compressed ids (typically 3-4x smaller).
  kV2 = 2,
  /// v2's payload wrapped in CRC32C-checksummed blocks, so corruption is
  /// detected before decoding instead of surfacing as garbage data. Default.
  kV3 = 3,
};

/// Writes `series` to `path` in the library's binary format (see
/// `binary_format.h`). Overwrites an existing file.
Status WriteBinarySeries(const TimeSeries& series, const std::string& path,
                         BinaryFormatVersion version = BinaryFormatVersion::kV3);

/// Loads a binary series written by `WriteBinarySeries`.
Result<TimeSeries> ReadBinarySeries(const std::string& path);

/// Writes `series` as text: one instant per line, feature names separated by
/// single spaces; an empty line is an instant with no features. Lines
/// starting with '#' are comments on read. Feature names must not contain
/// whitespace or start with '#'.
Status WriteTextSeries(const TimeSeries& series, const std::string& path);

/// Loads a text series written by `WriteTextSeries` (or by hand).
Result<TimeSeries> ReadTextSeries(const std::string& path);

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_SERIES_CODEC_H_
