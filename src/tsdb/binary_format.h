#ifndef PPM_TSDB_BINARY_FORMAT_H_
#define PPM_TSDB_BINARY_FORMAT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace ppm::tsdb::internal {

/// On-disk binary series layout (little-endian):
///
///   magic            8 bytes  "PPMTS1\n\0"
///   num_symbols      u32
///   num_symbols x    { name_len u32, name bytes }
///   num_instants     u64
///   num_instants x   { num_features u32, feature ids u32 each }
inline constexpr char kMagic[8] = {'P', 'P', 'M', 'T', 'S', '1', '\n', '\0'};

/// Upper bound on a single symbol name's encoded length; readers reject
/// larger values as corruption before allocating.
inline constexpr uint32_t kMaxSymbolNameBytes = 1 << 20;

/// Upper bound on a v3 block's declared length; readers reject larger
/// values as corruption before allocating the block buffer.
inline constexpr uint64_t kMaxBlockBytes = uint64_t{1} << 31;

/// Version 2 layout: identical header (magic aside), but instant data is
/// compressed -- per instant a varint feature count followed by the sorted
/// feature ids delta-encoded as varints (first id absolute, then gaps).
/// Typically 3-4x smaller than v1 for realistic series.
inline constexpr char kMagicV2[8] = {'P', 'P', 'M', 'T', 'S', '2', '\n', '\0'};

/// Version 3 layout: v2's compressed payload wrapped in CRC32C-checksummed
/// blocks so truncation and bit rot are always detected before decoding
/// (docs/FILE_FORMATS.md, docs/ROBUSTNESS.md):
///
///   magic            8 bytes  "PPMTS3\n\0"
///   header_len       u32      bytes in the header block
///   header_crc       u32      CRC32C of the header block
///   header block:    num_symbols u32, num_symbols x { name_len u32, name },
///                    num_instants u64
///   payload_len      u64      bytes in the payload block
///   payload_crc      u32      CRC32C of the payload block
///   payload block:   num_instants x v2-encoded instants
///
/// Readers verify each block's CRC before parsing a single field of it.
inline constexpr char kMagicV3[8] = {'P', 'P', 'M', 'T', 'S', '3', '\n', '\0'};

/// LEB128 unsigned varint. Returns the number of bytes written (1..5 for
/// 32-bit values).
inline int WriteVarint32(std::ostream& os, uint32_t value) {
  int bytes = 0;
  while (value >= 0x80) {
    os.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
    ++bytes;
  }
  os.put(static_cast<char>(value));
  return bytes + 1;
}

/// Reads a LEB128 varint; fails on EOF or an overlong (> 5 byte) encoding.
/// `*bytes_read` (optional) receives the encoded length.
inline bool ReadVarint32(std::istream& is, uint32_t* value,
                         int* bytes_read = nullptr) {
  uint32_t result = 0;
  int shift = 0;
  int bytes = 0;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) return false;
    ++bytes;
    result |= static_cast<uint32_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 35) return false;  // Overlong encoding.
  }
  *value = result;
  if (bytes_read != nullptr) *bytes_read = bytes;
  return true;
}

inline void WriteU32(std::ostream& os, uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  os.write(bytes, 4);
}

inline void WriteU64(std::ostream& os, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  os.write(bytes, 8);
}

inline bool ReadU32(std::istream& is, uint32_t* value) {
  unsigned char bytes[4];
  if (!is.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) *value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  return true;
}

inline bool ReadU64(std::istream& is, uint64_t* value) {
  unsigned char bytes[8];
  if (!is.read(reinterpret_cast<char*>(bytes), 8)) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) *value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return true;
}

}  // namespace ppm::tsdb::internal

#endif  // PPM_TSDB_BINARY_FORMAT_H_
