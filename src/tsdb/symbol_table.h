#ifndef PPM_TSDB_SYMBOL_TABLE_H_
#define PPM_TSDB_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ppm::tsdb {

/// Identifier of a feature (categorical event type) within a `SymbolTable`.
using FeatureId = uint32_t;

/// Bidirectional mapping between feature names and dense `FeatureId`s.
///
/// Ids are assigned densely starting at zero in interning order, which lets
/// the mining code use ids directly as bitset indices.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id of `name`, interning it on first sight.
  FeatureId Intern(std::string_view name);

  /// Returns the id of `name`, or `NotFound` if never interned.
  Result<FeatureId> Lookup(std::string_view name) const;

  /// Returns the name of `id`, or `OutOfRange` for unknown ids.
  Result<std::string> Name(FeatureId id) const;

  /// Name of `id`; returns a placeholder like "#7" for unknown ids.
  /// Intended for diagnostics and formatting.
  std::string NameOrPlaceholder(FeatureId id) const;

  /// Number of interned features.
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, FeatureId> ids_;
};

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_SYMBOL_TABLE_H_
