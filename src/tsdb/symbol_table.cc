#include "tsdb/symbol_table.h"

namespace ppm::tsdb {

FeatureId SymbolTable::Intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const FeatureId id = static_cast<FeatureId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<FeatureId> SymbolTable::Lookup(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown feature name: " + std::string(name));
  }
  return it->second;
}

Result<std::string> SymbolTable::Name(FeatureId id) const {
  if (id >= names_.size()) {
    return Status::OutOfRange("unknown feature id: " + std::to_string(id));
  }
  return names_[id];
}

std::string SymbolTable::NameOrPlaceholder(FeatureId id) const {
  if (id < names_.size()) return names_[id];
  return "#" + std::to_string(id);
}

}  // namespace ppm::tsdb
