#ifndef PPM_TSDB_FAULT_INJECTION_H_
#define PPM_TSDB_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <streambuf>

namespace ppm::tsdb {

/// A deterministic, seed-driven description of the storage faults to
/// inject. All faults are keyed on absolute byte offsets, so the same plan
/// against the same file corrupts the same bytes on every scan -- the
/// injected world looks like one consistently damaged disk, not random
/// noise per read.
struct FaultPlan {
  /// Seed for the offset hash; also the "on" switch in `ScopedFaultInjection`
  /// convenience constructors (a default plan injects nothing).
  uint64_t seed = 0;
  /// Probability (0..1) that any given payload byte is delivered with one
  /// bit flipped. Which byte and which bit are functions of (seed, offset).
  double bit_flip_rate = 0.0;
  /// When nonzero, every read at or past this absolute offset fails as if
  /// the file were truncated (a short read / EIO).
  uint64_t fail_reads_at_offset = 0;
  /// Number of times an open/read is failed with a *transient* I/O error
  /// before succeeding (consumed by `ConsumeTransientReadFailure`).
  uint32_t transient_read_failures = 0;
  /// When true, `FsyncShouldFail` reports one fsync failure per call site
  /// attempt (consumed like the transient failures, but never exhausted).
  bool fail_fsync = false;
  /// When nonzero, the Nth WAL append after arming crashes the process
  /// mid-frame (half the record written, no fsync) -- a deterministic
  /// SIGKILL-at-a-write-site for crash-recovery tests and the CI smoke.
  uint32_t crash_after_wal_appends = 0;
};

/// Process-global fault-injection seam for the storage layer. Disarmed (the
/// default) it costs one relaxed atomic load per open; tests arm it via
/// `ScopedFaultInjection` to exercise the error paths of `series_codec`,
/// `FileSeriesSource`, and `Database` deterministically.
class FaultInjector {
 public:
  static FaultInjector& Global();

  void Arm(const FaultPlan& plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// When armed with read faults, wraps `inner` in a fault-injecting
  /// streambuf (caller keeps `inner` alive); returns nullptr when nothing
  /// would be injected so callers can use `inner` directly.
  std::unique_ptr<std::streambuf> MaybeWrap(std::streambuf* inner);

  /// True when this open/read attempt should fail with a transient I/O
  /// error (decrements the armed plan's budget; increments
  /// `ppm.fault.injected`).
  bool ConsumeTransientReadFailure();

  /// True when an fsync at a durability point should report failure.
  bool FsyncShouldFail();

  /// True exactly once: on the `crash_after_wal_appends`-th WAL append
  /// since arming. The WAL writer reacts by writing a torn half-frame and
  /// calling `std::_Exit`, mimicking a kill mid-write.
  bool ConsumeWalAppendCrash();

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::atomic<uint32_t> transient_remaining_{0};
  std::atomic<uint32_t> wal_crash_countdown_{0};
};

/// RAII arm/disarm of the global injector for one test scope.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan) {
    FaultInjector::Global().Arm(plan);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// A `std::streambuf` that reads through `inner`, flipping bits and cutting
/// reads short according to `plan`. Single-byte buffering keeps offsets
/// exact; seeks pass through so `FileSeriesSource` rescans still work.
class FaultInjectingStreamBuf : public std::streambuf {
 public:
  FaultInjectingStreamBuf(std::streambuf* inner, const FaultPlan& plan);

 protected:
  int_type underflow() override;
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override;
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override;

 private:
  bool ShouldFlip(uint64_t offset, uint32_t* bit) const;

  std::streambuf* inner_;
  FaultPlan plan_;
  uint64_t offset_ = 0;  // Absolute offset of the next byte to deliver.
  char buffer_ = 0;
};

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_FAULT_INJECTION_H_
