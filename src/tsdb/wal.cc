#include "tsdb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "tsdb/fault_injection.h"
#include "util/crc32c.h"
#include "util/fs.h"

namespace ppm::tsdb {

namespace fs = std::filesystem;

namespace {

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendVarint32(std::string* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

uint32_t LoadU32(const char* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

uint64_t LoadU64(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

bool ReadVarint32Mem(const char* data, size_t len, size_t* pos,
                     uint32_t* value) {
  uint32_t result = 0;
  int shift = 0;
  while (true) {
    if (*pos >= len) return false;
    const unsigned char c = static_cast<unsigned char>(data[(*pos)++]);
    result |= static_cast<uint32_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 35) return false;  // Overlong encoding.
  }
  *value = result;
  return true;
}

/// The v2 instant encoding: varint feature count, then the sorted ids
/// delta-encoded (first absolute, then gaps >= 1).
Status EncodeWalPayload(const FeatureSet& instant, std::string* out) {
  AppendVarint32(out, instant.Count());
  uint32_t prev = 0;
  bool first = true;
  Status status = Status::OK();
  instant.ForEach([&](uint32_t feature) {
    if (!status.ok()) return;
    if (feature > kMaxWalFeatureId) {
      status = Status::InvalidArgument("feature id beyond WAL cap: " +
                                       std::to_string(feature));
      return;
    }
    AppendVarint32(out, first ? feature : feature - prev);
    prev = feature;
    first = false;
  });
  return status;
}

Result<FeatureSet> DecodeWalPayload(const char* data, size_t len) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadVarint32Mem(data, len, &pos, &count)) {
    return Status::Corruption("WAL payload: truncated feature count");
  }
  // Each feature takes at least one encoded byte, so a count beyond the
  // payload size is hostile before any allocation happens.
  if (count > len) {
    return Status::Corruption("WAL payload: implausible feature count");
  }
  FeatureSet instant;
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t value = 0;
    if (!ReadVarint32Mem(data, len, &pos, &value)) {
      return Status::Corruption("WAL payload: truncated feature id");
    }
    uint32_t feature;
    if (i == 0) {
      feature = value;
    } else {
      if (value == 0) {
        return Status::Corruption("WAL payload: zero feature gap");
      }
      if (value > kMaxWalFeatureId - prev) {
        return Status::Corruption("WAL payload: feature id overflow");
      }
      feature = prev + value;
    }
    if (feature > kMaxWalFeatureId) {
      return Status::Corruption("WAL payload: feature id beyond cap");
    }
    instant.Set(feature);
    prev = feature;
  }
  if (pos != len) {
    return Status::Corruption("WAL payload: trailing bytes");
  }
  return instant;
}

/// True when a structurally valid record (good header CRC, plausible
/// length and sequence, good payload CRC) starts at or after `from`. Used
/// to tell a torn tail (truncate and continue) from interior corruption
/// (later valid data would be silently dropped -- refuse instead).
bool HasLaterValidRecord(const std::string& bytes, size_t from,
                         uint64_t min_seq) {
  if (bytes.size() < kWalRecordHeaderBytes) return false;
  for (size_t offset = from;
       offset + kWalRecordHeaderBytes <= bytes.size(); ++offset) {
    const char* p = bytes.data() + offset;
    if (crc32c::Value(p, 12) != LoadU32(p + 12)) continue;
    const uint32_t len = LoadU32(p);
    const uint64_t seq = LoadU64(p + 4);
    if (len > kMaxWalRecordBytes) continue;
    if (seq < min_seq) continue;
    if (offset + kWalRecordHeaderBytes + len > bytes.size()) continue;
    if (crc32c::Value(p + kWalRecordHeaderBytes, len) != LoadU32(p + 16)) {
      continue;
    }
    return true;
  }
  return false;
}

Result<std::string> ReadWalBytes(const std::string& path) {
  FaultInjector& injector = FaultInjector::Global();
  if (injector.ConsumeTransientReadFailure()) {
    return Status::IoError("injected transient read failure: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return Status::NotFound("no WAL at " + path);
    return Status::IoError("cannot open WAL: " + path);
  }
  std::unique_ptr<std::streambuf> wrapped = injector.MaybeWrap(in.rdbuf());
  std::istream stream(wrapped != nullptr ? wrapped.get() : in.rdbuf());
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  if (in.bad()) return Status::IoError("WAL read failed: " + path);
  return buffer.str();
}

Result<WalReplayInfo> ReplayWalImpl(
    const std::string& path, uint64_t start_seq, bool infer_base,
    const std::function<Status(uint64_t seq, const FeatureSet& instant)>& fn) {
  Result<std::string> read = ReadWalBytes(path);
  if (!read.ok()) return read.status();
  const std::string& bytes = *read;

  WalReplayInfo info;
  if (bytes.size() < sizeof(kWalMagic)) {
    // Crash during creation: nothing durable yet. The writer starts fresh.
    info.torn_tail = !bytes.empty();
    info.dropped_bytes = bytes.size();
    RecordDbPass("wal_replay", info.records_delivered, 0);
    return info;
  }
  if (bytes.compare(0, sizeof(kWalMagic), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("bad WAL magic: " + path);
  }

  size_t offset = sizeof(kWalMagic);
  info.valid_bytes = offset;
  uint64_t expected_seq = 0;
  bool base_known = !infer_base;
  bool torn = false;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kWalRecordHeaderBytes) {
      torn = true;  // Crash mid-header.
      break;
    }
    const char* p = bytes.data() + offset;
    const uint32_t len = LoadU32(p);
    const uint64_t seq = LoadU64(p + 4);
    const uint32_t header_crc = LoadU32(p + 12);
    const uint32_t payload_crc = LoadU32(p + 16);
    if (crc32c::Value(p, 12) != header_crc) {
      // A damaged header hiding valid later records is interior corruption;
      // garbage with nothing valid after it is a torn tail.
      if (HasLaterValidRecord(bytes, offset + 1, expected_seq)) {
        return Status::Corruption("WAL record header checksum mismatch at "
                                  "offset " + std::to_string(offset));
      }
      torn = true;
      break;
    }
    if (len > kMaxWalRecordBytes) {
      return Status::Corruption("WAL record length implausible at offset " +
                                std::to_string(offset));
    }
    if (bytes.size() - offset - kWalRecordHeaderBytes < len) {
      torn = true;  // Crash mid-payload.
      break;
    }
    const char* payload = p + kWalRecordHeaderBytes;
    if (crc32c::Value(payload, len) != payload_crc) {
      if (offset + kWalRecordHeaderBytes + len == bytes.size()) {
        torn = true;  // Tail record with a half-written payload.
        break;
      }
      return Status::Corruption("WAL payload checksum mismatch at offset " +
                                std::to_string(offset));
    }
    if (!base_known) {
      // Tail log: the first record fixes the base sequence.
      expected_seq = seq;
      base_known = true;
    }
    if (seq != expected_seq) {
      return Status::Corruption(
          "WAL sequence gap: expected " + std::to_string(expected_seq) +
          ", found " + std::to_string(seq));
    }
    PPM_ASSIGN_OR_RETURN(const FeatureSet instant,
                         DecodeWalPayload(payload, len));
    if (seq >= start_seq) {
      PPM_RETURN_IF_ERROR(fn(seq, instant));
      ++info.records_delivered;
    } else {
      ++info.records_skipped;
    }
    ++expected_seq;
    offset += kWalRecordHeaderBytes + len;
    info.valid_bytes = offset;
  }
  info.next_seq = expected_seq;
  info.torn_tail = torn;
  info.dropped_bytes = bytes.size() - info.valid_bytes;
  // One logical pass per successful replay, sized by what it delivered --
  // the per-append cost a resumed stream pays instead of rescanning
  // history (`ppm.scan.passes.wal_replay`).
  RecordDbPass("wal_replay", info.records_delivered, 0);
  return info;
}

}  // namespace

Result<WalReplayInfo> ReplayWal(
    const std::string& path, uint64_t start_seq,
    const std::function<Status(uint64_t seq, const FeatureSet& instant)>& fn) {
  return ReplayWalImpl(path, start_seq, /*infer_base=*/false, fn);
}

Result<WalReplayInfo> ReplayWalTail(
    const std::string& path, uint64_t start_seq,
    const std::function<Status(uint64_t seq, const FeatureSet& instant)>& fn) {
  return ReplayWalImpl(path, start_seq, /*infer_base=*/true, fn);
}

WalWriter::WalWriter(std::string path, WalFsync fsync, uint64_t next_seq)
    : path_(std::move(path)), fsync_(fsync), next_seq_(next_seq) {}

WalWriter::~WalWriter() {
  if (sync_fd_ >= 0) ::close(sync_fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     WalFsync fsync) {
  return OpenImpl(path, fsync, 0, 0, /*fresh_seq=*/0);
}

Result<std::unique_ptr<WalWriter>> WalWriter::CreateAt(const std::string& path,
                                                       WalFsync fsync,
                                                       uint64_t first_seq) {
  return OpenImpl(path, fsync, first_seq, 0, /*fresh_seq=*/first_seq);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   WalFsync fsync,
                                                   uint64_t next_seq,
                                                   uint64_t valid_bytes) {
  return OpenImpl(path, fsync, next_seq, valid_bytes, /*fresh_seq=*/0);
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenImpl(const std::string& path,
                                                       WalFsync fsync,
                                                       uint64_t next_seq,
                                                       uint64_t valid_bytes,
                                                       uint64_t fresh_seq) {
  std::error_code ec;
  const bool fresh = valid_bytes < sizeof(kWalMagic) || !fs::exists(path, ec);
  if (fresh) {
    next_seq = fresh_seq;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot create WAL: " + path);
    out.write(kWalMagic, sizeof(kWalMagic));
    out.flush();
    if (!out) return Status::IoError("WAL create failed: " + path);
  } else {
    const uint64_t current = fs::file_size(path, ec);
    if (ec) return Status::IoError("cannot stat WAL: " + path);
    if (current < valid_bytes) {
      return Status::Corruption("WAL shorter than its valid prefix: " + path);
    }
    if (current > valid_bytes) {
      // Discard the torn tail found by replay before appending past it.
      fs::resize_file(path, valid_bytes, ec);
      if (ec) return Status::IoError("WAL truncate failed: " + path);
    }
  }

  std::unique_ptr<WalWriter> writer(new WalWriter(path, fsync, next_seq));
  writer->out_.open(path, std::ios::binary | std::ios::app);
  if (!writer->out_) return Status::IoError("cannot append to WAL: " + path);
  writer->sync_fd_ = ::open(path.c_str(), O_RDONLY);
  if (writer->sync_fd_ < 0) {
    return Status::IoError("cannot open WAL for fsync: " + path);
  }
  if (fresh) {
    // Make the file's existence durable: fsync it and its directory.
    PPM_RETURN_IF_ERROR(writer->Sync());
    std::string parent = fs::path(path).parent_path().string();
    if (parent.empty()) parent = ".";
    if (FaultInjector::Global().FsyncShouldFail()) {
      return Status::IoError("injected fsync failure: " + parent);
    }
    PPM_RETURN_IF_ERROR(fsutil::FsyncPath(parent));
  }
  return writer;
}

Status WalWriter::Append(const FeatureSet& instant) {
  std::string payload;
  PPM_RETURN_IF_ERROR(EncodeWalPayload(instant, &payload));
  std::string frame;
  frame.reserve(kWalRecordHeaderBytes + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU64(&frame, next_seq_);
  AppendU32(&frame, crc32c::Value(frame.data(), 12));
  AppendU32(&frame, crc32c::Value(payload));
  frame += payload;

  if (FaultInjector::Global().ConsumeWalAppendCrash()) {
    // Deterministic kill mid-write: half the frame reaches the file, no
    // fsync, and the process dies like a SIGKILL would leave it.
    out_.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
    out_.flush();
    std::_Exit(137);
  }

  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) return Status::IoError("WAL append failed: " + path_);
  ++next_seq_;
  obs::MetricsRegistry::Global().GetCounter("ppm.wal.appends").Inc();
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.wal.append_bytes")
      .Inc(frame.size());
  if (fsync_ == WalFsync::kAlways) PPM_RETURN_IF_ERROR(Sync());
  return Status::OK();
}

Status WalWriter::Sync() {
  out_.flush();
  if (!out_) return Status::IoError("WAL flush failed: " + path_);
  if (FaultInjector::Global().FsyncShouldFail()) {
    return Status::IoError("injected fsync failure: " + path_);
  }
  if (::fsync(sync_fd_) != 0) {
    return Status::IoError("WAL fsync failed: " + path_);
  }
  obs::MetricsRegistry::Global().GetCounter("ppm.wal.fsyncs").Inc();
  return Status::OK();
}

}  // namespace ppm::tsdb
