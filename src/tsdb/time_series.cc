#include "tsdb/time_series.h"

namespace ppm::tsdb {

void TimeSeries::AppendNamed(std::initializer_list<std::string_view> names) {
  FeatureSet features;
  for (std::string_view name : names) features.Set(symbols_.Intern(name));
  instants_.push_back(std::move(features));
}

void TimeSeries::AppendEmpty(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) instants_.emplace_back();
}

}  // namespace ppm::tsdb
