#ifndef PPM_TSDB_SERIES_SOURCE_H_
#define PPM_TSDB_SERIES_SOURCE_H_

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>

#include "obs/metrics.h"
#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::tsdb {

/// Accounting of how a miner touched the underlying series.
///
/// The paper's central efficiency claim is about the *number of scans over
/// the time series database*; every miner in this library reads its input
/// through a `SeriesSource`, so scan counts in benchmarks and tests are
/// measured, not asserted.
struct ScanStats {
  /// Number of times a full scan was started.
  uint64_t scans = 0;
  /// Total instants delivered across all scans.
  uint64_t instants_read = 0;
  /// Bytes read from storage (file-backed sources only).
  uint64_t bytes_read = 0;
};

/// Sequential, restartable access to a feature time series.
///
/// Usage follows the RocksDB iterator idiom:
///
///   PPM_RETURN_IF_ERROR(source.StartScan());
///   FeatureSet instant;
///   while (source.Next(&instant)) { ... }
///   PPM_RETURN_IF_ERROR(source.status());
class SeriesSource {
 public:
  virtual ~SeriesSource() = default;

  SeriesSource(const SeriesSource&) = delete;
  SeriesSource& operator=(const SeriesSource&) = delete;

  /// Positions the source at the first instant and increments the scan count.
  virtual Status StartScan() = 0;

  /// Fetches the next instant into `*out`. Returns false at end-of-series or
  /// on error; distinguish the two via `status()`.
  virtual bool Next(FeatureSet* out) = 0;

  /// Error state of the current scan; OK at a clean end-of-series.
  virtual Status status() const = 0;

  /// Number of instants in the series.
  virtual uint64_t length() const = 0;

  /// Symbol table naming the series' features.
  virtual const SymbolTable& symbols() const = 0;

  const ScanStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ScanStats(); }

 protected:
  SeriesSource();

  ScanStats stats_;
  // Process-global mirrors of `stats_` (`ppm.source.*`), so run reports see
  // series traffic without threading the source through every layer.
  obs::Counter scans_counter_;
  obs::Counter instants_counter_;
  obs::Counter bytes_counter_;
};

/// Zero-copy source over an in-memory `TimeSeries` (not owned; the series
/// must outlive the source).
class InMemorySeriesSource : public SeriesSource {
 public:
  explicit InMemorySeriesSource(const TimeSeries* series);

  Status StartScan() override;
  bool Next(FeatureSet* out) override;
  Status status() const override { return Status::OK(); }
  uint64_t length() const override;
  const SymbolTable& symbols() const override;

 private:
  const TimeSeries* series_;
  uint64_t position_ = 0;
};

/// Streaming source over a binary series file written by
/// `WriteBinarySeries`. Each `StartScan` re-reads the file from the start of
/// the instant data, so `stats().bytes_read` reflects true re-scan cost.
///
/// v3 files are integrity-checked once at `Open` (header and payload CRCs,
/// one extra sequential pass over the payload); scans then stream the
/// verified region without recomputing checksums.
class FileSeriesSource : public SeriesSource {
 public:
  /// Opens `path`, validates the header, and loads the symbol table.
  static Result<std::unique_ptr<FileSeriesSource>> Open(const std::string& path);

  Status StartScan() override;
  bool Next(FeatureSet* out) override;
  Status status() const override { return status_; }
  uint64_t length() const override { return num_instants_; }
  const SymbolTable& symbols() const override { return symbols_; }

 private:
  FileSeriesSource() : stream_(nullptr) {}

  std::string path_;
  std::ifstream file_;
  // Reads go through `stream_`, whose buffer is either the file's own or a
  // fault-injecting wrapper around it (tests); `fault_buf_` owns the latter.
  std::unique_ptr<std::streambuf> fault_buf_;
  std::istream stream_;
  SymbolTable symbols_;
  uint64_t num_instants_ = 0;
  std::streampos data_offset_ = 0;
  uint64_t delivered_ = 0;
  bool fixed_width_ = true;  // v1 fixed-width vs v2/v3 delta+varint data.
  Status status_;
};

}  // namespace ppm::tsdb

#endif  // PPM_TSDB_SERIES_SOURCE_H_
