// `ppm version` and `ppm client`: the build fingerprint and the PPMRPC1
// client for a running `ppmd` daemon.

#include <fstream>

#include "cli/command_util.h"
#include "cli/commands.h"
#include "obs/build_info.h"
#include "service/client.h"
#include "service/pattern_cache.h"
#include "service/wire.h"

namespace ppm::cli {

namespace {

/// Reconstructs the server-side failure so `ExitCodeForStatus` maps it to
/// the same exit code a local run of the operation would have produced.
Status StatusFromWire(const service::wire::Response& response) {
  if (response.code == 0) return Status::OK();
  if (response.code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::Internal("server sent unknown status code " +
                            std::to_string(response.code) + ": " +
                            response.message);
  }
  return Status(static_cast<StatusCode>(response.code), response.message);
}

const char* OutcomeName(uint8_t outcome) {
  switch (static_cast<service::PatternCache::Outcome>(outcome)) {
    case service::PatternCache::Outcome::kHit:
      return "hit";
    case service::PatternCache::Outcome::kRefresh:
      return "refresh";
    default:
      return "miss";
  }
}

/// Rebuilds local `FrequentPattern`s from the wire form so the output goes
/// through the same `PrintPatterns` as `ppm mine` (byte-identical lines).
Status PrintWirePatterns(const service::wire::Response& response,
                         uint64_t top, std::ostream& out) {
  tsdb::SymbolTable symbols;
  for (const std::string& name : response.symbols) symbols.Intern(name);
  std::vector<FrequentPattern> patterns;
  patterns.reserve(response.patterns.size());
  for (const service::wire::WirePattern& wp : response.patterns) {
    Pattern pattern(response.period);
    for (const auto& [position, feature] : wp.letters) {
      if (position >= response.period || feature >= symbols.size()) {
        return Status::Corruption("server sent a letter outside the period "
                                  "or symbol table");
      }
      pattern.AddLetter(position, feature);
    }
    FrequentPattern entry;
    entry.pattern = std::move(pattern);
    entry.count = wp.count;
    entry.confidence = wp.confidence;
    patterns.push_back(std::move(entry));
  }
  PrintPatterns(patterns, symbols, top, out);
  return Status::OK();
}

}  // namespace

Status RunVersion(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({}));
  const obs::BuildInfo& info = obs::GetBuildInfo();
  out << "ppm " << (info.git_sha.empty() ? "(unknown sha)" : info.git_sha)
      << "\n"
      << "  compiler:   " << info.compiler << "\n"
      << "  build:      " << info.build_type << "\n"
      << "  cxx_flags:  " << info.cxx_flags << "\n"
      << "  sanitizer:  " << (info.sanitizer.empty() ? "none" : info.sanitizer)
      << "\n"
      << "  assertions: " << (info.assertions ? "on" : "off") << "\n"
      << "  cores:      " << info.num_cores << "\n";
  return Status::OK();
}

Status RunClient(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"socket", "name", "input", "output", "period", "min-conf",
       "min-count", "max-letters", "algorithm", "deadline-ms", "top",
       "stats-json", "metrics-prom", "connect-wait-ms", "tenant",
       "retry-budget-ms"}));
  if (args.positional().size() != 1) {
    return Status::InvalidArgument(
        "client needs exactly one action: put, append, get, mine, query, "
        "stats, health, ready, or shutdown");
  }
  const std::string& action = args.positional()[0];
  const std::string socket_path = args.GetString("socket", "");
  if (socket_path.empty()) {
    return Status::InvalidArgument("--socket is required");
  }

  service::wire::Request request;
  if (args.Has("deadline-ms")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t deadline_ms,
                         args.GetUint("deadline-ms", 0));
    request.deadline_ms = static_cast<uint32_t>(deadline_ms);
  }
  request.name = args.GetString("name", "");
  // A non-empty tenant upgrades the request to wire v2 so the daemon can
  // apply that tenant's admission quota; old daemons reject the marker.
  request.tenant = args.GetString("tenant", "");

  if (action == "put") {
    request.op = service::wire::Op::kPut;
    PPM_ASSIGN_OR_RETURN(request.series,
                         LoadSeries(args.GetString("input", "")));
  } else if (action == "append") {
    request.op = service::wire::Op::kAppend;
    // Appends travel as feature-name lists so the server can extend the
    // stored symbol table; ids from the local file would not line up.
    PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series,
                         LoadSeries(args.GetString("input", "")));
    request.instants.reserve(series.length());
    for (const tsdb::FeatureSet& instant : series.instants()) {
      std::vector<std::string> names;
      instant.ForEach([&](uint32_t id) {
        names.push_back(series.symbols().NameOrPlaceholder(id));
      });
      request.instants.push_back(std::move(names));
    }
  } else if (action == "get") {
    request.op = service::wire::Op::kGet;
  } else if (action == "mine" || action == "query") {
    request.op = action == "mine" ? service::wire::Op::kMine
                                  : service::wire::Op::kQuery;
    PPM_ASSIGN_OR_RETURN(const uint64_t period, args.GetUint("period", 0));
    request.period = static_cast<uint32_t>(period);
    PPM_ASSIGN_OR_RETURN(request.min_confidence,
                         args.GetDouble("min-conf", 0.8));
    PPM_ASSIGN_OR_RETURN(request.min_count, args.GetUint("min-count", 0));
    PPM_ASSIGN_OR_RETURN(const uint64_t max_letters,
                         args.GetUint("max-letters", 0));
    request.max_letters = static_cast<uint32_t>(max_letters);
    const std::string algorithm = args.GetString("algorithm", "hitset");
    if (algorithm == "hitset") {
      request.algorithm = static_cast<uint8_t>(Algorithm::kMaxSubpatternHitSet);
    } else if (algorithm == "apriori") {
      request.algorithm = static_cast<uint8_t>(Algorithm::kApriori);
    } else {
      return Status::InvalidArgument("--algorithm must be hitset or apriori");
    }
  } else if (action == "stats") {
    request.op = service::wire::Op::kStats;
  } else if (action == "health") {
    request.op = service::wire::Op::kHealth;
  } else if (action == "ready") {
    request.op = service::wire::Op::kReady;
  } else if (action == "shutdown") {
    request.op = service::wire::Op::kShutdown;
  } else {
    return Status::InvalidArgument("unknown client action: " + action);
  }

  // Absorb the daemon-still-starting race (ECONNREFUSED/ENOENT) with a
  // bounded retry budget; 0 disables retry and fails on first refusal.
  PPM_ASSIGN_OR_RETURN(const uint64_t connect_wait_ms,
                       args.GetUint("connect-wait-ms", 1000));
  PPM_ASSIGN_OR_RETURN(
      const auto client,
      service::Client::ConnectWithRetry(socket_path, connect_wait_ms));
  // Shed requests (kResourceExhausted + a retry-after hint) are retried
  // with capped exponential backoff until this budget is spent; 0 takes
  // the server's first answer.
  PPM_ASSIGN_OR_RETURN(const uint64_t retry_budget_ms,
                       args.GetUint("retry-budget-ms", 0));
  PPM_ASSIGN_OR_RETURN(const service::wire::Response response,
                       client->CallWithRetry(request, retry_budget_ms));

  if (request.op == service::wire::Op::kHealth) {
    out << response.health_json << "\n";
    return StatusFromWire(response);
  }
  if (request.op == service::wire::Op::kReady) {
    // Prints the state, then maps non-readiness to the ResourceExhausted
    // exit code so probes can branch on the exit status alone.
    out << service::wire::ReadyStateName(response.ready_state) << "\n";
    return StatusFromWire(response);
  }
  PPM_RETURN_IF_ERROR(StatusFromWire(response));

  switch (request.op) {
    case service::wire::Op::kPut:
      out << "stored " << request.series.length() << " instants as "
          << request.name << " (version " << response.version << ")\n";
      return Status::OK();
    case service::wire::Op::kAppend:
      out << "appended " << request.instants.size() << " instants to "
          << request.name << " (now " << response.length
          << " instants, version " << response.version << ")\n";
      return Status::OK();
    case service::wire::Op::kGet: {
      if (!response.has_series) {
        return Status::Internal("server acknowledged get without a series");
      }
      PPM_RETURN_IF_ERROR(
          SaveSeries(response.series, args.GetString("output", "")));
      out << "exported " << response.series.length() << " instants from "
          << request.name << "\n";
      return Status::OK();
    }
    case service::wire::Op::kMine:
    case service::wire::Op::kQuery: {
      PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 20));
      out << "period=" << response.period << " m=" << response.num_periods
          << " version=" << response.version
          << " length=" << response.length
          << " outcome=" << OutcomeName(response.cache_outcome)
          << " patterns=" << response.patterns.size() << "\n";
      return PrintWirePatterns(response, top, out);
    }
    case service::wire::Op::kStats: {
      if (args.Has("stats-json")) {
        const std::string path = args.GetString("stats-json", "");
        std::ofstream file(path, std::ios::trunc);
        file << response.stats_json;
        if (!file.good()) return Status::IoError("cannot write: " + path);
        out << "wrote stats to " << path << "\n";
      } else {
        out << response.stats_json << "\n";
      }
      if (args.Has("metrics-prom")) {
        const std::string path = args.GetString("metrics-prom", "");
        std::ofstream file(path, std::ios::trunc);
        file << response.metrics_prom;
        if (!file.good()) return Status::IoError("cannot write: " + path);
        out << "wrote metrics to " << path << "\n";
      }
      return Status::OK();
    }
    case service::wire::Op::kShutdown:
      out << "server draining\n";
      return Status::OK();
    case service::wire::Op::kHealth:
    case service::wire::Op::kReady:
      break;  // Handled before the switch.
  }
  return Status::Internal("unreachable client action");
}

}  // namespace ppm::cli
