// Entry point of the `ppm` command-line tool. All logic lives in
// `cli/commands.{h,cc}` so it can be unit-tested against in-memory streams.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ppm::cli::RunCli(args, std::cout, std::cerr);
}
