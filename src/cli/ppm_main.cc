// Entry point of the `ppm` command-line tool. All logic lives in
// `cli/commands.{h,cc}` so it can be unit-tested against in-memory streams.

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

namespace {

// Cancelling the token is one relaxed atomic store, so it is safe from a
// signal handler. Miners poll it at segment/level granularity and unwind
// with kCancelled (exit code 5), leaving partial files and the terminal in
// a clean state; a second Ctrl-C falls back to the default hard kill.
void HandleSigint(int) {
  ppm::cli::GlobalCancelToken().Cancel();
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, HandleSigint);
  // A peer (ppmd, or a pipe reader like `head`) closing mid-write must
  // surface as an EPIPE write error to handle, not a process-killing
  // SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  std::vector<std::string> args(argv + 1, argv + argc);
  return ppm::cli::RunCli(args, std::cout, std::cerr);
}
