#ifndef PPM_CLI_COMMAND_UTIL_H_
#define PPM_CLI_COMMAND_UTIL_H_

#include <ostream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::cli {

/// Shared helpers for the command adapters (`commands_*.cc`). The commands
/// themselves are thin: flag parsing here, the actual work in the library
/// layers (service, core, stream, ...).

/// Loads `--input`-style series paths: text codec for `.txt`, binary
/// otherwise (delegates to `service::LoadSeriesFile`).
Result<tsdb::TimeSeries> LoadSeries(const std::string& path);

/// Writes `--output`-style series paths with the same suffix convention.
Status SaveSeries(const tsdb::TimeSeries& series, const std::string& path);

/// Builds `MiningOptions` from the shared mining flags (--period,
/// --min-conf, --min-count, --max-letters, --threads, --deadline-ms,
/// --memory-budget-mb, --budget-policy) and attaches the global SIGINT
/// cancel token.
Result<MiningOptions> MiningOptionsFromArgs(const ArgMap& args);

/// Prints up to `top` pattern lines (`  count=N conf=C  <pattern>`);
/// 0 means all. This format is shared by `mine`, `stream`, and `client`,
/// so their outputs diff cleanly against each other.
void PrintPatterns(const std::vector<FrequentPattern>& patterns,
                   const tsdb::SymbolTable& symbols, uint64_t top,
                   std::ostream& out);

}  // namespace ppm::cli

#endif  // PPM_CLI_COMMAND_UTIL_H_
