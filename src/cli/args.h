#ifndef PPM_CLI_ARGS_H_
#define PPM_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ppm::cli {

/// Minimal command-line flag parser for the `ppm` tool.
///
/// Accepted forms: `--key value`, `--key=value`, and bare `--switch`
/// (value "true"). Anything not starting with `--` is a positional
/// argument. `--` by itself ends flag parsing.
class ArgMap {
 public:
  /// Parses raw arguments (excluding argv[0] and the subcommand).
  static Result<ArgMap> Parse(const std::vector<std::string>& args);

  bool Has(std::string_view key) const;

  /// String value of `key`, or `fallback` when absent.
  std::string GetString(std::string_view key, std::string fallback) const;

  /// Unsigned integer value; `fallback` when absent; error on non-numeric.
  Result<uint64_t> GetUint(std::string_view key, uint64_t fallback) const;

  /// Floating-point value; `fallback` when absent; error on non-numeric.
  Result<double> GetDouble(std::string_view key, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Errors if any parsed flag is not in `allowed` -- catches typos like
  /// `--min-cof` instead of silently using the default. Global flags that
  /// `RunCli` consumes before dispatch (`--log-level`) are always allowed.
  Status CheckAllowed(const std::set<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ppm::cli

#endif  // PPM_CLI_ARGS_H_
