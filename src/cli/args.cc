#include "cli/args.h"

#include <cstdlib>

#include "util/string_util.h"

namespace ppm::cli {

Result<ArgMap> ArgMap::Parse(const std::vector<std::string>& args) {
  ArgMap map;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      map.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    const size_t equals = key.find('=');
    if (equals != std::string::npos) {
      value = key.substr(equals + 1);
      key = key.substr(0, equals);
    }
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    if (equals != std::string::npos) {
      // Value already extracted from the '=' form.
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[++i];
    } else {
      value = "true";  // Bare switch.
    }
    if (map.values_.contains(key)) {
      return Status::InvalidArgument("duplicate flag: --" + key);
    }
    map.values_.emplace(std::move(key), std::move(value));
  }
  return map;
}

bool ArgMap::Has(std::string_view key) const {
  return values_.contains(std::string(key));
}

std::string ArgMap::GetString(std::string_view key, std::string fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  return it->second;
}

Result<uint64_t> ArgMap::GetUint(std::string_view key, uint64_t fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  uint64_t value = 0;
  if (!ParseUint64(it->second, &value)) {
    return Status::InvalidArgument("flag --" + std::string(key) +
                                   " expects an unsigned integer, got '" +
                                   it->second + "'");
  }
  return value;
}

Result<double> ArgMap::GetDouble(std::string_view key, double fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + std::string(key) +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return value;
}

Status ArgMap::CheckAllowed(const std::set<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    // Flags the driver (`RunCli`) consumes before dispatch are valid with
    // every command.
    if (key == "log-level") continue;
    if (!allowed.contains(key)) {
      return Status::InvalidArgument("unknown flag: --" + key);
    }
  }
  return Status::OK();
}

}  // namespace ppm::cli
