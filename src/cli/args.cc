#include "cli/args.h"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.h"

namespace ppm::cli {

namespace {

/// Levenshtein distance, used only for "did you mean" hints on unknown
/// flags; flag names are short so the quadratic table is fine.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t previous = row[j];
      const size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

}  // namespace

Result<ArgMap> ArgMap::Parse(const std::vector<std::string>& args) {
  ArgMap map;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      map.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    const size_t equals = key.find('=');
    if (equals != std::string::npos) {
      value = key.substr(equals + 1);
      key = key.substr(0, equals);
    }
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    if (equals != std::string::npos) {
      // Value already extracted from the '=' form.
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[++i];
    } else {
      value = "true";  // Bare switch.
    }
    if (map.values_.contains(key)) {
      return Status::InvalidArgument("duplicate flag: --" + key);
    }
    map.values_.emplace(std::move(key), std::move(value));
  }
  return map;
}

bool ArgMap::Has(std::string_view key) const {
  return values_.contains(std::string(key));
}

std::string ArgMap::GetString(std::string_view key, std::string fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  return it->second;
}

Result<uint64_t> ArgMap::GetUint(std::string_view key, uint64_t fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  uint64_t value = 0;
  if (!ParseUint64(it->second, &value)) {
    return Status::InvalidArgument("flag --" + std::string(key) +
                                   " expects an unsigned integer, got '" +
                                   it->second + "'");
  }
  return value;
}

Result<double> ArgMap::GetDouble(std::string_view key, double fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + std::string(key) +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return value;
}

Status ArgMap::CheckAllowed(const std::set<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    // Flags the driver (`RunCli`) consumes before dispatch are valid with
    // every command.
    if (key == "log-level") continue;
    if (!allowed.contains(key)) {
      // A misspelling like --min-cof is close to exactly one real flag;
      // suggest it. Distance > 2 is probably a different flag entirely.
      std::string nearest;
      size_t best = 3;
      for (const std::string& candidate : allowed) {
        const size_t distance = EditDistance(key, candidate);
        if (distance < best) {
          best = distance;
          nearest = candidate;
        }
      }
      std::string message = "unknown flag: --" + key;
      if (!nearest.empty()) {
        message += " (did you mean --" + nearest + "?)";
      }
      return Status::InvalidArgument(std::move(message));
    }
  }
  return Status::OK();
}

}  // namespace ppm::cli
