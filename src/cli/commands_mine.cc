// Mining-side command adapters: mine, scan, apply, evolve, suggest.

#include <algorithm>
#include <fstream>

#include "analysis/period_suggest.h"
#include "cli/command_util.h"
#include "cli/commands.h"
#include "core/maximal.h"
#include "core/maximal_miner.h"
#include "core/miner.h"
#include "core/multi_period.h"
#include "core/pattern_io.h"
#include "evolve/evolution.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rules/rules.h"
#include "tsdb/series_source.h"

namespace ppm::cli {

Status RunMine(const ArgMap& args, std::ostream& out) {
  // Worker mode: `ppm dist run` launches `ppm mine --shard N ...`
  // subprocesses. It has its own flag set (commands_dist.cc).
  if (args.Has("shard")) return RunMineShard(args, out);
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period", "min-conf",
                                         "min-count", "algorithm",
                                         "max-letters", "threads", "maximal",
                                         "rules", "top", "save", "stats-json",
                                         "metrics-prom", "trace-out",
                                         "deadline-ms", "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 50));

  // Scope metrics and spans to this run so the emitted report covers only
  // the work below (the registry is process-global).
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const std::string algorithm = args.GetString("algorithm", "hitset");
  tsdb::InMemorySeriesSource source(&series);
  Result<MiningResult> mined = Status::Internal("no algorithm selected");
  if (algorithm == "hitset") {
    mined = Mine(source, options, Algorithm::kMaxSubpatternHitSet);
  } else if (algorithm == "apriori") {
    mined = Mine(source, options, Algorithm::kApriori);
  } else if (algorithm == "maximal") {
    mined = MineMaximalHitSet(source, options);
  } else {
    return Status::InvalidArgument(
        "--algorithm must be one of: hitset, apriori, maximal");
  }
  if (!mined.ok()) {
    // An interrupted or failed run still emits its report when one was
    // requested: the captured metrics (segments scanned, fault counters)
    // are the partial-progress record of how far the run got.
    if (args.Has("stats-json")) {
      obs::RunReport report("mine");
      report.AddMeta("algorithm", algorithm);
      report.AddMeta("input", args.GetString("input", ""));
      report.AddMeta("period", std::to_string(options.period));
      report.AddMeta("error", mined.status().ToString());
      obs::AddBuildMeta(&report);
      obs::RecordResourceMetrics();
      report.CaptureGlobal();
      PPM_RETURN_IF_ERROR(report.WriteJson(args.GetString("stats-json", "")));
    }
    return mined.status();
  }
  MiningResult result = std::move(*mined);

  out << "period=" << options.period << " m=" << result.stats().num_periods
      << " |F1|=" << result.stats().num_f1_letters
      << " scans=" << result.stats().scans << " patterns=" << result.size()
      << "\n";

  if (args.Has("maximal") && algorithm != "maximal") {
    const auto maximal = MaximalPatterns(result);
    out << "maximal patterns: " << maximal.size() << "\n";
    PrintPatterns(maximal, series.symbols(), top, out);
  } else {
    PrintPatterns(result.patterns(), series.symbols(), top, out);
  }

  if (args.Has("rules")) {
    PPM_ASSIGN_OR_RETURN(const double rule_conf, args.GetDouble("rules", 0.9));
    PPM_ASSIGN_OR_RETURN(const auto rules,
                         rules::GenerateRules(result, rule_conf));
    out << "rules (confidence >= " << rule_conf << "): " << rules.size()
        << "\n";
    uint64_t shown = 0;
    for (const auto& rule : rules) {
      if (top != 0 && shown++ >= top) break;
      out << "  " << rule.Format(series.symbols()) << "\n";
    }
  }
  if (args.Has("save")) {
    const std::string save_path = args.GetString("save", "");
    PPM_RETURN_IF_ERROR(WritePatternsFile(result, series.symbols(), save_path));
    out << "saved " << result.size() << " patterns to " << save_path << "\n";
  }
  if (args.Has("trace-out")) {
    const std::string trace_path = args.GetString("trace-out", "");
    PPM_RETURN_IF_ERROR(obs::Tracer::Global().WriteChromeTrace(trace_path));
    out << "wrote trace to " << trace_path << "\n";
  }
  if (args.Has("stats-json")) {
    const std::string stats_path = args.GetString("stats-json", "");
    obs::RunReport report("mine");
    report.AddMeta("algorithm", algorithm);
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("period", std::to_string(options.period));
    report.AddMeta("patterns", std::to_string(result.size()));
    obs::AddBuildMeta(&report);
    obs::RecordResourceMetrics();
    report.AddRawSection("mining_stats", result.stats().ToJson());
    report.CaptureGlobal();
    PPM_RETURN_IF_ERROR(report.WriteJson(stats_path));
    out << "wrote stats to " << stats_path << "\n";
  }
  if (args.Has("metrics-prom")) {
    const std::string prom_path = args.GetString("metrics-prom", "");
    obs::RecordResourceMetrics();
    std::ofstream prom(prom_path, std::ios::trunc);
    prom << obs::MetricsRegistry::Global().RenderPrometheus();
    if (!prom) {
      return Status::Internal("failed to write " + prom_path);
    }
    out << "wrote metrics to " << prom_path << "\n";
  }
  return Status::OK();
}

Status RunApply(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"patterns", "input", "min-drop"}));
  const std::string patterns_path = args.GetString("patterns", "");
  if (patterns_path.empty()) {
    return Status::InvalidArgument("--patterns is required");
  }
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(const MiningResult patterns,
                       ReadPatternsFile(patterns_path, &series.symbols()));
  PPM_ASSIGN_OR_RETURN(const double min_drop, args.GetDouble("min-drop", 0.0));
  PPM_ASSIGN_OR_RETURN(const auto applied, ApplyPatterns(patterns, series));

  out << "applied " << applied.size() << " patterns\n";
  for (const AppliedPattern& row : applied) {
    const double drop = row.old_confidence - row.new_confidence;
    if (drop < min_drop) continue;
    char buffer[72];
    std::snprintf(buffer, sizeof(buffer),
                  "  old=%.4f new=%.4f (%+.4f)  ", row.old_confidence,
                  row.new_confidence, row.new_confidence - row.old_confidence);
    out << buffer << row.pattern.Format(series.symbols()) << "\n";
  }
  return Status::OK();
}

Status RunEvolve(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period", "window",
                                         "min-conf", "min-count", "threads",
                                         "top", "deadline-ms",
                                         "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t window,
                       args.GetUint("window", options.period * 100ull));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 5));

  PPM_ASSIGN_OR_RETURN(const auto windows,
                       evolve::MineWindows(series, window, options));
  out << windows.size() << " windows of " << window << " instants\n";
  for (size_t w = 0; w < windows.size(); ++w) {
    out << "window " << w << " [start " << windows[w].start << "]: "
        << windows[w].result.size() << " patterns\n";
    if (w == 0) continue;
    const auto diff =
        evolve::DiffResults(windows[w - 1].result, windows[w].result, 0.1);
    for (const auto& entry : diff.appeared) {
      out << "  + " << entry.pattern.Format(series.symbols()) << "\n";
    }
    for (const auto& entry : diff.vanished) {
      out << "  - " << entry.pattern.Format(series.symbols()) << "\n";
    }
    for (const auto& change : diff.shifted) {
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "  ~ %.2f -> %.2f  ",
                    change.before_confidence, change.after_confidence);
      out << buffer << change.pattern.Format(series.symbols()) << "\n";
    }
  }

  const auto stability = evolve::StabilityReport(windows);
  out << "most stable patterns:\n";
  uint64_t shown = 0;
  for (const auto& entry : stability) {
    if (top != 0 && shown++ >= top) break;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  %u/%zu windows, mean conf %.2f  ",
                  entry.windows_present, windows.size(),
                  entry.mean_confidence);
    out << buffer << entry.pattern.Format(series.symbols()) << "\n";
  }
  return Status::OK();
}

Status RunScan(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period-low", "period-high",
                                         "min-conf", "min-count", "method",
                                         "max-letters", "threads", "top",
                                         "deadline-ms", "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t low, args.GetUint("period-low", 2));
  PPM_ASSIGN_OR_RETURN(const uint64_t high, args.GetUint("period-high", 16));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 3));

  const std::string method = args.GetString("method", "shared");
  tsdb::InMemorySeriesSource source(&series);
  MultiPeriodResult scan;
  if (method == "shared") {
    PPM_ASSIGN_OR_RETURN(
        scan, MineMultiPeriodShared(source, static_cast<uint32_t>(low),
                                    static_cast<uint32_t>(high), options));
  } else if (method == "looped") {
    PPM_ASSIGN_OR_RETURN(
        scan, MineMultiPeriodLooped(source, static_cast<uint32_t>(low),
                                    static_cast<uint32_t>(high), options));
  } else {
    return Status::InvalidArgument("--method must be shared or looped");
  }

  out << "scanned periods " << low << ".." << high << " in "
      << scan.total_scans << " scans of the series\n";
  for (const auto& [period, result] : scan.per_period) {
    if (result.empty()) continue;
    out << "period " << period << ": " << result.size()
        << " frequent patterns\n";
    // Show the longest few.
    std::vector<FrequentPattern> sorted = result.patterns();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FrequentPattern& a, const FrequentPattern& b) {
                       return a.pattern.LetterCount() > b.pattern.LetterCount();
                     });
    if (top != 0 && sorted.size() > top) sorted.resize(top);
    PrintPatterns(sorted, series.symbols(), 0, out);
  }
  return Status::OK();
}

Status RunSuggest(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"input", "period-low", "period-high", "per-feature", "top"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(const uint64_t low, args.GetUint("period-low", 2));
  PPM_ASSIGN_OR_RETURN(const uint64_t high, args.GetUint("period-high", 64));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 10));

  std::vector<analysis::PeriodScore> scores;
  if (args.Has("per-feature")) {
    PPM_ASSIGN_OR_RETURN(scores, analysis::SuggestPeriodsPerFeature(
                                     series, static_cast<uint32_t>(low),
                                     static_cast<uint32_t>(high)));
  } else {
    PPM_ASSIGN_OR_RETURN(
        scores, analysis::SuggestPeriods(series, static_cast<uint32_t>(low),
                                         static_cast<uint32_t>(high)));
  }
  const auto fundamentals = analysis::FundamentalPeriods(scores);
  out << "period  concentration  confidence  letter\n";
  uint64_t shown = 0;
  for (const analysis::PeriodScore& score : fundamentals) {
    if (top != 0 && shown++ >= top) break;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%-7u %-14.3f %-11.3f ",
                  score.period, score.concentration, score.confidence);
    out << buffer << series.symbols().NameOrPlaceholder(score.feature) << "@+"
        << score.position << "\n";
  }
  return Status::OK();
}

}  // namespace ppm::cli
