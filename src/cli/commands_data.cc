// Data-side command adapters: generate, bucketize, discretize, stats,
// convert, db. `db` runs on the service layer's `SeriesStore` -- the same
// catalog + tail-WAL code path the `ppmd` daemon serves -- so a catalog
// written by the daemon reads back identically from the CLI.

#include <fstream>

#include "cli/command_util.h"
#include "cli/commands.h"
#include "discretize/discretizer.h"
#include "etl/bucketizer.h"
#include "etl/event_log.h"
#include "service/series_store.h"
#include "synth/generator.h"

namespace ppm::cli {

Status RunGenerate(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"output", "length", "period",
                                         "max-pat-length", "num-f1",
                                         "num-features", "conf", "noise",
                                         "seed"}));
  synth::GeneratorOptions options;
  PPM_ASSIGN_OR_RETURN(options.length, args.GetUint("length", 100000));
  PPM_ASSIGN_OR_RETURN(const uint64_t period, args.GetUint("period", 50));
  options.period = static_cast<uint32_t>(period);
  PPM_ASSIGN_OR_RETURN(const uint64_t mpl, args.GetUint("max-pat-length", 8));
  options.max_pat_length = static_cast<uint32_t>(mpl);
  PPM_ASSIGN_OR_RETURN(const uint64_t num_f1, args.GetUint("num-f1", 12));
  options.num_f1 = static_cast<uint32_t>(num_f1);
  PPM_ASSIGN_OR_RETURN(const uint64_t num_features,
                       args.GetUint("num-features", 100));
  options.num_features = static_cast<uint32_t>(num_features);
  PPM_ASSIGN_OR_RETURN(options.anchor_confidence, args.GetDouble("conf", 0.9));
  PPM_ASSIGN_OR_RETURN(options.noise_mean, args.GetDouble("noise", 1.0));
  PPM_ASSIGN_OR_RETURN(options.seed, args.GetUint("seed", 42));

  PPM_ASSIGN_OR_RETURN(const synth::GeneratedSeries generated,
                       synth::GenerateSeries(options));
  PPM_RETURN_IF_ERROR(
      SaveSeries(generated.series, args.GetString("output", "")));
  out << "wrote " << generated.series.length() << " instants to "
      << args.GetString("output", "") << "\n"
      << "planted max-pattern: "
      << generated.anchor.Format(generated.series.symbols()) << "\n";
  return Status::OK();
}

Status RunBucketize(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"events", "output", "width", "origin", "end", "calendar"}));
  const std::string events_path = args.GetString("events", "");
  if (events_path.empty()) {
    return Status::InvalidArgument("--events is required");
  }
  PPM_ASSIGN_OR_RETURN(const etl::EventLog log, etl::ReadEventLog(events_path));

  etl::BucketizeOptions options;
  PPM_ASSIGN_OR_RETURN(const uint64_t width, args.GetUint("width", 3600));
  options.bucket_width = static_cast<int64_t>(width);
  if (args.Has("origin")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t origin, args.GetUint("origin", 0));
    options.origin = static_cast<int64_t>(origin);
  }
  if (args.Has("end")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t end, args.GetUint("end", 0));
    options.end = static_cast<int64_t>(end);
  }
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series, etl::Bucketize(log, options));

  if (args.Has("calendar")) {
    const std::string calendar = args.GetString("calendar", "");
    PPM_ASSIGN_OR_RETURN(const int64_t origin,
                         etl::ResolveOrigin(log, options));
    if (calendar == "dow") {
      etl::AnnotateCalendar(&series, origin, options.bucket_width,
                            etl::CalendarFeature::kDayOfWeek);
    } else if (calendar == "hour") {
      etl::AnnotateCalendar(&series, origin, options.bucket_width,
                            etl::CalendarFeature::kHourOfDay);
    } else {
      return Status::InvalidArgument("--calendar must be dow or hour");
    }
  }

  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "bucketized " << log.size() << " events into " << series.length()
      << " instants (" << series.symbols().size() << " features)\n";
  return Status::OK();
}

Status RunDiscretize(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"values", "output", "bins", "method",
                                         "prefix", "movement", "epsilon"}));
  const std::string values_path = args.GetString("values", "");
  if (values_path.empty()) {
    return Status::InvalidArgument("--values is required");
  }
  std::ifstream in(values_path);
  if (!in) return Status::IoError("cannot open: " + values_path);
  std::vector<double> values;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const double value = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": not a number: " + line);
    }
    values.push_back(value);
  }
  if (in.bad()) return Status::IoError("read failed: " + values_path);

  tsdb::TimeSeries series;
  if (args.Has("movement")) {
    PPM_ASSIGN_OR_RETURN(const double epsilon, args.GetDouble("epsilon", 0.0));
    PPM_ASSIGN_OR_RETURN(
        series, discretize::EncodeMovement(values, epsilon,
                                           args.GetString("prefix", "")));
  } else {
    discretize::DiscretizeOptions options;
    PPM_ASSIGN_OR_RETURN(const uint64_t bins, args.GetUint("bins", 4));
    options.num_bins = static_cast<uint32_t>(bins);
    options.prefix = args.GetString("prefix", "lvl");
    const std::string method = args.GetString("method", "width");
    if (method == "width") {
      options.method = discretize::BinningMethod::kEqualWidth;
    } else if (method == "freq") {
      options.method = discretize::BinningMethod::kEqualFrequency;
    } else if (method == "gaussian") {
      options.method = discretize::BinningMethod::kGaussian;
    } else {
      return Status::InvalidArgument(
          "--method must be width, freq, or gaussian");
    }
    PPM_ASSIGN_OR_RETURN(series, discretize::Discretize(values, options));
  }

  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "discretized " << values.size() << " values into "
      << series.length() << " instants (" << series.symbols().size()
      << " features)\n";
  return Status::OK();
}

Status RunStats(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  uint64_t total_features = 0;
  uint64_t empty_instants = 0;
  uint32_t max_features = 0;
  for (const tsdb::FeatureSet& instant : series.instants()) {
    const uint32_t count = instant.Count();
    total_features += count;
    if (count == 0) ++empty_instants;
    if (count > max_features) max_features = count;
  }
  out << "instants:        " << series.length() << "\n"
      << "features:        " << series.symbols().size() << "\n"
      << "feature events:  " << total_features << "\n"
      << "empty instants:  " << empty_instants << "\n"
      << "max per instant: " << max_features << "\n";
  if (series.length() > 0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(total_features) /
                      static_cast<double>(series.length()));
    out << "avg per instant: " << buffer << "\n";
  }
  return Status::OK();
}

Status RunConvert(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "output"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "converted " << series.length() << " instants\n";
  return Status::OK();
}

Status RunDb(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(
      args.CheckAllowed({"dir", "name", "input", "output"}));
  if (args.positional().size() != 1) {
    return Status::InvalidArgument(
        "db needs exactly one action: list, put, get, or drop");
  }
  const std::string& action = args.positional()[0];
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  PPM_ASSIGN_OR_RETURN(const auto store, service::SeriesStore::Open(dir));

  if (action == "list") {
    for (const std::string& name : store->List()) {
      // Snapshots include each series' tail WAL, so a catalog a daemon
      // appended to reports the served lengths, not just the payloads'.
      auto snapshot = store->Snapshot(name);
      if (snapshot.ok()) {
        out << name << "  (" << snapshot->series.length() << " instants, "
            << snapshot->series.symbols().size() << " features)\n";
      } else {
        out << name << "  (unreadable: " << snapshot.status().ToString()
            << ")\n";
      }
    }
    out << store->List().size() << " series in " << dir << "\n";
    return Status::OK();
  }

  const std::string name = args.GetString("name", "");
  if (name.empty()) return Status::InvalidArgument("--name is required");
  if (action == "put") {
    PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series,
                         LoadSeries(args.GetString("input", "")));
    PPM_RETURN_IF_ERROR(store->Put(name, series));
    out << "stored " << series.length() << " instants as " << name << "\n";
    return Status::OK();
  }
  if (action == "get") {
    PPM_ASSIGN_OR_RETURN(const service::SeriesSnapshot snapshot,
                         store->Snapshot(name));
    PPM_RETURN_IF_ERROR(
        SaveSeries(snapshot.series, args.GetString("output", "")));
    out << "exported " << snapshot.series.length() << " instants from "
        << name << "\n";
    return Status::OK();
  }
  if (action == "drop") {
    PPM_RETURN_IF_ERROR(store->Drop(name));
    out << "dropped " << name << "\n";
    return Status::OK();
  }
  return Status::InvalidArgument("unknown db action: " + action);
}

}  // namespace ppm::cli
