// `ppm dist` (plan/run/status/merge) and the `ppm mine --shard` worker
// mode: the CLI face of the fault-tolerant distributed shard mining
// subsystem in src/dist/ (docs/DISTRIBUTED.md).

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "cli/command_util.h"
#include "cli/commands.h"
#include "core/pattern_io.h"
#include "dist/coordinator.h"
#include "dist/merger.h"
#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "dist/worker.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "tsdb/fault_injection.h"
#include "util/string_util.h"

namespace ppm::cli {

namespace {

/// Exit status a chaos crash-after-write uses: looks like a SIGKILLed
/// process to the supervising shell (the WAL crash seam's convention).
constexpr int kChaosExitStatus = 137;

Result<bool> ParsePartialFlag(const ArgMap& args) {
  const std::string partial = args.GetString("partial", "fail");
  if (partial == "ok") return true;
  if (partial == "fail") return false;
  return Status::InvalidArgument("--partial must be ok or fail");
}

/// Comma-separated `--inputs` (with `--input` accepted as an alias).
Result<std::vector<std::string>> ParseInputList(const ArgMap& args) {
  std::string joined = args.GetString("inputs", "");
  if (joined.empty()) joined = args.GetString("input", "");
  if (joined.empty()) {
    return Status::InvalidArgument("--inputs is required (comma-separated)");
  }
  std::vector<std::string> inputs;
  std::stringstream stream(joined);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    if (!piece.empty()) inputs.push_back(piece);
  }
  if (inputs.empty()) {
    return Status::InvalidArgument("--inputs lists no paths");
  }
  return inputs;
}

void PrintMergedInput(const dist::ShardPlan& plan,
                      const dist::MergedInput& merged, uint64_t top,
                      std::ostream& out) {
  const uint64_t plan_shards =
      std::count_if(plan.shards.begin(), plan.shards.end(),
                    [&](const dist::ShardSpec& spec) {
                      return spec.input_index == merged.input_index;
                    });
  out << "input=" << merged.path << " period=" << plan.period
      << " m=" << merged.result.stats().num_periods
      << " |F1|=" << merged.result.stats().num_f1_letters
      << " shards=" << plan_shards - merged.missing.size() << "/"
      << plan_shards << " patterns=" << merged.result.size();
  if (merged.partial()) {
    out << " PARTIAL";
    for (const dist::ShardSpec& gap : merged.missing) {
      out << " missing=[" << gap.segment_begin << "," << gap.segment_end
          << ")";
    }
  }
  out << "\n";
  PrintPatterns(merged.result.patterns(), merged.symbols, top, out);
}

Status WriteDistReport(const ArgMap& args, const dist::ShardPlan& plan,
                       const dist::MergeOutcome* outcome,
                       const std::string& action) {
  if (!args.Has("stats-json")) return Status::OK();
  obs::RunReport report("dist");
  report.AddMeta("action", action);
  report.AddMeta("plan", args.GetString("plan", ""));
  report.AddMeta("shards", std::to_string(plan.shards.size()));
  report.AddMeta("inputs", std::to_string(plan.inputs.size()));
  if (outcome != nullptr) {
    uint64_t patterns = 0;
    for (const dist::MergedInput& merged : outcome->inputs) {
      patterns += merged.result.size();
    }
    report.AddMeta("patterns", std::to_string(patterns));
    report.AddMeta("shards_merged", std::to_string(outcome->shards_merged));
    report.AddMeta("shards_missing",
                   std::to_string(outcome->shards_missing));
  }
  obs::AddBuildMeta(&report);
  obs::RecordResourceMetrics();
  report.CaptureGlobal();
  return report.WriteJson(args.GetString("stats-json", ""));
}

Status SaveMerged(const ArgMap& args, const dist::MergeOutcome& outcome,
                  std::ostream& out) {
  if (!args.Has("save")) return Status::OK();
  if (outcome.inputs.size() != 1) {
    return Status::InvalidArgument(
        "--save needs a single-input plan (pattern files carry one period "
        "header)");
  }
  const dist::MergedInput& merged = outcome.inputs.front();
  const std::string save_path = args.GetString("save", "");
  PPM_RETURN_IF_ERROR(
      WritePatternsFile(merged.result, merged.symbols, save_path));
  out << "saved " << merged.result.size() << " patterns to " << save_path
      << "\n";
  return Status::OK();
}

Status RunDistPlan(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"inputs", "input", "plan", "period", "min-conf", "min-count",
       "max-letters", "shards-per-input"}));
  const std::string plan_path = args.GetString("plan", "");
  if (plan_path.empty()) return Status::InvalidArgument("--plan is required");
  PPM_ASSIGN_OR_RETURN(const std::vector<std::string> input_paths,
                       ParseInputList(args));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t shards_per_input,
                       args.GetUint("shards-per-input", 8));

  std::vector<std::pair<std::string, uint64_t>> inputs;
  inputs.reserve(input_paths.size());
  for (const std::string& path : input_paths) {
    PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series, LoadSeries(path));
    inputs.emplace_back(path, series.length());
  }
  PPM_ASSIGN_OR_RETURN(
      dist::ShardPlan plan,
      dist::PlanShards(inputs, options,
                       static_cast<uint32_t>(shards_per_input)));
  PPM_RETURN_IF_ERROR(dist::WritePlanFile(&plan, plan_path));
  out << "planned " << plan.shards.size() << " shards over "
      << plan.inputs.size() << " inputs (period=" << plan.period
      << ") -> " << plan_path << "\n";
  for (const dist::ShardSpec& shard : plan.shards) {
    out << "  shard " << shard.shard_id << ": input "
        << plan.inputs[shard.input_index].path << " segments ["
        << shard.segment_begin << "," << shard.segment_end << ")\n";
  }
  return Status::OK();
}

Result<dist::CoordinatorOptions> CoordinatorOptionsFromArgs(
    const ArgMap& args) {
  dist::CoordinatorOptions options;
  options.worker_binary = args.GetString("worker-bin", "");
  PPM_ASSIGN_OR_RETURN(const uint64_t workers, args.GetUint("workers", 4));
  options.max_parallel = static_cast<uint32_t>(workers);
  PPM_ASSIGN_OR_RETURN(const uint64_t max_retries,
                       args.GetUint("max-retries", 2));
  options.max_retries = static_cast<uint32_t>(max_retries);
  PPM_ASSIGN_OR_RETURN(options.backoff_initial_ms,
                       args.GetUint("backoff-ms", 50));
  PPM_ASSIGN_OR_RETURN(options.backoff_max_ms,
                       args.GetUint("backoff-max-ms", 2000));
  PPM_ASSIGN_OR_RETURN(options.shard_timeout_ms,
                       args.GetUint("timeout-ms", 0));
  PPM_ASSIGN_OR_RETURN(options.partial_ok, ParsePartialFlag(args));

  // Chaos plumbing for the kill-point tests and the CI smoke: one chaos
  // recipe applied to every shard in --chaos-shards.
  if (args.Has("chaos-shards")) {
    std::vector<std::string> chaos_flags;
    const auto forward = [&](const std::string& cli_flag,
                             const std::string& worker_flag) -> Status {
      if (!args.Has(cli_flag)) return Status::OK();
      PPM_ASSIGN_OR_RETURN(const uint64_t value, args.GetUint(cli_flag, 0));
      chaos_flags.push_back("--" + worker_flag);
      chaos_flags.push_back(std::to_string(value));
      return Status::OK();
    };
    PPM_RETURN_IF_ERROR(
        forward("chaos-kill-after-segments", "crash-after-segments"));
    PPM_RETURN_IF_ERROR(forward("chaos-hang-ms", "hang-ms"));
    PPM_RETURN_IF_ERROR(forward("chaos-exit", "fail-exit"));
    PPM_RETURN_IF_ERROR(forward("chaos-until-attempt", "chaos-until-attempt"));
    if (args.Has("chaos-crash-after-write")) {
      chaos_flags.push_back("--crash-after-write");
    }
    std::stringstream stream(args.GetString("chaos-shards", ""));
    std::string piece;
    while (std::getline(stream, piece, ',')) {
      if (piece.empty()) continue;
      char* end = nullptr;
      const unsigned long shard_id = std::strtoul(piece.c_str(), &end, 10);
      if (end == piece.c_str() || *end != '\0') {
        return Status::InvalidArgument("--chaos-shards: bad shard id '" +
                                       piece + "'");
      }
      options.chaos_args[static_cast<uint32_t>(shard_id)] = chaos_flags;
    }
  }
  if (args.Has("inject-transient-reads")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t transient,
                         args.GetUint("inject-transient-reads", 0));
    options.worker_args.push_back("--inject-transient-reads");
    options.worker_args.push_back(std::to_string(transient));
  }
  return options;
}

Status RunDistRun(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"plan", "results", "workers", "max-retries", "backoff-ms",
       "backoff-max-ms", "timeout-ms", "partial", "worker-bin", "top",
       "save", "stats-json", "chaos-shards", "chaos-kill-after-segments",
       "chaos-hang-ms", "chaos-exit", "chaos-until-attempt",
       "chaos-crash-after-write", "inject-transient-reads"}));
  const std::string plan_path = args.GetString("plan", "");
  const std::string results_dir = args.GetString("results", "");
  if (plan_path.empty() || results_dir.empty()) {
    return Status::InvalidArgument("--plan and --results are required");
  }
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 50));
  PPM_ASSIGN_OR_RETURN(const dist::ShardPlan plan,
                       dist::ReadPlanFile(plan_path));
  PPM_ASSIGN_OR_RETURN(const dist::CoordinatorOptions coordinator_options,
                       CoordinatorOptionsFromArgs(args));

  // Scope metrics to this run so the emitted report covers only the work
  // below (mirrors `ppm mine`; the registry is process-global).
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const Result<dist::RunSummary> ran =
      dist::RunShards(plan, plan_path, results_dir, coordinator_options);
  if (!ran.ok()) {
    // The failed run still emits its report: the ppm.dist.* counters are
    // the record of what was attempted before the budget ran out.
    PPM_RETURN_IF_ERROR(WriteDistReport(args, plan, nullptr, "run"));
    return ran.status();
  }
  PPM_ASSIGN_OR_RETURN(
      const dist::MergeOutcome outcome,
      dist::MergeFromDir(plan, results_dir, coordinator_options.partial_ok));
  for (const dist::MergedInput& merged : outcome.inputs) {
    PrintMergedInput(plan, merged, top, out);
  }
  out << "dist: shards=" << plan.shards.size()
      << " launched=" << ran->launched << " adopted=" << ran->adopted
      << " retried=" << ran->retried << " failed=" << ran->failed << "\n";
  PPM_RETURN_IF_ERROR(SaveMerged(args, outcome, out));
  PPM_RETURN_IF_ERROR(WriteDistReport(args, plan, &outcome, "run"));
  return Status::OK();
}

Status RunDistStatus(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"plan", "results"}));
  const std::string plan_path = args.GetString("plan", "");
  const std::string results_dir = args.GetString("results", "");
  if (plan_path.empty() || results_dir.empty()) {
    return Status::InvalidArgument("--plan and --results are required");
  }
  PPM_ASSIGN_OR_RETURN(const dist::ShardPlan plan,
                       dist::ReadPlanFile(plan_path));
  uint32_t done = 0;
  for (const dist::ShardSpec& spec : plan.shards) {
    const std::string path =
        dist::ShardResultPath(results_dir, spec.shard_id);
    const Result<dist::ShardResult> read = dist::ReadShardResultFile(path);
    std::string state;
    if (read.ok()) {
      const Status valid = dist::ValidateShardResult(plan, spec.shard_id, *read);
      if (valid.ok()) {
        state = "ok";
        ++done;
      } else {
        state = "invalid (" + valid.message() + ")";
      }
    } else if (read.status().code() == StatusCode::kNotFound) {
      state = "missing";
    } else {
      state = "corrupt (" + read.status().message() + ")";
    }
    out << "shard " << spec.shard_id << " input="
        << plan.inputs[spec.input_index].path << " segments=["
        << spec.segment_begin << "," << spec.segment_end << "): " << state
        << "\n";
  }
  out << done << "/" << plan.shards.size() << " shards have valid results\n";
  return Status::OK();
}

Status RunDistMerge(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"plan", "results", "partial", "top", "save", "stats-json"}));
  const std::string plan_path = args.GetString("plan", "");
  const std::string results_dir = args.GetString("results", "");
  if (plan_path.empty() || results_dir.empty()) {
    return Status::InvalidArgument("--plan and --results are required");
  }
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 50));
  PPM_ASSIGN_OR_RETURN(const bool partial_ok, ParsePartialFlag(args));
  PPM_ASSIGN_OR_RETURN(const dist::ShardPlan plan,
                       dist::ReadPlanFile(plan_path));
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();
  PPM_ASSIGN_OR_RETURN(const dist::MergeOutcome outcome,
                       dist::MergeFromDir(plan, results_dir, partial_ok));
  for (const dist::MergedInput& merged : outcome.inputs) {
    PrintMergedInput(plan, merged, top, out);
  }
  PPM_RETURN_IF_ERROR(SaveMerged(args, outcome, out));
  return WriteDistReport(args, plan, &outcome, "merge");
}

}  // namespace

Status RunMineShard(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"shard", "plan", "results", "attempt", "chaos-until-attempt",
       "crash-after-segments", "crash-after-write", "hang-ms", "fail-exit",
       "inject-transient-reads"}));
  PPM_ASSIGN_OR_RETURN(const uint64_t shard_id, args.GetUint("shard", 0));
  const std::string plan_path = args.GetString("plan", "");
  const std::string results_dir = args.GetString("results", "");
  if (plan_path.empty() || results_dir.empty()) {
    return Status::InvalidArgument(
        "--shard needs --plan and --results (worker mode is launched by "
        "`ppm dist run`)");
  }
  PPM_ASSIGN_OR_RETURN(const uint64_t attempt, args.GetUint("attempt", 1));

  // Chaos seams, all gated on the attempt number so injected failures
  // can be transient (heal on retry) or permanent (gate above the retry
  // budget). Absent gate = chaos on every attempt.
  PPM_ASSIGN_OR_RETURN(
      const uint64_t chaos_until,
      args.GetUint("chaos-until-attempt", UINT64_MAX));
  const bool chaos_active = attempt <= chaos_until;
  if (chaos_active && args.Has("fail-exit")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t exit_code,
                         args.GetUint("fail-exit", 1));
    std::_Exit(static_cast<int>(exit_code));
  }
  if (chaos_active && args.Has("hang-ms")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t hang_ms, args.GetUint("hang-ms", 0));
    std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
  }

  PPM_ASSIGN_OR_RETURN(const dist::ShardPlan plan,
                       dist::ReadPlanFile(plan_path));
  if (shard_id >= plan.shards.size()) {
    return Status::InvalidArgument("--shard " + std::to_string(shard_id) +
                                   " outside the plan");
  }
  const dist::ShardSpec& spec = plan.shards[shard_id];

  // Real storage faults via the existing injection seam: the worker
  // absorbs transient read failures with the same short retry/backoff
  // `tsdb::Database::Get` uses, so an I/O flake costs two sleeps instead
  // of a whole shard attempt. Corruption is never retried -- a bad
  // checksum is a property of the bytes, not the attempt.
  std::unique_ptr<tsdb::ScopedFaultInjection> injection;
  if (args.Has("inject-transient-reads")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t transient,
                         args.GetUint("inject-transient-reads", 0));
    tsdb::FaultPlan fault_plan;
    fault_plan.seed = 1;
    fault_plan.transient_read_failures = static_cast<uint32_t>(transient);
    injection = std::make_unique<tsdb::ScopedFaultInjection>(fault_plan);
  }
  const std::string& input_path = plan.inputs[spec.input_index].path;
  Result<tsdb::TimeSeries> loaded = LoadSeries(input_path);
  for (int read_attempt = 1;
       read_attempt < 3 && !loaded.ok() &&
       loaded.status().code() == StatusCode::kIoError;
       ++read_attempt) {
    obs::MetricsRegistry::Global().GetCounter("ppm.fault.retries").Inc();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(read_attempt == 1 ? 1 : 4));
    loaded = LoadSeries(input_path);
  }
  PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series, std::move(loaded));
  injection.reset();

  uint64_t crash_after_segments = UINT64_MAX;
  if (chaos_active && args.Has("crash-after-segments")) {
    PPM_ASSIGN_OR_RETURN(crash_after_segments,
                         args.GetUint("crash-after-segments", 0));
    if (crash_after_segments == 0) {
      // Cut point 0: die before mining anything.
      ::raise(SIGKILL);
    }
  }
  PPM_ASSIGN_OR_RETURN(
      const dist::ShardResult result,
      dist::MineShardCounts(
          series, plan, static_cast<uint32_t>(shard_id),
          [crash_after_segments](uint64_t segments_done) {
            // The deterministic kill point: a real SIGKILL mid-scan, so
            // the coordinator sees death-by-signal, not a clean exit.
            if (segments_done == crash_after_segments) ::raise(SIGKILL);
          }));
  PPM_RETURN_IF_ERROR(dist::WriteShardResultFile(
      result, dist::ShardResultPath(results_dir,
                                    static_cast<uint32_t>(shard_id))));
  if (chaos_active && args.Has("crash-after-write")) {
    // Death *after* the durable write: the coordinator should classify a
    // failure, then adopt the valid result instead of re-mining.
    std::_Exit(kChaosExitStatus);
  }
  out << "shard=" << shard_id << " attempt=" << attempt << " segments=["
      << spec.segment_begin << "," << spec.segment_end << ") letters="
      << result.letter_counts.size() << " hits=" << result.hits.size()
      << "\n";
  return Status::OK();
}

Status RunDist(const ArgMap& args, std::ostream& out) {
  if (args.positional().size() != 1) {
    return Status::InvalidArgument(
        "dist needs exactly one action: plan, run, status, or merge");
  }
  const std::string& action = args.positional()[0];
  if (action == "plan") return RunDistPlan(args, out);
  if (action == "run") return RunDistRun(args, out);
  if (action == "status") return RunDistStatus(args, out);
  if (action == "merge") return RunDistMerge(args, out);
  return Status::InvalidArgument("unknown dist action: " + action);
}

}  // namespace ppm::cli
