#ifndef PPM_CLI_COMMANDS_H_
#define PPM_CLI_COMMANDS_H_

#include <ostream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm::cli {

/// Process-wide cancellation token attached to every mining command's
/// options. The SIGINT handler in `ppm_main.cc` cancels it, turning Ctrl-C
/// into a clean `kCancelled` return (exit code 5) instead of a hard kill.
CancelToken& GlobalCancelToken();

/// Maps a command's failure `Status` to the process exit code:
/// 2 invalid argument, 3 not found, 4 corruption, 5 cancelled or deadline
/// exceeded, 6 resource exhausted, 1 anything else (docs/ROBUSTNESS.md).
int ExitCodeForStatus(const Status& status);

/// `ppm mine`: mine partial periodic patterns of one period from a series
/// file. Flags: --input, --period, --min-conf|--min-count, --algorithm
/// {apriori,hitset,maximal}, --max-letters, --maximal, --rules CONF, --top N,
/// --stats-json (RunReport JSON), --metrics-prom (Prometheus text format).
Status RunMine(const ArgMap& args, std::ostream& out);

/// `ppm scan`: mine a range of periods. Flags: --input, --period-low,
/// --period-high, --min-conf, --method {shared,looped}, --top N.
Status RunScan(const ArgMap& args, std::ostream& out);

/// `ppm generate`: write a synthetic series (Table 1 generator). Flags:
/// --output, --length, --period, --max-pat-length, --num-f1,
/// --num-features, --conf, --noise, --seed.
Status RunGenerate(const ArgMap& args, std::ostream& out);

/// `ppm suggest`: rank candidate periods by letter concentration. Flags:
/// --input, --period-low, --period-high, --per-feature, --top N.
Status RunSuggest(const ArgMap& args, std::ostream& out);

/// `ppm bucketize`: derive a feature series from a timestamped event log.
/// Flags: --events, --output, --width, --origin, --end, --calendar
/// {dow,hour}.
Status RunBucketize(const ArgMap& args, std::ostream& out);

/// `ppm apply`: re-evaluate saved patterns on another series. Flags:
/// --patterns, --input, --min-drop (only show patterns whose confidence
/// fell by at least this much).
Status RunApply(const ArgMap& args, std::ostream& out);

/// `ppm evolve`: windowed re-mining with diffs. Flags: --input, --period,
/// --window (instants), --min-conf|--min-count, --top.
Status RunEvolve(const ArgMap& args, std::ostream& out);

/// `ppm discretize`: turn a numeric series (one value per line) into a
/// categorical feature series. Flags: --values, --output, --bins, --method
/// {width,freq,gaussian}, --prefix, --movement, --epsilon.
Status RunDiscretize(const ArgMap& args, std::ostream& out);

/// `ppm stats`: summarize a series file. Flags: --input.
Status RunStats(const ArgMap& args, std::ostream& out);

/// `ppm convert`: transcode between the text and binary formats. Flags:
/// --input, --output.
Status RunConvert(const ArgMap& args, std::ostream& out);

/// `ppm db`: catalog operations. First positional is the sub-action:
/// `list|put|get|drop`. Flags: --dir (catalog root), --name,
/// --input (for put), --output (for get).
Status RunDb(const ArgMap& args, std::ostream& out);

/// `ppm stream`: crash-safe one-pass mining with WAL-backed ingestion and
/// periodic checkpoints. Flags: --input, --period, --checkpoint-dir,
/// --checkpoint-every (segments, 0 = final only), --wal-fsync
/// {always,never}, --resume, --seed-prefix, --drift-window,
/// --min-conf|--min-count, --top, --stats-json, --deadline-ms,
/// --crash-after-appends (fault injection for crash-recovery tests).
Status RunStream(const ArgMap& args, std::ostream& out);

/// `ppm client`: talk to a running `ppmd` daemon over its unix socket
/// (PPMRPC1, docs/SERVING.md). First positional is the action:
/// `put|append|get|mine|query|stats|shutdown`. Flags: --socket, --name,
/// --input (put/append), --output (get), --period, --min-conf,
/// --min-count, --max-letters, --algorithm {hitset,apriori},
/// --deadline-ms, --top, --stats-json, --metrics-prom. Server-side
/// failures map to the same exit codes as local runs.
Status RunClient(const ArgMap& args, std::ostream& out);

/// `ppm dist`: fault-tolerant distributed shard mining
/// (docs/DISTRIBUTED.md). First positional is the action:
/// `plan` (split inputs into a durable shard plan), `run` (supervise
/// worker processes with retry/backoff and merge), `status` (per-shard
/// result-file state), `merge` (combine existing results only). A re-run
/// of `run` adopts shards that already have valid results and
/// re-executes only the rest.
Status RunDist(const ArgMap& args, std::ostream& out);

/// `ppm mine --shard N --plan F --results D`: worker mode, launched by
/// the `ppm dist run` coordinator. Mines one shard's raw counts and
/// writes a CRC-framed result file. Chaos flags (`--crash-after-segments`
/// etc.) are deterministic fault seams for the kill-point tests.
Status RunMineShard(const ArgMap& args, std::ostream& out);

/// `ppm version` (also `ppm --version`): print the build fingerprint from
/// obs/build_info (git sha, compiler, build type, flags, sanitizer).
Status RunVersion(const ArgMap& args, std::ostream& out);

/// Every dispatched command name, in usage order. Tests use this to check
/// that `UsageText()` documents each command `RunCli` accepts.
const std::vector<std::string>& CommandNames();

/// Usage text for all commands.
std::string UsageText();

/// Dispatches `argv[1]` to a command; returns the process exit code and
/// prints errors to `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace ppm::cli

#endif  // PPM_CLI_COMMANDS_H_
