// Dispatch and process-level plumbing for the `ppm` CLI. The commands
// themselves live in commands_mine.cc / commands_data.cc /
// commands_stream.cc / commands_client.cc, built on the shared helpers in
// command_util.h and the transport-free service layer in src/service/.

#include "cli/commands.h"

#include "util/log.h"

namespace ppm::cli {

CancelToken& GlobalCancelToken() {
  static CancelToken* token = new CancelToken();
  return *token;
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return 5;
    case StatusCode::kResourceExhausted:
      return 6;
    default:
      return 1;
  }
}

const std::vector<std::string>& CommandNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "mine",     "scan",    "apply",    "evolve", "suggest",
      "bucketize", "discretize", "generate", "stats",  "convert",
      "db",       "stream",  "client",   "dist",   "version"};
  return *names;
}

std::string UsageText() {
  return
      "ppm -- partial periodic pattern mining (Han, Dong & Yin, ICDE 1999)\n"
      "\n"
      "usage: ppm <command> [flags]\n"
      "\n"
      "commands:\n"
      "  mine      mine one period: --input F --period N [--min-conf 0.8]\n"
      "            [--min-count N] [--algorithm hitset|apriori|maximal]\n"
      "            [--max-letters K] [--threads N] [--maximal]\n"
      "            [--rules CONF] [--top N] [--save PATTERNS_FILE]\n"
      "            [--stats-json REPORT_FILE] [--metrics-prom PROM_FILE]\n"
      "            [--trace-out TRACE_FILE]\n"
      "  apply     re-evaluate saved patterns on another series:\n"
      "            --patterns F --input F [--min-drop D]\n"
      "  evolve    windowed re-mining with diffs: --input F --period N\n"
      "            [--window INSTANTS] [--min-conf 0.8] [--top N]\n"
      "  scan      mine a period range: --input F --period-low A\n"
      "            --period-high B [--min-conf 0.8] [--method shared|looped]\n"
      "            [--threads N]\n"
      "  suggest   rank candidate periods: --input F [--period-low A]\n"
      "            [--period-high B] [--per-feature] [--top N]\n"
      "  bucketize derive a series from '<timestamp> <feature>' event lines:\n"
      "            --events F --output F [--width SECS] [--origin T]\n"
      "            [--end T] [--calendar dow|hour]\n"
      "  discretize  numeric lines -> categorical series: --values F\n"
      "            --output F [--bins N] [--method width|freq|gaussian]\n"
      "            [--prefix P] | [--movement [--epsilon E]]\n"
      "  generate  synthesize a series: --output F [--length N] [--period N]\n"
      "            [--max-pat-length N] [--num-f1 N] [--num-features N]\n"
      "            [--conf C] [--noise M] [--seed S]\n"
      "  stats     summarize a series: --input F\n"
      "  convert   transcode text<->binary: --input F --output F\n"
      "  db        series catalog: db list|put|get|drop --dir D [--name N]\n"
      "            [--input F] [--output F]\n"
      "  stream    crash-safe incremental mining: --input F --period N\n"
      "            --checkpoint-dir D [--checkpoint-every SEGMENTS]\n"
      "            [--wal-fsync always|never] [--resume] [--seed-prefix N]\n"
      "            [--drift-window SEGMENTS] [--window SEGMENTS]\n"
      "            [--query-every SEGMENTS] [--compact-every SEGMENTS]\n"
      "            [--min-conf 0.8] [--top N] [--stats-json REPORT_FILE]\n"
      "  client    talk to a running ppmd daemon over its unix socket:\n"
      "            client put|append|get|mine|query|stats|health|ready|\n"
      "            shutdown --socket S [--name N] [--input F] [--output F]\n"
      "            [--period N] [--min-conf 0.8] [--min-count N]\n"
      "            [--max-letters K] [--algorithm hitset|apriori]\n"
      "            [--deadline-ms N] [--tenant T] [--retry-budget-ms N]\n"
      "            [--top N] [--stats-json REPORT_FILE]\n"
      "            [--metrics-prom PROM_FILE] [--connect-wait-ms N]\n"
      "            (connect retries transient refusals for N ms while the\n"
      "            daemon starts; default 1000, 0 disables)\n"
      "  dist      fault-tolerant multi-process mining:\n"
      "            dist plan --inputs F[,F...] --plan PLAN --period N\n"
      "              [--min-conf 0.8] [--min-count N] [--max-letters K]\n"
      "              [--shards-per-input N]\n"
      "            dist run --plan PLAN --results DIR [--workers N]\n"
      "              [--max-retries N] [--backoff-ms N] [--timeout-ms N]\n"
      "              [--partial ok|fail] [--top N] [--save F]\n"
      "              [--stats-json REPORT_FILE]\n"
      "            dist status|merge --plan PLAN --results DIR\n"
      "            (run is resumable: shards with valid results are\n"
      "            adopted, only the rest re-execute)\n"
      "  version   print the build fingerprint (git sha, compiler, flags)\n"
      "\n"
      "global flags (any command):\n"
      "  --log-level debug|info|warn|error|off   diagnostic verbosity\n"
      "                                          (default warn, to stderr)\n"
      "\n"
      "mining flags (mine, scan, evolve):\n"
      "  --deadline-ms N       stop mining after N wall-clock milliseconds\n"
      "                        (exit code 5)\n"
      "  --memory-budget-mb N  cap the miner's working set; with\n"
      "  --budget-policy degrade|fail   either fall back to the hash hit\n"
      "                        store (identical patterns) or exit 6\n"
      "\n"
      "exit codes: 0 ok, 1 runtime error, 2 invalid argument, 3 not found,\n"
      "4 corruption, 5 cancelled or deadline exceeded, 6 resource\n"
      "exhausted (Ctrl-C cancels cooperatively and exits 5).\n"
      "\n"
      "  --threads N selects the mining worker count: 1 (default) runs the\n"
      "  sequential algorithms, 0 uses the hardware concurrency, and N > 1\n"
      "  shards the scans and derivation across N workers (identical\n"
      "  patterns; see docs/PARALLELISM.md).\n"
      "\n"
      "Series files ending in .txt use the text codec (one instant per\n"
      "line, space-separated feature names); anything else is binary.\n";
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  auto parsed = ArgMap::Parse(rest);
  if (!parsed.ok()) {
    err << "error: " << parsed.status().ToString() << "\n";
    return ExitCodeForStatus(parsed.status());
  }
  if (parsed->Has("log-level")) {
    const Result<LogLevel> level =
        ParseLogLevel(parsed->GetString("log-level", ""));
    if (!level.ok()) {
      err << "error: " << level.status().ToString() << "\n";
      return ExitCodeForStatus(level.status());
    }
    SetLogLevel(*level);
  }
  Status status;
  if (command == "mine") {
    status = RunMine(*parsed, out);
  } else if (command == "scan") {
    status = RunScan(*parsed, out);
  } else if (command == "apply") {
    status = RunApply(*parsed, out);
  } else if (command == "evolve") {
    status = RunEvolve(*parsed, out);
  } else if (command == "suggest") {
    status = RunSuggest(*parsed, out);
  } else if (command == "bucketize") {
    status = RunBucketize(*parsed, out);
  } else if (command == "discretize") {
    status = RunDiscretize(*parsed, out);
  } else if (command == "generate") {
    status = RunGenerate(*parsed, out);
  } else if (command == "stats") {
    status = RunStats(*parsed, out);
  } else if (command == "convert") {
    status = RunConvert(*parsed, out);
  } else if (command == "db") {
    status = RunDb(*parsed, out);
  } else if (command == "stream") {
    status = RunStream(*parsed, out);
  } else if (command == "client") {
    status = RunClient(*parsed, out);
  } else if (command == "dist") {
    status = RunDist(*parsed, out);
  } else if (command == "version" || command == "--version") {
    status = RunVersion(*parsed, out);
  } else {
    err << "error: unknown command '" << command << "'\n" << UsageText();
    return 2;
  }
  if (!status.ok()) {
    // One structured line: human-readable status plus machine-parseable
    // code/exit fields (docs/ROBUSTNESS.md documents the exit-code map).
    const int exit_code = ExitCodeForStatus(status);
    err << "error: " << status.ToString() << " [code="
        << static_cast<int>(status.code()) << " exit=" << exit_code << "]\n";
    return exit_code;
  }
  return 0;
}

}  // namespace ppm::cli
