#include "cli/commands.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>

#include "analysis/period_suggest.h"
#include "core/maximal.h"
#include "core/maximal_miner.h"
#include "core/miner.h"
#include "core/multi_period.h"
#include "core/pattern_io.h"
#include "discretize/discretizer.h"
#include "etl/bucketizer.h"
#include "etl/event_log.h"
#include "evolve/evolution.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rules/rules.h"
#include "stream/checkpoint.h"
#include "stream/continuous_miner.h"
#include "stream/streaming_miner.h"
#include "synth/generator.h"
#include "tsdb/database.h"
#include "tsdb/fault_injection.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"
#include "tsdb/wal.h"
#include "util/log.h"

namespace ppm::cli {

namespace {

bool HasSuffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Text for `.txt` paths, binary otherwise.
Result<tsdb::TimeSeries> LoadSeries(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--input is required");
  if (HasSuffix(path, ".txt")) return tsdb::ReadTextSeries(path);
  return tsdb::ReadBinarySeries(path);
}

Status SaveSeries(const tsdb::TimeSeries& series, const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--output is required");
  if (HasSuffix(path, ".txt")) return tsdb::WriteTextSeries(series, path);
  return tsdb::WriteBinarySeries(series, path);
}

Result<MiningOptions> MiningOptionsFromArgs(const ArgMap& args) {
  MiningOptions options;
  PPM_ASSIGN_OR_RETURN(const uint64_t period, args.GetUint("period", 0));
  options.period = static_cast<uint32_t>(period);
  PPM_ASSIGN_OR_RETURN(options.min_confidence,
                       args.GetDouble("min-conf", 0.8));
  PPM_ASSIGN_OR_RETURN(options.min_count, args.GetUint("min-count", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t max_letters,
                       args.GetUint("max-letters", 0));
  options.max_letters = static_cast<uint32_t>(max_letters);
  PPM_ASSIGN_OR_RETURN(const uint64_t threads, args.GetUint("threads", 1));
  options.num_threads = static_cast<uint32_t>(threads);
  if (args.Has("deadline-ms")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t deadline_ms,
                         args.GetUint("deadline-ms", 0));
    options.deadline = Deadline::After(deadline_ms);  // 0: already expired.
  }
  PPM_ASSIGN_OR_RETURN(const uint64_t budget_mb,
                       args.GetUint("memory-budget-mb", 0));
  options.memory_budget_bytes = budget_mb * (uint64_t{1} << 20);
  const std::string policy = args.GetString("budget-policy", "degrade");
  if (policy == "degrade") {
    options.budget_policy = BudgetPolicy::kDegrade;
  } else if (policy == "fail") {
    options.budget_policy = BudgetPolicy::kFail;
  } else {
    return Status::InvalidArgument("--budget-policy must be degrade or fail");
  }
  options.cancel = GlobalCancelToken();
  return options;
}

void PrintPatterns(const std::vector<FrequentPattern>& patterns,
                   const tsdb::SymbolTable& symbols, uint64_t top,
                   std::ostream& out) {
  uint64_t shown = 0;
  for (const FrequentPattern& entry : patterns) {
    if (top != 0 && shown >= top) {
      out << "  ... (" << patterns.size() - shown << " more; use --top 0 for all)\n";
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  count=%llu conf=%.4f  ",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out << buffer << entry.pattern.Format(symbols) << "\n";
    ++shown;
  }
}

}  // namespace

CancelToken& GlobalCancelToken() {
  static CancelToken* token = new CancelToken();
  return *token;
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return 5;
    case StatusCode::kResourceExhausted:
      return 6;
    default:
      return 1;
  }
}

Status RunMine(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period", "min-conf",
                                         "min-count", "algorithm",
                                         "max-letters", "threads", "maximal",
                                         "rules", "top", "save", "stats-json",
                                         "metrics-prom", "trace-out",
                                         "deadline-ms", "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 50));

  // Scope metrics and spans to this run so the emitted report covers only
  // the work below (the registry is process-global).
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const std::string algorithm = args.GetString("algorithm", "hitset");
  tsdb::InMemorySeriesSource source(&series);
  Result<MiningResult> mined = Status::Internal("no algorithm selected");
  if (algorithm == "hitset") {
    mined = Mine(source, options, Algorithm::kMaxSubpatternHitSet);
  } else if (algorithm == "apriori") {
    mined = Mine(source, options, Algorithm::kApriori);
  } else if (algorithm == "maximal") {
    mined = MineMaximalHitSet(source, options);
  } else {
    return Status::InvalidArgument(
        "--algorithm must be one of: hitset, apriori, maximal");
  }
  if (!mined.ok()) {
    // An interrupted or failed run still emits its report when one was
    // requested: the captured metrics (segments scanned, fault counters)
    // are the partial-progress record of how far the run got.
    if (args.Has("stats-json")) {
      obs::RunReport report("mine");
      report.AddMeta("algorithm", algorithm);
      report.AddMeta("input", args.GetString("input", ""));
      report.AddMeta("period", std::to_string(options.period));
      report.AddMeta("error", mined.status().ToString());
      obs::AddBuildMeta(&report);
      obs::RecordResourceMetrics();
      report.CaptureGlobal();
      PPM_RETURN_IF_ERROR(report.WriteJson(args.GetString("stats-json", "")));
    }
    return mined.status();
  }
  MiningResult result = std::move(*mined);

  out << "period=" << options.period << " m=" << result.stats().num_periods
      << " |F1|=" << result.stats().num_f1_letters
      << " scans=" << result.stats().scans << " patterns=" << result.size()
      << "\n";

  if (args.Has("maximal") && algorithm != "maximal") {
    const auto maximal = MaximalPatterns(result);
    out << "maximal patterns: " << maximal.size() << "\n";
    PrintPatterns(maximal, series.symbols(), top, out);
  } else {
    PrintPatterns(result.patterns(), series.symbols(), top, out);
  }

  if (args.Has("rules")) {
    PPM_ASSIGN_OR_RETURN(const double rule_conf, args.GetDouble("rules", 0.9));
    PPM_ASSIGN_OR_RETURN(const auto rules,
                         rules::GenerateRules(result, rule_conf));
    out << "rules (confidence >= " << rule_conf << "): " << rules.size()
        << "\n";
    uint64_t shown = 0;
    for (const auto& rule : rules) {
      if (top != 0 && shown++ >= top) break;
      out << "  " << rule.Format(series.symbols()) << "\n";
    }
  }
  if (args.Has("save")) {
    const std::string save_path = args.GetString("save", "");
    PPM_RETURN_IF_ERROR(WritePatternsFile(result, series.symbols(), save_path));
    out << "saved " << result.size() << " patterns to " << save_path << "\n";
  }
  if (args.Has("trace-out")) {
    const std::string trace_path = args.GetString("trace-out", "");
    PPM_RETURN_IF_ERROR(obs::Tracer::Global().WriteChromeTrace(trace_path));
    out << "wrote trace to " << trace_path << "\n";
  }
  if (args.Has("stats-json")) {
    const std::string stats_path = args.GetString("stats-json", "");
    obs::RunReport report("mine");
    report.AddMeta("algorithm", algorithm);
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("period", std::to_string(options.period));
    report.AddMeta("patterns", std::to_string(result.size()));
    obs::AddBuildMeta(&report);
    obs::RecordResourceMetrics();
    report.AddRawSection("mining_stats", result.stats().ToJson());
    report.CaptureGlobal();
    PPM_RETURN_IF_ERROR(report.WriteJson(stats_path));
    out << "wrote stats to " << stats_path << "\n";
  }
  if (args.Has("metrics-prom")) {
    const std::string prom_path = args.GetString("metrics-prom", "");
    obs::RecordResourceMetrics();
    std::ofstream prom(prom_path, std::ios::trunc);
    prom << obs::MetricsRegistry::Global().RenderPrometheus();
    if (!prom) {
      return Status::Internal("failed to write " + prom_path);
    }
    out << "wrote metrics to " << prom_path << "\n";
  }
  return Status::OK();
}

Status RunApply(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"patterns", "input", "min-drop"}));
  const std::string patterns_path = args.GetString("patterns", "");
  if (patterns_path.empty()) {
    return Status::InvalidArgument("--patterns is required");
  }
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(const MiningResult patterns,
                       ReadPatternsFile(patterns_path, &series.symbols()));
  PPM_ASSIGN_OR_RETURN(const double min_drop, args.GetDouble("min-drop", 0.0));
  PPM_ASSIGN_OR_RETURN(const auto applied, ApplyPatterns(patterns, series));

  out << "applied " << applied.size() << " patterns\n";
  for (const AppliedPattern& row : applied) {
    const double drop = row.old_confidence - row.new_confidence;
    if (drop < min_drop) continue;
    char buffer[72];
    std::snprintf(buffer, sizeof(buffer),
                  "  old=%.4f new=%.4f (%+.4f)  ", row.old_confidence,
                  row.new_confidence, row.new_confidence - row.old_confidence);
    out << buffer << row.pattern.Format(series.symbols()) << "\n";
  }
  return Status::OK();
}

Status RunEvolve(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period", "window",
                                         "min-conf", "min-count", "threads",
                                         "top", "deadline-ms",
                                         "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t window,
                       args.GetUint("window", options.period * 100ull));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 5));

  PPM_ASSIGN_OR_RETURN(const auto windows,
                       evolve::MineWindows(series, window, options));
  out << windows.size() << " windows of " << window << " instants\n";
  for (size_t w = 0; w < windows.size(); ++w) {
    out << "window " << w << " [start " << windows[w].start << "]: "
        << windows[w].result.size() << " patterns\n";
    if (w == 0) continue;
    const auto diff =
        evolve::DiffResults(windows[w - 1].result, windows[w].result, 0.1);
    for (const auto& entry : diff.appeared) {
      out << "  + " << entry.pattern.Format(series.symbols()) << "\n";
    }
    for (const auto& entry : diff.vanished) {
      out << "  - " << entry.pattern.Format(series.symbols()) << "\n";
    }
    for (const auto& change : diff.shifted) {
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "  ~ %.2f -> %.2f  ",
                    change.before_confidence, change.after_confidence);
      out << buffer << change.pattern.Format(series.symbols()) << "\n";
    }
  }

  const auto stability = evolve::StabilityReport(windows);
  out << "most stable patterns:\n";
  uint64_t shown = 0;
  for (const auto& entry : stability) {
    if (top != 0 && shown++ >= top) break;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  %u/%zu windows, mean conf %.2f  ",
                  entry.windows_present, windows.size(),
                  entry.mean_confidence);
    out << buffer << entry.pattern.Format(series.symbols()) << "\n";
  }
  return Status::OK();
}

Status RunScan(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "period-low", "period-high",
                                         "min-conf", "min-count", "method",
                                         "max-letters", "threads", "top",
                                         "deadline-ms", "memory-budget-mb",
                                         "budget-policy"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  PPM_ASSIGN_OR_RETURN(const uint64_t low, args.GetUint("period-low", 2));
  PPM_ASSIGN_OR_RETURN(const uint64_t high, args.GetUint("period-high", 16));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 3));

  const std::string method = args.GetString("method", "shared");
  tsdb::InMemorySeriesSource source(&series);
  MultiPeriodResult scan;
  if (method == "shared") {
    PPM_ASSIGN_OR_RETURN(
        scan, MineMultiPeriodShared(source, static_cast<uint32_t>(low),
                                    static_cast<uint32_t>(high), options));
  } else if (method == "looped") {
    PPM_ASSIGN_OR_RETURN(
        scan, MineMultiPeriodLooped(source, static_cast<uint32_t>(low),
                                    static_cast<uint32_t>(high), options));
  } else {
    return Status::InvalidArgument("--method must be shared or looped");
  }

  out << "scanned periods " << low << ".." << high << " in "
      << scan.total_scans << " scans of the series\n";
  for (const auto& [period, result] : scan.per_period) {
    if (result.empty()) continue;
    out << "period " << period << ": " << result.size()
        << " frequent patterns\n";
    // Show the longest few.
    std::vector<FrequentPattern> sorted = result.patterns();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FrequentPattern& a, const FrequentPattern& b) {
                       return a.pattern.LetterCount() > b.pattern.LetterCount();
                     });
    if (top != 0 && sorted.size() > top) sorted.resize(top);
    PrintPatterns(sorted, series.symbols(), 0, out);
  }
  return Status::OK();
}

Status RunGenerate(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"output", "length", "period",
                                         "max-pat-length", "num-f1",
                                         "num-features", "conf", "noise",
                                         "seed"}));
  synth::GeneratorOptions options;
  PPM_ASSIGN_OR_RETURN(options.length, args.GetUint("length", 100000));
  PPM_ASSIGN_OR_RETURN(const uint64_t period, args.GetUint("period", 50));
  options.period = static_cast<uint32_t>(period);
  PPM_ASSIGN_OR_RETURN(const uint64_t mpl, args.GetUint("max-pat-length", 8));
  options.max_pat_length = static_cast<uint32_t>(mpl);
  PPM_ASSIGN_OR_RETURN(const uint64_t num_f1, args.GetUint("num-f1", 12));
  options.num_f1 = static_cast<uint32_t>(num_f1);
  PPM_ASSIGN_OR_RETURN(const uint64_t num_features,
                       args.GetUint("num-features", 100));
  options.num_features = static_cast<uint32_t>(num_features);
  PPM_ASSIGN_OR_RETURN(options.anchor_confidence, args.GetDouble("conf", 0.9));
  PPM_ASSIGN_OR_RETURN(options.noise_mean, args.GetDouble("noise", 1.0));
  PPM_ASSIGN_OR_RETURN(options.seed, args.GetUint("seed", 42));

  PPM_ASSIGN_OR_RETURN(const synth::GeneratedSeries generated,
                       synth::GenerateSeries(options));
  PPM_RETURN_IF_ERROR(
      SaveSeries(generated.series, args.GetString("output", "")));
  out << "wrote " << generated.series.length() << " instants to "
      << args.GetString("output", "") << "\n"
      << "planted max-pattern: "
      << generated.anchor.Format(generated.series.symbols()) << "\n";
  return Status::OK();
}

Status RunSuggest(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"input", "period-low", "period-high", "per-feature", "top"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(const uint64_t low, args.GetUint("period-low", 2));
  PPM_ASSIGN_OR_RETURN(const uint64_t high, args.GetUint("period-high", 64));
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 10));

  std::vector<analysis::PeriodScore> scores;
  if (args.Has("per-feature")) {
    PPM_ASSIGN_OR_RETURN(scores, analysis::SuggestPeriodsPerFeature(
                                     series, static_cast<uint32_t>(low),
                                     static_cast<uint32_t>(high)));
  } else {
    PPM_ASSIGN_OR_RETURN(
        scores, analysis::SuggestPeriods(series, static_cast<uint32_t>(low),
                                         static_cast<uint32_t>(high)));
  }
  const auto fundamentals = analysis::FundamentalPeriods(scores);
  out << "period  concentration  confidence  letter\n";
  uint64_t shown = 0;
  for (const analysis::PeriodScore& score : fundamentals) {
    if (top != 0 && shown++ >= top) break;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%-7u %-14.3f %-11.3f ",
                  score.period, score.concentration, score.confidence);
    out << buffer << series.symbols().NameOrPlaceholder(score.feature) << "@+"
        << score.position << "\n";
  }
  return Status::OK();
}

Status RunBucketize(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"events", "output", "width", "origin", "end", "calendar"}));
  const std::string events_path = args.GetString("events", "");
  if (events_path.empty()) {
    return Status::InvalidArgument("--events is required");
  }
  PPM_ASSIGN_OR_RETURN(const etl::EventLog log, etl::ReadEventLog(events_path));

  etl::BucketizeOptions options;
  PPM_ASSIGN_OR_RETURN(const uint64_t width, args.GetUint("width", 3600));
  options.bucket_width = static_cast<int64_t>(width);
  if (args.Has("origin")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t origin, args.GetUint("origin", 0));
    options.origin = static_cast<int64_t>(origin);
  }
  if (args.Has("end")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t end, args.GetUint("end", 0));
    options.end = static_cast<int64_t>(end);
  }
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series, etl::Bucketize(log, options));

  if (args.Has("calendar")) {
    const std::string calendar = args.GetString("calendar", "");
    PPM_ASSIGN_OR_RETURN(const int64_t origin,
                         etl::ResolveOrigin(log, options));
    if (calendar == "dow") {
      etl::AnnotateCalendar(&series, origin, options.bucket_width,
                            etl::CalendarFeature::kDayOfWeek);
    } else if (calendar == "hour") {
      etl::AnnotateCalendar(&series, origin, options.bucket_width,
                            etl::CalendarFeature::kHourOfDay);
    } else {
      return Status::InvalidArgument("--calendar must be dow or hour");
    }
  }

  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "bucketized " << log.size() << " events into " << series.length()
      << " instants (" << series.symbols().size() << " features)\n";
  return Status::OK();
}

Status RunDiscretize(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"values", "output", "bins", "method",
                                         "prefix", "movement", "epsilon"}));
  const std::string values_path = args.GetString("values", "");
  if (values_path.empty()) {
    return Status::InvalidArgument("--values is required");
  }
  std::ifstream in(values_path);
  if (!in) return Status::IoError("cannot open: " + values_path);
  std::vector<double> values;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const double value = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": not a number: " + line);
    }
    values.push_back(value);
  }
  if (in.bad()) return Status::IoError("read failed: " + values_path);

  tsdb::TimeSeries series;
  if (args.Has("movement")) {
    PPM_ASSIGN_OR_RETURN(const double epsilon, args.GetDouble("epsilon", 0.0));
    PPM_ASSIGN_OR_RETURN(
        series, discretize::EncodeMovement(values, epsilon,
                                           args.GetString("prefix", "")));
  } else {
    discretize::DiscretizeOptions options;
    PPM_ASSIGN_OR_RETURN(const uint64_t bins, args.GetUint("bins", 4));
    options.num_bins = static_cast<uint32_t>(bins);
    options.prefix = args.GetString("prefix", "lvl");
    const std::string method = args.GetString("method", "width");
    if (method == "width") {
      options.method = discretize::BinningMethod::kEqualWidth;
    } else if (method == "freq") {
      options.method = discretize::BinningMethod::kEqualFrequency;
    } else if (method == "gaussian") {
      options.method = discretize::BinningMethod::kGaussian;
    } else {
      return Status::InvalidArgument(
          "--method must be width, freq, or gaussian");
    }
    PPM_ASSIGN_OR_RETURN(series, discretize::Discretize(values, options));
  }

  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "discretized " << values.size() << " values into "
      << series.length() << " instants (" << series.symbols().size()
      << " features)\n";
  return Status::OK();
}

Status RunStats(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  uint64_t total_features = 0;
  uint64_t empty_instants = 0;
  uint32_t max_features = 0;
  for (const tsdb::FeatureSet& instant : series.instants()) {
    const uint32_t count = instant.Count();
    total_features += count;
    if (count == 0) ++empty_instants;
    if (count > max_features) max_features = count;
  }
  out << "instants:        " << series.length() << "\n"
      << "features:        " << series.symbols().size() << "\n"
      << "feature events:  " << total_features << "\n"
      << "empty instants:  " << empty_instants << "\n"
      << "max per instant: " << max_features << "\n";
  if (series.length() > 0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(total_features) /
                      static_cast<double>(series.length()));
    out << "avg per instant: " << buffer << "\n";
  }
  return Status::OK();
}

Status RunConvert(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed({"input", "output"}));
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
  out << "converted " << series.length() << " instants\n";
  return Status::OK();
}

namespace {

/// Body of `ppm stream`; `RunStream` wraps it so a failed run still emits
/// its `--stats-json` report.
Status RunStreamImpl(const ArgMap& args, std::ostream& out) {
  namespace fs = std::filesystem;
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  options.num_threads = 1;  // Streaming appends are inherently sequential.
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 20));
  PPM_ASSIGN_OR_RETURN(const uint64_t checkpoint_every,
                       args.GetUint("checkpoint-every", 64));
  PPM_ASSIGN_OR_RETURN(const uint64_t drift_window,
                       args.GetUint("drift-window", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t window, args.GetUint("window", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t query_every,
                       args.GetUint("query-every", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t compact_every,
                       args.GetUint("compact-every", 0));

  const std::string dir = args.GetString("checkpoint-dir", "");
  if (dir.empty()) {
    return Status::InvalidArgument("--checkpoint-dir is required");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create checkpoint dir: " + dir);
  const std::string checkpoint_path = stream::CheckpointPath(dir);
  const std::string wal_path = stream::WalPath(dir);

  const std::string fsync_mode = args.GetString("wal-fsync", "always");
  tsdb::WalFsync fsync;
  if (fsync_mode == "always") {
    fsync = tsdb::WalFsync::kAlways;
  } else if (fsync_mode == "never") {
    fsync = tsdb::WalFsync::kNever;
  } else {
    return Status::InvalidArgument("--wal-fsync must be always or never");
  }

  // Deterministic kill switch for the CI crash-recovery smoke: the Nth WAL
  // append tears its frame and exits 137, like a SIGKILL mid-write.
  std::optional<tsdb::ScopedFaultInjection> crash_plan;
  if (args.Has("crash-after-appends")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t crash_after,
                         args.GetUint("crash-after-appends", 0));
    tsdb::FaultPlan plan;
    plan.crash_after_wal_appends = static_cast<uint32_t>(crash_after);
    crash_plan.emplace(plan);
  }

  // Scope metrics and spans to this run (the registry is process-global).
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const Interrupt interrupt = options.interrupt();
  std::unique_ptr<stream::ContinuousMiner> miner;
  std::unique_ptr<tsdb::WalWriter> wal;
  tsdb::WalReplayInfo replay;
  const bool resumed = args.Has("resume");

  if (resumed) {
    PPM_ASSIGN_OR_RETURN(
        stream::RecoveredContinuousStream recovered,
        stream::RecoverContinuousStream(dir, options,
                                        static_cast<uint32_t>(compact_every)));
    // Feature ids in the checkpoint and WAL index into the input's symbol
    // table, so the input must still intern the same names in the same
    // order (growing it with new features is fine).
    const std::vector<std::string>& names = series.symbols().names();
    if (recovered.symbols.size() > names.size()) {
      return Status::InvalidArgument(
          "checkpoint knows more features than --input provides");
    }
    for (size_t i = 0; i < recovered.symbols.size(); ++i) {
      if (recovered.symbols[i] != names[i]) {
        return Status::InvalidArgument(
            "checkpoint feature " + std::to_string(i) + " is '" +
            recovered.symbols[i] + "' but --input interns '" + names[i] +
            "' there; resume needs the same series");
      }
    }
    if (args.Has("period") &&
        options.period != recovered.miner->options().period) {
      return Status::InvalidArgument(
          "--period " + std::to_string(options.period) +
          " disagrees with the checkpoint's period " +
          std::to_string(recovered.miner->options().period));
    }
    // Like --period, the pattern window is part of the stream's identity:
    // the checkpoint's value wins, and a contradicting flag is an error
    // rather than a silent semantic change.
    if (args.Has("window") &&
        window != recovered.miner->window_segments()) {
      return Status::InvalidArgument(
          "--window " + std::to_string(window) +
          " disagrees with the checkpoint's window of " +
          std::to_string(recovered.miner->window_segments()) + " segments");
    }
    if (series.length() < recovered.miner->instants_seen()) {
      return Status::InvalidArgument(
          "--input has " + std::to_string(series.length()) +
          " instants but the recovered stream already consumed " +
          std::to_string(recovered.miner->instants_seen()));
    }
    miner = std::move(recovered.miner);
    replay = recovered.wal;
    PPM_ASSIGN_OR_RETURN(wal, tsdb::WalWriter::Open(wal_path, fsync,
                                                    replay.next_seq,
                                                    replay.valid_bytes));
  } else {
    std::error_code exists_ec;
    if (fs::exists(checkpoint_path, exists_ec) ||
        fs::exists(wal_path, exists_ec)) {
      return Status::InvalidArgument(
          dir + " already holds a stream; pass --resume to continue it");
    }
    PPM_ASSIGN_OR_RETURN(const uint64_t seed_prefix,
                         args.GetUint("seed-prefix", 100ull * options.period));
    const uint64_t prefix_len = std::min<uint64_t>(series.length(),
                                                   seed_prefix);
    tsdb::TimeSeries prefix;
    prefix.symbols() = series.symbols();
    for (uint64_t t = 0; t < prefix_len; ++t) prefix.Append(series.at(t));
    stream::ContinuousOptions continuous;
    continuous.drift_window = static_cast<uint32_t>(drift_window);
    continuous.window_segments = static_cast<uint32_t>(window);
    continuous.compact_every = static_cast<uint32_t>(compact_every);
    PPM_ASSIGN_OR_RETURN(miner, stream::ContinuousMiner::SeedFromPrefix(
                                    options, prefix, continuous));
    // The WAL mirrors the whole stream from instant 0 (record seq ==
    // instant index), so log the seed prefix before the first checkpoint
    // covers it: the checkpoint must never be ahead of the durable WAL.
    PPM_ASSIGN_OR_RETURN(wal, tsdb::WalWriter::Open(wal_path, fsync, 0, 0));
    for (uint64_t t = 0; t < prefix_len; ++t) {
      PPM_RETURN_IF_ERROR(wal->Append(series.at(t)));
    }
    PPM_RETURN_IF_ERROR(
        stream::CheckpointStream(*miner, *wal, series.symbols(), dir));
  }

  PPM_RETURN_IF_INTERRUPTED(interrupt);
  const uint32_t period = miner->options().period;
  uint64_t last_checkpoint = miner->segments_committed();
  uint64_t last_query = miner->segments_committed();
  uint64_t queries = 0;
  for (uint64_t t = miner->instants_seen(); t < series.length(); ++t) {
    PPM_RETURN_IF_ERROR(wal->Append(series.at(t)));
    miner->Append(series.at(t));
    if (period != 0 && miner->instants_seen() % period == 0) {
      PPM_RETURN_IF_INTERRUPTED(interrupt);
      if (checkpoint_every != 0 &&
          miner->segments_committed() - last_checkpoint >= checkpoint_every) {
        PPM_RETURN_IF_ERROR(
            stream::CheckpointStream(*miner, *wal, series.symbols(), dir));
        last_checkpoint = miner->segments_committed();
      }
      // Live queries against the running stream: each one derives from the
      // hit store alone, so its cost is independent of how much history
      // has been appended (the whole point of continuous mining).
      if (query_every != 0 &&
          miner->segments_committed() - last_query >= query_every) {
        const MiningResult live = miner->Snapshot();
        out << "query t=" << miner->instants_seen()
            << " m=" << miner->effective_segments()
            << " patterns=" << live.size() << "\n";
        last_query = miner->segments_committed();
        ++queries;
      }
    }
  }
  PPM_RETURN_IF_ERROR(
      stream::CheckpointStream(*miner, *wal, series.symbols(), dir));

  const MiningResult result = miner->Snapshot();
  out << "streamed " << miner->instants_seen() << " instants"
      << (resumed ? " (resumed)" : "") << "\n";
  if (resumed) {
    out << "recovered from checkpoint: replayed " << replay.records_delivered
        << " WAL records";
    if (replay.torn_tail) {
      out << ", dropped a torn tail of " << replay.dropped_bytes << " bytes";
    }
    out << "\n";
  }
  out << "period=" << period << " m=" << miner->segments_committed();
  if (miner->window_segments() > 0) {
    // Windowed confidences divide by the retained segments, not lifetime m.
    out << " effective_m=" << miner->effective_segments()
        << " evicted=" << miner->segments_evicted();
  }
  out << " patterns=" << result.size() << "\n";
  PrintPatterns(result.patterns(), series.symbols(), top, out);
  const std::vector<Letter> drifted = miner->DriftedLetters();
  if (!drifted.empty()) {
    out << "drifted letters: " << drifted.size()
        << " (seeded space is stale; re-mine to pick them up)\n";
  }

  if (args.Has("stats-json")) {
    const std::string stats_path = args.GetString("stats-json", "");
    obs::RunReport report("stream");
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("period", static_cast<uint64_t>(period));
    report.AddMeta("instants", miner->instants_seen());
    report.AddMeta("segments", miner->segments_committed());
    report.AddMeta("patterns", static_cast<uint64_t>(result.size()));
    report.AddMeta("window", static_cast<uint64_t>(miner->window_segments()));
    report.AddMeta("effective_segments", miner->effective_segments());
    report.AddMeta("segments_evicted", miner->segments_evicted());
    report.AddMeta("queries", queries);
    report.AddMeta("resumed", resumed ? "true" : "false");
    if (resumed) {
      report.AddMeta("recovery.wal_records_replayed",
                     replay.records_delivered);
      report.AddMeta("recovery.torn_tail",
                     replay.torn_tail ? "true" : "false");
      report.AddMeta("recovery.dropped_bytes", replay.dropped_bytes);
    }
    obs::AddBuildMeta(&report);
    obs::RecordResourceMetrics();
    report.AddRawSection("mining_stats", result.stats().ToJson());
    report.CaptureGlobal();
    PPM_RETURN_IF_ERROR(report.WriteJson(stats_path));
    out << "wrote stats to " << stats_path << "\n";
  }
  return Status::OK();
}

}  // namespace

Status RunStream(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"input", "period", "min-conf", "min-count", "max-letters",
       "seed-prefix", "drift-window", "window", "query-every",
       "compact-every", "checkpoint-dir", "checkpoint-every", "wal-fsync",
       "resume", "top", "stats-json", "deadline-ms",
       "crash-after-appends"}));
  const Status status = RunStreamImpl(args, out);
  if (!status.ok() && args.Has("stats-json")) {
    // Failed runs still record how far they got; the original failure
    // stays the interesting status even if the report cannot be written.
    obs::RunReport report("stream");
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("error", status.ToString());
    report.CaptureGlobal();
    (void)report.WriteJson(args.GetString("stats-json", ""));
  }
  return status;
}

Status RunDb(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(
      args.CheckAllowed({"dir", "name", "input", "output"}));
  if (args.positional().size() != 1) {
    return Status::InvalidArgument(
        "db needs exactly one action: list, put, get, or drop");
  }
  const std::string& action = args.positional()[0];
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  PPM_ASSIGN_OR_RETURN(const auto db, tsdb::Database::Open(dir));

  if (action == "list") {
    for (const std::string& name : db->List()) {
      auto source = db->Scan(name);
      if (source.ok()) {
        out << name << "  (" << (*source)->length() << " instants, "
            << (*source)->symbols().size() << " features)\n";
      } else {
        out << name << "  (unreadable: " << source.status().ToString()
            << ")\n";
      }
    }
    out << db->List().size() << " series in " << dir << "\n";
    return Status::OK();
  }

  const std::string name = args.GetString("name", "");
  if (name.empty()) return Status::InvalidArgument("--name is required");
  if (action == "put") {
    PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series,
                         LoadSeries(args.GetString("input", "")));
    PPM_RETURN_IF_ERROR(db->Put(name, series));
    out << "stored " << series.length() << " instants as " << name << "\n";
    return Status::OK();
  }
  if (action == "get") {
    PPM_ASSIGN_OR_RETURN(const tsdb::TimeSeries series, db->Get(name));
    PPM_RETURN_IF_ERROR(SaveSeries(series, args.GetString("output", "")));
    out << "exported " << series.length() << " instants from " << name
        << "\n";
    return Status::OK();
  }
  if (action == "drop") {
    PPM_RETURN_IF_ERROR(db->Drop(name));
    out << "dropped " << name << "\n";
    return Status::OK();
  }
  return Status::InvalidArgument("unknown db action: " + action);
}

std::string UsageText() {
  return
      "ppm -- partial periodic pattern mining (Han, Dong & Yin, ICDE 1999)\n"
      "\n"
      "usage: ppm <command> [flags]\n"
      "\n"
      "commands:\n"
      "  mine      mine one period: --input F --period N [--min-conf 0.8]\n"
      "            [--min-count N] [--algorithm hitset|apriori|maximal]\n"
      "            [--max-letters K] [--threads N] [--maximal]\n"
      "            [--rules CONF] [--top N] [--save PATTERNS_FILE]\n"
      "            [--stats-json REPORT_FILE] [--metrics-prom PROM_FILE]\n"
      "            [--trace-out TRACE_FILE]\n"
      "  apply     re-evaluate saved patterns on another series:\n"
      "            --patterns F --input F [--min-drop D]\n"
      "  evolve    windowed re-mining with diffs: --input F --period N\n"
      "            [--window INSTANTS] [--min-conf 0.8] [--top N]\n"
      "  scan      mine a period range: --input F --period-low A\n"
      "            --period-high B [--min-conf 0.8] [--method shared|looped]\n"
      "            [--threads N]\n"
      "  suggest   rank candidate periods: --input F [--period-low A]\n"
      "            [--period-high B] [--per-feature] [--top N]\n"
      "  bucketize derive a series from '<timestamp> <feature>' event lines:\n"
      "            --events F --output F [--width SECS] [--origin T]\n"
      "            [--end T] [--calendar dow|hour]\n"
      "  discretize  numeric lines -> categorical series: --values F\n"
      "            --output F [--bins N] [--method width|freq|gaussian]\n"
      "            [--prefix P] | [--movement [--epsilon E]]\n"
      "  generate  synthesize a series: --output F [--length N] [--period N]\n"
      "            [--max-pat-length N] [--num-f1 N] [--num-features N]\n"
      "            [--conf C] [--noise M] [--seed S]\n"
      "  stats     summarize a series: --input F\n"
      "  convert   transcode text<->binary: --input F --output F\n"
      "  db        series catalog: db list|put|get|drop --dir D [--name N]\n"
      "            [--input F] [--output F]\n"
      "  stream    crash-safe incremental mining: --input F --period N\n"
      "            --checkpoint-dir D [--checkpoint-every SEGMENTS]\n"
      "            [--wal-fsync always|never] [--resume] [--seed-prefix N]\n"
      "            [--drift-window SEGMENTS] [--window SEGMENTS]\n"
      "            [--query-every SEGMENTS] [--compact-every SEGMENTS]\n"
      "            [--min-conf 0.8] [--top N] [--stats-json REPORT_FILE]\n"
      "\n"
      "global flags (any command):\n"
      "  --log-level debug|info|warn|error|off   diagnostic verbosity\n"
      "                                          (default warn, to stderr)\n"
      "\n"
      "mining flags (mine, scan, evolve):\n"
      "  --deadline-ms N       stop mining after N wall-clock milliseconds\n"
      "                        (exit code 5)\n"
      "  --memory-budget-mb N  cap the miner's working set; with\n"
      "  --budget-policy degrade|fail   either fall back to the hash hit\n"
      "                        store (identical patterns) or exit 6\n"
      "\n"
      "exit codes: 0 ok, 1 runtime error, 2 invalid argument, 3 not found,\n"
      "4 corruption, 5 cancelled or deadline exceeded, 6 resource\n"
      "exhausted (Ctrl-C cancels cooperatively and exits 5).\n"
      "\n"
      "  --threads N selects the mining worker count: 1 (default) runs the\n"
      "  sequential algorithms, 0 uses the hardware concurrency, and N > 1\n"
      "  shards the scans and derivation across N workers (identical\n"
      "  patterns; see docs/PARALLELISM.md).\n"
      "\n"
      "Series files ending in .txt use the text codec (one instant per\n"
      "line, space-separated feature names); anything else is binary.\n";
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  auto parsed = ArgMap::Parse(rest);
  if (!parsed.ok()) {
    err << "error: " << parsed.status().ToString() << "\n";
    return ExitCodeForStatus(parsed.status());
  }
  if (parsed->Has("log-level")) {
    const Result<LogLevel> level =
        ParseLogLevel(parsed->GetString("log-level", ""));
    if (!level.ok()) {
      err << "error: " << level.status().ToString() << "\n";
      return ExitCodeForStatus(level.status());
    }
    SetLogLevel(*level);
  }
  Status status;
  if (command == "mine") {
    status = RunMine(*parsed, out);
  } else if (command == "scan") {
    status = RunScan(*parsed, out);
  } else if (command == "apply") {
    status = RunApply(*parsed, out);
  } else if (command == "evolve") {
    status = RunEvolve(*parsed, out);
  } else if (command == "suggest") {
    status = RunSuggest(*parsed, out);
  } else if (command == "bucketize") {
    status = RunBucketize(*parsed, out);
  } else if (command == "discretize") {
    status = RunDiscretize(*parsed, out);
  } else if (command == "generate") {
    status = RunGenerate(*parsed, out);
  } else if (command == "stats") {
    status = RunStats(*parsed, out);
  } else if (command == "convert") {
    status = RunConvert(*parsed, out);
  } else if (command == "db") {
    status = RunDb(*parsed, out);
  } else if (command == "stream") {
    status = RunStream(*parsed, out);
  } else {
    err << "error: unknown command '" << command << "'\n" << UsageText();
    return 2;
  }
  if (!status.ok()) {
    // One structured line: human-readable status plus machine-parseable
    // code/exit fields (docs/ROBUSTNESS.md documents the exit-code map).
    const int exit_code = ExitCodeForStatus(status);
    err << "error: " << status.ToString() << " [code="
        << static_cast<int>(status.code()) << " exit=" << exit_code << "]\n";
    return exit_code;
  }
  return 0;
}

}  // namespace ppm::cli
