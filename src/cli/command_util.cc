#include "cli/command_util.h"

#include <cstdio>

#include "cli/commands.h"
#include "service/series_store.h"

namespace ppm::cli {

Result<tsdb::TimeSeries> LoadSeries(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--input is required");
  return service::LoadSeriesFile(path);
}

Status SaveSeries(const tsdb::TimeSeries& series, const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--output is required");
  return service::SaveSeriesFile(series, path);
}

Result<MiningOptions> MiningOptionsFromArgs(const ArgMap& args) {
  MiningOptions options;
  PPM_ASSIGN_OR_RETURN(const uint64_t period, args.GetUint("period", 0));
  options.period = static_cast<uint32_t>(period);
  PPM_ASSIGN_OR_RETURN(options.min_confidence,
                       args.GetDouble("min-conf", 0.8));
  PPM_ASSIGN_OR_RETURN(options.min_count, args.GetUint("min-count", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t max_letters,
                       args.GetUint("max-letters", 0));
  options.max_letters = static_cast<uint32_t>(max_letters);
  PPM_ASSIGN_OR_RETURN(const uint64_t threads, args.GetUint("threads", 1));
  options.num_threads = static_cast<uint32_t>(threads);
  if (args.Has("deadline-ms")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t deadline_ms,
                         args.GetUint("deadline-ms", 0));
    options.deadline = Deadline::After(deadline_ms);  // 0: already expired.
  }
  PPM_ASSIGN_OR_RETURN(const uint64_t budget_mb,
                       args.GetUint("memory-budget-mb", 0));
  options.memory_budget_bytes = budget_mb * (uint64_t{1} << 20);
  const std::string policy = args.GetString("budget-policy", "degrade");
  if (policy == "degrade") {
    options.budget_policy = BudgetPolicy::kDegrade;
  } else if (policy == "fail") {
    options.budget_policy = BudgetPolicy::kFail;
  } else {
    return Status::InvalidArgument("--budget-policy must be degrade or fail");
  }
  options.cancel = GlobalCancelToken();
  return options;
}

void PrintPatterns(const std::vector<FrequentPattern>& patterns,
                   const tsdb::SymbolTable& symbols, uint64_t top,
                   std::ostream& out) {
  uint64_t shown = 0;
  for (const FrequentPattern& entry : patterns) {
    if (top != 0 && shown >= top) {
      out << "  ... (" << patterns.size() - shown << " more; use --top 0 for all)\n";
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  count=%llu conf=%.4f  ",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out << buffer << entry.pattern.Format(symbols) << "\n";
    ++shown;
  }
}

}  // namespace ppm::cli
