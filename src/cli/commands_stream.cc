// `ppm stream`: crash-safe incremental mining (WAL + checkpoints).

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>

#include "cli/command_util.h"
#include "cli/commands.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/continuous_miner.h"
#include "stream/streaming_miner.h"
#include "tsdb/fault_injection.h"
#include "tsdb/wal.h"

namespace ppm::cli {

namespace {

/// Body of `ppm stream`; `RunStream` wraps it so a failed run still emits
/// its `--stats-json` report.
Status RunStreamImpl(const ArgMap& args, std::ostream& out) {
  namespace fs = std::filesystem;
  PPM_ASSIGN_OR_RETURN(tsdb::TimeSeries series,
                       LoadSeries(args.GetString("input", "")));
  PPM_ASSIGN_OR_RETURN(MiningOptions options, MiningOptionsFromArgs(args));
  options.num_threads = 1;  // Streaming appends are inherently sequential.
  PPM_ASSIGN_OR_RETURN(const uint64_t top, args.GetUint("top", 20));
  PPM_ASSIGN_OR_RETURN(const uint64_t checkpoint_every,
                       args.GetUint("checkpoint-every", 64));
  PPM_ASSIGN_OR_RETURN(const uint64_t drift_window,
                       args.GetUint("drift-window", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t window, args.GetUint("window", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t query_every,
                       args.GetUint("query-every", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t compact_every,
                       args.GetUint("compact-every", 0));

  const std::string dir = args.GetString("checkpoint-dir", "");
  if (dir.empty()) {
    return Status::InvalidArgument("--checkpoint-dir is required");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create checkpoint dir: " + dir);
  const std::string checkpoint_path = stream::CheckpointPath(dir);
  const std::string wal_path = stream::WalPath(dir);

  const std::string fsync_mode = args.GetString("wal-fsync", "always");
  tsdb::WalFsync fsync;
  if (fsync_mode == "always") {
    fsync = tsdb::WalFsync::kAlways;
  } else if (fsync_mode == "never") {
    fsync = tsdb::WalFsync::kNever;
  } else {
    return Status::InvalidArgument("--wal-fsync must be always or never");
  }

  // Deterministic kill switch for the CI crash-recovery smoke: the Nth WAL
  // append tears its frame and exits 137, like a SIGKILL mid-write.
  std::optional<tsdb::ScopedFaultInjection> crash_plan;
  if (args.Has("crash-after-appends")) {
    PPM_ASSIGN_OR_RETURN(const uint64_t crash_after,
                         args.GetUint("crash-after-appends", 0));
    tsdb::FaultPlan plan;
    plan.crash_after_wal_appends = static_cast<uint32_t>(crash_after);
    crash_plan.emplace(plan);
  }

  // Scope metrics and spans to this run (the registry is process-global).
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();

  const Interrupt interrupt = options.interrupt();
  std::unique_ptr<stream::ContinuousMiner> miner;
  std::unique_ptr<tsdb::WalWriter> wal;
  tsdb::WalReplayInfo replay;
  const bool resumed = args.Has("resume");

  if (resumed) {
    PPM_ASSIGN_OR_RETURN(
        stream::RecoveredContinuousStream recovered,
        stream::RecoverContinuousStream(dir, options,
                                        static_cast<uint32_t>(compact_every)));
    // Feature ids in the checkpoint and WAL index into the input's symbol
    // table, so the input must still intern the same names in the same
    // order (growing it with new features is fine).
    const std::vector<std::string>& names = series.symbols().names();
    if (recovered.symbols.size() > names.size()) {
      return Status::InvalidArgument(
          "checkpoint knows more features than --input provides");
    }
    for (size_t i = 0; i < recovered.symbols.size(); ++i) {
      if (recovered.symbols[i] != names[i]) {
        return Status::InvalidArgument(
            "checkpoint feature " + std::to_string(i) + " is '" +
            recovered.symbols[i] + "' but --input interns '" + names[i] +
            "' there; resume needs the same series");
      }
    }
    if (args.Has("period") &&
        options.period != recovered.miner->options().period) {
      return Status::InvalidArgument(
          "--period " + std::to_string(options.period) +
          " disagrees with the checkpoint's period " +
          std::to_string(recovered.miner->options().period));
    }
    // Like --period, the pattern window is part of the stream's identity:
    // the checkpoint's value wins, and a contradicting flag is an error
    // rather than a silent semantic change.
    if (args.Has("window") &&
        window != recovered.miner->window_segments()) {
      return Status::InvalidArgument(
          "--window " + std::to_string(window) +
          " disagrees with the checkpoint's window of " +
          std::to_string(recovered.miner->window_segments()) + " segments");
    }
    if (series.length() < recovered.miner->instants_seen()) {
      return Status::InvalidArgument(
          "--input has " + std::to_string(series.length()) +
          " instants but the recovered stream already consumed " +
          std::to_string(recovered.miner->instants_seen()));
    }
    miner = std::move(recovered.miner);
    replay = recovered.wal;
    PPM_ASSIGN_OR_RETURN(wal, tsdb::WalWriter::Open(wal_path, fsync,
                                                    replay.next_seq,
                                                    replay.valid_bytes));
  } else {
    std::error_code exists_ec;
    if (fs::exists(checkpoint_path, exists_ec) ||
        fs::exists(wal_path, exists_ec)) {
      return Status::InvalidArgument(
          dir + " already holds a stream; pass --resume to continue it");
    }
    PPM_ASSIGN_OR_RETURN(const uint64_t seed_prefix,
                         args.GetUint("seed-prefix", 100ull * options.period));
    const uint64_t prefix_len = std::min<uint64_t>(series.length(),
                                                   seed_prefix);
    tsdb::TimeSeries prefix;
    prefix.symbols() = series.symbols();
    for (uint64_t t = 0; t < prefix_len; ++t) prefix.Append(series.at(t));
    stream::ContinuousOptions continuous;
    continuous.drift_window = static_cast<uint32_t>(drift_window);
    continuous.window_segments = static_cast<uint32_t>(window);
    continuous.compact_every = static_cast<uint32_t>(compact_every);
    PPM_ASSIGN_OR_RETURN(miner, stream::ContinuousMiner::SeedFromPrefix(
                                    options, prefix, continuous));
    // The WAL mirrors the whole stream from instant 0 (record seq ==
    // instant index), so log the seed prefix before the first checkpoint
    // covers it: the checkpoint must never be ahead of the durable WAL.
    PPM_ASSIGN_OR_RETURN(wal, tsdb::WalWriter::Open(wal_path, fsync, 0, 0));
    for (uint64_t t = 0; t < prefix_len; ++t) {
      PPM_RETURN_IF_ERROR(wal->Append(series.at(t)));
    }
    PPM_RETURN_IF_ERROR(
        stream::CheckpointStream(*miner, *wal, series.symbols(), dir));
  }

  PPM_RETURN_IF_INTERRUPTED(interrupt);
  const uint32_t period = miner->options().period;
  uint64_t last_checkpoint = miner->segments_committed();
  uint64_t last_query = miner->segments_committed();
  uint64_t queries = 0;
  for (uint64_t t = miner->instants_seen(); t < series.length(); ++t) {
    PPM_RETURN_IF_ERROR(wal->Append(series.at(t)));
    miner->Append(series.at(t));
    if (period != 0 && miner->instants_seen() % period == 0) {
      PPM_RETURN_IF_INTERRUPTED(interrupt);
      if (checkpoint_every != 0 &&
          miner->segments_committed() - last_checkpoint >= checkpoint_every) {
        PPM_RETURN_IF_ERROR(
            stream::CheckpointStream(*miner, *wal, series.symbols(), dir));
        last_checkpoint = miner->segments_committed();
      }
      // Live queries against the running stream: each one derives from the
      // hit store alone, so its cost is independent of how much history
      // has been appended (the whole point of continuous mining).
      if (query_every != 0 &&
          miner->segments_committed() - last_query >= query_every) {
        const MiningResult live = miner->Snapshot();
        out << "query t=" << miner->instants_seen()
            << " m=" << miner->effective_segments()
            << " patterns=" << live.size() << "\n";
        last_query = miner->segments_committed();
        ++queries;
      }
    }
  }
  PPM_RETURN_IF_ERROR(
      stream::CheckpointStream(*miner, *wal, series.symbols(), dir));

  const MiningResult result = miner->Snapshot();
  out << "streamed " << miner->instants_seen() << " instants"
      << (resumed ? " (resumed)" : "") << "\n";
  if (resumed) {
    out << "recovered from checkpoint: replayed " << replay.records_delivered
        << " WAL records";
    if (replay.torn_tail) {
      out << ", dropped a torn tail of " << replay.dropped_bytes << " bytes";
    }
    out << "\n";
  }
  out << "period=" << period << " m=" << miner->segments_committed();
  if (miner->window_segments() > 0) {
    // Windowed confidences divide by the retained segments, not lifetime m.
    out << " effective_m=" << miner->effective_segments()
        << " evicted=" << miner->segments_evicted();
  }
  out << " patterns=" << result.size() << "\n";
  PrintPatterns(result.patterns(), series.symbols(), top, out);
  const std::vector<Letter> drifted = miner->DriftedLetters();
  if (!drifted.empty()) {
    out << "drifted letters: " << drifted.size()
        << " (seeded space is stale; re-mine to pick them up)\n";
  }

  if (args.Has("stats-json")) {
    const std::string stats_path = args.GetString("stats-json", "");
    obs::RunReport report("stream");
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("period", static_cast<uint64_t>(period));
    report.AddMeta("instants", miner->instants_seen());
    report.AddMeta("segments", miner->segments_committed());
    report.AddMeta("patterns", static_cast<uint64_t>(result.size()));
    report.AddMeta("window", static_cast<uint64_t>(miner->window_segments()));
    report.AddMeta("effective_segments", miner->effective_segments());
    report.AddMeta("segments_evicted", miner->segments_evicted());
    report.AddMeta("queries", queries);
    report.AddMeta("resumed", resumed ? "true" : "false");
    if (resumed) {
      report.AddMeta("recovery.wal_records_replayed",
                     replay.records_delivered);
      report.AddMeta("recovery.torn_tail",
                     replay.torn_tail ? "true" : "false");
      report.AddMeta("recovery.dropped_bytes", replay.dropped_bytes);
    }
    obs::AddBuildMeta(&report);
    obs::RecordResourceMetrics();
    report.AddRawSection("mining_stats", result.stats().ToJson());
    report.CaptureGlobal();
    PPM_RETURN_IF_ERROR(report.WriteJson(stats_path));
    out << "wrote stats to " << stats_path << "\n";
  }
  return Status::OK();
}

}  // namespace

Status RunStream(const ArgMap& args, std::ostream& out) {
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"input", "period", "min-conf", "min-count", "max-letters",
       "seed-prefix", "drift-window", "window", "query-every",
       "compact-every", "checkpoint-dir", "checkpoint-every", "wal-fsync",
       "resume", "top", "stats-json", "deadline-ms",
       "crash-after-appends"}));
  const Status status = RunStreamImpl(args, out);
  if (!status.ok() && args.Has("stats-json")) {
    // Failed runs still record how far they got; the original failure
    // stays the interesting status even if the report cannot be written.
    obs::RunReport report("stream");
    report.AddMeta("input", args.GetString("input", ""));
    report.AddMeta("error", status.ToString());
    report.CaptureGlobal();
    (void)report.WriteJson(args.GetString("stats-json", ""));
  }
  return status;
}

}  // namespace ppm::cli
