// Entry point of `ppmd`, the long-lived pattern-serving daemon: one
// `service::PatternServer` on a unix socket over a `SeriesStore` catalog.
// SIGTERM/SIGINT begin a graceful drain (in-flight requests finish, then
// the process exits 0); see docs/SERVING.md.

#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "obs/build_info.h"
#include "service/admission.h"
#include "service/server.h"
#include "tsdb/wal.h"
#include "util/log.h"

namespace {

ppm::service::PatternServer* g_server = nullptr;

// RequestStop is one relaxed atomic store, so it is safe from a signal
// handler. A second signal falls back to the default hard kill.
void HandleShutdownSignal(int signal_number) {
  if (g_server != nullptr) g_server->RequestStop();
  std::signal(signal_number, SIG_DFL);
}

ppm::Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::trunc);
  file << text;
  if (!file.good()) return ppm::Status::IoError("cannot write: " + path);
  return ppm::Status::OK();
}

const char kUsage[] =
    "ppmd -- partial periodic pattern serving daemon (docs/SERVING.md)\n"
    "\n"
    "usage: ppmd --socket PATH --db DIR [flags]\n"
    "\n"
    "  --socket PATH          unix socket to listen on (required)\n"
    "  --db DIR               SeriesStore catalog root (required; created\n"
    "                         if missing)\n"
    "  --workers N            request-executing threads (default 4)\n"
    "  --max-inflight N       legacy alias of --queue-capacity (default\n"
    "                         2x workers)\n"
    "  --queue-capacity N     bounded admission queue; requests past it\n"
    "                         are shed with ResourceExhausted + a\n"
    "                         retry-after hint (default = max-inflight)\n"
    "  --tenant-quota SPEC    per-tenant quotas, comma-separated\n"
    "                         tenant=rps:burst:inflight entries (0 =\n"
    "                         unlimited); the 'default' tenant is the\n"
    "                         fallback for tenants without an entry\n"
    "  --io-timeout-ms N      per-connection socket read/write deadline;\n"
    "                         a slow or stalled client is disconnected\n"
    "                         past it (default 10000, 0 = none)\n"
    "  --max-instants-per-series N   retention cap: series keep only\n"
    "                         their newest N instants (default off)\n"
    "  --memory-budget-mb N   per-request mining budget; over-budget mines\n"
    "                         are rejected, not degraded (default off)\n"
    "  --cache-budget-mb N    pattern-cache residency budget (default off)\n"
    "  --wal-fsync always|never   append durability (default always)\n"
    "  --stats-json FILE      write a final RunReport on exit\n"
    "  --metrics-prom FILE    write final Prometheus metrics on exit\n"
    "  --log-level debug|info|warn|error|off\n"
    "\n"
    "SIGTERM or SIGINT drains gracefully and exits 0; a `ppm client\n"
    "shutdown` request does the same.\n";

ppm::Status RunDaemon(const ppm::cli::ArgMap& args) {
  using ppm::Status;
  PPM_RETURN_IF_ERROR(args.CheckAllowed(
      {"socket", "db", "workers", "max-inflight", "queue-capacity",
       "tenant-quota", "io-timeout-ms", "max-instants-per-series",
       "memory-budget-mb", "cache-budget-mb", "wal-fsync", "stats-json",
       "metrics-prom"}));

  ppm::service::ServerOptions options;
  options.socket_path = args.GetString("socket", "");
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("--socket is required");
  }
  const std::string db = args.GetString("db", "");
  if (db.empty()) return Status::InvalidArgument("--db is required");
  PPM_ASSIGN_OR_RETURN(const uint64_t workers, args.GetUint("workers", 4));
  options.num_workers = static_cast<uint32_t>(workers);
  PPM_ASSIGN_OR_RETURN(const uint64_t max_inflight,
                       args.GetUint("max-inflight", 0));
  options.max_inflight = static_cast<uint32_t>(max_inflight);
  PPM_ASSIGN_OR_RETURN(const uint64_t queue_capacity,
                       args.GetUint("queue-capacity", 0));
  options.queue_capacity = static_cast<uint32_t>(queue_capacity);
  PPM_ASSIGN_OR_RETURN(const uint64_t io_timeout_ms,
                       args.GetUint("io-timeout-ms", 10000));
  options.io_timeout_ms = io_timeout_ms;
  if (args.Has("tenant-quota")) {
    PPM_ASSIGN_OR_RETURN(
        options.tenant_quotas,
        ppm::service::ParseTenantQuotas(args.GetString("tenant-quota", "")));
  }
  PPM_ASSIGN_OR_RETURN(options.service.max_instants_per_series,
                       args.GetUint("max-instants-per-series", 0));
  PPM_ASSIGN_OR_RETURN(const uint64_t mine_mb,
                       args.GetUint("memory-budget-mb", 0));
  options.service.mining_memory_budget_bytes = mine_mb * (uint64_t{1} << 20);
  PPM_ASSIGN_OR_RETURN(const uint64_t cache_mb,
                       args.GetUint("cache-budget-mb", 0));
  options.service.cache_memory_budget_bytes = cache_mb * (uint64_t{1} << 20);
  const std::string fsync_mode = args.GetString("wal-fsync", "always");
  if (fsync_mode == "always") {
    options.service.wal_fsync = ppm::tsdb::WalFsync::kAlways;
  } else if (fsync_mode == "never") {
    options.service.wal_fsync = ppm::tsdb::WalFsync::kNever;
  } else {
    return Status::InvalidArgument("--wal-fsync must be always or never");
  }

  PPM_ASSIGN_OR_RETURN(const auto server,
                       ppm::service::PatternServer::Start(db, options));
  g_server = server.get();
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  const ppm::obs::BuildInfo& build = ppm::obs::GetBuildInfo();
  PPM_LOG(kInfo) << "ppmd " << build.git_sha << " serving " << db << " on "
                << options.socket_path << " (" << options.num_workers
                << " workers)";
  server->Wait();  // Blocks until a signal or shutdown request drains us.
  g_server = nullptr;
  PPM_LOG(kInfo) << "ppmd drained";

  // Final observability snapshots, written after the drain so they cover
  // the whole serving run.
  if (args.Has("stats-json")) {
    PPM_RETURN_IF_ERROR(WriteTextFile(args.GetString("stats-json", ""),
                                      server->service().StatsJson()));
  }
  if (args.Has("metrics-prom")) {
    PPM_RETURN_IF_ERROR(WriteTextFile(args.GetString("metrics-prom", ""),
                                      server->service().MetricsProm()));
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-response must surface as an EPIPE
  // write error on that one connection, never a SIGPIPE that kills the
  // whole daemon.
  std::signal(SIGPIPE, SIG_IGN);
  std::vector<std::string> raw(argv + 1, argv + argc);
  if (!raw.empty() && (raw[0] == "help" || raw[0] == "--help")) {
    std::cout << kUsage;
    return 0;
  }
  auto parsed = ppm::cli::ArgMap::Parse(raw);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status().ToString() << "\n";
    return ppm::cli::ExitCodeForStatus(parsed.status());
  }
  if (parsed->Has("log-level")) {
    const ppm::Result<ppm::LogLevel> level =
        ppm::ParseLogLevel(parsed->GetString("log-level", ""));
    if (!level.ok()) {
      std::cerr << "error: " << level.status().ToString() << "\n";
      return ppm::cli::ExitCodeForStatus(level.status());
    }
    ppm::SetLogLevel(*level);
  }
  const ppm::Status status = RunDaemon(*parsed);
  if (!status.ok()) {
    const int exit_code = ppm::cli::ExitCodeForStatus(status);
    std::cerr << "error: " << status.ToString() << " [code="
              << static_cast<int>(status.code()) << " exit=" << exit_code
              << "]\n";
    return exit_code;
  }
  return 0;
}
