#ifndef PPM_CORE_FAULT_METRICS_H_
#define PPM_CORE_FAULT_METRICS_H_

#include <utility>

#include "obs/metrics.h"
#include "util/status.h"

namespace ppm {

/// Records an interruption or budget status in the `ppm.fault.*` counters
/// and passes it through unchanged, so miners can write
/// `return RecordFault(interrupt.Check());` at their bail-out points.
/// `util` cannot depend on `obs`, which is why this lives in `core` rather
/// than next to `Interrupt`.
inline Status RecordFault(Status status) {
  auto& registry = obs::MetricsRegistry::Global();
  switch (status.code()) {
    case StatusCode::kCancelled:
      registry.GetCounter("ppm.fault.cancellations").Inc();
      break;
    case StatusCode::kDeadlineExceeded:
      registry.GetCounter("ppm.fault.deadline_hits").Inc();
      break;
    default:
      break;
  }
  return status;
}

/// `PPM_RETURN_IF_INTERRUPTED` with fault accounting.
#define PPM_RETURN_IF_INTERRUPTED_RECORDED(expr)             \
  do {                                                       \
    ::ppm::Status ppm_interrupt_tmp_ = (expr).Check();       \
    if (!ppm_interrupt_tmp_.ok()) {                          \
      return ::ppm::RecordFault(std::move(ppm_interrupt_tmp_)); \
    }                                                        \
  } while (false)

}  // namespace ppm

#endif  // PPM_CORE_FAULT_METRICS_H_
