#ifndef PPM_CORE_BUDGET_H_
#define PPM_CORE_BUDGET_H_

#include <cstdint>

#include "core/mining_options.h"
#include "util/status.h"

namespace ppm {

/// Property 3.2's cap on the number of distinct max-subpatterns the second
/// scan can store: `|H| <= min(m, 2^{n_d} - n_d - 1)` for `m` whole periods
/// and `n_d = |F_1|` letters (subpatterns with >= 2 letters only).
/// Saturates instead of overflowing for large `num_letters`; 0 when fewer
/// than 2 letters exist (nothing is ever stored).
uint64_t HitSetUpperBound(uint64_t num_periods, uint64_t num_letters);

/// Approximate worst-case bytes a hit store of `kind` needs to hold
/// `entries` distinct masks over `num_letters` letters. Deliberately
/// pessimistic (tree interior nodes, hash bucket overhead) so a prediction
/// that fits the budget really fits.
uint64_t PredictHitStoreBytes(HitStoreKind kind, uint64_t entries,
                              uint32_t num_letters);

/// The pre-scan budget decision for the hit-set miners.
struct BudgetDecision {
  /// Store to build (may differ from the requested kind after degradation).
  HitStoreKind store = HitStoreKind::kMaxSubpatternTree;
  /// Predicted worst-case bytes of the chosen store.
  uint64_t predicted_bytes = 0;
  /// True when the budget forced a fallback from the requested kind.
  bool degraded = false;
};

/// Applies `options.memory_budget_bytes` / `options.budget_policy` to the
/// Property 3.2 prediction *before* the second scan: returns the store to
/// build, possibly degraded to the hash store (identical patterns), or
/// `kResourceExhausted` when no permitted store fits. Increments the
/// `ppm.fault.budget_denials` / `ppm.fault.degradations` metrics.
Result<BudgetDecision> DecideHitStore(const MiningOptions& options,
                                      uint64_t num_periods,
                                      uint32_t num_letters);

}  // namespace ppm

#endif  // PPM_CORE_BUDGET_H_
