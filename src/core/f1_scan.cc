#include "core/f1_scan.h"

#include <map>
#include <utility>

#include "core/fault_metrics.h"
#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/materialize.h"
#include "parallel/shard.h"
#include "util/log.h"

namespace ppm {

namespace {

/// Per-position letter counts. An ordered map per position keeps letters in
/// canonical (feature ascending) order for free.
using CountTable = std::vector<std::map<tsdb::FeatureId, uint64_t>>;

/// Segments counted between interrupt polls (never per instant).
constexpr uint64_t kSegmentCheckStride = 1024;

/// Counts the letters of segments `[seg_begin, seg_end)` into `*counts`,
/// stopping early (with a partial table) once `interrupt` fires. Callers
/// re-check the interrupt and discard partial tables.
void CountSegments(const std::vector<tsdb::FeatureSet>& instants,
                   uint32_t period, uint64_t seg_begin, uint64_t seg_end,
                   const Interrupt& interrupt, CountTable* counts) {
  for (uint64_t segment = seg_begin; segment < seg_end; ++segment) {
    if ((segment - seg_begin) % kSegmentCheckStride == 0 &&
        interrupt.ShouldStop()) {
      return;
    }
    const uint64_t base = segment * period;
    for (uint32_t position = 0; position < period; ++position) {
      auto& position_counts = (*counts)[position];
      instants[base + position].ForEach(
          [&position_counts](uint32_t feature) { ++position_counts[feature]; });
    }
  }
}

/// Thresholds and filters a finished count table into an `F1ScanResult`.
F1ScanResult FinishF1(const CountTable& counts, const MiningOptions& options,
                      uint64_t num_periods) {
  F1ScanResult result;
  result.num_periods = num_periods;
  result.min_count = options.EffectiveMinCount(num_periods);

  std::vector<Letter> letters;
  std::vector<uint64_t> letter_counts;
  uint64_t letters_seen = 0;
  for (uint32_t position = 0; position < options.period; ++position) {
    letters_seen += counts[position].size();
    for (const auto& [feature, count] : counts[position]) {
      if (count < result.min_count) continue;
      if (options.letter_filter && !options.letter_filter(position, feature)) {
        continue;
      }
      letters.push_back(Letter{position, feature});
      letter_counts.push_back(count);
    }
  }
  // FinishF1 runs exactly once per F1 build on both the sequential and
  // sharded paths, so it is the single accounting site for the first pass.
  RecordDbPass("f1_scan", num_periods * options.period, num_periods);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ppm.f1.letters_seen").Set(letters_seen);
  registry.GetGauge("ppm.f1.letters_frequent").Set(letters.size());
  PPM_LOG(kDebug) << "f1 scan: " << letters.size() << " frequent of "
                  << letters_seen << " seen letters, m=" << num_periods
                  << ", min_count=" << result.min_count;
  result.space = LetterSpace(options.period, std::move(letters));
  result.letter_counts = std::move(letter_counts);
  return result;
}

}  // namespace

F1ScanResult BuildF1FromInstants(const std::vector<tsdb::FeatureSet>& instants,
                                 const MiningOptions& options,
                                 ThreadPool* pool) {
  const obs::TraceSpan span = obs::Tracer::Global().StartSpan("f1_scan");
  const uint64_t num_periods = instants.size() / options.period;
  const Interrupt interrupt = options.interrupt();

  if (pool == nullptr || pool->size() <= 1 || num_periods <= 1) {
    CountTable counts(options.period);
    CountSegments(instants, options.period, 0, num_periods, interrupt,
                  &counts);
    return FinishF1(counts, options, num_periods);
  }

  // Sharded count: one private table per chunk of whole segments, summed in
  // chunk order afterwards. Letter counts are additive over disjoint
  // segments, so the merged table equals the sequential one exactly.
  std::vector<CountTable> shard_counts(pool->size());
  for (CountTable& table : shard_counts) table.resize(options.period);
  parallel::ShardTimings timings = parallel::ShardedRun(
      *pool, num_periods, "f1_scan",
      [&instants, &options, &shard_counts,
       &interrupt](const ThreadPool::Chunk& chunk) {
        CountSegments(instants, options.period, chunk.begin, chunk.end,
                      interrupt, &shard_counts[chunk.index]);
      },
      interrupt);

  obs::TraceSpan merge_span = obs::Tracer::Global().StartSpan("f1_scan.merge");
  CountTable& merged = shard_counts[0];
  for (uint32_t c = 1; c < shard_counts.size(); ++c) {
    for (uint32_t position = 0; position < options.period; ++position) {
      for (const auto& [feature, count] : shard_counts[c][position]) {
        merged[position][feature] += count;
      }
    }
  }
  merge_span.End();
  timings.merge_seconds = merge_span.ElapsedSeconds();
  parallel::RecordShardMetrics(timings);
  return FinishF1(merged, options, num_periods);
}

Result<F1ScanResult> ScanForF1(tsdb::SeriesSource& source,
                               const MiningOptions& options) {
  PPM_RETURN_IF_ERROR(options.Validate(source.length()));
  const Interrupt interrupt = options.interrupt();
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);

  const uint32_t threads = ResolveThreadCount(options.num_threads);
  const uint64_t num_periods = source.length() / options.period;
  if (threads > 1 && num_periods > 1) {
    PPM_ASSIGN_OR_RETURN(
        const std::vector<tsdb::FeatureSet> instants,
        parallel::MaterializePrefix(source, num_periods * options.period));
    ThreadPool pool(threads);
    F1ScanResult f1 = BuildF1FromInstants(instants, options, &pool);
    // Workers bail on interruption, leaving a partial count table; discard
    // it rather than report letters with understated counts.
    PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    return f1;
  }

  const obs::TraceSpan span = obs::Tracer::Global().StartSpan("f1_scan");
  CountTable counts(options.period);

  PPM_RETURN_IF_ERROR(source.StartScan());
  const uint64_t covered = num_periods * options.period;
  // Poll the interrupt once per stride of instants, not per instant.
  const uint64_t check_stride = kSegmentCheckStride * options.period;
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (t < covered && source.Next(&instant)) {
    if (t % check_stride == 0) PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    auto& position_counts = counts[t % options.period];
    instant.ForEach(
        [&position_counts](uint32_t feature) { ++position_counts[feature]; });
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (t < covered) {
    return Status::Internal("source ended before its declared length");
  }
  return FinishF1(counts, options, num_periods);
}

}  // namespace ppm
