#include "core/f1_scan.h"

#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace ppm {

Result<F1ScanResult> ScanForF1(tsdb::SeriesSource& source,
                               const MiningOptions& options) {
  PPM_RETURN_IF_ERROR(options.Validate(source.length()));
  const obs::TraceSpan span = obs::Tracer::Global().StartSpan("f1_scan");

  F1ScanResult result;
  result.num_periods = source.length() / options.period;
  result.min_count = options.EffectiveMinCount(result.num_periods);

  // Exact per-letter counts. An ordered map per position keeps letters in
  // canonical (feature ascending) order for free.
  std::vector<std::map<tsdb::FeatureId, uint64_t>> counts(options.period);

  PPM_RETURN_IF_ERROR(source.StartScan());
  const uint64_t covered = result.num_periods * options.period;
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (t < covered && source.Next(&instant)) {
    auto& position_counts = counts[t % options.period];
    instant.ForEach(
        [&position_counts](uint32_t feature) { ++position_counts[feature]; });
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (t < covered) {
    return Status::Internal("source ended before its declared length");
  }

  std::vector<Letter> letters;
  std::vector<uint64_t> letter_counts;
  uint64_t letters_seen = 0;
  for (uint32_t position = 0; position < options.period; ++position) {
    letters_seen += counts[position].size();
    for (const auto& [feature, count] : counts[position]) {
      if (count < result.min_count) continue;
      if (options.letter_filter && !options.letter_filter(position, feature)) {
        continue;
      }
      letters.push_back(Letter{position, feature});
      letter_counts.push_back(count);
    }
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ppm.f1.letters_seen").Set(letters_seen);
  registry.GetGauge("ppm.f1.letters_frequent").Set(letters.size());
  PPM_LOG(kDebug) << "f1 scan: " << letters.size() << " frequent of "
                  << letters_seen << " seen letters, m=" << result.num_periods
                  << ", min_count=" << result.min_count;
  result.space = LetterSpace(options.period, std::move(letters));
  result.letter_counts = std::move(letter_counts);
  return result;
}

}  // namespace ppm
