#include "core/max_subpattern_tree.h"

#include <algorithm>

#include "util/check.h"

namespace ppm {

MaxSubpatternTree::MaxSubpatternTree(const Bitset& full_mask,
                                     uint32_t num_letters)
    : num_letters_(num_letters),
      inserts_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.tree.inserts")),
      nodes_created_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.tree.nodes_created")),
      query_visits_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.tree.query_node_visits")) {
  PPM_CHECK(full_mask.Count() == num_letters);
  Node root;
  root.mask = full_mask;
  nodes_.push_back(std::move(root));
}

uint32_t MaxSubpatternTree::FindChild(const Node& node, uint32_t letter) const {
  const auto it = std::lower_bound(
      node.children.begin(), node.children.end(), letter,
      [](const std::pair<uint32_t, uint32_t>& child, uint32_t value) {
        return child.first < value;
      });
  if (it == node.children.end() || it->first != letter) return kNoNode;
  return it->second;
}

void MaxSubpatternTree::Insert(const Bitset& mask, uint64_t count) {
  if (count == 0) return;
  PPM_CHECK(mask.IsSubsetOf(nodes_[0].mask));
  inserts_counter_.Inc();

  // Missing letters relative to C_max, walked in canonical (ascending) order.
  Bitset missing = nodes_[0].mask;
  missing.SubtractWith(mask);

  uint32_t current = 0;  // root
  for (uint32_t letter = missing.FindFirst(); letter != Bitset::kNoBit;
       letter = missing.FindNext(letter + 1)) {
    uint32_t child = FindChild(nodes_[current], letter);
    if (child == kNoNode) {
      // Create the missing node on the path (count 0 until it is itself hit).
      Node node;
      node.mask = nodes_[current].mask;
      node.mask.Clear(letter);
      child = static_cast<uint32_t>(nodes_.size());
      auto& children = nodes_[current].children;
      const auto insert_at = std::lower_bound(
          children.begin(), children.end(), letter,
          [](const std::pair<uint32_t, uint32_t>& entry, uint32_t value) {
            return entry.first < value;
          });
      children.insert(insert_at, {letter, child});
      nodes_.push_back(std::move(node));
      nodes_created_counter_.Inc();
    }
    current = child;
  }

  if (nodes_[current].count == 0) ++num_hits_;
  nodes_[current].count += count;
  total_hit_count_ += count;
}

void MaxSubpatternTree::Remove(const Bitset& mask, uint64_t count) {
  if (count == 0) return;
  PPM_CHECK(mask.IsSubsetOf(nodes_[0].mask));

  Bitset missing = nodes_[0].mask;
  missing.SubtractWith(mask);

  uint32_t current = 0;  // root
  for (uint32_t letter = missing.FindFirst(); letter != Bitset::kNoBit;
       letter = missing.FindNext(letter + 1)) {
    const uint32_t child = FindChild(nodes_[current], letter);
    PPM_CHECK(child != kNoNode);
    current = child;
  }

  PPM_CHECK(nodes_[current].count >= count);
  nodes_[current].count -= count;
  if (nodes_[current].count == 0) --num_hits_;
  total_hit_count_ -= count;
}

uint64_t MaxSubpatternTree::CountSuperpatterns(const Bitset& mask) const {
  return CountFrom(0, mask);
}

uint64_t MaxSubpatternTree::CountFrom(uint32_t node_index,
                                      const Bitset& mask) const {
  query_visits_counter_.Inc();
  const Node& node = nodes_[node_index];
  // Descendants of `node` only remove letters, so if `mask` is not a subset
  // here it cannot be a subset anywhere below: prune.
  if (!mask.IsSubsetOf(node.mask)) return 0;
  uint64_t total = node.count;
  for (const auto& [letter, child] : node.children) {
    // A child removes `letter`; if the candidate needs that letter the whole
    // child subtree is pruned without a subset test.
    if (mask.Test(letter)) continue;
    total += CountFrom(child, mask);
  }
  return total;
}

uint64_t MaxSubpatternTree::ApproxMemoryBytes() const {
  uint64_t total = sizeof(MaxSubpatternTree) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.mask.ApproxMemoryBytes() - sizeof(Bitset);
    total += node.children.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  }
  return total;
}

std::vector<Bitset> MaxSubpatternTree::ReachableAncestorHits(
    const Bitset& mask) const {
  std::vector<Bitset> ancestors;
  for (const Node& node : nodes_) {
    if (node.count == 0) continue;
    if (node.mask == mask) continue;
    if (mask.IsSubsetOf(node.mask)) ancestors.push_back(node.mask);
  }
  return ancestors;
}

}  // namespace ppm
