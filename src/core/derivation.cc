#include "core/derivation.h"

#include <utility>

#include "core/candidate_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/shard.h"

namespace ppm {

namespace {

void EmitLevel(const F1ScanResult& f1, const std::vector<LevelEntry>& level,
               MiningResult* result) {
  const double denom = static_cast<double>(f1.num_periods);
  for (const LevelEntry& entry : level) {
    FrequentPattern frequent;
    frequent.pattern = f1.space.MaskToPattern(entry.mask);
    frequent.count = entry.count;
    frequent.confidence = denom > 0 ? static_cast<double>(entry.count) / denom : 0.0;
    result->patterns().push_back(std::move(frequent));
  }
}

}  // namespace

DerivationStats DeriveFrequentPatterns(
    const F1ScanResult& f1, uint32_t max_letters,
    const std::function<uint64_t(const Bitset&)>& count_fn,
    MiningResult* result, ThreadPool* pool) {
  const obs::TraceSpan span = obs::Tracer::Global().StartSpan("derivation");
  obs::Counter count_queries =
      obs::MetricsRegistry::Global().GetCounter("ppm.derivation.count_queries");
  DerivationStats stats;

  // Level 1: the letters of the space that meet the threshold. For batch
  // mining the space *is* F_1 so nothing is filtered; the streaming miner
  // passes a fixed seeded space whose letters may drift below threshold.
  std::vector<LevelEntry> frequent;
  for (LevelEntry& entry : MakeLevelOne(f1.letter_counts)) {
    if (entry.count >= f1.min_count) frequent.push_back(std::move(entry));
  }
  if (!frequent.empty()) stats.max_level_reached = 1;
  EmitLevel(f1, frequent, result);

  for (uint32_t level = 2; !frequent.empty(); ++level) {
    if (max_letters != 0 && level > max_letters) break;
    std::vector<LevelEntry> candidates = GenerateCandidates(frequent);
    if (candidates.empty()) break;

    if (pool != nullptr && pool->size() > 1 && candidates.size() > 1) {
      // Partition this level's slice of the candidate lattice across the
      // workers. Each worker writes counts only into its own disjoint slice
      // of `candidates`, so no synchronization is needed, and the filtering
      // below runs in candidate order regardless of scheduling.
      parallel::ShardTimings timings = parallel::ShardedRun(
          *pool, candidates.size(), "derivation",
          [&candidates, &count_fn](const ThreadPool::Chunk& chunk) {
            for (uint64_t i = chunk.begin; i < chunk.end; ++i) {
              candidates[i].count = count_fn(candidates[i].mask);
            }
          });
      parallel::RecordShardMetrics(timings);
      stats.candidates_evaluated += candidates.size();
      count_queries.Inc(candidates.size());
    } else {
      for (LevelEntry& candidate : candidates) {
        ++stats.candidates_evaluated;
        count_queries.Inc();
        candidate.count = count_fn(candidate.mask);
      }
    }

    std::vector<LevelEntry> next;
    for (LevelEntry& candidate : candidates) {
      if (candidate.count >= f1.min_count) next.push_back(std::move(candidate));
    }
    if (!next.empty()) stats.max_level_reached = level;
    EmitLevel(f1, next, result);
    frequent = std::move(next);
  }
  return stats;
}

}  // namespace ppm
