#include "core/derivation.h"

#include <utility>

#include "core/candidate_gen.h"
#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/shard.h"

namespace ppm {

namespace {

void EmitLevel(const F1ScanResult& f1, const std::vector<LevelEntry>& level,
               MiningResult* result) {
  const double denom = static_cast<double>(f1.num_periods);
  for (const LevelEntry& entry : level) {
    FrequentPattern frequent;
    frequent.pattern = f1.space.MaskToPattern(entry.mask);
    frequent.count = entry.count;
    frequent.confidence = denom > 0 ? static_cast<double>(entry.count) / denom : 0.0;
    result->patterns().push_back(std::move(frequent));
  }
}

}  // namespace

DerivationStats DeriveFrequentPatterns(
    const F1ScanResult& f1, uint32_t max_letters,
    const std::function<uint64_t(const Bitset&)>& count_fn,
    MiningResult* result, ThreadPool* pool, const Interrupt& interrupt,
    MemoryBudget* budget) {
  const obs::TraceSpan span = obs::Tracer::Global().StartSpan("derivation");
  obs::Counter count_queries =
      obs::MetricsRegistry::Global().GetCounter("ppm.derivation.count_queries");
  // Candidates evaluated between interrupt polls on the sequential path.
  constexpr uint64_t kCheckStride = 512;
  DerivationStats stats;
  stats.status = interrupt.Check();
  if (!stats.status.ok()) return stats;

  // Level 1: the letters of the space that meet the threshold. For batch
  // mining the space *is* F_1 so nothing is filtered; the streaming miner
  // passes a fixed seeded space whose letters may drift below threshold.
  std::vector<LevelEntry> frequent;
  for (LevelEntry& entry : MakeLevelOne(f1.letter_counts)) {
    if (entry.count >= f1.min_count) frequent.push_back(std::move(entry));
  }
  if (!frequent.empty()) stats.max_level_reached = 1;
  EmitLevel(f1, frequent, result);

  for (uint32_t level = 2; !frequent.empty(); ++level) {
    if (max_letters != 0 && level > max_letters) break;
    stats.status = interrupt.Check();
    if (!stats.status.ok()) return stats;
    std::vector<LevelEntry> candidates = GenerateCandidates(frequent);
    if (candidates.empty()) break;
    RecordLevelCandidates("ppm.derivation", level, candidates.size());

    // Charge the level's candidate table before counting it; a level that
    // does not fit ends the run rather than silently thrashing.
    uint64_t charged = 0;
    if (budget != nullptr) {
      for (const LevelEntry& candidate : candidates) {
        charged += sizeof(LevelEntry) + candidate.mask.ApproxMemoryBytes();
      }
      if (!budget->TryCharge(charged)) {
        obs::MetricsRegistry::Global()
            .GetCounter("ppm.fault.budget_denials")
            .Inc();
        stats.status = Status::ResourceExhausted(
            "derivation level " + std::to_string(level) + " candidate table (" +
            std::to_string(charged) + " bytes) exceeds memory budget");
        return stats;
      }
    }

    if (pool != nullptr && pool->size() > 1 && candidates.size() > 1) {
      // Partition this level's slice of the candidate lattice across the
      // workers. Each worker writes counts only into its own disjoint slice
      // of `candidates`, so no synchronization is needed, and the filtering
      // below runs in candidate order regardless of scheduling. Workers
      // cannot return a `Status`, so on interruption they drop their
      // remaining chunks and the main thread notices after the join.
      parallel::ShardTimings timings = parallel::ShardedRun(
          *pool, candidates.size(), "derivation",
          [&candidates, &count_fn, &interrupt](const ThreadPool::Chunk& chunk) {
            if (interrupt.ShouldStop()) return;
            for (uint64_t i = chunk.begin; i < chunk.end; ++i) {
              candidates[i].count = count_fn(candidates[i].mask);
            }
          },
          interrupt);
      parallel::RecordShardMetrics(timings);
      stats.candidates_evaluated += candidates.size();
      count_queries.Inc(candidates.size());
    } else {
      uint64_t since_check = 0;
      for (LevelEntry& candidate : candidates) {
        if (++since_check >= kCheckStride) {
          since_check = 0;
          if (interrupt.ShouldStop()) break;
        }
        ++stats.candidates_evaluated;
        count_queries.Inc();
        candidate.count = count_fn(candidate.mask);
      }
    }
    stats.status = interrupt.Check();
    if (!stats.status.ok()) {
      if (budget != nullptr) budget->Release(charged);
      return stats;
    }

    std::vector<LevelEntry> next;
    for (LevelEntry& candidate : candidates) {
      if (candidate.count >= f1.min_count) next.push_back(std::move(candidate));
    }
    if (!next.empty()) stats.max_level_reached = level;
    EmitLevel(f1, next, result);
    frequent = std::move(next);
    if (budget != nullptr) budget->Release(charged);
  }
  return stats;
}

}  // namespace ppm
