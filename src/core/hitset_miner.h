#ifndef PPM_CORE_HITSET_MINER_H_
#define PPM_CORE_HITSET_MINER_H_

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Algorithm 3.2 (max-subpattern hit-set).
///
/// Exactly two scans of the series regardless of pattern length:
///  1. find the frequent 1-patterns `F_1` and form the candidate max-pattern
///     `C_max`;
///  2. for each whole period segment, compute its maximal hit subpattern of
///     `C_max` and register it in a hit store (the max-subpattern tree of
///     Section 4, or a hash table under `HitStoreKind::kHashTable`).
/// The complete frequent pattern set is then derived from the hit counts
/// without touching the series again (Algorithm 4.2).
Result<MiningResult> MineHitSet(tsdb::SeriesSource& source,
                                const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_HITSET_MINER_H_
