#ifndef PPM_CORE_CANDIDATE_GEN_H_
#define PPM_CORE_CANDIDATE_GEN_H_

#include <cstdint>
#include <vector>

#include "util/bitset.h"

namespace ppm {

/// One pattern at a fixed letter-count level, as both a sorted letter-index
/// vector (for joining) and a letter mask (for matching), with its frequency
/// count once evaluated.
struct LevelEntry {
  std::vector<uint32_t> items;  // letter indices, strictly ascending
  Bitset mask;
  uint64_t count = 0;
};

/// Apriori candidate generation (the "(k-1)-way join" of Algorithm 4.2 and
/// the candidate step of Algorithm 3.1): joins every pair of frequent
/// (k-1)-entries sharing their first k-2 letters, then prunes candidates
/// with an infrequent (k-1)-subset (Property 3.1).
///
/// `frequent_prev` must be sorted by `items` lexicographically (as produced
/// by `MakeLevelOne` / previous calls) and contain entries of equal size.
std::vector<LevelEntry> GenerateCandidates(
    const std::vector<LevelEntry>& frequent_prev);

/// Builds the level-1 entries from per-letter counts (every letter of the
/// letter space is frequent by construction of `F_1`).
std::vector<LevelEntry> MakeLevelOne(const std::vector<uint64_t>& letter_counts);

}  // namespace ppm

#endif  // PPM_CORE_CANDIDATE_GEN_H_
