#include "core/letter_space.h"

#include <algorithm>

#include "util/check.h"

namespace ppm {

LetterSpace::LetterSpace(uint32_t period, std::vector<Letter> letters)
    : period_(period), letters_(std::move(letters)) {
  PPM_CHECK(std::is_sorted(letters_.begin(), letters_.end()));
  PPM_CHECK(std::adjacent_find(letters_.begin(), letters_.end()) ==
            letters_.end());
  position_begin_.assign(period_ + 1, 0);
  for (uint32_t i = 0; i < letters_.size(); ++i) {
    PPM_CHECK(letters_[i].position < period_);
    full_mask_.Set(i);
  }
  // Bucket boundaries: position_begin_[p] = first letter index at position p.
  uint32_t index = 0;
  for (uint32_t p = 0; p <= period_; ++p) {
    while (index < letters_.size() && letters_[index].position < p) ++index;
    position_begin_[p] = index;
  }
}

Pattern LetterSpace::MaskToPattern(const Bitset& mask) const {
  Pattern pattern(period_);
  mask.ForEach([&](uint32_t index) {
    PPM_CHECK(index < letters_.size());
    pattern.AddLetter(letters_[index].position, letters_[index].feature);
  });
  return pattern;
}

Result<Bitset> LetterSpace::PatternToMask(const Pattern& pattern) const {
  if (pattern.period() != period_) {
    return Status::InvalidArgument("pattern period mismatch");
  }
  Bitset mask(size());
  Status error;
  for (uint32_t position = 0; position < period_; ++position) {
    pattern.at(position).ForEach([&](uint32_t feature) {
      const uint32_t index = IndexOf(position, feature);
      if (index == Bitset::kNoBit) {
        error = Status::NotFound("pattern letter outside letter space");
        return;
      }
      mask.Set(index);
    });
    if (!error.ok()) return error;
  }
  return mask;
}

uint32_t LetterSpace::IndexOf(uint32_t position,
                              tsdb::FeatureId feature) const {
  if (position >= period_) return Bitset::kNoBit;
  const uint32_t begin = position_begin_[position];
  const uint32_t end = position_begin_[position + 1];
  // Letters within a position are sorted by feature id.
  const auto first = letters_.begin() + begin;
  const auto last = letters_.begin() + end;
  const Letter probe{position, feature};
  const auto it = std::lower_bound(first, last, probe);
  if (it == last || !(*it == probe)) return Bitset::kNoBit;
  return static_cast<uint32_t>(it - letters_.begin());
}

void LetterSpace::SegmentMask(const tsdb::FeatureSet* segment,
                              Bitset* out) const {
  out->Reset();
  for (uint32_t p = 0; p < period_; ++p) AccumulatePosition(p, segment[p], out);
}

void LetterSpace::AccumulatePosition(uint32_t position,
                                     const tsdb::FeatureSet& features,
                                     Bitset* mask) const {
  const uint32_t begin = position_begin_[position];
  const uint32_t end = position_begin_[position + 1];
  for (uint32_t i = begin; i < end; ++i) {
    if (features.Test(letters_[i].feature)) mask->Set(i);
  }
}

}  // namespace ppm
