#ifndef PPM_CORE_MULTI_PERIOD_H_
#define PPM_CORE_MULTI_PERIOD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Frequent patterns for every period in a requested range.
struct MultiPeriodResult {
  /// One entry per period, ascending: `(period, patterns of that period)`.
  std::vector<std::pair<uint32_t, MiningResult>> per_period;
  /// Scans of the series across the whole run: `2 * k` for the looped
  /// method, 2 for the shared method.
  uint64_t total_scans = 0;
  double elapsed_seconds = 0.0;

  /// The result for `period`, or null when outside the mined range.
  const MiningResult* ForPeriod(uint32_t period) const;
};

/// Algorithm 3.3: mines each period in `[period_low, period_high]` by an
/// independent run of the max-subpattern hit-set miner (2 scans per period).
/// `options.period` is ignored; other fields apply to every period.
Result<MultiPeriodResult> MineMultiPeriodLooped(tsdb::SeriesSource& source,
                                                uint32_t period_low,
                                                uint32_t period_high,
                                                const MiningOptions& options);

/// Algorithm 3.4: shared mining of all periods in the range with exactly two
/// scans of the series in total -- scan 1 accumulates per-period `F_1`
/// counts, scan 2 feeds every period's hit store simultaneously.
Result<MultiPeriodResult> MineMultiPeriodShared(tsdb::SeriesSource& source,
                                                uint32_t period_low,
                                                uint32_t period_high,
                                                const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_MULTI_PERIOD_H_
