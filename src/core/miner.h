#ifndef PPM_CORE_MINER_H_
#define PPM_CORE_MINER_H_

#include <string_view>

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm {

/// Mining algorithm selector for the facade API.
enum class Algorithm {
  /// Algorithm 3.1: one scan per pattern level.
  kApriori = 0,
  /// Algorithm 3.2: two scans + max-subpattern hit set (recommended).
  kMaxSubpatternHitSet = 1,
};

std::string_view AlgorithmToString(Algorithm algorithm);

/// Mines all frequent partial periodic patterns of `options.period` from
/// `source` with the selected algorithm.
Result<MiningResult> Mine(tsdb::SeriesSource& source,
                          const MiningOptions& options,
                          Algorithm algorithm = Algorithm::kMaxSubpatternHitSet);

/// Convenience overload over an in-memory series.
Result<MiningResult> Mine(const tsdb::TimeSeries& series,
                          const MiningOptions& options,
                          Algorithm algorithm = Algorithm::kMaxSubpatternHitSet);

}  // namespace ppm

#endif  // PPM_CORE_MINER_H_
