#ifndef PPM_CORE_MAXIMAL_MINER_H_
#define PPM_CORE_MAXIMAL_MINER_H_

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Mines only the *maximal* frequent patterns, in two scans.
///
/// Section 5 of the paper sketches this as future work: "The mixture of the
/// max-subpattern hit set method and the MaxMiner can get rid of this
/// problem [MaxMiner's repeated scans] and will be more efficient than pure
/// MaxMiner." This implements that hybrid: the two scans of Algorithm 3.2
/// build the max-subpattern tree, and a MaxMiner/GenMax-style depth-first
/// search with superset lookahead then explores the subpattern lattice of
/// `C_max` using the tree as a frequency oracle -- no further scans.
///
/// The payoff over deriving everything and filtering: when letters are
/// strongly correlated the full frequent set is exponential in the length
/// of its longest member (all `2^k` subpatterns are frequent), while the
/// lookahead jumps straight to the long maximal patterns. Use this when
/// `MineHitSet` output would be unmanageably large.
///
/// The result contains one entry per maximal frequent pattern (count and
/// confidence included) in canonical order. Patterns of a single letter are
/// included when no larger frequent pattern contains them.
Result<MiningResult> MineMaximalHitSet(tsdb::SeriesSource& source,
                                       const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_MAXIMAL_MINER_H_
