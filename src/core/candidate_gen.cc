#include "core/candidate_gen.h"

#include <unordered_set>

namespace ppm {

std::vector<LevelEntry> MakeLevelOne(
    const std::vector<uint64_t>& letter_counts) {
  std::vector<LevelEntry> level;
  level.reserve(letter_counts.size());
  for (uint32_t letter = 0; letter < letter_counts.size(); ++letter) {
    LevelEntry entry;
    entry.items = {letter};
    entry.mask.Set(letter);
    entry.count = letter_counts[letter];
    level.push_back(std::move(entry));
  }
  return level;
}

std::vector<LevelEntry> GenerateCandidates(
    const std::vector<LevelEntry>& frequent_prev) {
  std::vector<LevelEntry> candidates;
  if (frequent_prev.empty()) return candidates;
  const size_t k_minus_1 = frequent_prev.front().items.size();

  std::unordered_set<Bitset, BitsetHash> frequent_masks;
  frequent_masks.reserve(frequent_prev.size());
  for (const LevelEntry& entry : frequent_prev) {
    frequent_masks.insert(entry.mask);
  }

  // Entries are sorted lexicographically, so entries sharing the first
  // k-2 items form contiguous blocks.
  for (size_t block_begin = 0; block_begin < frequent_prev.size();) {
    size_t block_end = block_begin + 1;
    while (block_end < frequent_prev.size()) {
      const auto& a = frequent_prev[block_begin].items;
      const auto& b = frequent_prev[block_end].items;
      bool same_prefix = true;
      for (size_t i = 0; i + 1 < k_minus_1; ++i) {
        if (a[i] != b[i]) {
          same_prefix = false;
          break;
        }
      }
      if (!same_prefix) break;
      ++block_end;
    }

    for (size_t i = block_begin; i < block_end; ++i) {
      for (size_t j = i + 1; j < block_end; ++j) {
        LevelEntry candidate;
        candidate.items = frequent_prev[i].items;
        candidate.items.push_back(frequent_prev[j].items.back());
        candidate.mask = frequent_prev[i].mask;
        candidate.mask.Set(frequent_prev[j].items.back());

        // Apriori prune: every (k-1)-subset must be frequent. Subsets formed
        // by dropping either of the two joined items are the parents
        // themselves, so only the other k-2 drops need checking.
        bool pruned = false;
        for (size_t drop = 0; drop + 2 < candidate.items.size(); ++drop) {
          Bitset subset = candidate.mask;
          subset.Clear(candidate.items[drop]);
          if (!frequent_masks.contains(subset)) {
            pruned = true;
            break;
          }
        }
        if (!pruned) candidates.push_back(std::move(candidate));
      }
    }
    block_begin = block_end;
  }
  return candidates;
}

}  // namespace ppm
