#include "core/hit_store.h"

#include "util/check.h"

namespace ppm {

void HashHitStore::RemoveHits(const Bitset& mask, uint64_t count) {
  if (count == 0) return;
  const auto it = counts_.find(mask);
  PPM_CHECK(it != counts_.end() && it->second >= count);
  it->second -= count;
  if (it->second == 0) counts_.erase(it);
}

HashHitStore::HashHitStore()
    : probes_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.hit_store.hash_probes")) {}

uint64_t HashHitStore::CountSuperpatterns(const Bitset& mask) const {
  uint64_t total = 0;
  probes_counter_.Inc(counts_.size());
  for (const auto& [hit, count] : counts_) {
    if (mask.IsSubsetOf(hit)) total += count;
  }
  return total;
}

uint64_t HashHitStore::ApproxMemoryBytes() const {
  uint64_t mask_bytes = 0;
  for (const auto& [hit, count] : counts_) {
    (void)count;
    mask_bytes += hit.ApproxMemoryBytes();
  }
  // Node, key/value pair, and bucket-array overhead per entry.
  return mask_bytes + counts_.size() * 48 + counts_.bucket_count() * 8;
}

std::unique_ptr<HitStore> MakeHitStore(HitStoreKind kind,
                                       const Bitset& full_mask,
                                       uint32_t num_letters) {
  switch (kind) {
    case HitStoreKind::kMaxSubpatternTree:
      return std::make_unique<TreeHitStore>(full_mask, num_letters);
    case HitStoreKind::kHashTable:
      return std::make_unique<HashHitStore>();
  }
  return std::make_unique<TreeHitStore>(full_mask, num_letters);
}

}  // namespace ppm
