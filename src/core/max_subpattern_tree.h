#ifndef PPM_CORE_MAX_SUBPATTERN_TREE_H_
#define PPM_CORE_MAX_SUBPATTERN_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/bitset.h"

namespace ppm {

/// The max-subpattern tree of Section 4.
///
/// The root is the candidate max-pattern `C_max`. A node is a subpattern of
/// `C_max` identified by the subset of `C_max` letters it retains (stored as
/// a bitmask over the owning `LetterSpace`). Each child of a node removes
/// exactly one more letter than its parent, and the letters removed along a
/// root-to-node path are strictly increasing in canonical letter order, so
/// every subpattern has exactly one tree position.
///
/// `Insert` implements Algorithm 4.1: walking the missing letters of a hit
/// in order, creating absent interior nodes with count 0, and incrementing
/// the final node's hit count. `CountSuperpatterns` implements the counting
/// step of Algorithm 4.2: the frequency of a candidate pattern `w` is the
/// total hit count of all stored nodes whose pattern is a superpattern of
/// `w` (the node for `w` itself plus its *reachable ancestors*); the
/// traversal prunes a subtree as soon as its root is not a superpattern of
/// `w`, since descendants only lose letters.
class MaxSubpatternTree {
 public:
  /// Creates a tree rooted at `C_max`, given its letter mask (all letters
  /// set) and letter count `num_letters`.
  MaxSubpatternTree(const Bitset& full_mask, uint32_t num_letters);

  MaxSubpatternTree(const MaxSubpatternTree&) = delete;
  MaxSubpatternTree& operator=(const MaxSubpatternTree&) = delete;

  /// Registers one hit of the max-subpattern `mask` (Algorithm 4.1).
  /// `mask` must be a subset of the full mask; callers are expected to skip
  /// hits with fewer than 2 letters (Section 3.1.2 stores only those).
  void Insert(const Bitset& mask) { Insert(mask, 1); }

  /// Bulk form: registers `count` hits of `mask` along one path walk. Used
  /// when merging per-worker shard trees; a no-op when `count` is zero.
  void Insert(const Bitset& mask, uint64_t count);

  /// Withdraws `count` previously inserted hits of `mask` (the sliding
  /// window's segment eviction). The node must exist and hold at least
  /// `count` hits -- removing a mask that was never inserted is a caller
  /// bug, checked. Interior nodes whose counts drop to zero stay allocated
  /// (they may still sit on other hits' paths); `ForEachNode` consumers
  /// already skip zero-count nodes, and a compaction rebuild reclaims them.
  void Remove(const Bitset& mask, uint64_t count);

  /// Total hit count of all stored nodes whose mask is a superset of
  /// `mask` -- the derived frequency count of the pattern `mask` denotes.
  uint64_t CountSuperpatterns(const Bitset& mask) const;

  /// Masks of all nodes that are proper superpatterns of `mask` and carry a
  /// nonzero hit count (the *reachable ancestors* of Example 4.2 restricted
  /// to hits). Exposed for tests and diagnostics.
  std::vector<Bitset> ReachableAncestorHits(const Bitset& mask) const;

  /// Number of allocated nodes, including interior count-0 nodes.
  uint64_t num_nodes() const { return nodes_.size(); }

  /// Number of distinct max-subpatterns with a nonzero count (`|H|`).
  uint64_t num_hits() const { return num_hits_; }

  /// Sum of all hit counts (number of stored period segments).
  uint64_t total_hit_count() const { return total_hit_count_; }

  /// Approximate bytes of owned storage (nodes, masks, child links), for
  /// `MemoryBudget` accounting during the second scan.
  uint64_t ApproxMemoryBytes() const;

  /// Invokes `fn(mask, count)` for every node (count may be zero).
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    for (const Node& node : nodes_) fn(node.mask, node.count);
  }

 private:
  struct Node {
    Bitset mask;
    uint64_t count = 0;
    // (removed letter index, child node index), sorted by letter index.
    std::vector<std::pair<uint32_t, uint32_t>> children;
  };

  /// Child of `node` along `letter`, or `kNoNode`.
  static constexpr uint32_t kNoNode = UINT32_MAX;
  uint32_t FindChild(const Node& node, uint32_t letter) const;

  uint64_t CountFrom(uint32_t node_index, const Bitset& mask) const;

  uint32_t num_letters_;
  std::vector<Node> nodes_;  // nodes_[0] is the root (C_max).
  uint64_t num_hits_ = 0;
  uint64_t total_hit_count_ = 0;
  // Hot-path cost accounting (`ppm.tree.*`): inserts, node allocations, and
  // nodes visited while answering `CountSuperpatterns` queries.
  obs::Counter inserts_counter_;
  obs::Counter nodes_created_counter_;
  obs::Counter query_visits_counter_;
};

}  // namespace ppm

#endif  // PPM_CORE_MAX_SUBPATTERN_TREE_H_
