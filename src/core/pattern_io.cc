#include "core/pattern_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace ppm {

Status WritePatternsFile(const MiningResult& result,
                         const tsdb::SymbolTable& symbols,
                         const std::string& path) {
  for (const std::string& name : symbols.names()) {
    if (name.empty() || name.front() == '#') {
      return Status::InvalidArgument("unwritable feature name: " + name);
    }
    for (char c : name) {
      if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
          c == '{' || c == '}') {
        return Status::InvalidArgument("unwritable feature name: " + name);
      }
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  if (!result.patterns().empty()) {
    out << "# period=" << result.patterns().front().pattern.period() << "\n";
  }
  char buffer[48];
  for (const FrequentPattern& entry : result.patterns()) {
    std::snprintf(buffer, sizeof(buffer), "%llu %.6f ",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out << buffer << entry.pattern.Format(symbols) << "\n";
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<MiningResult> ReadPatternsFile(const std::string& path,
                                      tsdb::SymbolTable* symbols) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  MiningResult result;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;

    // "<count> <confidence> <pattern...>".
    const size_t first_space = stripped.find(' ');
    const size_t second_space = first_space == std::string_view::npos
                                    ? std::string_view::npos
                                    : stripped.find(' ', first_space + 1);
    if (second_space == std::string_view::npos) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected '<count> <conf> <pattern>'");
    }
    FrequentPattern entry;
    if (!ParseUint64(stripped.substr(0, first_space), &entry.count)) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": bad count");
    }
    const std::string conf_text(
        stripped.substr(first_space + 1, second_space - first_space - 1));
    char* end = nullptr;
    entry.confidence = std::strtod(conf_text.c_str(), &end);
    if (end == conf_text.c_str() || *end != '\0') {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": bad confidence");
    }
    auto pattern = Pattern::Parse(stripped.substr(second_space + 1), symbols);
    if (!pattern.ok()) {
      return Status::Corruption("line " + std::to_string(line_number) + ": " +
                                pattern.status().message());
    }
    entry.pattern = std::move(*pattern);
    result.patterns().push_back(std::move(entry));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return result;
}

Result<std::vector<AppliedPattern>> ApplyPatterns(
    const MiningResult& patterns, const tsdb::TimeSeries& series) {
  std::vector<AppliedPattern> applied;
  applied.reserve(patterns.size());
  for (const FrequentPattern& entry : patterns.patterns()) {
    const uint32_t period = entry.pattern.period();
    if (period == 0 || period > series.length()) {
      return Status::InvalidArgument(
          "pattern period " + std::to_string(period) +
          " does not fit the series");
    }
    const uint64_t m = series.length() / period;
    AppliedPattern row;
    row.pattern = entry.pattern;
    row.old_confidence = entry.confidence;
    for (uint64_t segment = 0; segment < m; ++segment) {
      if (entry.pattern.MatchesSegment(series, segment * period)) {
        ++row.new_count;
      }
    }
    row.new_confidence =
        m > 0 ? static_cast<double>(row.new_count) / static_cast<double>(m)
              : 0.0;
    applied.push_back(std::move(row));
  }
  return applied;
}

}  // namespace ppm
