#ifndef PPM_CORE_MAXIMAL_H_
#define PPM_CORE_MAXIMAL_H_

#include <vector>

#include "core/mining_result.h"

namespace ppm {

/// Extracts the *maximal* frequent patterns from a full mining result: the
/// subset in which no pattern is a proper subpattern of another (Section 4's
/// discussion of MaxMiner-style output). Every frequent pattern is a
/// subpattern of some returned pattern, so this is a lossless summary of the
/// frequent set's shape (counts of non-maximal patterns are dropped).
///
/// `result` must be canonicalized (as returned by the miners). The returned
/// entries preserve their counts/confidences and canonical order.
std::vector<FrequentPattern> MaximalPatterns(const MiningResult& result);

/// True iff `candidate` is a subpattern of some pattern in `patterns` other
/// than itself. Helper shared with tests.
bool HasProperSuperpattern(const Pattern& candidate,
                           const std::vector<FrequentPattern>& patterns);

}  // namespace ppm

#endif  // PPM_CORE_MAXIMAL_H_
