#include "core/naive_miner.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/letter_space.h"
#include "util/stopwatch.h"

namespace ppm {

namespace {

/// Everything the oracles need, materialized in memory: the space of every
/// letter observed in a whole segment (with exact counts) and the letter
/// mask of every whole segment.
struct ObservedData {
  uint64_t num_periods = 0;
  uint64_t min_count = 0;
  LetterSpace space{0, {}};
  std::vector<uint64_t> letter_counts;
  std::vector<Bitset> segment_masks;
};

Result<ObservedData> CollectObserved(tsdb::SeriesSource& source,
                                     const MiningOptions& options) {
  PPM_RETURN_IF_ERROR(options.Validate(source.length()));

  ObservedData data;
  data.num_periods = source.length() / options.period;
  data.min_count = options.EffectiveMinCount(data.num_periods);

  // Buffer the covered prefix of the series.
  std::vector<tsdb::FeatureSet> instants;
  instants.reserve(data.num_periods * options.period);
  PPM_RETURN_IF_ERROR(source.StartScan());
  const uint64_t covered = data.num_periods * options.period;
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (t < covered && source.Next(&instant)) {
    instants.push_back(instant);
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (t < covered) {
    return Status::Internal("source ended before its declared length");
  }

  // Every observed letter, canonical order, exact counts.
  std::vector<std::map<tsdb::FeatureId, uint64_t>> counts(options.period);
  for (uint64_t i = 0; i < instants.size(); ++i) {
    auto& position_counts = counts[i % options.period];
    instants[i].ForEach(
        [&position_counts](uint32_t feature) { ++position_counts[feature]; });
  }
  std::vector<Letter> letters;
  for (uint32_t position = 0; position < options.period; ++position) {
    for (const auto& [feature, count] : counts[position]) {
      if (options.letter_filter && !options.letter_filter(position, feature)) {
        continue;
      }
      letters.push_back(Letter{position, feature});
      data.letter_counts.push_back(count);
    }
  }
  data.space = LetterSpace(options.period, std::move(letters));

  data.segment_masks.resize(data.num_periods);
  for (uint64_t segment = 0; segment < data.num_periods; ++segment) {
    data.space.SegmentMask(&instants[segment * options.period],
                           &data.segment_masks[segment]);
  }
  return data;
}

void EmitPattern(const ObservedData& data, const Bitset& mask, uint64_t count,
                 MiningResult* result) {
  FrequentPattern frequent;
  frequent.pattern = data.space.MaskToPattern(mask);
  frequent.count = count;
  frequent.confidence = data.num_periods > 0
                            ? static_cast<double>(count) /
                                  static_cast<double>(data.num_periods)
                            : 0.0;
  result->patterns().push_back(std::move(frequent));
}

}  // namespace

Result<MiningResult> MineExhaustive(tsdb::SeriesSource& source,
                                    const MiningOptions& options,
                                    uint32_t max_total_letters) {
  Stopwatch stopwatch;
  PPM_ASSIGN_OR_RETURN(ObservedData data, CollectObserved(source, options));
  const uint32_t num_letters = data.space.size();
  if (num_letters > max_total_letters || max_total_letters > 63) {
    return Status::InvalidArgument(
        "exhaustive oracle limited to " + std::to_string(max_total_letters) +
        " letters, saw " + std::to_string(num_letters));
  }

  // With <= 63 letters, masks fit in uint64 words: enumerate all of them.
  std::vector<uint64_t> segment_words(data.segment_masks.size(), 0);
  for (size_t i = 0; i < data.segment_masks.size(); ++i) {
    data.segment_masks[i].ForEach([&segment_words, i](uint32_t bit) {
      segment_words[i] |= uint64_t{1} << bit;
    });
  }

  MiningResult result;
  result.stats().num_periods = data.num_periods;
  const uint64_t num_masks = uint64_t{1} << num_letters;
  for (uint64_t word = 1; word < num_masks; ++word) {
    if (options.max_letters != 0 &&
        static_cast<uint32_t>(__builtin_popcountll(word)) > options.max_letters) {
      continue;
    }
    uint64_t count = 0;
    for (const uint64_t segment : segment_words) {
      if ((word & ~segment) == 0) ++count;
    }
    if (count < data.min_count) continue;
    Bitset mask(num_letters);
    for (uint32_t bit = 0; bit < num_letters; ++bit) {
      if ((word >> bit) & 1) mask.Set(bit);
    }
    EmitPattern(data, mask, count, &result);
  }

  result.Canonicalize();
  result.stats().scans = 1;
  result.stats().elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

Result<MiningResult> MineNaiveLevelwise(tsdb::SeriesSource& source,
                                        const MiningOptions& options) {
  Stopwatch stopwatch;
  PPM_ASSIGN_OR_RETURN(ObservedData data, CollectObserved(source, options));

  const auto count_mask = [&data](const Bitset& mask) {
    uint64_t count = 0;
    for (const Bitset& segment : data.segment_masks) {
      if (mask.IsSubsetOf(segment)) ++count;
    }
    return count;
  };

  MiningResult result;
  result.stats().num_periods = data.num_periods;
  result.stats().num_f1_letters = 0;

  // Level 1: observed letters meeting the threshold.
  std::set<Bitset> frequent;
  for (uint32_t letter = 0; letter < data.space.size(); ++letter) {
    if (data.letter_counts[letter] < data.min_count) continue;
    Bitset mask(data.space.size());
    mask.Set(letter);
    EmitPattern(data, mask, data.letter_counts[letter], &result);
    frequent.insert(std::move(mask));
    ++result.stats().num_f1_letters;
  }
  if (!frequent.empty()) result.stats().max_level_reached = 1;

  // Levels >= 2: extend every frequent set by every frequent letter
  // (quadratic candidate generation -- deliberately different from the
  // production prefix join, to cross-validate it).
  std::vector<Bitset> frequent_letters(frequent.begin(), frequent.end());
  uint32_t level = 2;
  while (!frequent.empty()) {
    if (options.max_letters != 0 && level > options.max_letters) break;
    std::set<Bitset> candidates;
    for (const Bitset& base : frequent) {
      for (const Bitset& letter : frequent_letters) {
        if (letter.IsSubsetOf(base)) continue;
        Bitset candidate = base;
        candidate.UnionWith(letter);
        candidates.insert(std::move(candidate));
      }
    }
    std::set<Bitset> next;
    for (const Bitset& candidate : candidates) {
      ++result.stats().candidates_evaluated;
      const uint64_t count = count_mask(candidate);
      if (count < data.min_count) continue;
      EmitPattern(data, candidate, count, &result);
      next.insert(candidate);
    }
    if (!next.empty()) result.stats().max_level_reached = level;
    frequent = std::move(next);
    ++level;
  }

  result.Canonicalize();
  result.stats().scans = 1;
  result.stats().elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace ppm
