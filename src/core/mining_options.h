#ifndef PPM_CORE_MINING_OPTIONS_H_
#define PPM_CORE_MINING_OPTIONS_H_

#include <cstdint>
#include <functional>

#include "tsdb/symbol_table.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm {

/// Backing store for period-segment hits in the max-subpattern hit-set miner
/// (Algorithm 3.2). The tree is the paper's data structure (Section 4); the
/// hash table is an ablation alternative benchmarked in
/// `bench_ablation_hit_store`.
enum class HitStoreKind {
  kMaxSubpatternTree = 0,
  kHashTable = 1,
};

/// What a miner does when the predicted or observed working set exceeds
/// `MiningOptions::memory_budget_bytes` (docs/ROBUSTNESS.md).
enum class BudgetPolicy {
  /// Return `kResourceExhausted` without starting the oversized phase.
  kFail = 0,
  /// Degrade to the cheaper hash hit store (identical patterns, slower
  /// queries) and fail only if even that does not fit.
  kDegrade = 1,
};

/// Parameters shared by all single-period miners.
struct MiningOptions {
  /// Period `p` of the patterns to mine. Must be in `[1, series length]`.
  uint32_t period = 0;

  /// Confidence threshold `min_conf` in `(0, 1]`. A pattern is frequent when
  /// `count / m >= min_confidence` (`m` = number of whole periods).
  double min_confidence = 0.5;

  /// When nonzero, overrides `min_confidence` with an absolute frequency
  /// count threshold.
  uint64_t min_count = 0;

  /// Upper bound on the number of letters in reported patterns (0 means
  /// unlimited). Mining stops after this level; useful to bound cost when
  /// only short patterns are of interest.
  uint32_t max_letters = 0;

  /// Hit store used by the hit-set miner; ignored by other miners.
  HitStoreKind hit_store = HitStoreKind::kMaxSubpatternTree;

  /// Worker threads for the hit-set and multi-period miners. 1 (the
  /// default) runs the exact sequential code paths; 0 means "use the
  /// hardware concurrency"; anything larger shards the scans, the
  /// derivation, and the per-period loop across a thread pool (see
  /// docs/PARALLELISM.md). Mined patterns and counts are identical at any
  /// thread count; scan accounting differs (sharded runs materialize the
  /// series once instead of re-scanning it). Ignored by the reference
  /// (naive/apriori) miners.
  uint32_t num_threads = 1;

  /// Cooperative cancellation: miners poll this token at segment / level
  /// granularity and return `kCancelled` when it fires. Copies of the
  /// options share the token, so cancelling the original stops every
  /// per-period task spawned from it. The CLI wires SIGINT to this.
  CancelToken cancel;

  /// Wall-clock deadline for the whole mining call; `kDeadlineExceeded`
  /// when it passes mid-run. Default: no deadline.
  Deadline deadline;

  /// Byte cap on the run's dominant data structures (hit store + candidate
  /// tables), enforced via Property 3.2's hit-set bound before the second
  /// scan and by live accounting afterwards. 0 means unlimited.
  uint64_t memory_budget_bytes = 0;

  /// Reaction to a predicted or observed budget overrun.
  BudgetPolicy budget_policy = BudgetPolicy::kDegrade;

  /// The token + deadline as one checkable handle.
  Interrupt interrupt() const { return Interrupt(cancel, deadline); }

  /// Optional restriction of the candidate letters considered after the
  /// first scan: a letter `(position, feature)` participates only when this
  /// returns true. Used by the multi-level drill-down miner to confine the
  /// search to children of patterns frequent at the coarser level. Null
  /// means "no restriction".
  std::function<bool(uint32_t position, tsdb::FeatureId feature)> letter_filter;

  /// Validates thresholds against a series of `series_length` instants.
  Status Validate(uint64_t series_length) const;

  /// The frequency-count threshold actually applied given `num_periods`
  /// whole periods: `min_count` when set, otherwise
  /// `ceil(min_confidence * num_periods)`, and never less than 1.
  uint64_t EffectiveMinCount(uint64_t num_periods) const;
};

}  // namespace ppm

#endif  // PPM_CORE_MINING_OPTIONS_H_
