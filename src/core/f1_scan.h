#ifndef PPM_CORE_F1_SCAN_H_
#define PPM_CORE_F1_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/letter_space.h"
#include "core/mining_options.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Output of the first scan (Step 1 of Algorithms 3.1 and 3.2): the frequent
/// 1-patterns `F_1` with their exact counts, packaged as a `LetterSpace`
/// whose full mask is the candidate max-pattern `C_max`.
struct F1ScanResult {
  /// Number of whole periods `m`.
  uint64_t num_periods = 0;
  /// The count threshold applied (see `MiningOptions::EffectiveMinCount`).
  uint64_t min_count = 0;
  /// Canonical indexing of the frequent letters.
  LetterSpace space{0, {}};
  /// Exact frequency count of each letter, indexed like `space`.
  std::vector<uint64_t> letter_counts;
};

/// Scans `source` once, counting each (position, feature) letter over whole
/// period segments, and keeps the letters whose count meets the threshold.
///
/// Honors `options.letter_filter` (filtered letters are dropped regardless
/// of count). Fails when `options` are invalid for the source length or on
/// source I/O errors.
Result<F1ScanResult> ScanForF1(tsdb::SeriesSource& source,
                               const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_F1_SCAN_H_
