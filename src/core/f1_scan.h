#ifndef PPM_CORE_F1_SCAN_H_
#define PPM_CORE_F1_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/letter_space.h"
#include "core/mining_options.h"
#include "tsdb/series_source.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ppm {

/// Output of the first scan (Step 1 of Algorithms 3.1 and 3.2): the frequent
/// 1-patterns `F_1` with their exact counts, packaged as a `LetterSpace`
/// whose full mask is the candidate max-pattern `C_max`.
struct F1ScanResult {
  /// Number of whole periods `m`.
  uint64_t num_periods = 0;
  /// The count threshold applied (see `MiningOptions::EffectiveMinCount`).
  uint64_t min_count = 0;
  /// Canonical indexing of the frequent letters.
  LetterSpace space{0, {}};
  /// Exact frequency count of each letter, indexed like `space`.
  std::vector<uint64_t> letter_counts;
};

/// Scans `source` once, counting each (position, feature) letter over whole
/// period segments, and keeps the letters whose count meets the threshold.
///
/// Honors `options.letter_filter` (filtered letters are dropped regardless
/// of count). Fails when `options` are invalid for the source length or on
/// source I/O errors.
///
/// With `options.num_threads` resolving to more than one worker, the
/// covered prefix is materialized (still one scan) and the counting is
/// sharded over whole period segments; the letter counts -- and therefore
/// the resulting `F_1` -- are identical to the sequential scan.
Result<F1ScanResult> ScanForF1(tsdb::SeriesSource& source,
                               const MiningOptions& options);

/// Core of the first scan over already-materialized instants: counts
/// letters over the `instants.size() / options.period` whole segments and
/// applies the threshold and `options.letter_filter`.
///
/// When `pool` is non-null its workers each count a private table over a
/// contiguous shard of segments; the tables are summed on the calling
/// thread in chunk order, making the result identical to a sequential
/// count. `options` must already be validated against the series length.
F1ScanResult BuildF1FromInstants(const std::vector<tsdb::FeatureSet>& instants,
                                 const MiningOptions& options,
                                 ThreadPool* pool = nullptr);

}  // namespace ppm

#endif  // PPM_CORE_F1_SCAN_H_
