#include "core/miner.h"

#include "core/apriori_miner.h"
#include "core/hitset_miner.h"

namespace ppm {

std::string_view AlgorithmToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return "apriori";
    case Algorithm::kMaxSubpatternHitSet:
      return "hit-set";
  }
  return "unknown";
}

Result<MiningResult> Mine(tsdb::SeriesSource& source,
                          const MiningOptions& options, Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return MineApriori(source, options);
    case Algorithm::kMaxSubpatternHitSet:
      return MineHitSet(source, options);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<MiningResult> Mine(const tsdb::TimeSeries& series,
                          const MiningOptions& options, Algorithm algorithm) {
  tsdb::InMemorySeriesSource source(&series);
  return Mine(source, options, algorithm);
}

}  // namespace ppm
