#include "core/apriori_miner.h"

#include <utility>
#include <vector>

#include "core/candidate_gen.h"
#include "core/f1_scan.h"
#include "core/fault_metrics.h"
#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/log.h"

namespace ppm {

namespace {

/// Scans the source once and fills `candidate->count` for every candidate:
/// a candidate is counted in each whole period segment whose letter mask is
/// a superset of the candidate's mask. Polls `interrupt` once per stride of
/// whole segments.
Status CountCandidatesByScan(tsdb::SeriesSource& source,
                             const F1ScanResult& f1, const Interrupt& interrupt,
                             std::vector<LevelEntry>* candidates) {
  PPM_RETURN_IF_ERROR(source.StartScan());
  const uint32_t period = f1.space.period();
  const uint64_t covered = f1.num_periods * period;
  const uint64_t check_stride = uint64_t{1024} * period;

  Bitset segment_mask(f1.space.size());
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (t < covered && source.Next(&instant)) {
    const uint32_t position = static_cast<uint32_t>(t % period);
    if (t % check_stride == 0) PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    if (position == 0) segment_mask.Reset();
    f1.space.AccumulatePosition(position, instant, &segment_mask);
    if (position == period - 1) {
      for (LevelEntry& candidate : *candidates) {
        if (candidate.mask.IsSubsetOf(segment_mask)) ++candidate.count;
      }
    }
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (t < covered) {
    return Status::Internal("source ended before its declared length");
  }
  return Status::OK();
}

void EmitLevel(const F1ScanResult& f1, const std::vector<LevelEntry>& level,
               MiningResult* result) {
  const double denom = static_cast<double>(f1.num_periods);
  for (const LevelEntry& entry : level) {
    FrequentPattern frequent;
    frequent.pattern = f1.space.MaskToPattern(entry.mask);
    frequent.count = entry.count;
    frequent.confidence =
        denom > 0 ? static_cast<double>(entry.count) / denom : 0.0;
    result->patterns().push_back(std::move(frequent));
  }
}

}  // namespace

Result<MiningResult> MineApriori(tsdb::SeriesSource& source,
                                 const MiningOptions& options) {
  obs::TraceSpan mine_span = obs::Tracer::Global().StartSpan("mine.apriori");
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter level_scans = registry.GetCounter("ppm.apriori.level_scans");
  obs::Counter candidates_counted =
      registry.GetCounter("ppm.apriori.candidates_evaluated");

  MiningResult result;
  const uint64_t scans_before = source.stats().scans;
  const uint64_t instants_before = source.stats().instants_read;

  // Scan 1: frequent 1-patterns.
  const Interrupt interrupt = options.interrupt();
  PPM_ASSIGN_OR_RETURN(F1ScanResult f1, ScanForF1(source, options));
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = f1.num_periods;

  std::vector<LevelEntry> frequent = MakeLevelOne(f1.letter_counts);
  if (!frequent.empty()) result.stats().max_level_reached = 1;
  EmitLevel(f1, frequent, &result);

  // Levels 2..: one scan per level (Step 2 of Algorithm 3.1).
  for (uint32_t level = 2; !frequent.empty(); ++level) {
    if (options.max_letters != 0 && level > options.max_letters) break;
    PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    std::vector<LevelEntry> candidates = GenerateCandidates(frequent);
    if (candidates.empty()) break;
    result.stats().candidates_evaluated += candidates.size();
    candidates_counted.Inc(candidates.size());
    RecordLevelCandidates("ppm.apriori", level, candidates.size());

    {
      const obs::TraceSpan scan_span =
          obs::Tracer::Global().StartSpan("level_scan");
      level_scans.Inc();
      RecordDbPass("level_scan", f1.num_periods * f1.space.period(),
                   f1.num_periods);
      PPM_RETURN_IF_ERROR(
          CountCandidatesByScan(source, f1, interrupt, &candidates));
    }

    std::vector<LevelEntry> next;
    for (LevelEntry& candidate : candidates) {
      if (candidate.count >= f1.min_count) next.push_back(std::move(candidate));
    }
    if (!next.empty()) result.stats().max_level_reached = level;
    EmitLevel(f1, next, &result);
    frequent = std::move(next);
  }

  result.Canonicalize();
  result.stats().scans = source.stats().scans - scans_before;
  result.stats().instants_read = source.stats().instants_read - instants_before;
  mine_span.End();
  result.stats().elapsed_seconds = mine_span.ElapsedSeconds();
  registry.GetHistogram("ppm.mine.latency_us")
      .Observe(static_cast<uint64_t>(result.stats().elapsed_seconds * 1e6));
  PPM_LOG(kDebug) << "apriori mine: " << result.size() << " patterns, scans="
                  << result.stats().scans;
  return result;
}

}  // namespace ppm
