#ifndef PPM_CORE_NAIVE_MINER_H_
#define PPM_CORE_NAIVE_MINER_H_

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Exhaustive reference miner (test oracle).
///
/// Collects every letter that occurs at least once in any whole period
/// segment, enumerates *all* non-empty letter subsets without any pruning,
/// and counts each one directly against the stored segment masks. This is a
/// from-the-definition implementation, deliberately independent of the
/// Apriori property, `C_max`, and the hit-set machinery, so it can validate
/// them. Refuses inputs with more than `max_total_letters` observed letters
/// (cost is `O(2^letters)`).
Result<MiningResult> MineExhaustive(tsdb::SeriesSource& source,
                                    const MiningOptions& options,
                                    uint32_t max_total_letters = 22);

/// Level-wise reference miner with exact per-level counting.
///
/// Like `MineExhaustive` it starts from every *observed* letter (not just
/// the frequent ones), but it prunes with exact counts level by level, so it
/// scales to inputs where full enumeration is infeasible. Used as a second,
/// cheaper oracle in property tests.
Result<MiningResult> MineNaiveLevelwise(tsdb::SeriesSource& source,
                                        const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_NAIVE_MINER_H_
