#ifndef PPM_CORE_MINING_RESULT_H_
#define PPM_CORE_MINING_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "tsdb/symbol_table.h"

namespace ppm {

/// One mined pattern with its support.
struct FrequentPattern {
  Pattern pattern;
  /// Number of whole period segments matching `pattern`.
  uint64_t count = 0;
  /// `count / m` where `m` is the number of whole periods.
  double confidence = 0.0;
};

/// Cost accounting for one mining run.
struct MiningStats {
  /// Full scans over the series (the paper's headline metric).
  uint64_t scans = 0;
  /// Instants delivered by the source across all scans.
  uint64_t instants_read = 0;
  /// Candidate patterns whose count was evaluated (levels >= 2).
  uint64_t candidates_evaluated = 0;
  /// Distinct max-subpatterns stored (hit-set miner; 0 otherwise).
  uint64_t hit_store_entries = 0;
  /// Nodes allocated in the max-subpattern tree (tree store only).
  uint64_t tree_nodes = 0;
  /// Frequent 1-pattern count (`|F_1|` = `n_d`, letters of `C_max`).
  uint64_t num_f1_letters = 0;
  /// Number of whole periods `m` in the input.
  uint64_t num_periods = 0;
  /// Deepest letter-count level that produced candidates.
  uint32_t max_level_reached = 0;
  /// Wall time of the mining call, measured by the miner's root `TraceSpan`
  /// (both miners populate it the same way).
  double elapsed_seconds = 0.0;

  /// One flat JSON object with every field above, e.g.
  /// `{"scans":2,"instants_read":12,...,"elapsed_seconds":0.001}`.
  std::string ToJson() const;
};

/// The frequent patterns of one (series, period, threshold) mining run,
/// in canonical order (letter count ascending, then `Pattern` order).
class MiningResult {
 public:
  MiningResult() = default;

  std::vector<FrequentPattern>& patterns() { return patterns_; }
  const std::vector<FrequentPattern>& patterns() const { return patterns_; }

  MiningStats& stats() { return stats_; }
  const MiningStats& stats() const { return stats_; }

  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// Pointer to the entry for `pattern`, or null when not frequent.
  const FrequentPattern* Find(const Pattern& pattern) const;

  /// Sorts patterns canonically; miners call this before returning.
  void Canonicalize();

  /// Multi-line dump "pattern  count  confidence" for logs and examples.
  std::string ToString(const tsdb::SymbolTable& symbols) const;

 private:
  std::vector<FrequentPattern> patterns_;
  MiningStats stats_;
};

}  // namespace ppm

#endif  // PPM_CORE_MINING_RESULT_H_
