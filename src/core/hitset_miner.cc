#include "core/hitset_miner.h"

#include <memory>

#include "core/derivation.h"
#include "core/f1_scan.h"
#include "core/hit_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace ppm {

Result<MiningResult> MineHitSet(tsdb::SeriesSource& source,
                                const MiningOptions& options) {
  obs::TraceSpan mine_span = obs::Tracer::Global().StartSpan("mine.hitset");
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter hits_inserted = registry.GetCounter("ppm.hitset.hits_inserted");
  obs::Counter segments_skipped =
      registry.GetCounter("ppm.hitset.segments_skipped");
  obs::Histogram segment_letters =
      registry.GetHistogram("ppm.hitset.segment_letters");

  MiningResult result;
  const uint64_t scans_before = source.stats().scans;
  const uint64_t instants_before = source.stats().instants_read;

  // Scan 1: frequent 1-patterns and the candidate max-pattern.
  PPM_ASSIGN_OR_RETURN(F1ScanResult f1, ScanForF1(source, options));
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = f1.num_periods;

  std::unique_ptr<HitStore> store =
      MakeHitStore(options.hit_store, f1.space.full_mask(), f1.space.size());

  // Scan 2: register the maximal hit subpattern of every whole segment.
  // Hits with fewer than 2 letters carry no information beyond F_1's exact
  // counts and are skipped (Section 3.1.2).
  {
    const obs::TraceSpan scan_span =
        obs::Tracer::Global().StartSpan("second_scan");
    PPM_RETURN_IF_ERROR(source.StartScan());
    const uint32_t period = options.period;
    const uint64_t covered = f1.num_periods * period;
    Bitset segment_mask(f1.space.size());
    tsdb::FeatureSet instant;
    uint64_t t = 0;
    while (t < covered && source.Next(&instant)) {
      const uint32_t position = static_cast<uint32_t>(t % period);
      if (position == 0) segment_mask.Reset();
      f1.space.AccumulatePosition(position, instant, &segment_mask);
      if (position == period - 1) {
        const uint32_t letters = segment_mask.Count();
        segment_letters.Observe(letters);
        if (letters >= 2) {
          store->AddHit(segment_mask);
          hits_inserted.Inc();
        } else {
          segments_skipped.Inc();
        }
      }
      ++t;
    }
    PPM_RETURN_IF_ERROR(source.status());
    if (t < covered) {
      return Status::Internal("source ended before its declared length");
    }
  }

  // Derivation: no further series access.
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options.max_letters,
      [&store](const Bitset& mask) { return store->CountSuperpatterns(mask); },
      &result);

  result.Canonicalize();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store->num_entries();
  result.stats().tree_nodes =
      options.hit_store == HitStoreKind::kMaxSubpatternTree ? store->num_units()
                                                            : 0;
  result.stats().scans = source.stats().scans - scans_before;
  result.stats().instants_read = source.stats().instants_read - instants_before;
  mine_span.End();
  result.stats().elapsed_seconds = mine_span.ElapsedSeconds();
  registry.GetHistogram("ppm.mine.latency_us")
      .Observe(static_cast<uint64_t>(result.stats().elapsed_seconds * 1e6));
  PPM_LOG(kDebug) << "hit-set mine: " << result.size() << " patterns, |H|="
                  << result.stats().hit_store_entries << ", scans="
                  << result.stats().scans;
  return result;
}

}  // namespace ppm
