#include "core/hitset_miner.h"

#include <atomic>
#include <utility>
#include <memory>
#include <vector>

#include "core/budget.h"
#include "core/derivation.h"
#include "core/f1_scan.h"
#include "core/fault_metrics.h"
#include "core/hit_store.h"
#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/materialize.h"
#include "parallel/shard.h"
#include "util/cancellation.h"
#include "util/log.h"
#include "util/memory_budget.h"
#include "util/thread_pool.h"

namespace ppm {

namespace {

/// Segments processed between interrupt / budget polls during scan 2.
constexpr uint64_t kScanCheckStride = 1024;

/// A failed live budget check during scan 2 (the pre-scan prediction is
/// pessimistic, so this fires only when the prediction itself was beaten).
Status HitStoreOverBudget(uint64_t bytes, uint64_t limit) {
  obs::MetricsRegistry::Global().GetCounter("ppm.fault.budget_denials").Inc();
  return Status::ResourceExhausted(
      "hit store grew to " + std::to_string(bytes) +
      " bytes, exceeding memory budget of " + std::to_string(limit) +
      " bytes during the second scan");
}

/// Sharded variant of Algorithm 3.2 (docs/PARALLELISM.md): materializes the
/// covered prefix in one scan, then shards the F_1 count, the hit
/// registration (private per-worker stores merged in chunk order), and the
/// per-level candidate counting across `threads` workers. Patterns and
/// counts are identical to the sequential miner; `stats().scans` is 1
/// because the materialized buffer serves both logical scans.
Result<MiningResult> MineHitSetSharded(tsdb::SeriesSource& source,
                                       const MiningOptions& options,
                                       uint32_t threads) {
  obs::TraceSpan mine_span = obs::Tracer::Global().StartSpan("mine.hitset");
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter hits_inserted = registry.GetCounter("ppm.hitset.hits_inserted");
  obs::Counter segments_skipped =
      registry.GetCounter("ppm.hitset.segments_skipped");
  obs::Histogram segment_letters =
      registry.GetHistogram("ppm.hitset.segment_letters");

  MiningResult result;
  const uint64_t scans_before = source.stats().scans;
  const uint64_t instants_before = source.stats().instants_read;

  PPM_RETURN_IF_ERROR(options.Validate(source.length()));
  const Interrupt interrupt = options.interrupt();
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  const uint32_t period = options.period;
  const uint64_t num_periods = source.length() / period;
  PPM_ASSIGN_OR_RETURN(
      const std::vector<tsdb::FeatureSet> instants,
      parallel::MaterializePrefix(source, num_periods * period));

  ThreadPool pool(threads);
  registry.GetGauge("ppm.parallel.threads").Set(pool.size());

  // Scan 1 (over the materialized buffer): frequent 1-patterns.
  const F1ScanResult f1 = BuildF1FromInstants(instants, options, &pool);
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = f1.num_periods;

  // Property 3.2 bounds the hit set before it is built; the budget decision
  // may degrade the tree to the hash store (identical patterns) or refuse.
  PPM_ASSIGN_OR_RETURN(
      const BudgetDecision budgeted,
      DecideHitStore(options, f1.num_periods, f1.space.size()));
  MemoryBudget budget(options.memory_budget_bytes);
  std::unique_ptr<HitStore> store =
      MakeHitStore(budgeted.store, f1.space.full_mask(), f1.space.size());

  // Scan 2 (sharded): each worker registers the maximal hit subpattern of
  // its own chunk of whole segments into a private store; the private
  // stores are merged in chunk order, which keeps the merged tree identical
  // run to run for a fixed thread count.
  {
    const obs::TraceSpan scan_span =
        obs::Tracer::Global().StartSpan("second_scan");
    std::vector<std::unique_ptr<HitStore>> shard_stores(pool.size());
    for (auto& shard : shard_stores) {
      shard =
          MakeHitStore(budgeted.store, f1.space.full_mask(), f1.space.size());
    }
    // Workers cannot return a `Status`; a live budget overrun raises this
    // flag and every worker (plus the main thread, after the join) reacts.
    std::atomic<bool> over_budget{false};
    parallel::ShardTimings timings = parallel::ShardedRun(
        pool, f1.num_periods, "second_scan",
        [&](const ThreadPool::Chunk& chunk) {
          HitStore& shard = *shard_stores[chunk.index];
          Bitset segment_mask(f1.space.size());
          for (uint64_t segment = chunk.begin; segment < chunk.end;
               ++segment) {
            if ((segment - chunk.begin) % kScanCheckStride == 0) {
              if (interrupt.ShouldStop() ||
                  over_budget.load(std::memory_order_relaxed)) {
                return;
              }
              if (!budget.unlimited() &&
                  shard.ApproxMemoryBytes() > budget.limit()) {
                over_budget.store(true, std::memory_order_relaxed);
                return;
              }
            }
            f1.space.SegmentMask(&instants[segment * period], &segment_mask);
            const uint32_t letters = segment_mask.Count();
            segment_letters.Observe(letters);
            if (letters >= 2) {
              shard.AddHit(segment_mask);
              hits_inserted.Inc();
            } else {
              segments_skipped.Inc();
            }
          }
        },
        interrupt);

    PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    if (over_budget.load(std::memory_order_relaxed)) {
      uint64_t shard_bytes = 0;
      for (const auto& shard : shard_stores) {
        if (shard != nullptr) shard_bytes += shard->ApproxMemoryBytes();
      }
      return HitStoreOverBudget(shard_bytes, budget.limit());
    }

    obs::TraceSpan merge_span =
        obs::Tracer::Global().StartSpan("second_scan.merge");
    for (const auto& shard : shard_stores) {
      if (shard != nullptr) store->Merge(*shard);
    }
    merge_span.End();
    if (!budget.unlimited() && store->ApproxMemoryBytes() > budget.limit()) {
      return HitStoreOverBudget(store->ApproxMemoryBytes(), budget.limit());
    }
    timings.merge_seconds = merge_span.ElapsedSeconds();
    parallel::RecordShardMetrics(timings);
    RecordDbPass("second_scan", f1.num_periods * period, f1.num_periods);
    registry.GetGauge("ppm.resource.hit_store_bytes")
        .Set(store->ApproxMemoryBytes());
  }

  // Derivation: candidate counting partitioned across the same pool. The
  // budget keeps accounting for per-level candidate tables on top of the
  // (already built) hit store's bytes.
  if (!budget.unlimited()) budget.TryCharge(store->ApproxMemoryBytes());
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options.max_letters,
      [&store](const Bitset& mask) { return store->CountSuperpatterns(mask); },
      &result, &pool, interrupt, budget.unlimited() ? nullptr : &budget);
  if (!derivation.status.ok()) return RecordFault(derivation.status);

  result.Canonicalize();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store->num_entries();
  result.stats().tree_nodes =
      budgeted.store == HitStoreKind::kMaxSubpatternTree ? store->num_units()
                                                            : 0;
  result.stats().scans = source.stats().scans - scans_before;
  result.stats().instants_read = source.stats().instants_read - instants_before;
  mine_span.End();
  result.stats().elapsed_seconds = mine_span.ElapsedSeconds();
  registry.GetHistogram("ppm.mine.latency_us")
      .Observe(static_cast<uint64_t>(result.stats().elapsed_seconds * 1e6));
  PPM_LOG(kDebug) << "hit-set mine (sharded x" << pool.size()
                  << "): " << result.size() << " patterns, |H|="
                  << result.stats().hit_store_entries;
  return result;
}

}  // namespace

Result<MiningResult> MineHitSet(tsdb::SeriesSource& source,
                                const MiningOptions& options) {
  const uint32_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) {
    return MineHitSetSharded(source, options, threads);
  }

  obs::TraceSpan mine_span = obs::Tracer::Global().StartSpan("mine.hitset");
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter hits_inserted = registry.GetCounter("ppm.hitset.hits_inserted");
  obs::Counter segments_skipped =
      registry.GetCounter("ppm.hitset.segments_skipped");
  obs::Histogram segment_letters =
      registry.GetHistogram("ppm.hitset.segment_letters");

  MiningResult result;
  const uint64_t scans_before = source.stats().scans;
  const uint64_t instants_before = source.stats().instants_read;

  // Scan 1: frequent 1-patterns and the candidate max-pattern.
  const Interrupt interrupt = options.interrupt();
  PPM_ASSIGN_OR_RETURN(F1ScanResult f1, ScanForF1(source, options));
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = f1.num_periods;

  // Property 3.2 bounds the hit set before it is built; the budget decision
  // may degrade the tree to the hash store (identical patterns) or refuse.
  PPM_ASSIGN_OR_RETURN(
      const BudgetDecision budgeted,
      DecideHitStore(options, f1.num_periods, f1.space.size()));
  MemoryBudget budget(options.memory_budget_bytes);
  std::unique_ptr<HitStore> store =
      MakeHitStore(budgeted.store, f1.space.full_mask(), f1.space.size());

  // Scan 2: register the maximal hit subpattern of every whole segment.
  // Hits with fewer than 2 letters carry no information beyond F_1's exact
  // counts and are skipped (Section 3.1.2).
  {
    const obs::TraceSpan scan_span =
        obs::Tracer::Global().StartSpan("second_scan");
    PPM_RETURN_IF_ERROR(source.StartScan());
    const uint32_t period = options.period;
    const uint64_t covered = f1.num_periods * period;
    Bitset segment_mask(f1.space.size());
    tsdb::FeatureSet instant;
    uint64_t t = 0;
    uint64_t segments_done = 0;
    while (t < covered && source.Next(&instant)) {
      const uint32_t position = static_cast<uint32_t>(t % period);
      if (position == 0) segment_mask.Reset();
      f1.space.AccumulatePosition(position, instant, &segment_mask);
      if (position == period - 1) {
        const uint32_t letters = segment_mask.Count();
        segment_letters.Observe(letters);
        if (letters >= 2) {
          store->AddHit(segment_mask);
          hits_inserted.Inc();
        } else {
          segments_skipped.Inc();
        }
        if (++segments_done % kScanCheckStride == 0) {
          PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
          if (!budget.unlimited() &&
              store->ApproxMemoryBytes() > budget.limit()) {
            return HitStoreOverBudget(store->ApproxMemoryBytes(),
                                      budget.limit());
          }
        }
      }
      ++t;
    }
    PPM_RETURN_IF_ERROR(source.status());
    if (t < covered) {
      return Status::Internal("source ended before its declared length");
    }
    if (!budget.unlimited() && store->ApproxMemoryBytes() > budget.limit()) {
      return HitStoreOverBudget(store->ApproxMemoryBytes(), budget.limit());
    }
    RecordDbPass("second_scan", covered, f1.num_periods);
    registry.GetGauge("ppm.resource.hit_store_bytes")
        .Set(store->ApproxMemoryBytes());
  }

  // Derivation: no further series access. The budget keeps accounting for
  // per-level candidate tables on top of the hit store's bytes.
  if (!budget.unlimited()) budget.TryCharge(store->ApproxMemoryBytes());
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options.max_letters,
      [&store](const Bitset& mask) { return store->CountSuperpatterns(mask); },
      &result, nullptr, interrupt, budget.unlimited() ? nullptr : &budget);
  if (!derivation.status.ok()) return RecordFault(derivation.status);

  result.Canonicalize();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store->num_entries();
  result.stats().tree_nodes =
      budgeted.store == HitStoreKind::kMaxSubpatternTree ? store->num_units()
                                                            : 0;
  result.stats().scans = source.stats().scans - scans_before;
  result.stats().instants_read = source.stats().instants_read - instants_before;
  mine_span.End();
  result.stats().elapsed_seconds = mine_span.ElapsedSeconds();
  registry.GetHistogram("ppm.mine.latency_us")
      .Observe(static_cast<uint64_t>(result.stats().elapsed_seconds * 1e6));
  PPM_LOG(kDebug) << "hit-set mine: " << result.size() << " patterns, |H|="
                  << result.stats().hit_store_entries << ", scans="
                  << result.stats().scans;
  return result;
}

}  // namespace ppm
