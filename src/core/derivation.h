#ifndef PPM_CORE_DERIVATION_H_
#define PPM_CORE_DERIVATION_H_

#include <cstdint>
#include <functional>

#include "core/f1_scan.h"
#include "core/mining_result.h"
#include "util/bitset.h"
#include "util/cancellation.h"
#include "util/memory_budget.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ppm {

/// Statistics from one derivation run.
struct DerivationStats {
  uint64_t candidates_evaluated = 0;
  uint32_t max_level_reached = 0;
  /// OK when the run completed; `kCancelled` / `kDeadlineExceeded` /
  /// `kResourceExhausted` when it stopped early. Patterns appended so far
  /// remain valid (they are genuinely frequent), just not complete.
  Status status = Status::OK();
};

/// Derives the complete frequent pattern set from per-candidate counts
/// (Algorithm 4.2): level 1 comes from the exact `F_1` counts of `f1`;
/// each higher level generates candidates Apriori-style from the previous
/// frequent level and evaluates them with `count_fn` (typically
/// `HitStore::CountSuperpatterns`). Stops at `max_letters` levels when
/// nonzero. Appends patterns to `*result` (unsorted; callers canonicalize).
///
/// When `pool` is non-null, each level's candidates -- a slice of the
/// subpattern lattice of `C_max` -- are partitioned across the workers and
/// counted concurrently; `count_fn` must then be safe for concurrent calls
/// (both hit stores are, once scan 2 finished). Candidate generation,
/// filtering, and emission stay on the calling thread in candidate order,
/// so the output is identical at any worker count.
///
/// `interrupt` is polled between levels and every few hundred candidates;
/// when it fires the run stops and `DerivationStats::status` carries the
/// reason. `budget`, when non-null, is charged for each level's candidate
/// table (released when the level retires); a failed charge stops the run
/// with `kResourceExhausted`.
DerivationStats DeriveFrequentPatterns(
    const F1ScanResult& f1, uint32_t max_letters,
    const std::function<uint64_t(const Bitset&)>& count_fn,
    MiningResult* result, ThreadPool* pool = nullptr,
    const Interrupt& interrupt = Interrupt(), MemoryBudget* budget = nullptr);

}  // namespace ppm

#endif  // PPM_CORE_DERIVATION_H_
