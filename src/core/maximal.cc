#include "core/maximal.h"

namespace ppm {

bool HasProperSuperpattern(const Pattern& candidate,
                           const std::vector<FrequentPattern>& patterns) {
  for (const FrequentPattern& entry : patterns) {
    if (entry.pattern == candidate) continue;
    if (candidate.IsSubpatternOf(entry.pattern)) return true;
  }
  return false;
}

std::vector<FrequentPattern> MaximalPatterns(const MiningResult& result) {
  std::vector<FrequentPattern> maximal;
  const std::vector<FrequentPattern>& all = result.patterns();
  // Canonical order sorts by letter count; only patterns with at least as
  // many letters can be proper superpatterns, but a simple full pass keeps
  // this obviously correct (result sets are small relative to the series).
  for (const FrequentPattern& entry : all) {
    if (!HasProperSuperpattern(entry.pattern, all)) maximal.push_back(entry);
  }
  return maximal;
}

}  // namespace ppm
