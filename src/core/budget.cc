#include "core/budget.h"

#include <string>

#include "obs/metrics.h"
#include "util/log.h"

namespace ppm {

uint64_t HitSetUpperBound(uint64_t num_periods, uint64_t num_letters) {
  if (num_letters < 2) return 0;
  // 2^{n_d} - n_d - 1 saturates once n_d reaches 63; min() with m keeps the
  // result meaningful anyway (m is the real cap for long series).
  if (num_letters >= 63) return num_periods;
  const uint64_t lattice = (uint64_t{1} << num_letters) - num_letters - 1;
  return num_periods < lattice ? num_periods : lattice;
}

uint64_t PredictHitStoreBytes(HitStoreKind kind, uint64_t entries,
                              uint32_t num_letters) {
  const uint64_t mask_bytes = ((uint64_t{num_letters} + 63) / 64) * 8;
  switch (kind) {
    case HitStoreKind::kMaxSubpatternTree: {
      // Registering a hit can allocate interior nodes along its path of
      // missing letters, so nodes can outnumber distinct hits; budget two
      // nodes per entry plus per-node mask storage and child links.
      const uint64_t per_node = 96 + mask_bytes;
      return 2 * entries * per_node;
    }
    case HitStoreKind::kHashTable: {
      // One bucket entry per distinct mask: key + count + table overhead.
      const uint64_t per_entry = 64 + mask_bytes;
      return entries * per_entry;
    }
  }
  return 0;
}

Result<BudgetDecision> DecideHitStore(const MiningOptions& options,
                                      uint64_t num_periods,
                                      uint32_t num_letters) {
  BudgetDecision decision;
  decision.store = options.hit_store;

  const uint64_t bound = HitSetUpperBound(num_periods, num_letters);
  decision.predicted_bytes =
      PredictHitStoreBytes(options.hit_store, bound, num_letters);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ppm.budget.predicted_hits").Set(bound);
  registry.GetGauge("ppm.budget.predicted_bytes").Set(decision.predicted_bytes);

  if (options.memory_budget_bytes == 0 ||
      decision.predicted_bytes <= options.memory_budget_bytes) {
    return decision;
  }

  if (options.budget_policy == BudgetPolicy::kDegrade &&
      options.hit_store == HitStoreKind::kMaxSubpatternTree) {
    const uint64_t hash_bytes =
        PredictHitStoreBytes(HitStoreKind::kHashTable, bound, num_letters);
    if (hash_bytes <= options.memory_budget_bytes) {
      decision.store = HitStoreKind::kHashTable;
      decision.predicted_bytes = hash_bytes;
      decision.degraded = true;
      registry.GetCounter("ppm.fault.degradations").Inc();
      PPM_LOG(kInfo) << "memory budget: degrading to hash hit store ("
                     << hash_bytes << " <= " << options.memory_budget_bytes
                     << " bytes predicted for |H| <= " << bound << ")";
      return decision;
    }
  }

  registry.GetCounter("ppm.fault.budget_denials").Inc();
  return Status::ResourceExhausted(
      "predicted hit-set of " + std::to_string(bound) + " entries (~" +
      std::to_string(decision.predicted_bytes) + " bytes) exceeds memory "
      "budget of " + std::to_string(options.memory_budget_bytes) + " bytes");
}

}  // namespace ppm
