#ifndef PPM_CORE_APRIORI_MINER_H_
#define PPM_CORE_APRIORI_MINER_H_

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm {

/// Algorithm 3.1 (single-period Apriori).
///
/// Scan 1 finds the frequent 1-patterns `F_1`. Each subsequent level `k`
/// generates candidate k-letter patterns from the frequent (k-1)-letter
/// patterns (Property 3.1) and counts all of them in one additional scan of
/// the series, terminating when a level yields no candidates. The number of
/// scans therefore grows with the longest frequent pattern -- the behaviour
/// the paper's Figure 2 measures against the hit-set method.
Result<MiningResult> MineApriori(tsdb::SeriesSource& source,
                                 const MiningOptions& options);

}  // namespace ppm

#endif  // PPM_CORE_APRIORI_MINER_H_
