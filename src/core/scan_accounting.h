#ifndef PPM_CORE_SCAN_ACCOUNTING_H_
#define PPM_CORE_SCAN_ACCOUNTING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ppm {

/// Records one logical database pass over the series data.
///
/// A "pass" is an algorithm-level traversal of the time series -- the F1
/// counting scan, the hit-registration scan, or one Apriori level scan --
/// regardless of how the bytes physically arrive (streamed from a file,
/// sharded over an in-memory prefix, or replayed per worker). Physical IO
/// is accounted separately by SeriesSource (`ppm.source.*`), so e.g. a
/// sharded run that first materializes a prefix reports extra
/// `ppm.source.scans` but the same `ppm.scan.db_passes`. This is the
/// number the paper's Algorithm 3.2 bounds at 2 for single-period mining.
///
/// Emits:
///   ppm.scan.db_passes          -- total passes (counter)
///   ppm.scan.passes.<phase>     -- passes of this kind (counter)
///   ppm.scan.instants_scanned   -- instants covered across passes (counter)
///   ppm.scan.segments_scanned   -- period segments covered (counter)
///   ppm.scan.pass_instants      -- per-pass instant count (histogram)
inline void RecordDbPass(std::string_view phase, uint64_t instants,
                         uint64_t segments) {
#ifndef PPM_OBS_DISABLED
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ppm.scan.db_passes").Inc();
  registry.GetCounter("ppm.scan.passes." + std::string(phase)).Inc();
  registry.GetCounter("ppm.scan.instants_scanned").Inc(instants);
  registry.GetCounter("ppm.scan.segments_scanned").Inc(segments);
  registry.GetHistogram("ppm.scan.pass_instants").Observe(instants);
#else
  (void)phase;
  (void)instants;
  (void)segments;
#endif
}

/// Records the candidate-set size generated at one Apriori/derivation
/// level: a per-level gauge `<prefix>.level_candidates.L<level>` plus the
/// running counter `<prefix>.candidates_total`. These are thread-count
/// invariant and participate in the exact half of the perf gate.
inline void RecordLevelCandidates(std::string_view prefix, uint64_t level,
                                  uint64_t count) {
#ifndef PPM_OBS_DISABLED
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetGauge(std::string(prefix) + ".level_candidates.L" +
                std::to_string(level))
      .Set(count);
  registry.GetCounter(std::string(prefix) + ".candidates_total").Inc(count);
#else
  (void)prefix;
  (void)level;
  (void)count;
#endif
}

}  // namespace ppm

#endif  // PPM_CORE_SCAN_ACCOUNTING_H_
