#ifndef PPM_CORE_LETTER_SPACE_H_
#define PPM_CORE_LETTER_SPACE_H_

#include <cstdint>
#include <vector>

#include "core/pattern.h"
#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/bitset.h"
#include "util/status.h"

namespace ppm {

/// One letter of a candidate max-pattern: a feature pinned to a period
/// offset.
struct Letter {
  uint32_t position = 0;
  tsdb::FeatureId feature = 0;

  friend bool operator==(const Letter& a, const Letter& b) {
    return a.position == b.position && a.feature == b.feature;
  }
  friend bool operator<(const Letter& a, const Letter& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.feature < b.feature;
  }
};

/// Canonical indexing of the letters of a candidate max-pattern `C_max`.
///
/// After the first scan finds the frequent 1-patterns `F_1`, every remaining
/// object the miners manipulate -- candidate patterns, period-segment hits,
/// max-subpattern tree nodes -- is a subset of the `n_d = |F_1|` letters of
/// `C_max`. `LetterSpace` assigns those letters dense indices in canonical
/// order (position ascending, then feature id ascending) so such subsets are
/// plain bitmasks, and converts between masks and `Pattern` objects.
class LetterSpace {
 public:
  /// Builds a space over `letters`, which must be sorted canonically and
  /// contain no duplicates with positions `< period`.
  LetterSpace(uint32_t period, std::vector<Letter> letters);

  uint32_t period() const { return period_; }

  /// Number of letters (`n_d`, the non-`*` letter count of `C_max`).
  uint32_t size() const { return static_cast<uint32_t>(letters_.size()); }

  const Letter& letter(uint32_t index) const { return letters_[index]; }
  const std::vector<Letter>& letters() const { return letters_; }

  /// Mask with every letter set (the candidate max-pattern itself).
  const Bitset& full_mask() const { return full_mask_; }

  /// The candidate max-pattern `C_max` as a `Pattern`.
  Pattern MaxPattern() const { return MaskToPattern(full_mask_); }

  /// Converts a letter subset to the pattern it denotes.
  Pattern MaskToPattern(const Bitset& mask) const;

  /// Converts a pattern to its letter mask; fails with `NotFound` when the
  /// pattern uses a letter outside this space, or `InvalidArgument` when the
  /// periods differ.
  Result<Bitset> PatternToMask(const Pattern& pattern) const;

  /// Index of letter `(position, feature)`, or `Bitset::kNoBit` if absent.
  uint32_t IndexOf(uint32_t position, tsdb::FeatureId feature) const;

  /// Computes into `*out` the mask of letters present in a period segment,
  /// i.e. the *maximal hit subpattern* of `C_max` for that segment
  /// (Section 3.1.2). `segment[i]` is the feature set at offset `i`;
  /// `segment` must have at least `period()` elements.
  void SegmentMask(const tsdb::FeatureSet* segment, Bitset* out) const;

  /// Incremental variant for streaming scans: ORs into `*mask` the letters
  /// matched by `features` at period offset `position`.
  void AccumulatePosition(uint32_t position, const tsdb::FeatureSet& features,
                          Bitset* mask) const;

 private:
  uint32_t period_;
  std::vector<Letter> letters_;
  Bitset full_mask_;
  // Letter indices grouped by position: position_begin_[p] .. position_begin_[p+1].
  std::vector<uint32_t> position_begin_;
};

}  // namespace ppm

#endif  // PPM_CORE_LETTER_SPACE_H_
