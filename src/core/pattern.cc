#include "core/pattern.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace ppm {

uint32_t Pattern::LLength() const {
  uint32_t count = 0;
  for (const tsdb::FeatureSet& position : positions_) {
    if (!position.Empty()) ++count;
  }
  return count;
}

uint32_t Pattern::LetterCount() const {
  uint32_t count = 0;
  for (const tsdb::FeatureSet& position : positions_) count += position.Count();
  return count;
}

bool Pattern::IsSubpatternOf(const Pattern& other) const {
  if (period() != other.period()) return false;
  for (uint32_t i = 0; i < period(); ++i) {
    if (!positions_[i].IsSubsetOf(other.positions_[i])) return false;
  }
  return true;
}

bool Pattern::MatchesSegment(const tsdb::TimeSeries& series,
                             uint64_t offset) const {
  PPM_CHECK(offset + period() <= series.length());
  for (uint32_t i = 0; i < period(); ++i) {
    if (!positions_[i].IsSubsetOf(series.at(offset + i))) return false;
  }
  return true;
}

Pattern Pattern::UnionWith(const Pattern& other) const {
  PPM_CHECK(period() == other.period());
  Pattern result = *this;
  for (uint32_t i = 0; i < period(); ++i) {
    result.positions_[i].UnionWith(other.positions_[i]);
  }
  return result;
}

Pattern Pattern::IntersectWith(const Pattern& other) const {
  PPM_CHECK(period() == other.period());
  Pattern result = *this;
  for (uint32_t i = 0; i < period(); ++i) {
    result.positions_[i].IntersectWith(other.positions_[i]);
  }
  return result;
}

std::string Pattern::Format(const tsdb::SymbolTable& symbols) const {
  std::string out;
  for (uint32_t i = 0; i < period(); ++i) {
    if (i > 0) out += ' ';
    const tsdb::FeatureSet& position = positions_[i];
    if (position.Empty()) {
      out += '*';
      continue;
    }
    if (position.Count() == 1) {
      out += symbols.NameOrPlaceholder(position.FindFirst());
      continue;
    }
    out += '{';
    bool first = true;
    position.ForEach([&](uint32_t id) {
      if (!first) out += ',';
      first = false;
      out += symbols.NameOrPlaceholder(id);
    });
    out += '}';
  }
  return out;
}

Result<Pattern> Pattern::Parse(std::string_view text,
                               tsdb::SymbolTable* symbols) {
  PPM_CHECK(symbols != nullptr);
  const std::vector<std::string> tokens =
      SplitSkipEmpty(StripWhitespace(text), ' ');
  if (tokens.empty()) {
    return Status::InvalidArgument("empty pattern text");
  }
  Pattern pattern(static_cast<uint32_t>(tokens.size()));
  for (uint32_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "*") continue;
    if (token.front() == '{') {
      if (token.size() < 3 || token.back() != '}') {
        return Status::InvalidArgument("malformed position token: " + token);
      }
      const std::string inner = token.substr(1, token.size() - 2);
      const std::vector<std::string> names = SplitSkipEmpty(inner, ',');
      if (names.empty()) {
        return Status::InvalidArgument("empty feature group: " + token);
      }
      for (const std::string& name : names) {
        pattern.AddLetter(i, symbols->Intern(name));
      }
      continue;
    }
    if (token.find_first_of("{},") != std::string::npos) {
      return Status::InvalidArgument("malformed position token: " + token);
    }
    pattern.AddLetter(i, symbols->Intern(token));
  }
  return pattern;
}

size_t Pattern::Hash() const {
  uint64_t h = 1469598103934665603ull ^ positions_.size();
  for (const tsdb::FeatureSet& position : positions_) {
    h ^= position.Hash();
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

bool operator<(const Pattern& a, const Pattern& b) {
  if (a.period() != b.period()) return a.period() < b.period();
  for (uint32_t i = 0; i < a.period(); ++i) {
    if (a.positions_[i] != b.positions_[i]) {
      return a.positions_[i] < b.positions_[i];
    }
  }
  return false;
}

}  // namespace ppm
