#ifndef PPM_CORE_PATTERN_H_
#define PPM_CORE_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/bitset.h"
#include "util/status.h"

namespace ppm {

/// A partial periodic pattern `s = s_1 ... s_p` (Section 2 of the paper).
///
/// Each of the `p` positions is either the don't-care letter `*` (represented
/// as an empty feature set) or a non-empty set of features that must all be
/// present at that offset of a matching period segment.
///
/// Terminology used throughout the library:
///  * the *L-length* is the number of non-`*` positions ("i-pattern");
///  * a *letter* is one (position, feature) pair; a position holding the set
///    `{b1, b2}` contributes two letters;
///  * `a` is a *subpattern* of `b` (same period) iff every position of `a`
///    is a subset of the corresponding position of `b`.
class Pattern {
 public:
  /// The all-`*` pattern of the given period (period may be zero for a
  /// default-constructed placeholder).
  Pattern() = default;
  explicit Pattern(uint32_t period) : positions_(period) {}

  Pattern(const Pattern&) = default;
  Pattern& operator=(const Pattern&) = default;
  Pattern(Pattern&&) noexcept = default;
  Pattern& operator=(Pattern&&) noexcept = default;

  uint32_t period() const { return static_cast<uint32_t>(positions_.size()); }

  /// Feature set at `position` (empty set means `*`).
  const tsdb::FeatureSet& at(uint32_t position) const {
    return positions_[position];
  }

  bool IsStarAt(uint32_t position) const { return positions_[position].Empty(); }

  /// Adds feature `feature` at `position` (position must be `< period()`).
  void AddLetter(uint32_t position, tsdb::FeatureId feature) {
    positions_[position].Set(feature);
  }

  /// Removes feature `feature` from `position` if present.
  void RemoveLetter(uint32_t position, tsdb::FeatureId feature) {
    positions_[position].Clear(feature);
  }

  /// Number of non-`*` positions (the paper's L-length).
  uint32_t LLength() const;

  /// Total number of letters across all positions.
  uint32_t LetterCount() const;

  /// True when every position is `*` (the empty pattern, which is not a
  /// valid pattern per the paper but is a useful algebraic identity).
  bool IsEmpty() const { return LetterCount() == 0; }

  /// True iff `*this` is a subpattern of `other` (periods must match; returns
  /// false otherwise). Every pattern is a subpattern of itself.
  bool IsSubpatternOf(const Pattern& other) const;

  /// True iff `*this` is true in the period segment of `series` starting at
  /// instant `offset` (caller guarantees `offset + period() <= length`).
  bool MatchesSegment(const tsdb::TimeSeries& series, uint64_t offset) const;

  /// Positionwise union (join) with `other`; periods must match.
  Pattern UnionWith(const Pattern& other) const;

  /// Positionwise intersection (meet) with `other`; periods must match.
  Pattern IntersectWith(const Pattern& other) const;

  /// Human-readable form, e.g. "a {b1,b2} * d *": positions separated by
  /// single spaces; a single-feature position prints the bare name; a
  /// multi-feature position prints "{n1,n2}" with names sorted by id.
  std::string Format(const tsdb::SymbolTable& symbols) const;

  /// Parses the `Format` syntax. New feature names are interned into
  /// `*symbols`. Fails on empty input, empty braces, or malformed tokens.
  static Result<Pattern> Parse(std::string_view text,
                               tsdb::SymbolTable* symbols);

  /// Content hash consistent with `operator==`.
  size_t Hash() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.positions_ == b.positions_;
  }
  friend bool operator!=(const Pattern& a, const Pattern& b) {
    return !(a == b);
  }

  /// Canonical total order: by period, then positionwise bitset order.
  /// Used to emit mining results in a stable order.
  friend bool operator<(const Pattern& a, const Pattern& b);

 private:
  std::vector<tsdb::FeatureSet> positions_;
};

/// Hash functor for unordered containers keyed by `Pattern`.
struct PatternHash {
  size_t operator()(const Pattern& pattern) const { return pattern.Hash(); }
};

}  // namespace ppm

#endif  // PPM_CORE_PATTERN_H_
