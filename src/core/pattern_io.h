#ifndef PPM_CORE_PATTERN_IO_H_
#define PPM_CORE_PATTERN_IO_H_

#include <string>
#include <vector>

#include "core/mining_result.h"
#include "core/pattern.h"
#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm {

/// Writes mined patterns as text, one per line:
///
///   <count> <confidence> <pattern in Format() notation>
///
/// with a `# period=<p>` header line. Lines are parseable by
/// `ReadPatternsFile` and human-greppable. Feature names must satisfy the
/// text-codec rules (no whitespace, no leading '#').
Status WritePatternsFile(const MiningResult& result,
                         const tsdb::SymbolTable& symbols,
                         const std::string& path);

/// Reads a patterns file. Feature names are interned into `*symbols`
/// (typically the symbol table of the series the patterns will be applied
/// to, so ids line up). Count/confidence fields reflect the original
/// mining run.
Result<MiningResult> ReadPatternsFile(const std::string& path,
                                      tsdb::SymbolTable* symbols);

/// Re-evaluates previously mined patterns against a (different) series:
/// recounts every pattern from the definition and reports old vs new
/// confidence. The workhorse of "mine on January, check against February"
/// workflows (Section 6's evolution discussion).
struct AppliedPattern {
  Pattern pattern;
  uint64_t new_count = 0;
  double new_confidence = 0.0;
  double old_confidence = 0.0;
};

/// Fails when a pattern's period does not divide into the series (i.e.
/// `period > length`) or periods are inconsistent with `period` (0 = use
/// each pattern's own period).
Result<std::vector<AppliedPattern>> ApplyPatterns(
    const MiningResult& patterns, const tsdb::TimeSeries& series);

}  // namespace ppm

#endif  // PPM_CORE_PATTERN_IO_H_
