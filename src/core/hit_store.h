#ifndef PPM_CORE_HIT_STORE_H_
#define PPM_CORE_HIT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/max_subpattern_tree.h"
#include "core/mining_options.h"
#include "obs/metrics.h"
#include "util/bitset.h"

namespace ppm {

/// Storage for the max-subpattern hit set collected during the second scan
/// of Algorithm 3.2: a multiset of letter masks with two required queries --
/// add one hit, and total the hits that are superpatterns of a candidate.
///
/// Two implementations exist so the paper's tree can be ablated against a
/// plain hash table (DESIGN.md ablation 1).
class HitStore {
 public:
  virtual ~HitStore() = default;

  HitStore(const HitStore&) = delete;
  HitStore& operator=(const HitStore&) = delete;

  /// Registers one period segment whose maximal hit subpattern is `mask`.
  virtual void AddHit(const Bitset& mask) = 0;

  /// Registers `count` hits of `mask` at once (bulk form used by `Merge`).
  /// No-op when `count` is zero.
  virtual void AddHits(const Bitset& mask, uint64_t count) = 0;

  /// Withdraws `count` previously registered hits of `mask` -- the sliding
  /// window's eviction of an expired segment's contribution. The store must
  /// currently hold at least `count` hits of exactly `mask`; evicting a
  /// never-added mask is a caller bug (checked). No-op when `count` is zero.
  virtual void RemoveHits(const Bitset& mask, uint64_t count) = 0;

  /// Invokes `fn(mask, count)` for every distinct stored max-subpattern
  /// with a nonzero count.
  virtual void ForEachHit(
      const std::function<void(const Bitset&, uint64_t)>& fn) const = 0;

  /// Folds every hit of `other` into this store. The parallel second scan
  /// gives each worker a private store over its shard of period segments
  /// and merges them (in deterministic chunk order) once the workers join;
  /// `CountSuperpatterns` totals are additive, so the merged store answers
  /// exactly as a store fed sequentially. `other` may use a different
  /// backing (tree into hash and vice versa).
  void Merge(const HitStore& other) {
    other.ForEachHit(
        [this](const Bitset& mask, uint64_t count) { AddHits(mask, count); });
  }

  /// Sum of hit counts over stored masks that are supersets of `mask`.
  /// Safe to call concurrently from multiple threads as long as no thread
  /// is mutating the store (the parallel derivation's usage).
  virtual uint64_t CountSuperpatterns(const Bitset& mask) const = 0;

  /// Number of distinct stored max-subpatterns (`|H|`).
  virtual uint64_t num_entries() const = 0;

  /// Allocated bookkeeping units (tree nodes, or hash entries).
  virtual uint64_t num_units() const = 0;

  /// Approximate bytes of owned storage, for `MemoryBudget` accounting.
  virtual uint64_t ApproxMemoryBytes() const = 0;

 protected:
  HitStore() = default;
};

/// `HitStore` backed by the paper's max-subpattern tree.
class TreeHitStore : public HitStore {
 public:
  TreeHitStore(const Bitset& full_mask, uint32_t num_letters)
      : tree_(full_mask, num_letters) {}

  void AddHit(const Bitset& mask) override { tree_.Insert(mask); }
  void AddHits(const Bitset& mask, uint64_t count) override {
    tree_.Insert(mask, count);
  }
  void RemoveHits(const Bitset& mask, uint64_t count) override {
    tree_.Remove(mask, count);
  }
  void ForEachHit(const std::function<void(const Bitset&, uint64_t)>& fn)
      const override {
    tree_.ForEachNode([&fn](const Bitset& mask, uint64_t count) {
      if (count > 0) fn(mask, count);
    });
  }
  uint64_t CountSuperpatterns(const Bitset& mask) const override {
    return tree_.CountSuperpatterns(mask);
  }
  uint64_t num_entries() const override { return tree_.num_hits(); }
  uint64_t num_units() const override { return tree_.num_nodes(); }
  uint64_t ApproxMemoryBytes() const override {
    return tree_.ApproxMemoryBytes();
  }

  const MaxSubpatternTree& tree() const { return tree_; }

 private:
  MaxSubpatternTree tree_;
};

/// `HitStore` backed by a hash table keyed on the hit mask. Queries scan
/// every distinct entry (no superpattern pruning).
class HashHitStore : public HitStore {
 public:
  HashHitStore();

  void AddHit(const Bitset& mask) override { ++counts_[mask]; }
  void AddHits(const Bitset& mask, uint64_t count) override {
    if (count > 0) counts_[mask] += count;
  }
  void RemoveHits(const Bitset& mask, uint64_t count) override;
  void ForEachHit(const std::function<void(const Bitset&, uint64_t)>& fn)
      const override {
    for (const auto& [mask, count] : counts_) fn(mask, count);
  }
  uint64_t CountSuperpatterns(const Bitset& mask) const override;
  uint64_t num_entries() const override { return counts_.size(); }
  uint64_t num_units() const override { return counts_.size(); }
  uint64_t ApproxMemoryBytes() const override;

 private:
  std::unordered_map<Bitset, uint64_t, BitsetHash> counts_;
  // Entries examined per query (`ppm.hit_store.hash_probes`); the counter
  // the DESIGN.md ablation compares against `ppm.tree.query_node_visits`.
  obs::Counter probes_counter_;
};

/// Factory keyed on the `MiningOptions::hit_store` selector.
std::unique_ptr<HitStore> MakeHitStore(HitStoreKind kind,
                                       const Bitset& full_mask,
                                       uint32_t num_letters);

}  // namespace ppm

#endif  // PPM_CORE_HIT_STORE_H_
