#ifndef PPM_CORE_HIT_STORE_H_
#define PPM_CORE_HIT_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/max_subpattern_tree.h"
#include "core/mining_options.h"
#include "obs/metrics.h"
#include "util/bitset.h"

namespace ppm {

/// Storage for the max-subpattern hit set collected during the second scan
/// of Algorithm 3.2: a multiset of letter masks with two required queries --
/// add one hit, and total the hits that are superpatterns of a candidate.
///
/// Two implementations exist so the paper's tree can be ablated against a
/// plain hash table (DESIGN.md ablation 1).
class HitStore {
 public:
  virtual ~HitStore() = default;

  HitStore(const HitStore&) = delete;
  HitStore& operator=(const HitStore&) = delete;

  /// Registers one period segment whose maximal hit subpattern is `mask`.
  virtual void AddHit(const Bitset& mask) = 0;

  /// Sum of hit counts over stored masks that are supersets of `mask`.
  virtual uint64_t CountSuperpatterns(const Bitset& mask) const = 0;

  /// Number of distinct stored max-subpatterns (`|H|`).
  virtual uint64_t num_entries() const = 0;

  /// Allocated bookkeeping units (tree nodes, or hash entries).
  virtual uint64_t num_units() const = 0;

 protected:
  HitStore() = default;
};

/// `HitStore` backed by the paper's max-subpattern tree.
class TreeHitStore : public HitStore {
 public:
  TreeHitStore(const Bitset& full_mask, uint32_t num_letters)
      : tree_(full_mask, num_letters) {}

  void AddHit(const Bitset& mask) override { tree_.Insert(mask); }
  uint64_t CountSuperpatterns(const Bitset& mask) const override {
    return tree_.CountSuperpatterns(mask);
  }
  uint64_t num_entries() const override { return tree_.num_hits(); }
  uint64_t num_units() const override { return tree_.num_nodes(); }

  const MaxSubpatternTree& tree() const { return tree_; }

 private:
  MaxSubpatternTree tree_;
};

/// `HitStore` backed by a hash table keyed on the hit mask. Queries scan
/// every distinct entry (no superpattern pruning).
class HashHitStore : public HitStore {
 public:
  HashHitStore();

  void AddHit(const Bitset& mask) override { ++counts_[mask]; }
  uint64_t CountSuperpatterns(const Bitset& mask) const override;
  uint64_t num_entries() const override { return counts_.size(); }
  uint64_t num_units() const override { return counts_.size(); }

 private:
  std::unordered_map<Bitset, uint64_t, BitsetHash> counts_;
  // Entries examined per query (`ppm.hit_store.hash_probes`); the counter
  // the DESIGN.md ablation compares against `ppm.tree.query_node_visits`.
  obs::Counter probes_counter_;
};

/// Factory keyed on the `MiningOptions::hit_store` selector.
std::unique_ptr<HitStore> MakeHitStore(HitStoreKind kind,
                                       const Bitset& full_mask,
                                       uint32_t num_letters);

}  // namespace ppm

#endif  // PPM_CORE_HIT_STORE_H_
