#include "core/multi_period.h"

#include <map>
#include <memory>
#include <utility>

#include "core/budget.h"
#include "core/derivation.h"
#include "core/f1_scan.h"
#include "core/fault_metrics.h"
#include "core/hit_store.h"
#include "core/hitset_miner.h"
#include "core/scan_accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/materialize.h"
#include "parallel/shard.h"
#include "tsdb/series_source.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace ppm {

namespace {

/// Instants walked between interrupt polls in the shared-scan loops.
constexpr uint64_t kInstantCheckStride = 4096;

Status ValidateRange(uint32_t period_low, uint32_t period_high,
                     uint64_t series_length) {
  if (period_low == 0) {
    return Status::InvalidArgument("period_low must be positive");
  }
  if (period_high < period_low) {
    return Status::InvalidArgument("period_high below period_low");
  }
  if (period_high > series_length) {
    return Status::InvalidArgument("period_high exceeds series length");
  }
  return Status::OK();
}

/// Concurrent variant of Algorithm 3.3: materializes the series once, then
/// runs one independent single-period mining task per period on the pool.
/// Each task mines its own `InMemorySeriesSource` over the shared buffer
/// with `num_threads = 1` (no nested pools), so per-period results are
/// byte-identical to the sequential loop; only `total_scans` differs (the
/// one materializing scan instead of two per period).
Result<MultiPeriodResult> MineMultiPeriodLoopedConcurrent(
    tsdb::SeriesSource& source, uint32_t period_low, uint32_t period_high,
    const MiningOptions& options, uint32_t threads) {
  obs::TraceSpan span =
      obs::Tracer::Global().StartSpan("mine.multi_period.looped");
  PPM_RETURN_IF_ERROR(ValidateRange(period_low, period_high, source.length()));
  const uint64_t scans_before = source.stats().scans;
  const uint32_t num_ranges = period_high - period_low + 1;

  PPM_ASSIGN_OR_RETURN(std::vector<tsdb::FeatureSet> instants,
                       parallel::MaterializePrefix(source, source.length()));
  tsdb::TimeSeries series;
  for (tsdb::FeatureSet& instant : instants) series.Append(std::move(instant));

  ThreadPool pool(threads);
  obs::MetricsRegistry::Global().GetGauge("ppm.parallel.threads")
      .Set(pool.size());

  std::vector<Result<MiningResult>> slots;
  slots.reserve(num_ranges);
  for (uint32_t r = 0; r < num_ranges; ++r) {
    slots.emplace_back(Status::Internal("period task never ran"));
  }
  for (uint32_t r = 0; r < num_ranges; ++r) {
    pool.Submit([&series, &options, &slots, period_low, r] {
      const obs::TraceSpan task_span =
          obs::Tracer::Global().StartSpan("multi_period.task");
      tsdb::InMemorySeriesSource task_source(&series);
      MiningOptions per_period_options = options;
      per_period_options.period = period_low + r;
      per_period_options.num_threads = 1;
      slots[r] = MineHitSet(task_source, per_period_options);
    });
  }
  pool.Wait();

  MultiPeriodResult result;
  for (uint32_t r = 0; r < num_ranges; ++r) {
    if (!slots[r].ok()) return slots[r].status();
    result.per_period.emplace_back(period_low + r,
                                   std::move(slots[r]).value());
  }
  result.total_scans = source.stats().scans - scans_before;
  span.End();
  result.elapsed_seconds = span.ElapsedSeconds();
  PPM_LOG(kDebug) << "multi-period looped mine (concurrent x" << pool.size()
                  << "): periods " << period_low << ".." << period_high;
  return result;
}

/// Sharded variant of Algorithm 3.4: one materializing scan, per-period F_1
/// built concurrently (one task per period), then scan 2 sharded so worker
/// `w` feeds a private store set `worker_stores[w][r]` from its chunk of
/// each period's segments; the private sets are merged worker-order at the
/// end and derivation runs per period over the shared pool.
Result<MultiPeriodResult> MineMultiPeriodSharedConcurrent(
    tsdb::SeriesSource& source, uint32_t period_low, uint32_t period_high,
    const MiningOptions& options, uint32_t threads) {
  obs::TraceSpan span =
      obs::Tracer::Global().StartSpan("mine.multi_period.shared");
  PPM_RETURN_IF_ERROR(ValidateRange(period_low, period_high, source.length()));
  const Interrupt interrupt = options.interrupt();
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  const uint64_t scans_before = source.stats().scans;
  const uint32_t num_ranges = period_high - period_low + 1;

  PPM_ASSIGN_OR_RETURN(const std::vector<tsdb::FeatureSet> instants,
                       parallel::MaterializePrefix(source, source.length()));
  ThreadPool pool(threads);
  obs::MetricsRegistry::Global().GetGauge("ppm.parallel.threads")
      .Set(pool.size());

  // --- Scan 1 (shared buffer): per-period F_1, one task per period. Each
  // task writes only its own slot. ---
  std::vector<F1ScanResult> f1(num_ranges);
  {
    const obs::TraceSpan scan1_span =
        obs::Tracer::Global().StartSpan("shared_scan1");
    for (uint32_t r = 0; r < num_ranges; ++r) {
      pool.Submit([&instants, &options, &f1, period_low, r] {
        MiningOptions per_period_options = options;
        per_period_options.period = period_low + r;
        f1[r] = BuildF1FromInstants(instants, per_period_options);
      });
    }
    pool.Wait();
    // Tasks bail early when interrupted, leaving partial F_1 slots.
    PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  }

  std::vector<std::unique_ptr<HitStore>> stores(num_ranges);
  std::vector<HitStoreKind> store_kinds(num_ranges, options.hit_store);
  for (uint32_t r = 0; r < num_ranges; ++r) {
    PPM_ASSIGN_OR_RETURN(const BudgetDecision budgeted,
                         DecideHitStore(options, f1[r].num_periods,
                                        f1[r].space.size()));
    store_kinds[r] = budgeted.store;
    stores[r] = MakeHitStore(budgeted.store, f1[r].space.full_mask(),
                             f1[r].space.size());
  }

  // --- Scan 2 (sharded): worker w walks its chunk of every period's whole
  // segments into a private per-period store set. ---
  {
    const obs::TraceSpan scan2_span =
        obs::Tracer::Global().StartSpan("shared_scan2");
    std::vector<std::vector<std::unique_ptr<HitStore>>> worker_stores(
        pool.size());
    for (auto& store_set : worker_stores) {
      store_set.resize(num_ranges);
      for (uint32_t r = 0; r < num_ranges; ++r) {
        store_set[r] = MakeHitStore(store_kinds[r], f1[r].space.full_mask(),
                                    f1[r].space.size());
      }
    }
    parallel::ShardTimings timings = parallel::ShardedRun(
        pool, pool.size(), "shared_scan2",
        [&](const ThreadPool::Chunk& chunk) {
          for (uint64_t w = chunk.begin; w < chunk.end; ++w) {
            for (uint32_t r = 0; r < num_ranges; ++r) {
              if (interrupt.ShouldStop()) return;
              const uint32_t period = period_low + r;
              const uint64_t num_periods = instants.size() / period;
              const std::vector<ThreadPool::Chunk> segments =
                  ThreadPool::SplitRange(num_periods, pool.size());
              if (w >= segments.size()) continue;
              Bitset segment_mask(f1[r].space.size());
              for (uint64_t segment = segments[w].begin;
                   segment < segments[w].end; ++segment) {
                if ((segment - segments[w].begin) % 1024 == 0 &&
                    interrupt.ShouldStop()) {
                  return;
                }
                f1[r].space.SegmentMask(&instants[segment * period],
                                        &segment_mask);
                if (segment_mask.Count() >= 2) {
                  worker_stores[w][r]->AddHit(segment_mask);
                }
              }
            }
          }
        },
        interrupt);
    PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);

    obs::TraceSpan merge_span =
        obs::Tracer::Global().StartSpan("shared_scan2.merge");
    for (uint32_t r = 0; r < num_ranges; ++r) {
      for (const auto& store_set : worker_stores) {
        stores[r]->Merge(*store_set[r]);
      }
    }
    merge_span.End();
    timings.merge_seconds = merge_span.ElapsedSeconds();
    parallel::RecordShardMetrics(timings);
    // Unlike the sequential shared path, each period's segments are walked
    // independently here (as its F_1 build was), so passes accrue per
    // period: 2 per period mined, not 2 total. See docs/OBSERVABILITY.md.
    for (uint32_t r = 0; r < num_ranges; ++r) {
      const uint32_t period = period_low + r;
      const uint64_t num_periods = instants.size() / period;
      RecordDbPass("shared_scan2", num_periods * period, num_periods);
    }
  }

  // --- Derivation per period, candidate counting over the shared pool. ---
  MultiPeriodResult result;
  for (uint32_t r = 0; r < num_ranges; ++r) {
    MiningResult mined;
    mined.stats().num_f1_letters = f1[r].space.size();
    mined.stats().num_periods = f1[r].num_periods;
    const DerivationStats derivation = DeriveFrequentPatterns(
        f1[r], options.max_letters,
        [&stores, r](const Bitset& mask) {
          return stores[r]->CountSuperpatterns(mask);
        },
        &mined, &pool, interrupt);
    if (!derivation.status.ok()) return RecordFault(derivation.status);
    mined.Canonicalize();
    mined.stats().candidates_evaluated = derivation.candidates_evaluated;
    mined.stats().max_level_reached = derivation.max_level_reached;
    mined.stats().hit_store_entries = stores[r]->num_entries();
    mined.stats().tree_nodes =
        store_kinds[r] == HitStoreKind::kMaxSubpatternTree
            ? stores[r]->num_units()
            : 0;
    result.per_period.emplace_back(period_low + r, std::move(mined));
  }
  result.total_scans = source.stats().scans - scans_before;
  span.End();
  result.elapsed_seconds = span.ElapsedSeconds();
  PPM_LOG(kDebug) << "multi-period shared mine (sharded x" << pool.size()
                  << "): periods " << period_low << ".." << period_high;
  return result;
}

}  // namespace

const MiningResult* MultiPeriodResult::ForPeriod(uint32_t period) const {
  for (const auto& [p, result] : per_period) {
    if (p == period) return &result;
  }
  return nullptr;
}

Result<MultiPeriodResult> MineMultiPeriodLooped(tsdb::SeriesSource& source,
                                                uint32_t period_low,
                                                uint32_t period_high,
                                                const MiningOptions& options) {
  const uint32_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) {
    return MineMultiPeriodLoopedConcurrent(source, period_low, period_high,
                                           options, threads);
  }

  obs::TraceSpan span =
      obs::Tracer::Global().StartSpan("mine.multi_period.looped");
  PPM_RETURN_IF_ERROR(ValidateRange(period_low, period_high, source.length()));

  MultiPeriodResult result;
  const uint64_t scans_before = source.stats().scans;
  for (uint32_t period = period_low; period <= period_high; ++period) {
    MiningOptions per_period_options = options;
    per_period_options.period = period;
    PPM_ASSIGN_OR_RETURN(MiningResult mined,
                         MineHitSet(source, per_period_options));
    result.per_period.emplace_back(period, std::move(mined));
  }
  result.total_scans = source.stats().scans - scans_before;
  span.End();
  result.elapsed_seconds = span.ElapsedSeconds();
  return result;
}

Result<MultiPeriodResult> MineMultiPeriodShared(tsdb::SeriesSource& source,
                                                uint32_t period_low,
                                                uint32_t period_high,
                                                const MiningOptions& options) {
  const uint32_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) {
    return MineMultiPeriodSharedConcurrent(source, period_low, period_high,
                                           options, threads);
  }

  obs::TraceSpan span =
      obs::Tracer::Global().StartSpan("mine.multi_period.shared");
  PPM_RETURN_IF_ERROR(ValidateRange(period_low, period_high, source.length()));
  const Interrupt interrupt = options.interrupt();
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  const uint64_t scans_before = source.stats().scans;
  const uint32_t num_ranges = period_high - period_low + 1;

  // --- Scan 1 (shared): per-period, per-position letter counts. ---
  std::vector<std::vector<std::map<tsdb::FeatureId, uint64_t>>> counts(
      num_ranges);
  std::vector<uint64_t> covered(num_ranges);
  for (uint32_t r = 0; r < num_ranges; ++r) {
    const uint32_t period = period_low + r;
    counts[r].resize(period);
    covered[r] = (source.length() / period) * period;
  }

  obs::TraceSpan scan1_span = obs::Tracer::Global().StartSpan("shared_scan1");
  PPM_RETURN_IF_ERROR(source.StartScan());
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (source.Next(&instant)) {
    if (t % kInstantCheckStride == 0) {
      PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    }
    for (uint32_t r = 0; r < num_ranges; ++r) {
      if (t >= covered[r]) continue;
      auto& position_counts = counts[r][t % (period_low + r)];
      instant.ForEach(
          [&position_counts](uint32_t feature) { ++position_counts[feature]; });
    }
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  scan1_span.End();
  // One traversal serves every period (Algorithm 3.4): the whole shared run
  // is 2 db passes no matter how many periods are mined.
  RecordDbPass("shared_scan1", t, 0);

  // Per-period F_1 spaces, thresholds, and hit stores.
  std::vector<F1ScanResult> f1(num_ranges);
  std::vector<std::unique_ptr<HitStore>> stores(num_ranges);
  std::vector<HitStoreKind> store_kinds(num_ranges, options.hit_store);
  for (uint32_t r = 0; r < num_ranges; ++r) {
    const uint32_t period = period_low + r;
    MiningOptions per_period_options = options;
    per_period_options.period = period;
    PPM_RETURN_IF_ERROR(per_period_options.Validate(source.length()));

    f1[r].num_periods = source.length() / period;
    f1[r].min_count = per_period_options.EffectiveMinCount(f1[r].num_periods);
    std::vector<Letter> letters;
    for (uint32_t position = 0; position < period; ++position) {
      for (const auto& [feature, count] : counts[r][position]) {
        if (count < f1[r].min_count) continue;
        if (options.letter_filter && !options.letter_filter(position, feature)) {
          continue;
        }
        letters.push_back(Letter{position, feature});
        f1[r].letter_counts.push_back(count);
      }
    }
    f1[r].space = LetterSpace(period, std::move(letters));
    PPM_ASSIGN_OR_RETURN(const BudgetDecision budgeted,
                         DecideHitStore(per_period_options, f1[r].num_periods,
                                        f1[r].space.size()));
    store_kinds[r] = budgeted.store;
    stores[r] = MakeHitStore(budgeted.store, f1[r].space.full_mask(),
                             f1[r].space.size());
    counts[r].clear();  // Release scan-1 memory before scan 2.
  }

  // --- Scan 2 (shared): feed every period's hit store. ---
  std::vector<Bitset> segment_masks(num_ranges);
  for (uint32_t r = 0; r < num_ranges; ++r) {
    segment_masks[r] = Bitset(f1[r].space.size());
  }
  obs::TraceSpan scan2_span = obs::Tracer::Global().StartSpan("shared_scan2");
  PPM_RETURN_IF_ERROR(source.StartScan());
  t = 0;
  while (source.Next(&instant)) {
    if (t % kInstantCheckStride == 0) {
      PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    }
    for (uint32_t r = 0; r < num_ranges; ++r) {
      if (t >= covered[r]) continue;
      const uint32_t period = period_low + r;
      const uint32_t position = static_cast<uint32_t>(t % period);
      if (position == 0) segment_masks[r].Reset();
      f1[r].space.AccumulatePosition(position, instant, &segment_masks[r]);
      if (position == period - 1 && segment_masks[r].Count() >= 2) {
        stores[r]->AddHit(segment_masks[r]);
      }
    }
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  scan2_span.End();
  RecordDbPass("shared_scan2", t, 0);

  // --- Derivation per period (no series access). ---
  MultiPeriodResult result;
  for (uint32_t r = 0; r < num_ranges; ++r) {
    MiningResult mined;
    mined.stats().num_f1_letters = f1[r].space.size();
    mined.stats().num_periods = f1[r].num_periods;
    const DerivationStats derivation = DeriveFrequentPatterns(
        f1[r], options.max_letters,
        [&stores, r](const Bitset& mask) {
          return stores[r]->CountSuperpatterns(mask);
        },
        &mined, nullptr, interrupt);
    if (!derivation.status.ok()) return RecordFault(derivation.status);
    mined.Canonicalize();
    mined.stats().candidates_evaluated = derivation.candidates_evaluated;
    mined.stats().max_level_reached = derivation.max_level_reached;
    mined.stats().hit_store_entries = stores[r]->num_entries();
    mined.stats().tree_nodes =
        store_kinds[r] == HitStoreKind::kMaxSubpatternTree
            ? stores[r]->num_units()
            : 0;
    result.per_period.emplace_back(period_low + r, std::move(mined));
  }
  result.total_scans = source.stats().scans - scans_before;
  span.End();
  result.elapsed_seconds = span.ElapsedSeconds();
  PPM_LOG(kDebug) << "multi-period shared mine: periods " << period_low << ".."
                  << period_high << " in " << result.total_scans << " scans";
  return result;
}

}  // namespace ppm
