#include "core/mining_options.h"

#include <cmath>

namespace ppm {

Status MiningOptions::Validate(uint64_t series_length) const {
  if (period == 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (period > series_length) {
    return Status::InvalidArgument(
        "period " + std::to_string(period) + " exceeds series length " +
        std::to_string(series_length));
  }
  if (min_count == 0) {
    if (!(min_confidence > 0.0) || min_confidence > 1.0) {
      return Status::InvalidArgument("min_confidence must be in (0, 1]");
    }
  }
  return Status::OK();
}

uint64_t MiningOptions::EffectiveMinCount(uint64_t num_periods) const {
  if (min_count > 0) return min_count;
  // count/m >= conf  <=>  count >= conf*m; counts are integral, so round the
  // right-hand side up (with a tolerance for floating error when conf*m is
  // integral, e.g. 0.25 * 100 must give 25, not 26).
  const double threshold = min_confidence * static_cast<double>(num_periods);
  uint64_t count = static_cast<uint64_t>(std::ceil(threshold - 1e-9));
  if (count == 0) count = 1;
  return count;
}

}  // namespace ppm
