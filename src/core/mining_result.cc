#include "core/mining_result.h"

#include <algorithm>
#include <cstdio>

namespace ppm {

const FrequentPattern* MiningResult::Find(const Pattern& pattern) const {
  for (const FrequentPattern& entry : patterns_) {
    if (entry.pattern == pattern) return &entry;
  }
  return nullptr;
}

void MiningResult::Canonicalize() {
  std::sort(patterns_.begin(), patterns_.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              const uint32_t la = a.pattern.LetterCount();
              const uint32_t lb = b.pattern.LetterCount();
              if (la != lb) return la < lb;
              return a.pattern < b.pattern;
            });
}

std::string MiningResult::ToString(const tsdb::SymbolTable& symbols) const {
  std::string out;
  for (const FrequentPattern& entry : patterns_) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  count=%llu conf=%.4f\n",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out += entry.pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

}  // namespace ppm
