#include "core/mining_result.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace ppm {

std::string MiningStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("scans").Uint(scans);
  w.Key("instants_read").Uint(instants_read);
  w.Key("candidates_evaluated").Uint(candidates_evaluated);
  w.Key("hit_store_entries").Uint(hit_store_entries);
  w.Key("tree_nodes").Uint(tree_nodes);
  w.Key("num_f1_letters").Uint(num_f1_letters);
  w.Key("num_periods").Uint(num_periods);
  w.Key("max_level_reached").Uint(max_level_reached);
  w.Key("elapsed_seconds").Double(elapsed_seconds);
  w.EndObject();
  return w.str();
}

const FrequentPattern* MiningResult::Find(const Pattern& pattern) const {
  for (const FrequentPattern& entry : patterns_) {
    if (entry.pattern == pattern) return &entry;
  }
  return nullptr;
}

void MiningResult::Canonicalize() {
  std::sort(patterns_.begin(), patterns_.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              const uint32_t la = a.pattern.LetterCount();
              const uint32_t lb = b.pattern.LetterCount();
              if (la != lb) return la < lb;
              return a.pattern < b.pattern;
            });
}

std::string MiningResult::ToString(const tsdb::SymbolTable& symbols) const {
  std::string out;
  for (const FrequentPattern& entry : patterns_) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "  count=%llu conf=%.4f\n",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out += entry.pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

}  // namespace ppm
