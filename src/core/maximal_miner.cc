#include "core/maximal_miner.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "core/f1_scan.h"
#include "core/fault_metrics.h"
#include "core/hit_store.h"
#include "core/scan_accounting.h"
#include "util/cancellation.h"
#include "util/stopwatch.h"

namespace ppm {

namespace {

/// GenMax-style depth-first set-enumeration over the letters of `C_max`,
/// with superset lookahead, using the hit store as a frequency oracle.
/// Polls `interrupt` at every search node and unwinds when it fires; the
/// caller must then discard the partial result.
class MaximalSearch {
 public:
  MaximalSearch(const F1ScanResult& f1, const HitStore& store,
                uint32_t max_letters, const Interrupt& interrupt)
      : f1_(f1), store_(store), max_letters_(max_letters),
        interrupt_(interrupt) {}

  std::vector<std::pair<Bitset, uint64_t>> Run() {
    std::vector<uint32_t> tail;
    tail.reserve(f1_.space.size());
    for (uint32_t letter = 0; letter < f1_.space.size(); ++letter) {
      tail.push_back(letter);
    }
    Explore(Bitset(f1_.space.size()), tail);
    return std::move(maximal_);
  }

  uint64_t oracle_calls() const { return oracle_calls_; }

 private:
  /// Exact frequency count of the pattern `mask` denotes. Hits with fewer
  /// than 2 letters are not stored, so small masks use the scan-1 counts.
  uint64_t Count(const Bitset& mask) {
    const uint32_t letters = mask.Count();
    if (letters == 0) return f1_.num_periods;
    if (letters == 1) return f1_.letter_counts[mask.FindFirst()];
    const auto it = count_memo_.find(mask);
    if (it != count_memo_.end()) return it->second;
    ++oracle_calls_;
    const uint64_t count = store_.CountSuperpatterns(mask);
    count_memo_.emplace(mask, count);
    return count;
  }

  bool IsFrequent(const Bitset& mask) {
    if (max_letters_ != 0 && mask.Count() > max_letters_) return false;
    return Count(mask) >= f1_.min_count;
  }

  bool HasSupersetInMaximal(const Bitset& mask) const {
    for (const auto& [found, count] : maximal_) {
      if (mask.IsSubsetOf(found) && mask != found) return true;
      if (mask == found) return true;
    }
    return false;
  }

  void AddMaximal(const Bitset& mask) {
    if (HasSupersetInMaximal(mask)) return;
    // A later branch can complete a pattern that subsumes an earlier leaf;
    // drop the subsumed entries to keep the set antichain.
    std::erase_if(maximal_, [&mask](const std::pair<Bitset, uint64_t>& entry) {
      return entry.first.IsSubsetOf(mask);
    });
    maximal_.emplace_back(mask, Count(mask));
  }

  void Explore(const Bitset& current, const std::vector<uint32_t>& tail) {
    if (interrupt_.ShouldStop()) return;
    // Lookahead: if the union of this subtree is frequent, it subsumes
    // every other node below -- record it and prune the whole subtree.
    if (!tail.empty()) {
      Bitset all = current;
      for (uint32_t letter : tail) all.Set(letter);
      if (HasSupersetInMaximal(all)) return;  // Subtree already covered.
      if (IsFrequent(all)) {
        AddMaximal(all);
        return;
      }
    }

    // Keep only letters whose one-step extension stays frequent.
    std::vector<uint32_t> viable;
    viable.reserve(tail.size());
    for (uint32_t letter : tail) {
      Bitset child = current;
      child.Set(letter);
      if (IsFrequent(child)) viable.push_back(letter);
    }

    if (viable.empty()) {
      if (!current.Empty()) AddMaximal(current);
      return;
    }
    for (size_t i = 0; i < viable.size(); ++i) {
      Bitset child = current;
      child.Set(viable[i]);
      const std::vector<uint32_t> child_tail(viable.begin() +
                                                 static_cast<long>(i) + 1,
                                             viable.end());
      Explore(child, child_tail);
    }
  }

  const F1ScanResult& f1_;
  const HitStore& store_;
  const uint32_t max_letters_;
  const Interrupt interrupt_;
  std::unordered_map<Bitset, uint64_t, BitsetHash> count_memo_;
  std::vector<std::pair<Bitset, uint64_t>> maximal_;
  uint64_t oracle_calls_ = 0;
};

}  // namespace

Result<MiningResult> MineMaximalHitSet(tsdb::SeriesSource& source,
                                       const MiningOptions& options) {
  Stopwatch stopwatch;
  MiningResult result;
  const uint64_t scans_before = source.stats().scans;
  const uint64_t instants_before = source.stats().instants_read;

  const Interrupt interrupt = options.interrupt();
  PPM_ASSIGN_OR_RETURN(F1ScanResult f1, ScanForF1(source, options));
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = f1.num_periods;

  PPM_ASSIGN_OR_RETURN(
      const BudgetDecision budgeted,
      DecideHitStore(options, f1.num_periods, f1.space.size()));
  std::unique_ptr<HitStore> store =
      MakeHitStore(budgeted.store, f1.space.full_mask(), f1.space.size());

  PPM_RETURN_IF_ERROR(source.StartScan());
  const uint32_t period = options.period;
  const uint64_t covered = f1.num_periods * period;
  const uint64_t check_stride = uint64_t{1024} * period;
  Bitset segment_mask(f1.space.size());
  tsdb::FeatureSet instant;
  uint64_t t = 0;
  while (t < covered && source.Next(&instant)) {
    const uint32_t position = static_cast<uint32_t>(t % period);
    if (t % check_stride == 0) PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
    if (position == 0) segment_mask.Reset();
    f1.space.AccumulatePosition(position, instant, &segment_mask);
    if (position == period - 1 && segment_mask.Count() >= 2) {
      store->AddHit(segment_mask);
    }
    ++t;
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (t < covered) {
    return Status::Internal("source ended before its declared length");
  }
  RecordDbPass("second_scan", covered, f1.num_periods);

  MaximalSearch search(f1, *store, options.max_letters, interrupt);
  auto maximal = search.Run();
  // The search unwinds quietly on interruption; discard the partial
  // antichain rather than present it as the maximal set.
  PPM_RETURN_IF_INTERRUPTED_RECORDED(interrupt);
  const double denom = static_cast<double>(f1.num_periods);
  for (auto& [mask, count] : maximal) {
    FrequentPattern entry;
    entry.pattern = f1.space.MaskToPattern(mask);
    entry.count = count;
    entry.confidence = denom > 0 ? static_cast<double>(count) / denom : 0.0;
    result.patterns().push_back(std::move(entry));
  }

  result.Canonicalize();
  result.stats().candidates_evaluated = search.oracle_calls();
  result.stats().hit_store_entries = store->num_entries();
  result.stats().tree_nodes =
      budgeted.store == HitStoreKind::kMaxSubpatternTree ? store->num_units()
                                                         : 0;
  result.stats().scans = source.stats().scans - scans_before;
  result.stats().instants_read = source.stats().instants_read - instants_before;
  result.stats().elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace ppm
