#include "rules/rules.h"

#include <cstdio>
#include <unordered_map>
#include <utility>

namespace ppm::rules {

std::string PeriodicRule::Format(const tsdb::SymbolTable& symbols) const {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "  (conf=%.4f, pat_conf=%.4f, supp=%llu)",
                rule_confidence, pattern_confidence,
                static_cast<unsigned long long>(support_count));
  return antecedent.Format(symbols) + "  =>  " + consequent.Format(symbols) +
         buffer;
}

Result<std::vector<PeriodicRule>> GenerateRules(const MiningResult& result,
                                                double min_rule_confidence) {
  if (min_rule_confidence < 0.0 || min_rule_confidence > 1.0) {
    return Status::InvalidArgument("min_rule_confidence must be in [0, 1]");
  }

  std::unordered_map<Pattern, uint64_t, PatternHash> counts;
  counts.reserve(result.size());
  for (const FrequentPattern& entry : result.patterns()) {
    counts.emplace(entry.pattern, entry.count);
  }

  std::vector<PeriodicRule> rules;
  for (const FrequentPattern& entry : result.patterns()) {
    const Pattern& pattern = entry.pattern;
    if (pattern.LLength() < 2) continue;
    const uint32_t period = pattern.period();

    // Split between consecutive non-`*` positions: antecedent takes
    // positions < split, consequent takes positions >= split.
    for (uint32_t split = 1; split < period; ++split) {
      if (pattern.IsStarAt(split - 1)) continue;  // Splits after a letter only.
      Pattern antecedent(period);
      Pattern consequent(period);
      bool consequent_nonempty = false;
      for (uint32_t position = 0; position < period; ++position) {
        pattern.at(position).ForEach([&](uint32_t feature) {
          if (position < split) {
            antecedent.AddLetter(position, feature);
          } else {
            consequent.AddLetter(position, feature);
            consequent_nonempty = true;
          }
        });
      }
      if (!consequent_nonempty) continue;

      const auto it = counts.find(antecedent);
      if (it == counts.end() || it->second == 0) {
        return Status::Internal(
            "mining result lacks a frequent subpattern (Apriori property "
            "violated by input)");
      }
      PeriodicRule rule;
      rule.support_count = entry.count;
      rule.rule_confidence =
          static_cast<double>(entry.count) / static_cast<double>(it->second);
      rule.pattern_confidence = entry.confidence;
      rule.antecedent = std::move(antecedent);
      rule.consequent = std::move(consequent);
      if (rule.rule_confidence >= min_rule_confidence) {
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

std::vector<PeriodicRule> PerfectRules(const std::vector<PeriodicRule>& rules) {
  std::vector<PeriodicRule> perfect;
  for (const PeriodicRule& rule : rules) {
    if (rule.pattern_confidence >= 1.0) perfect.push_back(rule);
  }
  return perfect;
}

}  // namespace ppm::rules
