#ifndef PPM_RULES_RULES_H_
#define PPM_RULES_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/mining_result.h"
#include "core/pattern.h"
#include "tsdb/symbol_table.h"
#include "util/status.h"

namespace ppm::rules {

/// A periodic association rule `A => B` within one period: if the earlier
/// offsets of a segment match `A`, the later offsets match `B` with the
/// given rule confidence. `A` and `B` partition the non-`*` positions of a
/// frequent pattern at a temporal split point.
struct PeriodicRule {
  Pattern antecedent;
  Pattern consequent;
  /// Frequency count of the combined pattern `A ∪ B`.
  uint64_t support_count = 0;
  /// `count(A ∪ B) / count(A)` -- conditional confidence of the rule.
  double rule_confidence = 0.0;
  /// `count(A ∪ B) / m` -- the combined pattern's periodicity confidence.
  double pattern_confidence = 0.0;

  /// "A => B  (conf=..., supp=...)" using `symbols` for feature names.
  std::string Format(const tsdb::SymbolTable& symbols) const;
};

/// Derives all rules with `rule_confidence >= min_rule_confidence` from a
/// mining result: every frequent pattern with L-length >= 2 is split at each
/// position boundary between its first and last non-`*` positions. The
/// antecedent's count is looked up in `result` (always present by the
/// Apriori property); fails with `Internal` if `result` is inconsistent.
Result<std::vector<PeriodicRule>> GenerateRules(const MiningResult& result,
                                                double min_rule_confidence);

/// The rules whose combined pattern holds in *every* period segment
/// (pattern confidence 1): the perfect-periodicity special case mined by
/// cyclic association rules (Ozden et al., discussed in Section 1).
std::vector<PeriodicRule> PerfectRules(const std::vector<PeriodicRule>& rules);

}  // namespace ppm::rules

#endif  // PPM_RULES_RULES_H_
