#ifndef PPM_DISCRETIZE_DISCRETIZER_H_
#define PPM_DISCRETIZE_DISCRETIZER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::discretize {

/// How numeric values are split into bins (Section 6: "examine the
/// distribution of numerical values ... and discretize them into single- or
/// multiple-level categorical data").
enum class BinningMethod {
  /// Equal-width bins between the observed min and max.
  kEqualWidth = 0,
  /// Equal-frequency (quantile) bins.
  kEqualFrequency = 1,
  /// Bins equiprobable under a Gaussian fit of the data (the SAX-style
  /// breakpoints commonly used for symbolic time-series representations).
  kGaussian = 2,
};

struct DiscretizeOptions {
  BinningMethod method = BinningMethod::kEqualWidth;
  /// Number of bins (>= 2).
  uint32_t num_bins = 4;
  /// Feature names are `<prefix><bin>`, e.g. "lvl0".."lvl3".
  std::string prefix = "lvl";
};

/// Computes the `num_bins - 1` interior breakpoints for `values` under
/// `method`. Bin `b` covers `(breakpoints[b-1], breakpoints[b]]` with the
/// outer bins open-ended. Fails on empty input or `num_bins < 2`.
Result<std::vector<double>> ComputeBreakpoints(const std::vector<double>& values,
                                               BinningMethod method,
                                               uint32_t num_bins);

/// Bin index of `value` for the given interior `breakpoints`
/// (`values <= breakpoints[i]` fall in bin `i` or lower).
uint32_t BinOf(double value, const std::vector<double>& breakpoints);

/// Converts a numeric series into a categorical `TimeSeries` with one
/// feature per instant naming the value's bin.
Result<tsdb::TimeSeries> Discretize(const std::vector<double>& values,
                                    const DiscretizeOptions& options);

/// A two-level discretization: each instant carries both a coarse feature
/// (`<prefix>hi<bin>`) and a fine feature (`<prefix>lo<bin>`), plus the
/// fine-to-coarse name mapping for building a `multilevel::Taxonomy`.
/// `fine_bins` must be a positive multiple of `coarse_bins` so fine bins
/// nest inside coarse ones.
struct MultiLevelSeries {
  tsdb::TimeSeries series;
  /// (fine feature name, coarse feature name) pairs.
  std::vector<std::pair<std::string, std::string>> hierarchy;
};

Result<MultiLevelSeries> DiscretizeMultiLevel(const std::vector<double>& values,
                                              uint32_t coarse_bins,
                                              uint32_t fine_bins,
                                              BinningMethod method,
                                              const std::string& prefix = "lvl");

/// Centered moving-average smoothing over `half_window` values on each
/// side (shrunk at the edges). Section 6 suggests employing "regression
/// technique to reduce the noise of perturbation" before discretizing
/// numeric data; this is the standard local-mean regression for that.
/// `half_window == 0` returns the input unchanged.
Result<std::vector<double>> SmoothMovingAverage(
    const std::vector<double>& values, uint32_t half_window);

/// Encodes consecutive differences as movement features -- the
/// stock-movement representation of Lu, Han & Feng (reference [9] of the
/// paper): instant `i` (for `i >= 1`) gets `<prefix>up` when
/// `values[i] - values[i-1] > flat_epsilon`, `<prefix>down` when below
/// `-flat_epsilon`, else `<prefix>flat`. Instant 0 has no features.
/// `flat_epsilon` must be non-negative.
Result<tsdb::TimeSeries> EncodeMovement(const std::vector<double>& values,
                                        double flat_epsilon,
                                        const std::string& prefix = "");

}  // namespace ppm::discretize

#endif  // PPM_DISCRETIZE_DISCRETIZER_H_
