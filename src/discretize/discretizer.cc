#include "discretize/discretizer.h"

#include <algorithm>
#include <cmath>

namespace ppm::discretize {

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation; absolute
/// error below 1.15e-9, ample for breakpoint placement).
double Probit(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

Result<std::vector<double>> ComputeBreakpoints(
    const std::vector<double>& values, BinningMethod method,
    uint32_t num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot discretize an empty series");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be at least 2");
  }
  std::vector<double> breakpoints(num_bins - 1);

  switch (method) {
    case BinningMethod::kEqualWidth: {
      const auto [min_it, max_it] =
          std::minmax_element(values.begin(), values.end());
      const double lo = *min_it;
      const double width = (*max_it - lo) / num_bins;
      for (uint32_t i = 1; i < num_bins; ++i) breakpoints[i - 1] = lo + width * i;
      break;
    }
    case BinningMethod::kEqualFrequency: {
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      for (uint32_t i = 1; i < num_bins; ++i) {
        size_t index = (sorted.size() * i) / num_bins;
        if (index > 0) --index;
        breakpoints[i - 1] = sorted[index];
      }
      break;
    }
    case BinningMethod::kGaussian: {
      double mean = 0.0;
      for (double v : values) mean += v;
      mean /= static_cast<double>(values.size());
      double variance = 0.0;
      for (double v : values) variance += (v - mean) * (v - mean);
      variance /= static_cast<double>(values.size());
      const double stddev = std::sqrt(variance);
      for (uint32_t i = 1; i < num_bins; ++i) {
        breakpoints[i - 1] =
            mean + stddev * Probit(static_cast<double>(i) / num_bins);
      }
      break;
    }
  }
  return breakpoints;
}

uint32_t BinOf(double value, const std::vector<double>& breakpoints) {
  // First breakpoint >= value; bins are (bp[i-1], bp[i]].
  const auto it =
      std::lower_bound(breakpoints.begin(), breakpoints.end(), value);
  return static_cast<uint32_t>(it - breakpoints.begin());
}

Result<tsdb::TimeSeries> Discretize(const std::vector<double>& values,
                                    const DiscretizeOptions& options) {
  PPM_ASSIGN_OR_RETURN(
      std::vector<double> breakpoints,
      ComputeBreakpoints(values, options.method, options.num_bins));

  tsdb::TimeSeries series;
  // Intern bin names up front so ids are ordered by bin.
  for (uint32_t b = 0; b < options.num_bins; ++b) {
    series.symbols().Intern(options.prefix + std::to_string(b));
  }
  for (double value : values) {
    tsdb::FeatureSet instant;
    instant.Set(BinOf(value, breakpoints));
    series.Append(std::move(instant));
  }
  return series;
}

Result<MultiLevelSeries> DiscretizeMultiLevel(const std::vector<double>& values,
                                              uint32_t coarse_bins,
                                              uint32_t fine_bins,
                                              BinningMethod method,
                                              const std::string& prefix) {
  if (coarse_bins < 2) {
    return Status::InvalidArgument("coarse_bins must be at least 2");
  }
  if (fine_bins % coarse_bins != 0 || fine_bins == coarse_bins) {
    return Status::InvalidArgument(
        "fine_bins must be a proper multiple of coarse_bins so fine bins "
        "nest inside coarse bins");
  }
  // Coarse bins are unions of consecutive fine bins, so both levels derive
  // from the fine breakpoints and nest exactly.
  PPM_ASSIGN_OR_RETURN(std::vector<double> breakpoints,
                       ComputeBreakpoints(values, method, fine_bins));
  const uint32_t fan_in = fine_bins / coarse_bins;

  MultiLevelSeries out;
  tsdb::TimeSeries& series = out.series;
  for (uint32_t b = 0; b < coarse_bins; ++b) {
    series.symbols().Intern(prefix + "hi" + std::to_string(b));
  }
  for (uint32_t b = 0; b < fine_bins; ++b) {
    const std::string fine_name = prefix + "lo" + std::to_string(b);
    series.symbols().Intern(fine_name);
    out.hierarchy.emplace_back(fine_name,
                               prefix + "hi" + std::to_string(b / fan_in));
  }
  for (double value : values) {
    const uint32_t fine = BinOf(value, breakpoints);
    tsdb::FeatureSet instant;
    instant.Set(fine / fan_in);                 // coarse feature id
    instant.Set(coarse_bins + fine);            // fine feature id
    series.Append(std::move(instant));
  }
  return out;
}

Result<std::vector<double>> SmoothMovingAverage(
    const std::vector<double>& values, uint32_t half_window) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot smooth an empty series");
  }
  if (half_window == 0) return values;
  std::vector<double> smoothed(values.size());
  // Prefix sums make each window mean O(1).
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t begin = i >= half_window ? i - half_window : 0;
    const size_t end =
        std::min(values.size(), i + static_cast<size_t>(half_window) + 1);
    smoothed[i] = (prefix[end] - prefix[begin]) /
                  static_cast<double>(end - begin);
  }
  return smoothed;
}

Result<tsdb::TimeSeries> EncodeMovement(const std::vector<double>& values,
                                        double flat_epsilon,
                                        const std::string& prefix) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot encode an empty series");
  }
  if (flat_epsilon < 0.0) {
    return Status::InvalidArgument("flat_epsilon must be non-negative");
  }
  tsdb::TimeSeries series;
  const tsdb::FeatureId up = series.symbols().Intern(prefix + "up");
  const tsdb::FeatureId down = series.symbols().Intern(prefix + "down");
  const tsdb::FeatureId flat = series.symbols().Intern(prefix + "flat");
  series.AppendEmpty();  // No movement defined for the first instant.
  for (size_t i = 1; i < values.size(); ++i) {
    const double delta = values[i] - values[i - 1];
    tsdb::FeatureSet instant;
    if (delta > flat_epsilon) {
      instant.Set(up);
    } else if (delta < -flat_epsilon) {
      instant.Set(down);
    } else {
      instant.Set(flat);
    }
    series.Append(std::move(instant));
  }
  return series;
}

}  // namespace ppm::discretize
