#ifndef PPM_PARALLEL_MATERIALIZE_H_
#define PPM_PARALLEL_MATERIALIZE_H_

#include <cstdint>
#include <vector>

#include "tsdb/series_source.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::parallel {

/// Reads the first `limit` instants of `source` into memory with a single
/// scan, giving the sharded miners the random access a `SeriesSource`
/// cannot provide: workers index disjoint period segments of the returned
/// vector without touching the source again.
///
/// Fails if the source errors or ends before delivering `limit` instants.
/// Counts as exactly one scan in `source.stats()`.
Result<std::vector<tsdb::FeatureSet>> MaterializePrefix(
    tsdb::SeriesSource& source, uint64_t limit);

}  // namespace ppm::parallel

#endif  // PPM_PARALLEL_MATERIALIZE_H_
