#ifndef PPM_PARALLEL_SHARD_H_
#define PPM_PARALLEL_SHARD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace ppm::parallel {

/// Wall-clock busy time of each worker over one sharded region, indexed by
/// chunk. Recorded by `ShardedRun` and folded into the global metrics by the
/// calling (main) thread.
struct ShardTimings {
  std::vector<double> worker_seconds;
  double merge_seconds = 0.0;
};

/// Runs `fn(chunk)` over `[0, n)` via `pool.ParallelFor`, wrapping each
/// chunk in a per-worker trace span named `<phase>.shard` and timing it.
///
/// Returns per-chunk busy times; after the call (all workers joined) the
/// caller merges per-chunk state in chunk order for deterministic output.
///
/// When `interrupt` fires, chunks that have not started yet are skipped at
/// the dispatch layer (running chunks finish or bail on their own polls).
/// Workers cannot return a `Status`, so the caller must re-check the
/// interrupt after the join and discard the partial per-chunk state.
ShardTimings ShardedRun(ThreadPool& pool, uint64_t n, const std::string& phase,
                        const std::function<void(const ThreadPool::Chunk&)>& fn,
                        const Interrupt& interrupt = Interrupt());

/// Publishes one sharded region's cost model into the global registry:
///   ppm.parallel.shards            counter  chunks executed
///   ppm.parallel.worker_busy_us    histogram  per-chunk busy time
///   ppm.parallel.merge_us          counter  main-thread merge time
/// `timings.merge_seconds` is set by the caller once its merge finished.
void RecordShardMetrics(const ShardTimings& timings);

}  // namespace ppm::parallel

#endif  // PPM_PARALLEL_SHARD_H_
