#include "parallel/materialize.h"

#include <utility>

#include "obs/trace.h"

namespace ppm::parallel {

Result<std::vector<tsdb::FeatureSet>> MaterializePrefix(
    tsdb::SeriesSource& source, uint64_t limit) {
  const obs::TraceSpan span =
      obs::Tracer::Global().StartSpan("materialize");
  std::vector<tsdb::FeatureSet> instants;
  instants.reserve(limit);
  PPM_RETURN_IF_ERROR(source.StartScan());
  tsdb::FeatureSet instant;
  while (instants.size() < limit && source.Next(&instant)) {
    instants.push_back(instant);
  }
  PPM_RETURN_IF_ERROR(source.status());
  if (instants.size() < limit) {
    return Status::Internal("source ended before its declared length");
  }
  return instants;
}

}  // namespace ppm::parallel
