#include "parallel/shard.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppm::parallel {

ShardTimings ShardedRun(
    ThreadPool& pool, uint64_t n, const std::string& phase,
    const std::function<void(const ThreadPool::Chunk&)>& fn,
    const Interrupt& interrupt) {
  ShardTimings timings;
  timings.worker_seconds.assign(pool.size(), 0.0);
  const std::string span_name = phase + ".shard";
  pool.ParallelFor(
      n, [&fn, &timings, &span_name, &interrupt](const ThreadPool::Chunk& c) {
        // Chunks already interrupted never start; the caller re-checks the
        // interrupt after the join and discards the partial state.
        if (interrupt.ShouldStop()) return;
        obs::TraceSpan span = obs::Tracer::Global().StartSpan(span_name);
        fn(c);
        span.End();
        // Chunks are disjoint, so each slot is written by exactly one task.
        timings.worker_seconds[c.index] = span.ElapsedSeconds();
      });
  return timings;
}

void RecordShardMetrics(const ShardTimings& timings) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter shards = registry.GetCounter("ppm.parallel.shards");
  obs::Histogram busy = registry.GetHistogram("ppm.parallel.worker_busy_us");
  for (const double seconds : timings.worker_seconds) {
    if (seconds <= 0.0) continue;
    shards.Inc();
    busy.Observe(static_cast<uint64_t>(seconds * 1e6));
  }
  registry.GetCounter("ppm.parallel.merge_us")
      .Inc(static_cast<uint64_t>(timings.merge_seconds * 1e6));
}

}  // namespace ppm::parallel
