#ifndef PPM_SYNTH_GENERATOR_H_
#define PPM_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/pattern.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::synth {

/// Parameters of the randomized periodicity data generator (Section 5.1,
/// Table 1 of the paper).
///
/// The generator plants one maximal *anchor* pattern of L-length
/// `max_pat_length` whose occurrences arrive segment-to-segment with
/// exponential inter-arrival gaps, plus `num_f1 - max_pat_length` extra
/// letters that are individually frequent but mutually independent, so the
/// mined `F_1` has `num_f1` letters while the longest frequent pattern has
/// L-length `max_pat_length`. Background noise draws a Poisson number of
/// features per instant from an alphabet disjoint from the planted letters.
struct GeneratorOptions {
  /// LENGTH: number of time instants.
  uint64_t length = 100000;
  /// p: the period the patterns live at.
  uint32_t period = 50;
  /// MAX-PAT-LENGTH: L-length of the planted maximal pattern.
  uint32_t max_pat_length = 8;
  /// |F_1|: total number of frequent letters to plant
  /// (must satisfy max_pat_length <= num_f1 <= period).
  uint32_t num_f1 = 12;
  /// Total alphabet size, planted letters plus noise features
  /// (must exceed num_f1).
  uint32_t num_features = 100;
  /// Fraction of segments expressing the anchor pattern (mean of the
  /// exponential inter-arrival process). Must exceed the mining threshold
  /// for the anchor to surface.
  double anchor_confidence = 0.9;
  /// Per-segment occurrence rate of each independent extra letter. Keep
  /// `independent_confidence^2` below the mining threshold so conjunctions
  /// of independent letters stay infrequent.
  double independent_confidence = 0.85;
  /// Mean of the Poisson number of noise features added per instant.
  double noise_mean = 1.0;
  /// RNG seed; equal options generate equal series.
  uint64_t seed = 42;
};

/// A generated series together with its ground truth.
struct GeneratedSeries {
  tsdb::TimeSeries series;
  /// The planted maximal pattern (letters at positions 0..max_pat_length-1).
  Pattern anchor;
  /// All planted frequent letters, anchor letters first.
  std::vector<Pattern> planted_letters;
};

/// Generates a synthetic series per `options`; fails on inconsistent
/// parameters (see field comments).
Result<GeneratedSeries> GenerateSeries(const GeneratorOptions& options);

}  // namespace ppm::synth

#endif  // PPM_SYNTH_GENERATOR_H_
