#include "synth/generator.h"

#include <cmath>
#include <string>
#include <utility>

#include "util/random.h"

namespace ppm::synth {

namespace {

Status ValidateOptions(const GeneratorOptions& options) {
  if (options.period == 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (options.length < options.period) {
    return Status::InvalidArgument("length below one period");
  }
  if (options.max_pat_length == 0) {
    return Status::InvalidArgument("max_pat_length must be positive");
  }
  if (options.max_pat_length > options.num_f1) {
    return Status::InvalidArgument("max_pat_length exceeds num_f1");
  }
  if (options.num_f1 > options.period) {
    return Status::InvalidArgument(
        "num_f1 exceeds period (one planted letter per position)");
  }
  if (options.num_features <= options.num_f1) {
    return Status::InvalidArgument("num_features must exceed num_f1");
  }
  if (!(options.anchor_confidence > 0.0) || options.anchor_confidence > 1.0) {
    return Status::InvalidArgument("anchor_confidence must be in (0, 1]");
  }
  if (!(options.independent_confidence > 0.0) ||
      options.independent_confidence > 1.0) {
    return Status::InvalidArgument("independent_confidence must be in (0, 1]");
  }
  if (options.noise_mean < 0.0) {
    return Status::InvalidArgument("noise_mean must be non-negative");
  }
  return Status::OK();
}

/// Segment gap until the next occurrence of a planted unit: one plus the
/// floor of an exponential variate with rate -ln(1 - confidence), i.e. the
/// discretization of the paper's exponential placement. Expected occupancy
/// equals `confidence`. A confidence of 1 occupies every segment.
uint64_t NextGap(Rng& rng, double confidence) {
  if (confidence >= 1.0) return 1;
  const double rate = -std::log(1.0 - confidence);
  return 1 + static_cast<uint64_t>(std::floor(rng.NextExponential(1.0 / rate)));
}

}  // namespace

Result<GeneratedSeries> GenerateSeries(const GeneratorOptions& options) {
  PPM_RETURN_IF_ERROR(ValidateOptions(options));
  Rng rng(options.seed);

  GeneratedSeries out;
  tsdb::TimeSeries& series = out.series;

  // Planted letters get ids 0..num_f1-1; noise features follow.
  for (uint32_t i = 0; i < options.num_f1; ++i) {
    std::string name = "f";
    name += std::to_string(i);
    series.symbols().Intern(name);
  }
  const uint32_t num_noise = options.num_features - options.num_f1;
  for (uint32_t i = 0; i < num_noise; ++i) {
    std::string name = "n";
    name += std::to_string(i);
    series.symbols().Intern(name);
  }

  series.AppendEmpty(options.length);
  const uint64_t num_segments = options.length / options.period;

  // Unit 0 is the anchor pattern (letters 0..max_pat_length-1, planted
  // jointly); units 1.. are the independent extra letters.
  const uint32_t num_units = 1 + options.num_f1 - options.max_pat_length;
  std::vector<uint64_t> next_occurrence(num_units);
  const auto unit_confidence = [&options](uint32_t unit) {
    return unit == 0 ? options.anchor_confidence
                     : options.independent_confidence;
  };
  for (uint32_t unit = 0; unit < num_units; ++unit) {
    next_occurrence[unit] = NextGap(rng, unit_confidence(unit)) - 1;
  }

  for (uint64_t segment = 0; segment < num_segments; ++segment) {
    const uint64_t base = segment * options.period;
    // Anchor.
    if (segment == next_occurrence[0]) {
      for (uint32_t i = 0; i < options.max_pat_length; ++i) {
        series.at(base + i).Set(i);
      }
      next_occurrence[0] += NextGap(rng, unit_confidence(0));
    }
    // Independent letters live at positions max_pat_length..num_f1-1.
    for (uint32_t unit = 1; unit < num_units; ++unit) {
      if (segment != next_occurrence[unit]) continue;
      const uint32_t letter = options.max_pat_length + (unit - 1);
      series.at(base + letter).Set(letter);
      next_occurrence[unit] += NextGap(rng, unit_confidence(unit));
    }
  }

  // Background noise over the whole series (including the tail beyond the
  // last whole segment), drawn from the disjoint noise alphabet.
  if (options.noise_mean > 0.0 && num_noise > 0) {
    for (uint64_t t = 0; t < options.length; ++t) {
      const uint32_t burst = rng.NextPoisson(options.noise_mean);
      for (uint32_t i = 0; i < burst; ++i) {
        series.at(t).Set(options.num_f1 +
                         static_cast<uint32_t>(rng.NextBelow(num_noise)));
      }
    }
  }

  out.anchor = Pattern(options.period);
  for (uint32_t i = 0; i < options.max_pat_length; ++i) {
    out.anchor.AddLetter(i, i);
  }
  for (uint32_t i = 0; i < options.num_f1; ++i) {
    Pattern letter(options.period);
    letter.AddLetter(i, i);
    out.planted_letters.push_back(std::move(letter));
  }
  return out;
}

}  // namespace ppm::synth
