#ifndef PPM_UTIL_BITSET_H_
#define PPM_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppm {

/// A growable bitset over `uint32_t` indices.
///
/// Used both as a set of feature ids at one time instant and as a mask over
/// the letters of a candidate max-pattern. Unset trailing bits are implicit:
/// two bitsets compare equal iff they contain the same set bits, regardless
/// of internal capacity, and `Hash()` respects that.
class Bitset {
 public:
  Bitset() = default;

  /// Creates a bitset sized for indices `[0, num_bits)` (all clear).
  explicit Bitset(uint32_t num_bits) : words_((num_bits + 63) / 64, 0) {}

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) noexcept = default;
  Bitset& operator=(Bitset&&) noexcept = default;

  /// Sets bit `index`, growing capacity if necessary.
  void Set(uint32_t index) {
    const size_t word = index >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= uint64_t{1} << (index & 63);
  }

  /// Clears bit `index` (no-op when beyond capacity).
  void Clear(uint32_t index) {
    const size_t word = index >> 6;
    if (word < words_.size()) words_[word] &= ~(uint64_t{1} << (index & 63));
  }

  /// Tests bit `index` (bits beyond capacity are clear).
  bool Test(uint32_t index) const {
    const size_t word = index >> 6;
    if (word >= words_.size()) return false;
    return (words_[word] >> (index & 63)) & 1;
  }

  /// Removes every set bit.
  void Reset() {
    for (uint64_t& w : words_) w = 0;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set bits.
  uint32_t Count() const {
    uint32_t count = 0;
    for (uint64_t w : words_) count += static_cast<uint32_t>(__builtin_popcountll(w));
    return count;
  }

  /// True iff every bit set in `*this` is also set in `other`.
  bool IsSubsetOf(const Bitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      const uint64_t other_word = i < other.words_.size() ? other.words_[i] : 0;
      if ((words_[i] & ~other_word) != 0) return false;
    }
    return true;
  }

  /// True iff `*this` and `other` share at least one set bit.
  bool Intersects(const Bitset& other) const {
    const size_t n = words_.size() < other.words_.size() ? words_.size()
                                                         : other.words_.size();
    for (size_t i = 0; i < n; ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  /// `*this |= other`.
  void UnionWith(const Bitset& other) {
    if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
    for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// `*this &= other`.
  void IntersectWith(const Bitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
    }
  }

  /// `*this &= ~other`.
  void SubtractWith(const Bitset& other) {
    const size_t n = words_.size() < other.words_.size() ? words_.size()
                                                         : other.words_.size();
    for (size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
  }

  /// Index of the lowest set bit, or `kNoBit` when empty.
  static constexpr uint32_t kNoBit = UINT32_MAX;
  uint32_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit at or above `from`, or `kNoBit`.
  uint32_t FindNext(uint32_t from) const {
    size_t word = from >> 6;
    if (word >= words_.size()) return kNoBit;
    uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        return static_cast<uint32_t>(word * 64 + __builtin_ctzll(w));
      }
      if (++word >= words_.size()) return kNoBit;
      w = words_[word];
    }
  }

  /// Invokes `fn(index)` for every set bit, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t word = 0; word < words_.size(); ++word) {
      uint64_t w = words_[word];
      while (w != 0) {
        const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(w));
        fn(static_cast<uint32_t>(word * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// All set bit indices, ascending.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    ForEach([&out](uint32_t index) { out.push_back(index); });
    return out;
  }

  /// Approximate bytes of owned storage (object + heap words), for
  /// `MemoryBudget` accounting of mask-keyed structures.
  uint64_t ApproxMemoryBytes() const {
    return sizeof(Bitset) + words_.capacity() * sizeof(uint64_t);
  }

  /// Content hash, independent of trailing capacity.
  size_t Hash() const {
    // FNV-1a over the significant words.
    size_t trailing = words_.size();
    while (trailing > 0 && words_[trailing - 1] == 0) --trailing;
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < trailing; ++i) {
      h ^= words_[i];
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    const size_t n = a.words_.size() > b.words_.size() ? a.words_.size()
                                                       : b.words_.size();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
      const uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) { return !(a == b); }

  /// Total order (by content, treating the bitset as a little-endian number);
  /// useful for canonical sorting in outputs and tests.
  friend bool operator<(const Bitset& a, const Bitset& b) {
    const size_t n = a.words_.size() > b.words_.size() ? a.words_.size()
                                                       : b.words_.size();
    for (size_t i = n; i > 0; --i) {
      const uint64_t wa = i - 1 < a.words_.size() ? a.words_[i - 1] : 0;
      const uint64_t wb = i - 1 < b.words_.size() ? b.words_[i - 1] : 0;
      if (wa != wb) return wa < wb;
    }
    return false;
  }

 private:
  std::vector<uint64_t> words_;
};

/// Hash functor for using `Bitset` as an unordered container key.
struct BitsetHash {
  size_t operator()(const Bitset& bits) const { return bits.Hash(); }
};

}  // namespace ppm

#endif  // PPM_UTIL_BITSET_H_
