#ifndef PPM_UTIL_LOG_H_
#define PPM_UTIL_LOG_H_

#include <ostream>
#include <sstream>
#include <string_view>

#include "util/status.h"

namespace ppm {

/// Severity levels for the library logger, least to most severe. `kOff`
/// is a threshold-only value that silences everything.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Stable lowercase name ("debug", "info", "warn", "error", "off").
std::string_view LogLevelToString(LogLevel level);

/// Parses the names accepted by `--log-level`; error on anything else.
Result<LogLevel> ParseLogLevel(std::string_view text);

/// Threshold below which messages are dropped. Default: kWarn, so library
/// internals stay quiet unless a caller opts in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Redirects log output (default and `nullptr`: stderr). The sink must
/// outlive logging; tests point this at an `ostringstream`.
void SetLogSink(std::ostream* sink);

namespace internal {

/// One log statement: buffers stream insertions, flushes a single line
/// "[level] message" to the sink on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets the macro's ternary discard the stream expression (glog idiom).
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ppm

/// Leveled logging: `PPM_LOG(kInfo) << "mined " << n << " patterns";`
/// Statements below the threshold cost one comparison; the stream
/// expression is not evaluated.
#define PPM_LOG(severity)                                        \
  (::ppm::LogLevel::severity < ::ppm::GetLogLevel())             \
      ? (void)0                                                  \
      : ::ppm::internal::LogVoidify() &                          \
            ::ppm::internal::LogMessage(::ppm::LogLevel::severity).stream()

#endif  // PPM_UTIL_LOG_H_
