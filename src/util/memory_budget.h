#ifndef PPM_UTIL_MEMORY_BUDGET_H_
#define PPM_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace ppm {

/// A thread-safe byte account capping the working-set of one mining run.
///
/// The budget is advisory bookkeeping, not an allocator hook: components
/// that own large structures (hit stores, candidate tables) charge their
/// approximate footprint and the miners react to a failed charge by
/// degrading or returning `kResourceExhausted` (see docs/ROBUSTNESS.md).
/// A limit of 0 means unlimited; every charge then succeeds.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes`; false (and no reservation) when that would push
  /// usage past the limit.
  bool TryCharge(uint64_t bytes) {
    if (limit_ == 0) return true;
    uint64_t current = used_.load(std::memory_order_relaxed);
    while (true) {
      if (bytes > limit_ || current > limit_ - bytes) return false;
      if (used_.compare_exchange_weak(current, current + bytes,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns a previous charge (clamped at zero for safety).
  void Release(uint64_t bytes) {
    uint64_t current = used_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t next = bytes > current ? 0 : current - bytes;
      if (used_.compare_exchange_weak(current, next,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// True when `used() + extra` would exceed a finite limit.
  bool WouldExceed(uint64_t extra) const {
    if (limit_ == 0) return false;
    const uint64_t current = used_.load(std::memory_order_relaxed);
    return extra > limit_ || current > limit_ - extra;
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace ppm

#endif  // PPM_UTIL_MEMORY_BUDGET_H_
