#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ppm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace ppm
