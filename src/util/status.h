#ifndef PPM_UTIL_STATUS_H_
#define PPM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ppm {

/// Error categories used across the library.
///
/// The library does not use C++ exceptions; fallible operations return a
/// `Status` (or a `Result<T>` when they also produce a value), following the
/// idiom of RocksDB / Apache Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kCorruption = 6,
  kInternal = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying an error code and message.
///
/// `Status` is cheap to copy in the success case (empty message) and is
/// intended to be returned by value. Callers must check `ok()` before relying
/// on any out-parameters of the call that produced it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error sum type (the `StatusOr` idiom).
///
/// A `Result<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// Accessing the value of a non-OK result aborts the process, so callers
/// must check `ok()` (or use `PPM_ASSIGN_OR_RETURN`) first.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : data_(std::move(value)) {}

  /// Constructs from an error status (implicit so functions can
  /// `return Status::InvalidArgument(...);`). Must not be OK.
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      std::get<Status>(data_) =
          Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; `Status::OK()` when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(data_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(data_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(data_));
}

}  // namespace ppm

/// Propagates a non-OK `Status` to the caller.
#define PPM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ppm::Status ppm_status_macro_tmp_ = (expr);  \
    if (!ppm_status_macro_tmp_.ok()) {             \
      return ppm_status_macro_tmp_;                \
    }                                              \
  } while (false)

#define PPM_MACRO_CONCAT_INNER_(a, b) a##b
#define PPM_MACRO_CONCAT_(a, b) PPM_MACRO_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a `Result<T>`); on error returns the status to the
/// caller, otherwise moves the value into `lhs`.
#define PPM_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  PPM_ASSIGN_OR_RETURN_IMPL_(PPM_MACRO_CONCAT_(ppm_result_, __LINE__), lhs, \
                             rexpr)

#define PPM_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) {                                  \
    return result.status();                            \
  }                                                    \
  lhs = std::move(result).value()

#endif  // PPM_UTIL_STATUS_H_
