#ifndef PPM_UTIL_CHECK_H_
#define PPM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These fire in all build modes: a failed check
/// means a bug inside the library (never a user input error -- those are
/// reported through `Status`).
#define PPM_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "PPM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define PPM_DCHECK(condition) PPM_CHECK(condition)

#endif  // PPM_UTIL_CHECK_H_
