#ifndef PPM_UTIL_CHECK_H_
#define PPM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. A failed check means a bug inside the library
/// (never a user input error -- those are reported through `Status`).
///
/// `PPM_CHECK` fires in all build modes. `PPM_DCHECK` is for hot-path
/// invariants: it fires only in debug builds (compiled out under `NDEBUG`,
/// where the condition is never evaluated). A translation unit may force a
/// mode by defining `PPM_DCHECK_ENABLED` to 1 or 0 before including this
/// header (used by the compile-mode tests).
#define PPM_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "PPM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifndef PPM_DCHECK_ENABLED
#ifdef NDEBUG
#define PPM_DCHECK_ENABLED 0
#else
#define PPM_DCHECK_ENABLED 1
#endif
#endif

#if PPM_DCHECK_ENABLED
#define PPM_DCHECK(condition) PPM_CHECK(condition)
#else
// The condition still compiles (catching type errors and "unused variable"
// warnings) but is never evaluated at run time.
#define PPM_DCHECK(condition)      \
  do {                             \
    if (false) {                   \
      (void)(condition);           \
    }                              \
  } while (false)
#endif

#endif  // PPM_UTIL_CHECK_H_
