#ifndef PPM_UTIL_FS_H_
#define PPM_UTIL_FS_H_

#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ppm::fsutil {

/// Flushes `path` (a file or a directory) to stable storage. Directory
/// fsync is what makes a rename durable on POSIX filesystems.
Status FsyncPath(const std::string& path);

/// Reads the whole file into a byte string. `NotFound` when the file does
/// not exist, `IoError` for anything else.
Result<std::string> ReadFileBytes(const std::string& path);

/// Durability hook for `AtomicWriteFile`: called with the temp file path
/// and then the parent directory path. Injectable so callers can route
/// through a fault-injection seam.
using SyncFn = std::function<Status(const std::string&)>;

/// Atomically (and durably) replaces `path` with `bytes`:
/// write `path + ".tmp"` -> `sync(tmp)` -> rename over `path` ->
/// `sync(parent dir)`. Any failure before the rename removes the temp file
/// and leaves the previous `path` byte-for-byte intact, so the destination
/// always holds either the old or the new content -- never a torn mix.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const SyncFn& sync = FsyncPath);

}  // namespace ppm::fsutil

#endif  // PPM_UTIL_FS_H_
