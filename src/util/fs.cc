#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace ppm::fsutil {

namespace fs = std::filesystem;

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return Status::NotFound("no such file: " + path);
    return Status::IoError("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const SyncFn& sync) {
  const std::string tmp_path = path + ".tmp";
  const auto fail = [&tmp_path](Status status) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return status;
  };
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write: " + tmp_path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return fail(Status::IoError("write failed: " + tmp_path));
  }
  const Status synced = sync(tmp_path);
  if (!synced.ok()) return fail(synced);
  std::error_code ec;
  fs::rename(tmp_path, path, ec);
  if (ec) {
    return fail(Status::IoError("rename failed: " + path + ": " + ec.message()));
  }
  std::string parent = fs::path(path).parent_path().string();
  if (parent.empty()) parent = ".";
  return sync(parent);
}

}  // namespace ppm::fsutil
