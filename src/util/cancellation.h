#ifndef PPM_UTIL_CANCELLATION_H_
#define PPM_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace ppm {

/// Cooperative cancellation flag shared by everyone holding a copy of the
/// token. `Cancel()` is sticky, thread-safe, and async-signal-safe (a single
/// relaxed atomic store), so a SIGINT handler may call it directly.
///
/// A default-constructed token owns fresh shared state; copying shares it,
/// so cancelling the original cancels every copy (the per-period options
/// copies made by the multi-period miners all answer to one token).
class CancelToken {
 public:
  CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent.
  void Cancel() const { cancelled_->store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// A wall-clock execution deadline. Default-constructed deadlines never
/// expire and skip the clock read entirely, so an unset deadline costs one
/// branch per check.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (0 is already expired).
  static Deadline After(uint64_t ms) {
    Deadline deadline;
    deadline.infinite_ = false;
    deadline.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return deadline;
  }

  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (0 when expired; UINT64_MAX when infinite).
  uint64_t remaining_ms() const {
    if (infinite_) return UINT64_MAX;
    const auto left = at_ - Clock::now();
    if (left <= Clock::duration::zero()) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

/// Bundles a token and a deadline into one cheap, copyable interruption
/// check, the form the miners and `parallel::ShardedRun` thread through
/// their loops. Checks are made at segment / level / chunk granularity --
/// never per instant -- so a check costs one atomic load plus (with a
/// finite deadline) one clock read.
class Interrupt {
 public:
  /// Never fires.
  Interrupt() = default;

  Interrupt(CancelToken token, Deadline deadline)
      : token_(std::move(token)), deadline_(deadline) {}

  /// True when work should stop (cancelled or past the deadline). Safe to
  /// call concurrently from worker threads.
  bool ShouldStop() const { return token_.cancelled() || deadline_.expired(); }

  /// OK, or the `Status` a miner must return: cancellation wins over the
  /// deadline when both fired (the user's explicit action is the better
  /// explanation).
  Status Check() const {
    if (token_.cancelled()) return Status::Cancelled("mining cancelled");
    if (deadline_.expired()) {
      return Status::DeadlineExceeded("mining deadline exceeded");
    }
    return Status::OK();
  }

  const CancelToken& token() const { return token_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  CancelToken token_;
  Deadline deadline_;
};

/// Propagates interruption to the caller, like `PPM_RETURN_IF_ERROR` for an
/// `Interrupt` (`expr` is any `Interrupt` expression).
#define PPM_RETURN_IF_INTERRUPTED(expr)             \
  do {                                              \
    ::ppm::Status ppm_interrupt_tmp_ = (expr).Check(); \
    if (!ppm_interrupt_tmp_.ok()) {                 \
      return ppm_interrupt_tmp_;                    \
    }                                               \
  } while (false)

}  // namespace ppm

#endif  // PPM_UTIL_CANCELLATION_H_
