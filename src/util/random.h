#ifndef PPM_UTIL_RANDOM_H_
#define PPM_UTIL_RANDOM_H_

#include <cstdint>

namespace ppm {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Used everywhere randomness is needed (synthetic data, property tests) so
/// runs are reproducible from a seed. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in `[0, bound)`. `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in `[0, 1)`.
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Poisson-distributed count with the given `mean` (> 0).
  ///
  /// Uses Knuth's product method for small means and a normal approximation
  /// (rounded, clamped at zero) for large means.
  uint32_t NextPoisson(double mean);

  /// Exponentially distributed value with the given `mean` (> 0).
  double NextExponential(double mean);

  /// Standard normal draw (Box-Muller).
  double NextGaussian();

  /// Zipf-distributed rank in `[0, n)` with exponent `s` (> 0); rank 0 is the
  /// most likely. Sampled by inverting the empirical CDF.
  uint32_t NextZipf(uint32_t n, double s);

 private:
  uint64_t state_[4];
};

}  // namespace ppm

#endif  // PPM_UTIL_RANDOM_H_
