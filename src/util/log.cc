#include "util/log.h"

#include <iostream>
#include <mutex>

namespace ppm {

namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;
// Serializes whole lines so messages from pool workers don't interleave.
std::mutex g_sink_mu;

}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return Status::InvalidArgument(
      "log level must be one of: debug, info, warn, error, off (got '" +
      std::string(text) + "')");
}

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void SetLogSink(std::ostream* sink) { g_sink = sink; }

namespace internal {

LogMessage::LogMessage(LogLevel level) : level_(level) {}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::ostream& sink = g_sink != nullptr ? *g_sink : std::cerr;
  sink << "[" << LogLevelToString(level_) << "] " << stream_.str() << "\n";
  sink.flush();
}

}  // namespace internal
}  // namespace ppm
