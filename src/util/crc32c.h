#ifndef PPM_UTIL_CRC32C_H_
#define PPM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ppm::crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected): the checksum
/// used by the v3 `.ppmts` layout, chosen to match the storage-format
/// convention of RocksDB / LevelDB (table-driven software implementation;
/// byte-for-byte the same function, so external tooling can verify files).

/// Extends `crc` (a running value, initially 0) over `data[0, n)`.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of a whole buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

inline uint32_t Value(std::string_view data) {
  return Value(data.data(), data.size());
}

}  // namespace ppm::crc32c

#endif  // PPM_UTIL_CRC32C_H_
